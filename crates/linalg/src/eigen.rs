//! Cyclic Jacobi eigensolver for real symmetric matrices.
//!
//! The paper (§III-B) ranks candidate model features with a principal
//! component analysis; PCA needs the eigendecomposition of the feature
//! covariance matrix, which is symmetric — exactly the case the Jacobi
//! method handles with excellent accuracy for the small (8×8) systems here.

use crate::matrix::Mat;
use crate::{LinalgError, Result};

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
///
/// Eigenvalues are sorted descending; `vectors.col(i)` is the eigenvector
/// for `values[i]`.
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors, one per column, matching `values` order.
    pub vectors: Mat,
}

impl SymmetricEigen {
    /// Decompose a symmetric matrix with the cyclic Jacobi method.
    ///
    /// `a` must be square; only symmetry up to rounding is assumed (the
    /// strictly lower triangle is averaged with the upper before
    /// iteration). Fails with [`LinalgError::NoConvergence`] if the
    /// off-diagonal norm does not fall below tolerance in 100 sweeps —
    /// in practice symmetric matrices converge in < 15.
    pub fn new(a: &Mat) -> Result<SymmetricEigen> {
        let (m, n) = a.shape();
        if m != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "eigen needs a square matrix, got {m}x{n}"
            )));
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        // Symmetrize to guard against rounding in caller-built covariances.
        let mut s = Mat::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let mut v = Mat::identity(n);

        let off = |s: &Mat| -> f64 {
            let mut sum = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    sum += s[(i, j)] * s[(i, j)];
                }
            }
            sum.sqrt()
        };

        let tol = 1e-14 * s.frobenius_norm().max(1.0);
        const MAX_SWEEPS: usize = 100;
        let mut converged = n < 2;
        for _sweep in 0..MAX_SWEEPS {
            if off(&s) <= tol {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = s[(p, q)];
                    if apq.abs() <= tol / (n * n) as f64 {
                        continue;
                    }
                    let app = s[(p, p)];
                    let aqq = s[(q, q)];
                    // Compute the Jacobi rotation (c, sn) annihilating s[p,q].
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let sn = t * c;
                    // Apply rotation: S <- Jᵀ S J.
                    for k in 0..n {
                        let skp = s[(k, p)];
                        let skq = s[(k, q)];
                        s[(k, p)] = c * skp - sn * skq;
                        s[(k, q)] = sn * skp + c * skq;
                    }
                    for k in 0..n {
                        let spk = s[(p, k)];
                        let sqk = s[(q, k)];
                        s[(p, k)] = c * spk - sn * sqk;
                        s[(q, k)] = sn * spk + c * sqk;
                    }
                    // Accumulate eigenvectors: V <- V J.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - sn * vkq;
                        v[(k, q)] = sn * vkp + c * vkq;
                    }
                }
            }
        }
        if !converged && off(&s) > tol {
            return Err(LinalgError::NoConvergence {
                iterations: MAX_SWEEPS,
            });
        }

        // Sort eigenpairs by descending eigenvalue.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| {
            s[(j, j)]
                .partial_cmp(&s[(i, i)])
                .expect("finite eigenvalues")
        });
        let values: Vec<f64> = order.iter().map(|&i| s[(i, i)]).collect();
        let vectors = Mat::from_fn(n, n, |r, c| v[(r, order[c])]);
        Ok(SymmetricEigen { values, vectors })
    }

    /// Fraction of total variance explained by each component, assuming the
    /// input was a covariance matrix (negative rounding dust clamped to 0).
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.values.iter().map(|&l| l.max(0.0)).sum();
        if total <= 0.0 {
            return vec![0.0; self.values.len()];
        }
        self.values.iter().map(|&l| l.max(0.0) / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymmetricEigen) -> Mat {
        let n = e.values.len();
        let lam = Mat::diag(&e.values);
        e.vectors
            .matmul(&lam)
            .unwrap()
            .matmul(&e.vectors.transpose())
            .unwrap();
        let vl = e.vectors.matmul(&lam).unwrap();
        vl.matmul(&e.vectors.transpose())
            .unwrap_or_else(|_| Mat::zeros(n, n))
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Mat::diag(&[1.0, 5.0, 3.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.values, vec![5.0, 3.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Mat::from_vec(2, 2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthonormality() {
        let a = Mat::from_fn(6, 6, |i, j| 1.0 / (1.0 + (i as f64 - j as f64).abs()));
        let e = SymmetricEigen::new(&a).unwrap();
        let r = reconstruct(&e);
        for i in 0..6 {
            for j in 0..6 {
                assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-10, "({i},{j})");
            }
        }
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((vtv[(i, j)] - want).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn eigenvector_satisfies_definition() {
        let a = Mat::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0]).unwrap();
        let e = SymmetricEigen::new(&a).unwrap();
        for k in 0..3 {
            let v = e.vectors.col(k);
            let av = a.matvec(&v).unwrap();
            for i in 0..3 {
                assert!((av[i] - e.values[k] * v[i]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn explained_variance_sums_to_one() {
        let a = Mat::diag(&[4.0, 3.0, 2.0, 1.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        let evr = e.explained_variance_ratio();
        assert!((evr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((evr[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_square() {
        assert!(SymmetricEigen::new(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn handles_1x1_and_empty() {
        let e = SymmetricEigen::new(&Mat::diag(&[7.0])).unwrap();
        assert_eq!(e.values, vec![7.0]);
        let e0 = SymmetricEigen::new(&Mat::zeros(0, 0)).unwrap();
        assert!(e0.values.is_empty());
    }
}
