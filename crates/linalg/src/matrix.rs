//! Row-major dense `f64` matrix.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense row-major matrix of `f64`.
///
/// Indexing is `(row, col)`; storage is contiguous with stride = `cols`.
/// The type is cheap to clone for the small systems this workspace solves
/// (feature matrices of a few thousand rows by ≤ 9 columns).
#[derive(Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// An `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// An `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major `Vec`. Returns an error if the length is not
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch(format!(
                "{}x{} matrix needs {} elements, got {}",
                rows,
                cols,
                rows * cols,
                data.len()
            )));
        }
        Ok(Mat { rows, cols, data })
    }

    /// Build from a slice of rows; all rows must have the same length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(LinalgError::ShapeMismatch(format!(
                    "ragged rows: expected {}, got {}",
                    ncols,
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Mat {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Build an `n × 1` column matrix from a slice.
    pub fn column(v: &[f64]) -> Self {
        Mat {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Build a diagonal matrix from a slice.
    pub fn diag(d: &[f64]) -> Self {
        let n = d.len();
        let mut m = Mat::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Build with a generator closure `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Mat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` out into a new `Vec`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterator over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses an ikj loop order so the inner loop streams both operands — the
    /// cache-friendly form for row-major storage.
    pub fn matmul(&self, rhs: &Mat) -> Result<Mat> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "matmul {}x{} by {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Mat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = out.row_mut(i);
            for (k, &aik) in arow.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let brow = rhs.row(k);
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch(format!(
                "matvec {}x{} by {}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        Ok(self
            .rows_iter()
            .map(|row| row.iter().zip(v).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// `selfᵀ * v` without materializing the transpose.
    pub fn tr_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch(format!(
                "tr_matvec {}x{} by {}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        let mut out = vec![0.0; self.cols];
        for (row, &vi) in self.rows_iter().zip(v) {
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * vi;
            }
        }
        Ok(out)
    }

    /// Gram matrix `selfᵀ * self`, exploiting symmetry.
    pub fn gram(&self) -> Mat {
        let n = self.cols;
        let mut g = Mat::zeros(n, n);
        for row in self.rows_iter() {
            for j in 0..n {
                let rj = row[j];
                if rj == 0.0 {
                    continue;
                }
                for k in j..n {
                    g[(j, k)] += rj * row[k];
                }
            }
        }
        for j in 0..n {
            for k in 0..j {
                g[(j, k)] = g[(k, j)];
            }
        }
        g
    }

    /// Scale every element in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element, 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// True if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Horizontally stack `self | rhs`.
    pub fn hstack(&self, rhs: &Mat) -> Result<Mat> {
        if self.rows != rhs.rows {
            return Err(LinalgError::ShapeMismatch(format!(
                "hstack {}x{} with {}x{}",
                self.rows, self.cols, rhs.rows, rhs.cols
            )));
        }
        let mut out = Mat::zeros(self.rows, self.cols + rhs.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(rhs.row(i));
        }
        Ok(out)
    }

    /// Select a subset of rows (by index, repeats allowed) into a new matrix.
    pub fn select_rows(&self, idx: &[usize]) -> Mat {
        let mut out = Mat::zeros(idx.len(), self.cols);
        for (oi, &si) in idx.iter().enumerate() {
            out.row_mut(oi).copy_from_slice(self.row(si));
        }
        out
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

macro_rules! elementwise {
    ($trait:ident, $fn:ident, $op:tt) => {
        impl $trait for &Mat {
            type Output = Mat;
            fn $fn(self, rhs: &Mat) -> Mat {
                assert_eq!(self.shape(), rhs.shape(), "elementwise shape mismatch");
                let data = self
                    .data
                    .iter()
                    .zip(&rhs.data)
                    .map(|(a, b)| a $op b)
                    .collect();
                Mat { rows: self.rows, cols: self.cols, data }
            }
        }
    };
}

elementwise!(Add, add, +);
elementwise!(Sub, sub, -);

impl AddAssign<&Mat> for Mat {
    fn add_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "elementwise shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Mat> for Mat {
    fn sub_assign(&mut self, rhs: &Mat) {
        assert_eq!(self.shape(), rhs.shape(), "elementwise shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Mat {
    type Output = Mat;
    fn mul(self, s: f64) -> Mat {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }
}

impl Neg for &Mat {
    type Output = Mat;
    fn neg(self) -> Mat {
        self * -1.0
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:>10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 12 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  … ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f64, b: f64, c: f64, d: f64) -> Mat {
        Mat::from_vec(2, 2, vec![a, b, c, d]).unwrap()
    }

    #[test]
    fn zeros_and_identity() {
        let z = Mat::zeros(3, 2);
        assert_eq!(z.shape(), (3, 2));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Mat::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Mat::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Mat::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Mat::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
        assert!(matches!(err, Err(LinalgError::ShapeMismatch(_))));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Mat::from_fn(3, 4, |i, j| (i * 10 + j) as f64);
        let t = a.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t[(2, 1)], a[(1, 2)]);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Mat::from_fn(3, 3, |i, j| (i + j) as f64 + 0.5);
        let prod = a.matmul(&Mat::identity(3)).unwrap();
        assert_eq!(prod, a);
    }

    #[test]
    fn matmul_known_values() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m22(19.0, 22.0, 43.0, 50.0));
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_and_transpose_matvec_agree() {
        let a = Mat::from_fn(4, 3, |i, j| (i as f64 + 1.0) * (j as f64 - 1.0));
        let v = vec![1.0, -2.0, 3.0];
        let w = vec![0.5, 1.5, -0.5, 2.0];
        let av = a.matvec(&v).unwrap();
        let atw = a.tr_matvec(&w).unwrap();
        // <Av, w> == <v, Aᵀw>
        let lhs: f64 = av.iter().zip(&w).map(|(x, y)| x * y).sum();
        let rhs: f64 = v.iter().zip(&atw).map(|(x, y)| x * y).sum();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Mat::from_fn(5, 3, |i, j| ((i * 3 + j) as f64).sin());
        let g1 = a.gram();
        let g2 = a.transpose().matmul(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((g1[(i, j)] - g2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hstack_concats_columns() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = Mat::column(&[9.0, 8.0]);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h[(0, 2)], 9.0);
        assert_eq!(h[(1, 2)], 8.0);
    }

    #[test]
    fn select_rows_allows_repeats() {
        let a = Mat::from_fn(3, 2, |i, _| i as f64);
        let s = a.select_rows(&[2, 0, 2]);
        assert_eq!(s.col(0), vec![2.0, 0.0, 2.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert_eq!(&a + &b, m22(5.0, 5.0, 5.0, 5.0));
        assert_eq!(&a - &b, m22(-3.0, -1.0, 1.0, 3.0));
        assert_eq!(&a * 2.0, m22(2.0, 4.0, 6.0, 8.0));
        let mut c = a.clone();
        c += &b;
        assert_eq!(c, m22(5.0, 5.0, 5.0, 5.0));
        c -= &b;
        assert_eq!(c, a);
    }

    #[test]
    fn norms() {
        let a = m22(3.0, 0.0, 0.0, 4.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn finite_detection() {
        let mut a = Mat::zeros(2, 2);
        assert!(a.is_finite());
        a[(1, 1)] = f64::NAN;
        assert!(!a.is_finite());
    }
}
