//! Cholesky factorization for symmetric positive-definite systems.
//!
//! Used by the ML layer for ridge-regularized normal equations
//! `(AᵀA + λI) x = Aᵀb`, which are SPD by construction for λ > 0.

use crate::matrix::Mat;
use crate::{LinalgError, Result};

/// Lower-triangular Cholesky factor `L` with `L Lᵀ = A`.
pub struct Cholesky {
    l: Mat,
}

// Index-based loops mirror the textbook factorization.
#[allow(clippy::needless_range_loop)]
impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's responsibility. Returns
    /// [`LinalgError::NotPositiveDefinite`] when a non-positive pivot is
    /// encountered.
    pub fn new(a: &Mat) -> Result<Cholesky> {
        let (m, n) = a.shape();
        if m != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "Cholesky needs a square matrix, got {m}x{n}"
            )));
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let mut l = Mat::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if s <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = s.sqrt();
                } else {
                    l[(i, j)] = s / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Solve `A x = b` via forward/back substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch(format!(
                "rhs length {} != dim {}",
                b.len(),
                n
            )));
        }
        // L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l[(i, k)] * y[k];
            }
            y[i] = s / self.l[(i, i)];
        }
        // Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = y[i];
            for k in (i + 1)..n {
                s -= self.l[(k, i)] * x[k];
            }
            x[i] = s / self.l[(i, i)];
        }
        Ok(x)
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Mat {
        &self.l
    }

    /// log-determinant of `A` (= 2 Σ log `L(i,i)`); handy for model-evidence
    /// style diagnostics.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_known_spd() {
        // A = [[4,2],[2,3]] -> L = [[2,0],[1,sqrt(2)]]
        let a = Mat::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.factor();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn solve_roundtrip() {
        let a = Mat::from_vec(3, 3, vec![6.0, 2.0, 1.0, 2.0, 5.0, 2.0, 1.0, 2.0, 4.0]).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let x = ch.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert_eq!(
            Cholesky::new(&a).err(),
            Some(LinalgError::NotPositiveDefinite)
        );
    }

    #[test]
    fn rejects_non_square() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let ch = Cholesky::new(&Mat::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn log_det_scales() {
        let a = Mat::diag(&[2.0, 3.0, 4.0]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.log_det() - 24.0f64.ln()).abs() < 1e-12);
    }
}
