//! Householder QR factorization and linear least squares.
//!
//! The paper (§III-C) fits its linear models with SciPy's linear
//! least-squares routine; [`lstsq`] is the equivalent here. QR is used
//! rather than the normal equations for numerical robustness on the
//! poorly-scaled feature columns (memory intensities differ by orders of
//! magnitude between application classes).

use crate::matrix::Mat;
use crate::{LinalgError, Result};

/// A compact Householder QR factorization of an `m × n` matrix, `m ≥ n`.
///
/// `R` is stored in the upper triangle of `qr`; the Householder vectors in
/// the lower triangle plus `betas`.
pub struct Qr {
    qr: Mat,
    betas: Vec<f64>,
}

// Index-based loops are the clearest form for factorization kernels
// (triangular bounds, in-place column updates).
#[allow(clippy::needless_range_loop)]
impl Qr {
    /// Factor `a` (consumed). Requires `rows ≥ cols`.
    pub fn new(a: Mat) -> Result<Qr> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::ShapeMismatch(format!(
                "QR requires rows >= cols, got {m}x{n}"
            )));
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite);
        }
        let mut qr = a;
        let mut betas = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm = 0.0f64;
            for i in k..m {
                norm = norm.hypot(qr[(i, k)]);
            }
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] > 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // v = (v0, qr[k+1.., k]); beta = -1/(alpha*v0) normalizes H = I - beta v vᵀ
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            qr[(k, k)] = alpha;
            betas[k] = -v0 / alpha;
            // Apply reflector to trailing columns.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= betas[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vk = qr[(i, k)];
                    qr[(i, j)] -= s * vk;
                }
            }
        }
        Ok(Qr { qr, betas })
    }

    /// Apply `Qᵀ` to a vector in place (length `m`).
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = self.qr.shape();
        debug_assert_eq!(b.len(), m);
        for k in 0..n {
            if self.betas[k] == 0.0 {
                continue;
            }
            let mut s = b[k];
            for i in (k + 1)..m {
                s += self.qr[(i, k)] * b[i];
            }
            s *= self.betas[k];
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.qr[(i, k)];
            }
        }
    }

    /// Solve the least-squares problem `min ‖A x − b‖₂` for `x`.
    ///
    /// Returns [`LinalgError::Singular`] if `R` has a (numerically) zero
    /// diagonal entry, i.e. the columns of `A` are linearly dependent.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let (m, n) = self.qr.shape();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch(format!(
                "rhs length {} != rows {}",
                b.len(),
                m
            )));
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back-substitute R x = y[..n].
        let mut x = vec![0.0; n];
        let tol = 1e-12 * self.qr.max_abs().max(1.0);
        for k in (0..n).rev() {
            let mut s = y[k];
            for j in (k + 1)..n {
                s -= self.qr[(k, j)] * x[j];
            }
            let rkk = self.qr[(k, k)];
            if rkk.abs() <= tol {
                return Err(LinalgError::Singular);
            }
            x[k] = s / rkk;
        }
        Ok(x)
    }

    /// Absolute values of the diagonal of `R` — useful as a conditioning
    /// diagnostic (small trailing values ⇒ near-collinear features).
    pub fn r_diag_abs(&self) -> Vec<f64> {
        (0..self.qr.cols()).map(|k| self.qr[(k, k)].abs()).collect()
    }
}

/// One-shot least squares: returns `x` minimizing `‖A x − b‖₂`.
pub fn lstsq(a: &Mat, b: &[f64]) -> Result<Vec<f64>> {
    Qr::new(a.clone())?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops;

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn solves_square_system() {
        // A = [[2,1],[1,3]], b = [5, 10] -> x = [1, 3]
        let a = Mat::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = lstsq(&a, &[5.0, 10.0]).unwrap();
        assert!(close(&x, &[1.0, 3.0], 1e-10));
    }

    #[test]
    fn overdetermined_recovers_exact_model() {
        // y = 3 + 2t sampled at t = 0..10, fit [1, t] -> coefficients [3, 2]
        let a = Mat::from_fn(10, 2, |i, j| if j == 0 { 1.0 } else { i as f64 });
        let b: Vec<f64> = (0..10).map(|i| 3.0 + 2.0 * i as f64).collect();
        let x = lstsq(&a, &b).unwrap();
        assert!(close(&x, &[3.0, 2.0], 1e-10));
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        // Noisy overdetermined system: residual r = b - Ax must satisfy Aᵀr = 0.
        let a = Mat::from_fn(20, 3, |i, j| {
            ((i * 7 + j * 3) as f64).sin() + 0.1 * j as f64
        });
        let b: Vec<f64> = (0..20).map(|i| (i as f64).cos() * 2.0 + 1.0).collect();
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x).unwrap();
        let r = vecops::sub(&b, &ax);
        let atr = a.tr_matvec(&r).unwrap();
        assert!(vecops::norm2(&atr) < 1e-9, "Aᵀr = {atr:?}");
    }

    #[test]
    fn detects_singularity() {
        // Two identical columns.
        let a = Mat::from_fn(5, 2, |i, _| i as f64 + 1.0);
        assert_eq!(lstsq(&a, &[1.0; 5]).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn rejects_wide_matrix() {
        let a = Mat::zeros(2, 3);
        assert!(matches!(Qr::new(a), Err(LinalgError::ShapeMismatch(_))));
    }

    #[test]
    fn rejects_non_finite() {
        let mut a = Mat::zeros(3, 2);
        a[(1, 1)] = f64::INFINITY;
        assert_eq!(Qr::new(a).err(), Some(LinalgError::NonFinite));
    }

    #[test]
    fn rhs_length_checked() {
        let a = Mat::identity(3);
        let qr = Qr::new(a).unwrap();
        assert!(matches!(
            qr.solve(&[1.0, 2.0]),
            Err(LinalgError::ShapeMismatch(_))
        ));
    }

    #[test]
    fn poorly_scaled_columns_still_solve() {
        // Columns spanning 6 orders of magnitude, like memory intensities.
        let a = Mat::from_fn(30, 3, |i, j| {
            let scale = [1.0, 1e-3, 1e-6][j];
            scale * ((i + j + 1) as f64).ln()
        });
        let truth = [2.0, 500.0, 1e6];
        let b = a.matvec(&truth).unwrap();
        let x = lstsq(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&truth) {
            assert!((xi - ti).abs() / ti.abs() < 1e-6, "{x:?}");
        }
    }
}
