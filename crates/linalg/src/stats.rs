//! Column statistics and covariance matrices for feature matrices.

use crate::matrix::Mat;
use crate::{LinalgError, Result};

/// Per-column means of a data matrix (rows = samples).
pub fn column_means(x: &Mat) -> Vec<f64> {
    let (m, n) = x.shape();
    let mut means = vec![0.0; n];
    if m == 0 {
        return means;
    }
    for row in x.rows_iter() {
        for (mu, &v) in means.iter_mut().zip(row) {
            *mu += v;
        }
    }
    for mu in &mut means {
        *mu /= m as f64;
    }
    means
}

/// Per-column sample standard deviations (n−1 denominator; 0 if m < 2).
pub fn column_stds(x: &Mat) -> Vec<f64> {
    let (m, n) = x.shape();
    if m < 2 {
        return vec![0.0; n];
    }
    let means = column_means(x);
    let mut acc = vec![0.0; n];
    for row in x.rows_iter() {
        for ((a, &v), &mu) in acc.iter_mut().zip(row).zip(&means) {
            let d = v - mu;
            *a += d * d;
        }
    }
    acc.iter().map(|a| (a / (m - 1) as f64).sqrt()).collect()
}

/// Sample covariance matrix of the columns (rows = samples, n−1 denominator).
///
/// Errors if there are fewer than two samples.
pub fn covariance(x: &Mat) -> Result<Mat> {
    let (m, n) = x.shape();
    if m < 2 {
        return Err(LinalgError::ShapeMismatch(format!(
            "covariance needs >= 2 samples, got {m}"
        )));
    }
    let means = column_means(x);
    let mut c = Mat::zeros(n, n);
    for row in x.rows_iter() {
        for j in 0..n {
            let dj = row[j] - means[j];
            if dj == 0.0 {
                continue;
            }
            for k in j..n {
                c[(j, k)] += dj * (row[k] - means[k]);
            }
        }
    }
    let denom = (m - 1) as f64;
    for j in 0..n {
        for k in j..n {
            c[(j, k)] /= denom;
            c[(k, j)] = c[(j, k)];
        }
    }
    Ok(c)
}

/// Pearson correlation matrix of the columns. Columns with zero variance get
/// correlation 0 against everything (and 1 with themselves).
pub fn correlation(x: &Mat) -> Result<Mat> {
    let c = covariance(x)?;
    let n = c.rows();
    let sd: Vec<f64> = (0..n).map(|i| c[(i, i)].sqrt()).collect();
    let mut r = Mat::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            r[(i, j)] = if i == j {
                1.0
            } else if sd[i] > 0.0 && sd[j] > 0.0 {
                c[(i, j)] / (sd[i] * sd[j])
            } else {
                0.0
            };
        }
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_and_stds() {
        let x = Mat::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 50.0]]).unwrap();
        assert_eq!(column_means(&x), vec![3.0, 30.0]);
        let sd = column_stds(&x);
        assert!((sd[0] - 2.0).abs() < 1e-12);
        assert!((sd[1] - 20.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_of_perfectly_correlated_columns() {
        let x = Mat::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        let c = covariance(&x).unwrap();
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(0, 1)] - 2.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 4.0).abs() < 1e-12);
        let r = correlation(&x).unwrap();
        assert!((r[(0, 1)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn covariance_is_symmetric() {
        let x = Mat::from_fn(10, 4, |i, j| ((i * j) as f64).sin() + i as f64 * 0.1);
        let c = covariance(&x).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(c[(i, j)], c[(j, i)]);
            }
        }
    }

    #[test]
    fn constant_column_zero_correlation() {
        let x = Mat::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]]).unwrap();
        let r = correlation(&x).unwrap();
        assert_eq!(r[(0, 1)], 0.0);
        assert_eq!(r[(0, 0)], 1.0);
    }

    #[test]
    fn too_few_samples_is_error() {
        let x = Mat::zeros(1, 3);
        assert!(covariance(&x).is_err());
    }
}
