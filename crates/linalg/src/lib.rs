//! # coloc-linalg
//!
//! A small, dependency-free dense linear-algebra kernel used by the `coloc`
//! machine-learning layer. It provides exactly what the IPPS'15 co-location
//! modeling methodology needs and nothing more:
//!
//! * [`Mat`] — a row-major `f64` matrix with the usual arithmetic.
//! * [`qr`] — Householder QR factorization and linear least squares (the
//!   paper fits its linear models with SciPy's least-squares routine; this
//!   is the equivalent).
//! * [`cholesky`] — SPD factorization/solve, used for ridge-regularized
//!   normal equations.
//! * [`eigen`] — a cyclic Jacobi eigensolver for symmetric matrices, used by
//!   PCA to rank model features (paper §III-B).
//! * [`stats`] — column means/standard deviations and covariance matrices.
//!
//! Everything is deterministic and pure; all fallible routines return
//! [`LinalgError`] rather than panicking on singular inputs.

pub mod cholesky;
pub mod eigen;
pub mod matrix;
pub mod qr;
pub mod stats;
pub mod vecops;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use matrix::Mat;
pub use qr::{lstsq, Qr};

/// Errors produced by factorizations and solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible; payload is a human-readable detail.
    ShapeMismatch(String),
    /// The matrix is singular (or numerically so) for the requested solve.
    Singular,
    /// The matrix is not positive definite (Cholesky).
    NotPositiveDefinite,
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence { iterations: usize },
    /// Input contained NaN or infinity.
    NonFinite,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::ShapeMismatch(s) => write!(f, "shape mismatch: {s}"),
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            LinalgError::NonFinite => write!(f, "input contains NaN or infinity"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
