//! Small vector helpers shared across the workspace.
//!
//! These operate on plain `&[f64]` slices so callers never need to wrap
//! their data in a matrix type for one-dimensional work.

/// Dot product. Panics in debug builds on length mismatch.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// `y += alpha * x` in place.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Elementwise difference `a - b` as a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scale a vector in place.
#[inline]
pub fn scale(a: &mut [f64], s: f64) {
    for x in a {
        *x *= s;
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator); 0 if fewer than 2 points.
pub fn std_dev(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    (a.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (a.len() - 1) as f64).sqrt()
}

/// Minimum of a slice; +inf for an empty slice.
pub fn min(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of a slice; −inf for an empty slice.
pub fn max(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Linear-interpolated percentile `p ∈ [0, 100]` of an *unsorted* slice.
///
/// Returns NaN for an empty slice. Uses the same convention as
/// `numpy.percentile(..., interpolation="linear")`, which is what the
/// paper's quartile figures (Fig. 5b) use.
pub fn percentile(a: &[f64], p: f64) -> f64 {
    if a.is_empty() {
        return f64::NAN;
    }
    let mut s = a.to_vec();
    s.sort_by(|x, y| x.partial_cmp(y).expect("NaN in percentile input"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (s.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        s[lo]
    } else {
        let frac = rank - lo as f64;
        s[lo] * (1.0 - frac) + s[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(a: &[f64]) -> f64 {
    percentile(a, 50.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn mean_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        // sample std of {2, 4, 4, 4, 5, 5, 7, 9} = sqrt(32/7)
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn minmax() {
        assert_eq!(min(&[3.0, -1.0, 2.0]), -1.0);
        assert_eq!(max(&[3.0, -1.0, 2.0]), 3.0);
        assert_eq!(min(&[]), f64::INFINITY);
    }

    #[test]
    fn percentile_matches_numpy_convention() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&v, 25.0) - 1.75).abs() < 1e-12);
        assert!((median(&[5.0, 1.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_unsorted_input() {
        assert!((percentile(&[9.0, 1.0, 5.0], 50.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_empty_is_nan() {
        assert!(percentile(&[], 50.0).is_nan());
    }
}
