//! Property-based tests for the linear-algebra kernel.

use coloc_linalg::{lstsq, Mat, SymmetricEigen};
use proptest::prelude::*;

/// Strategy: a small matrix with bounded, well-scaled entries.
fn mat_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |v| Mat::from_vec(rows, cols, v).unwrap())
}

proptest! {
    #[test]
    fn transpose_is_involutive(a in mat_strategy(4, 3)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_associates_with_identity(a in mat_strategy(3, 3)) {
        let i = Mat::identity(3);
        let left = i.matmul(&a).unwrap();
        let right = a.matmul(&i).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_reverses_products(a in mat_strategy(3, 4), b in mat_strategy(4, 2)) {
        // (AB)ᵀ == BᵀAᵀ
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn lstsq_recovers_planted_solution(
        coeffs in prop::collection::vec(-5.0f64..5.0, 3),
        seed in 0u64..1000,
    ) {
        // Build a well-conditioned 12x3 design matrix deterministically from
        // the seed, plant a solution, and check exact recovery.
        let a = Mat::from_fn(12, 3, |i, j| {
            let t = (i as f64 + 1.0) * (j as f64 + 1.0) + seed as f64 * 0.01;
            (t * 0.7).sin() + if i % 3 == j { 2.0 } else { 0.0 }
        });
        let b = a.matvec(&coeffs).unwrap();
        let x = lstsq(&a, &b).unwrap();
        for (xi, ci) in x.iter().zip(&coeffs) {
            prop_assert!((xi - ci).abs() < 1e-6, "x={:?} c={:?}", x, coeffs);
        }
    }

    #[test]
    fn eigenvalues_of_gram_matrix_are_nonnegative(a in mat_strategy(5, 4)) {
        // AᵀA is positive semi-definite, so all eigenvalues >= 0 (up to dust).
        let g = a.gram();
        let e = SymmetricEigen::new(&g).unwrap();
        for &l in &e.values {
            prop_assert!(l > -1e-8, "negative eigenvalue {} in {:?}", l, e.values);
        }
    }

    #[test]
    fn eigen_trace_equals_sum_of_eigenvalues(a in mat_strategy(4, 4)) {
        // Symmetrize first; trace is invariant.
        let s = Mat::from_fn(4, 4, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]));
        let trace: f64 = (0..4).map(|i| s[(i, i)]).sum();
        let e = SymmetricEigen::new(&s).unwrap();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-9);
    }
}
