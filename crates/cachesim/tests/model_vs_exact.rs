//! Cross-validation of the analytic cache models against exact simulation.
//!
//! The machine simulator trusts two analytic shortcuts: (1) the stack-model
//! stream's miss-rate curve, and (2) the fixed-point shared-cache occupancy
//! model. These tests run the *exact* simulators on the same inputs and
//! check the shortcuts are faithful.

use coloc_cachesim::{
    shared_occupancy, CacheConfig, SetAssocCache, SharedApp, StackDistanceDist, StreamGen,
};

/// Interleave two generated streams round-robin through an exact shared
/// fully-associative LRU cache and compare per-app miss rates with the
/// occupancy model's prediction.
#[test]
fn occupancy_model_tracks_exact_shared_cache() {
    let cap_lines = 1024usize;
    let dist_a = StackDistanceDist::power_law(2048, 0.6, 0.01); // big, loose
    let dist_b = StackDistanceDist::power_law(256, 1.4, 0.002); // small, tight

    // Exact: interleave 1:1 (equal access rates).
    let mut cache = SetAssocCache::new(CacheConfig::fully_associative(cap_lines), 2);
    let mut ga = StreamGen::new(dist_a.clone(), 11, 0);
    let mut gb = StreamGen::new(dist_b.clone(), 22, 1 << 40);
    let warm = 60_000;
    let measure = 120_000;
    for i in 0..(warm + measure) {
        if i == warm {
            cache.reset_stats();
        }
        cache.access(0, ga.next_access());
        cache.access(1, gb.next_access());
    }
    let exact_a = cache.stats(0).miss_rate();
    let exact_b = cache.stats(1).miss_rate();

    // Model.
    let apps = [
        SharedApp {
            access_rate: 1.0,
            mrc: dist_a.miss_rate_curve(),
        },
        SharedApp {
            access_rate: 1.0,
            mrc: dist_b.miss_rate_curve(),
        },
    ];
    let sol = shared_occupancy(cap_lines as u64 * 64, &apps);

    // The model is an approximation; demand agreement within a few points
    // of miss rate, and that it gets the *ordering* right.
    assert!(
        (sol.miss_rates[0] - exact_a).abs() < 0.08,
        "app A: model {} vs exact {exact_a}",
        sol.miss_rates[0]
    );
    assert!(
        (sol.miss_rates[1] - exact_b).abs() < 0.08,
        "app B: model {} vs exact {exact_b}",
        sol.miss_rates[1]
    );
    assert_eq!(
        sol.miss_rates[0] > sol.miss_rates[1],
        exact_a > exact_b,
        "model must preserve which app suffers more"
    );

    // Occupancy ordering should match the exact cache too.
    let occ_exact_a = cache.occupancy_fraction(0);
    let model_frac_a = sol.occupancy_bytes[0] / (cap_lines as f64 * 64.0);
    assert!(
        (model_frac_a - occ_exact_a).abs() < 0.20,
        "occupancy: model {model_frac_a} vs exact {occ_exact_a}"
    );
}

/// Adding co-runners to an exact shared cache degrades a target's hit rate
/// monotonically — the mechanistic ground truth for the paper's Table VI.
#[test]
fn exact_shared_cache_degrades_target_with_co_runner_count() {
    let target_dist = StackDistanceDist::power_law(800, 1.0, 0.005);
    let aggressor_dist = StackDistanceDist::power_law(4096, 0.4, 0.03);
    let cap_lines = 1024usize;

    let mut prev_mr = 0.0;
    for n_aggr in [0usize, 1, 3, 5] {
        let mut cache = SetAssocCache::new(CacheConfig::fully_associative(cap_lines), 1 + n_aggr);
        let mut gt = StreamGen::new(target_dist.clone(), 1, 0);
        let mut gas: Vec<StreamGen> = (0..n_aggr)
            .map(|k| StreamGen::new(aggressor_dist.clone(), 100 + k as u64, (k as u64 + 1) << 40))
            .collect();
        let warm = 40_000;
        let measure = 80_000;
        for i in 0..(warm + measure) {
            if i == warm {
                cache.reset_stats();
            }
            cache.access(0, gt.next_access());
            for (k, g) in gas.iter_mut().enumerate() {
                cache.access(1 + k, g.next_access());
            }
        }
        let mr = cache.stats(0).miss_rate();
        assert!(
            mr >= prev_mr - 0.01,
            "target miss rate decreased: {mr} after {prev_mr} at n={n_aggr}"
        );
        prev_mr = mr;
    }
    assert!(prev_mr > 0.02, "5 aggressors should hurt, got {prev_mr}");
}

/// The set-associative cache with realistic associativity behaves close to
/// fully-associative for these streams (so using fully-associative math in
/// the analytic layer is sound).
#[test]
fn associativity_16_close_to_fully_associative() {
    let dist = StackDistanceDist::power_law(1500, 0.9, 0.01);
    let cap_lines = 2048usize;

    let run = |ways: usize| {
        let mut cache = SetAssocCache::new(
            CacheConfig {
                capacity_bytes: cap_lines as u64 * 64,
                line_bytes: 64,
                ways,
            },
            1,
        );
        let mut g = StreamGen::new(dist.clone(), 33, 0);
        for i in 0..120_000 {
            if i == 40_000 {
                cache.reset_stats();
            }
            cache.access(0, g.next_access());
        }
        cache.stats(0).miss_rate()
    };

    let fa = run(cap_lines); // fully associative
    let w16 = run(16);
    assert!((fa - w16).abs() < 0.02, "FA {fa} vs 16-way {w16}");
}
