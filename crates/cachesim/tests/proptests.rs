//! Property-based tests for cache-simulation invariants.

use coloc_cachesim::{
    shared_occupancy, CacheConfig, FastStackAnalyzer, MissRateCurve, PlruCache, SetAssocCache,
    SharedApp, StackAnalyzer, StackDistanceDist,
};
use proptest::prelude::*;

proptest! {
    /// Conservation: hits + misses == accesses, per owner, for any trace.
    #[test]
    fn cache_stats_conserve(
        trace in prop::collection::vec((0usize..3, 0u64..200), 1..500),
        ways_pow in 0u32..4,
    ) {
        let ways = 1usize << ways_pow;
        let lines = 64usize;
        let mut c = SetAssocCache::new(
            CacheConfig { capacity_bytes: lines as u64 * 64, line_bytes: 64, ways },
            3,
        );
        for &(owner, line) in &trace {
            c.access(owner, line);
        }
        let mut total_acc = 0;
        for o in 0..3 {
            let s = c.stats(o);
            prop_assert_eq!(s.hits + s.misses, s.accesses);
            total_acc += s.accesses;
        }
        prop_assert_eq!(total_acc as usize, trace.len());
        // Occupancy never exceeds capacity.
        prop_assert!(c.total_occupied() <= lines as u64);
    }

    /// Stack analyzer: miss count at any capacity equals the exact
    /// fully-associative simulation on the same trace.
    #[test]
    fn mattson_equals_exact_fa(
        trace in prop::collection::vec(0u64..60, 1..400),
        cap in 1usize..80,
    ) {
        let mut an = StackAnalyzer::new();
        an.access_all(trace.iter().copied());
        let mut cache = SetAssocCache::new(CacheConfig::fully_associative(cap), 1);
        for &l in &trace {
            cache.access(0, l);
        }
        prop_assert_eq!(an.misses_at(cap), cache.stats(0).misses);
    }

    /// Miss-rate-at-capacity is monotone non-increasing for any trace.
    #[test]
    fn mattson_monotone(trace in prop::collection::vec(0u64..100, 1..400)) {
        let mut an = StackAnalyzer::new();
        an.access_all(trace);
        let mut prev = f64::INFINITY;
        for cap in 1..64 {
            let mr = an.miss_rate_at(cap);
            prop_assert!(mr <= prev + 1e-12);
            prev = mr;
        }
    }

    /// Analytic distribution miss rate stays in [p_new, 1] and is monotone.
    #[test]
    fn dist_miss_rate_bounded_and_monotone(
        span in 1usize..500,
        alpha in 0.0f64..3.0,
        p_new in 0.0f64..0.5,
    ) {
        let d = StackDistanceDist::power_law(span, alpha, p_new);
        let mut prev = 1.0f64 + 1e-12;
        for cap in 0..span + 10 {
            let mr = d.miss_rate_at(cap);
            prop_assert!(mr <= prev + 1e-12, "cap {}", cap);
            prop_assert!(mr >= p_new - 1e-12);
            prop_assert!(mr <= 1.0 + 1e-12);
            prev = mr;
        }
    }

    /// Occupancy model: shares are positive and sum to capacity for any mix.
    #[test]
    fn occupancy_sums_to_capacity(
        rates in prop::collection::vec(0.01f64..10.0, 1..8),
        cap_mb in 1u64..64,
    ) {
        let apps: Vec<SharedApp> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| SharedApp {
                access_rate: r,
                mrc: StackDistanceDist::power_law(1000 * (i + 1), 0.5 + 0.3 * i as f64, 0.01)
                    .miss_rate_curve(),
            })
            .collect();
        let cap = cap_mb << 20;
        let sol = shared_occupancy(cap, &apps);
        let sum: f64 = sol.occupancy_bytes.iter().sum();
        prop_assert!((sum - cap as f64).abs() < 1.0);
        for &o in &sol.occupancy_bytes {
            prop_assert!(o > 0.0);
        }
        for &m in &sol.miss_rates {
            prop_assert!((0.0..=1.0).contains(&m));
        }
    }

    /// The O(log n) Fenwick analyzer agrees with the naive LRU-stack
    /// analyzer distance-for-distance on arbitrary traces.
    #[test]
    fn fast_analyzer_equals_naive(trace in prop::collection::vec(0u64..80, 1..600)) {
        let mut fast = FastStackAnalyzer::new();
        let mut naive = StackAnalyzer::new();
        for &l in &trace {
            prop_assert_eq!(fast.access(l), naive.access(l));
        }
        prop_assert_eq!(fast.histogram(), naive.histogram());
        prop_assert_eq!(fast.cold_misses(), naive.cold_misses());
        prop_assert_eq!(fast.footprint_lines(), naive.footprint_lines());
    }

    /// PLRU conserves accesses and never exceeds capacity, for any trace
    /// and any (valid) geometry.
    #[test]
    fn plru_conservation(
        trace in prop::collection::vec((0usize..2, 0u64..200), 1..400),
        ways_pow in 0u32..4,
    ) {
        let ways = 1usize << ways_pow;
        let lines = 64usize;
        let mut c = PlruCache::new(
            CacheConfig { capacity_bytes: lines as u64 * 64, line_bytes: 64, ways },
            2,
        );
        for &(owner, line) in &trace {
            c.access(owner, line);
        }
        let mut total = 0;
        for o in 0..2 {
            let s = c.stats(o);
            prop_assert_eq!(s.hits + s.misses, s.accesses);
            total += s.accesses;
        }
        prop_assert_eq!(total as usize, trace.len());
        prop_assert!(c.occupancy_lines(0) + c.occupancy_lines(1) <= lines as u64);
    }

    /// The hinted MRC lookup is bit-identical to the plain lookup for any
    /// curve, any probe sequence, and any (possibly stale) starting hint —
    /// including probes pinned to segment boundaries, where an off-by-one
    /// in the hint-validity test would hide.
    #[test]
    fn mrc_hinted_equals_plain(
        pts in prop::collection::vec((1u64..2_000_000, 0.0f64..1.0), 1..12),
        queries in prop::collection::vec(0u64..3_000_000, 1..64),
        stale_hint in 0usize..16,
    ) {
        let mrc = MissRateCurve::from_points(pts);
        let boundary: Vec<u64> = mrc
            .points()
            .iter()
            .flat_map(|&(c, _)| [c.saturating_sub(1), c, c + 1])
            .collect();
        let mut hint = stale_hint;
        for q in queries.into_iter().chain(boundary) {
            let plain = mrc.miss_rate(q);
            let hinted = mrc.miss_rate_hinted(q, &mut hint);
            prop_assert_eq!(plain.to_bits(), hinted.to_bits());
        }
    }

    /// MRC interpolation stays within the convex hull of sampled rates.
    #[test]
    fn mrc_interpolation_bounded(
        pts in prop::collection::vec((10u64..1_000_000, 0.0f64..1.0), 1..10),
        query in 1u64..2_000_000,
    ) {
        let mrc = MissRateCurve::from_points(pts.clone());
        let lo = pts.iter().map(|&(_, m)| m).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|&(_, m)| m).fold(0.0f64, f64::max);
        let v = mrc.miss_rate(query);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }
}
