//! Shared-cache occupancy under co-location.
//!
//! When several applications share one LLC, each ends up holding a share of
//! the capacity determined by how aggressively it inserts new lines. In
//! steady state under (pseudo-)LRU, an application's occupancy is
//! approximately proportional to its *insertion rate* — its access rate
//! times its miss rate at its current share. Because a smaller share raises
//! the miss rate (more insertions → larger share), the system has a
//! negative-feedback fixed point, which this module finds by damped
//! iteration. The approach follows the spirit of Chandra et al.'s
//! inter-thread contention models and is validated against the exact shared
//! [`crate::SetAssocCache`] in this crate's integration tests.

use crate::mrc::MissRateCurve;

/// One co-located application, as the occupancy model sees it.
#[derive(Clone, Debug)]
pub struct SharedApp {
    /// LLC accesses per unit time (any consistent unit across apps).
    pub access_rate: f64,
    /// Miss rate as a function of allocated capacity.
    pub mrc: MissRateCurve,
}

/// The equilibrium the fixed-point iteration found.
#[derive(Clone, Debug)]
pub struct SharedCacheSolution {
    /// Capacity share of each app, in bytes (sums to the total capacity).
    pub occupancy_bytes: Vec<f64>,
    /// Miss rate of each app at its equilibrium share.
    pub miss_rates: Vec<f64>,
    /// Iterations taken.
    pub iterations: usize,
    /// True if the iteration met tolerance (it practically always does).
    pub converged: bool,
}

/// One damped update of the occupancy fixed point: recompute each app's
/// insertion rate at its current share, move shares toward
/// insertion-proportional targets, and renormalize to exactly fill the
/// cache. Returns the largest per-app change in bytes.
///
/// Exposed so callers with *additional* coupled state (the machine engine
/// couples occupancy with CPI and DRAM latency) can interleave their own
/// updates between occupancy steps instead of nesting full solves.
pub fn occupancy_step(capacity_bytes: u64, apps: &[SharedApp], occ: &mut [f64]) -> f64 {
    debug_assert_eq!(apps.len(), occ.len());
    let ins: Vec<f64> = apps
        .iter()
        .zip(occ.iter())
        .map(|(a, &o)| a.access_rate.max(0.0) * a.mrc.miss_rate(o as u64).max(1e-9))
        .collect();
    occupancy_step_rates(capacity_bytes, &ins, occ)
}

/// The allocation-free core of [`occupancy_step`]: one damped update given
/// per-app insertion rates `ins` the caller already computed (access rate ×
/// miss rate at the current share, both floored as in [`occupancy_step`]).
///
/// Callers that keep their own flat per-instance state — the machine
/// engine's struct-of-arrays solver scratch — fill a reusable `ins` buffer
/// with incremental MRC probes and call this directly, so the hot
/// fixed-point loop allocates nothing. [`occupancy_step`] is a thin
/// wrapper over this function, which keeps both paths numerically
/// identical by construction.
pub fn occupancy_step_rates(capacity_bytes: u64, ins: &[f64], occ: &mut [f64]) -> f64 {
    debug_assert_eq!(ins.len(), occ.len());
    let n = ins.len();
    let cap = capacity_bytes as f64;
    const DAMPING: f64 = 0.5;
    // Floor keeps every app minimally resident, matching the observation
    // that even tiny-footprint apps retain their hot lines under LRU.
    let floor = (cap * 1e-4).min(cap / (4.0 * n as f64));

    let ins_total: f64 = ins.iter().sum();
    if ins_total <= 0.0 {
        return 0.0;
    }
    let mut max_delta = 0.0f64;
    for i in 0..n {
        let target = (cap * ins[i] / ins_total).max(floor);
        let next = occ[i] + DAMPING * (target - occ[i]);
        max_delta = max_delta.max((next - occ[i]).abs());
        occ[i] = next;
    }
    let sum: f64 = occ.iter().sum();
    for o in occ.iter_mut() {
        *o *= cap / sum;
    }
    max_delta
}

/// Solve for the equilibrium occupancy split of `capacity_bytes` among
/// `apps`.
///
/// Returns equal shares for the degenerate cases (no apps with positive
/// access rate). Never panics on valid MRCs.
pub fn shared_occupancy(capacity_bytes: u64, apps: &[SharedApp]) -> SharedCacheSolution {
    let n = apps.len();
    if n == 0 {
        return SharedCacheSolution {
            occupancy_bytes: vec![],
            miss_rates: vec![],
            iterations: 0,
            converged: true,
        };
    }
    let cap = capacity_bytes as f64;
    let mut occ = vec![cap / n as f64; n];

    let total_rate: f64 = apps.iter().map(|a| a.access_rate.max(0.0)).sum();
    if total_rate <= 0.0 {
        let miss_rates = apps
            .iter()
            .zip(&occ)
            .map(|(a, &o)| a.mrc.miss_rate(o as u64))
            .collect();
        return SharedCacheSolution {
            occupancy_bytes: occ,
            miss_rates,
            iterations: 0,
            converged: true,
        };
    }

    const MAX_ITERS: usize = 300;
    let tol = cap * 1e-6;

    let mut iterations = 0;
    let mut converged = false;
    while iterations < MAX_ITERS {
        iterations += 1;
        let max_delta = occupancy_step(capacity_bytes, apps, &mut occ);
        if max_delta < tol {
            converged = true;
            break;
        }
    }

    let miss_rates = apps
        .iter()
        .zip(&occ)
        .map(|(a, &o)| a.mrc.miss_rate(o as u64))
        .collect();
    SharedCacheSolution {
        occupancy_bytes: occ,
        miss_rates,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::StackDistanceDist;

    fn app(span_lines: usize, alpha: f64, p_new: f64, rate: f64) -> SharedApp {
        SharedApp {
            access_rate: rate,
            mrc: StackDistanceDist::power_law(span_lines, alpha, p_new).miss_rate_curve(),
        }
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn identical_apps_split_evenly() {
        let apps = vec![app(40_000, 0.8, 0.01, 1.0), app(40_000, 0.8, 0.01, 1.0)];
        let sol = shared_occupancy(8 * MB, &apps);
        assert!(sol.converged);
        assert!((sol.occupancy_bytes[0] - sol.occupancy_bytes[1]).abs() < 1.0);
        assert!((sol.miss_rates[0] - sol.miss_rates[1]).abs() < 1e-9);
    }

    #[test]
    fn occupancies_sum_to_capacity() {
        let apps = vec![
            app(100_000, 0.5, 0.02, 3.0),
            app(10_000, 1.5, 0.001, 1.0),
            app(500, 2.0, 0.0001, 0.2),
        ];
        let sol = shared_occupancy(12 * MB, &apps);
        let sum: f64 = sol.occupancy_bytes.iter().sum();
        assert!((sum - (12 * MB) as f64).abs() < 1.0, "sum {sum}");
    }

    #[test]
    fn hungrier_app_takes_more_cache() {
        // Same locality, but app 0 issues 10x the accesses.
        let apps = vec![app(50_000, 0.8, 0.01, 10.0), app(50_000, 0.8, 0.01, 1.0)];
        let sol = shared_occupancy(8 * MB, &apps);
        assert!(
            sol.occupancy_bytes[0] > sol.occupancy_bytes[1] * 1.5,
            "{:?}",
            sol.occupancy_bytes
        );
    }

    #[test]
    fn victim_miss_rate_rises_with_more_co_runners() {
        // A fixed target app joined by increasing numbers of aggressors:
        // its equilibrium miss rate must be non-decreasing. This is the
        // mechanism behind the paper's Table VI degradation column.
        let target = app(60_000, 1.0, 0.005, 1.0);
        let mut prev = 0.0;
        for n_aggr in 0..6 {
            let mut apps = vec![target.clone()];
            for _ in 0..n_aggr {
                apps.push(app(200_000, 0.4, 0.05, 2.0));
            }
            let sol = shared_occupancy(12 * MB, &apps);
            assert!(
                sol.miss_rates[0] >= prev - 1e-9,
                "n={n_aggr}: {} < {prev}",
                sol.miss_rates[0]
            );
            prev = sol.miss_rates[0];
        }
        // And strictly worse with 5 aggressors than alone.
        assert!(prev > target.mrc.miss_rate(12 * MB) + 1e-4);
    }

    #[test]
    fn low_intensity_app_barely_disturbs_target() {
        let target = app(60_000, 1.0, 0.005, 1.0);
        let gentle = app(100, 2.0, 1e-6, 0.01); // ep-like: tiny, quiet
        let aggressive = app(200_000, 0.3, 0.08, 3.0); // cg-like

        let alone = shared_occupancy(12 * MB, std::slice::from_ref(&target)).miss_rates[0];
        let with_gentle = shared_occupancy(12 * MB, &[target.clone(), gentle]).miss_rates[0];
        let with_aggr = shared_occupancy(12 * MB, &[target, aggressive]).miss_rates[0];

        assert!(
            with_gentle - alone < 0.01,
            "gentle {with_gentle} vs alone {alone}"
        );
        assert!(
            with_aggr > with_gentle,
            "aggr {with_aggr} vs gentle {with_gentle}"
        );
    }

    #[test]
    fn empty_and_zero_rate_cases() {
        let sol = shared_occupancy(MB, &[]);
        assert!(sol.occupancy_bytes.is_empty());
        let apps = vec![app(100, 1.0, 0.01, 0.0), app(100, 1.0, 0.01, 0.0)];
        let sol = shared_occupancy(MB, &apps);
        assert!((sol.occupancy_bytes[0] - (MB / 2) as f64).abs() < 1.0);
    }

    #[test]
    fn deterministic() {
        let apps = vec![app(50_000, 0.7, 0.01, 2.0), app(20_000, 1.2, 0.003, 1.0)];
        let a = shared_occupancy(6 * MB, &apps);
        let b = shared_occupancy(6 * MB, &apps);
        assert_eq!(a.occupancy_bytes, b.occupancy_bytes);
    }
}
