//! Tree-PLRU replacement: what real LLCs implement instead of true LRU.
//!
//! The analytic layer assumes true-LRU behaviour; real Intel LLCs use
//! pseudo-LRU variants. This module provides a tree-PLRU set-associative
//! cache with the same interface as [`crate::SetAssocCache`] so the
//! LRU-assumption can be *tested* rather than asserted: the crate's tests
//! show PLRU tracks LRU closely for the stream classes the workloads use,
//! which is what justifies building miss-rate curves from stack distances.

use crate::set_assoc::{AccessOutcome, CacheConfig, OwnerStats};
use crate::Line;

#[derive(Clone, Copy, Debug)]
struct Way {
    tag: Line,
    owner: usize,
    valid: bool,
}

/// One cache set with a tree-PLRU policy over `ways` entries.
///
/// The PLRU tree is stored as a flat array of direction bits; for
/// non-power-of-two associativity the tree is built over the next power of
/// two and invalid leaves are preferred victims.
struct PlruSet {
    ways: Vec<Way>,
    /// Internal tree nodes; bit = which subtree is *older* (points toward
    /// the pseudo-LRU leaf).
    bits: Vec<bool>,
}

impl PlruSet {
    fn new(ways: usize) -> PlruSet {
        let leaves = ways.next_power_of_two();
        PlruSet {
            ways: vec![
                Way {
                    tag: 0,
                    owner: 0,
                    valid: false
                };
                ways
            ],
            bits: vec![false; leaves.saturating_sub(1)],
        }
    }

    fn leaves(&self) -> usize {
        self.bits.len() + 1
    }

    /// Walk from the root following the older-subtree bits to a victim leaf.
    fn plru_victim(&self) -> usize {
        let mut node = 0usize;
        let leaves = self.leaves();
        if leaves == 1 {
            return 0;
        }
        loop {
            let go_right = self.bits[node];
            node = 2 * node + 1 + usize::from(go_right);
            if node >= self.bits.len() {
                let leaf = node - self.bits.len();
                return leaf.min(self.ways.len() - 1);
            }
        }
    }

    /// Flip the path bits so `leaf`'s path now points *away* from it.
    fn touch(&mut self, leaf: usize) {
        let leaves = self.leaves();
        if leaves == 1 {
            return;
        }
        let mut node = leaf + self.bits.len();
        while node > 0 {
            let parent = (node - 1) / 2;
            let came_from_right = node == 2 * parent + 2;
            // Point the bit at the *other* subtree (the one not just used).
            self.bits[parent] = !came_from_right;
            node = parent;
        }
    }
}

/// A set-associative cache with tree-PLRU replacement and per-owner stats.
pub struct PlruCache {
    config: CacheConfig,
    sets: Vec<PlruSet>,
    stats: Vec<OwnerStats>,
    occupancy: Vec<u64>,
}

impl PlruCache {
    /// Create an empty PLRU cache for `num_owners` owners.
    ///
    /// # Panics
    /// Panics on degenerate geometry, matching [`crate::SetAssocCache`].
    pub fn new(config: CacheConfig, num_owners: usize) -> PlruCache {
        assert!(config.ways > 0, "associativity must be positive");
        assert!(config.num_lines() > 0, "cache must hold at least one line");
        assert!(
            config.num_lines().is_multiple_of(config.ways),
            "lines must divide evenly into ways"
        );
        let sets = (0..config.num_sets())
            .map(|_| PlruSet::new(config.ways))
            .collect();
        PlruCache {
            config,
            sets,
            stats: vec![OwnerStats::default(); num_owners],
            occupancy: vec![0; num_owners],
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access `line` on behalf of `owner`.
    pub fn access(&mut self, owner: usize, line: Line) -> AccessOutcome {
        let set_idx = (line % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        self.stats[owner].accesses += 1;

        if let Some(pos) = set.ways.iter().position(|w| w.valid && w.tag == line) {
            set.touch(pos);
            self.stats[owner].hits += 1;
            return AccessOutcome::Hit;
        }

        self.stats[owner].misses += 1;
        // Prefer an invalid way; otherwise the PLRU victim.
        let victim = set
            .ways
            .iter()
            .position(|w| !w.valid)
            .unwrap_or_else(|| set.plru_victim());
        let evicted_owner = if set.ways[victim].valid {
            let old = set.ways[victim].owner;
            self.occupancy[old] -= 1;
            Some(old)
        } else {
            None
        };
        set.ways[victim] = Way {
            tag: line,
            owner,
            valid: true,
        };
        self.occupancy[owner] += 1;
        set.touch(victim);
        AccessOutcome::Miss { evicted_owner }
    }

    /// Statistics for one owner.
    pub fn stats(&self, owner: usize) -> OwnerStats {
        self.stats[owner]
    }

    /// Lines currently held by `owner`.
    pub fn occupancy_lines(&self, owner: usize) -> u64 {
        self.occupancy[owner]
    }

    /// Reset statistics (not contents).
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = OwnerStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_assoc::SetAssocCache;
    use crate::stream::{StackDistanceDist, StreamGen};

    fn cfg(lines: usize, ways: usize) -> CacheConfig {
        CacheConfig {
            capacity_bytes: lines as u64 * 64,
            line_bytes: 64,
            ways,
        }
    }

    #[test]
    fn hit_miss_basics() {
        let mut c = PlruCache::new(cfg(8, 2), 1);
        assert!(c.access(0, 5).is_miss());
        assert_eq!(c.access(0, 5), AccessOutcome::Hit);
        let s = c.stats(0);
        assert_eq!((s.accesses, s.hits, s.misses), (2, 1, 1));
    }

    #[test]
    fn direct_mapped_plru_equals_lru_exactly() {
        // With 1 way there is no policy freedom: the two caches must agree
        // access-for-access.
        let mut plru = PlruCache::new(cfg(16, 1), 1);
        let mut lru = SetAssocCache::new(cfg(16, 1), 1);
        let mut g = StreamGen::new(StackDistanceDist::power_law(64, 0.8, 0.05), 3, 0);
        for _ in 0..20_000 {
            let line = g.next_access();
            assert_eq!(
                plru.access(0, line).is_miss(),
                lru.access(0, line).is_miss()
            );
        }
    }

    #[test]
    fn mru_line_is_never_the_next_victim() {
        // Fill a fully-associative 4-way set, then check the most recently
        // touched line survives the next insertion.
        let mut c = PlruCache::new(cfg(4, 4), 1);
        for l in 0..4u64 {
            c.access(0, l);
        }
        c.access(0, 2); // 2 becomes MRU
        c.access(0, 100); // insert; must not evict 2
        assert_eq!(c.access(0, 2), AccessOutcome::Hit);
    }

    #[test]
    fn plru_miss_rate_tracks_lru_for_powerlaw_streams() {
        // The justification for LRU-based analytics: on the suite's stream
        // class, PLRU's miss rate is within a couple points of LRU's.
        for (span, alpha) in [(1000usize, 0.8), (3000, 0.5), (500, 1.5)] {
            let dist = StackDistanceDist::power_law(span, alpha, 0.01);
            let geometry = cfg(1024, 16);
            let mut plru = PlruCache::new(geometry, 1);
            let mut lru = SetAssocCache::new(geometry, 1);
            let mut g1 = StreamGen::new(dist.clone(), 9, 0);
            let mut g2 = StreamGen::new(dist, 9, 0);
            for i in 0..120_000 {
                if i == 40_000 {
                    plru.reset_stats();
                    lru.reset_stats();
                }
                plru.access(0, g1.next_access());
                lru.access(0, g2.next_access());
            }
            let d = (plru.stats(0).miss_rate() - lru.stats(0).miss_rate()).abs();
            assert!(
                d < 0.03,
                "span {span} alpha {alpha}: PLRU vs LRU differ by {d}"
            );
        }
    }

    #[test]
    fn non_power_of_two_associativity_works() {
        // 12-way (like real Xeon slices) over a 24-line cache.
        let mut c = PlruCache::new(cfg(24, 12), 1);
        for l in 0..200u64 {
            c.access(0, l % 30);
        }
        let s = c.stats(0);
        assert_eq!(s.accesses, 200);
        assert_eq!(s.hits + s.misses, 200);
        assert!(c.occupancy_lines(0) <= 24);
    }

    #[test]
    fn shared_owner_accounting() {
        let mut c = PlruCache::new(cfg(4, 4), 2);
        c.access(0, 1);
        c.access(0, 2);
        c.access(1, 3);
        c.access(1, 4);
        assert_eq!(c.occupancy_lines(0) + c.occupancy_lines(1), 4);
        // Owner 1 streams; occupancy must shift without going negative.
        for l in 10..30u64 {
            c.access(1, l);
        }
        assert_eq!(c.occupancy_lines(0) + c.occupancy_lines(1), 4);
    }
}
