//! Mattson stack-distance analysis.
//!
//! For an LRU cache, the *stack distance* of an access is the number of
//! distinct lines touched since the previous access to the same line. An
//! access hits in a fully-associative LRU cache of `C` lines iff its stack
//! distance is `< C`. Mattson's classic result is that one pass over a
//! trace therefore yields the miss rate at **every** capacity at once —
//! which is how the workload layer derives miss-rate curves for the
//! machine simulator without re-simulating per cache size.

use crate::mrc::MissRateCurve;
use crate::Line;
use std::collections::HashMap;

/// Online stack-distance analyzer.
///
/// Maintains the LRU stack as a vector (most recent at the back). Updates
/// are O(stack depth); fine for the multi-million-access traces used in
/// tests and workload calibration.
pub struct StackAnalyzer {
    /// position of each line in `stack`, for O(1) lookup.
    position: HashMap<Line, usize>,
    /// LRU stack; index 0 is the *oldest*.
    stack: Vec<Line>,
    /// histogram[d] = number of accesses with stack distance exactly d.
    histogram: Vec<u64>,
    /// First-touch (compulsory) misses: infinite stack distance.
    cold: u64,
    total: u64,
}

impl Default for StackAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl StackAnalyzer {
    /// A fresh analyzer.
    pub fn new() -> StackAnalyzer {
        StackAnalyzer {
            position: HashMap::new(),
            stack: Vec::new(),
            histogram: Vec::new(),
            cold: 0,
            total: 0,
        }
    }

    /// Record one access and return its stack distance (`None` = cold).
    pub fn access(&mut self, line: Line) -> Option<usize> {
        self.total += 1;
        match self.position.get(&line).copied() {
            None => {
                self.position.insert(line, self.stack.len());
                self.stack.push(line);
                self.cold += 1;
                None
            }
            Some(pos) => {
                // Distance = number of distinct lines above `pos`.
                let dist = self.stack.len() - 1 - pos;
                if self.histogram.len() <= dist {
                    self.histogram.resize(dist + 1, 0);
                }
                self.histogram[dist] += 1;
                // Move to MRU: shift everything above down one slot.
                self.stack.remove(pos);
                for (i, l) in self.stack.iter().enumerate().skip(pos) {
                    self.position.insert(*l, i);
                }
                self.position.insert(line, self.stack.len());
                self.stack.push(line);
                Some(dist)
            }
        }
    }

    /// Feed a whole trace.
    pub fn access_all(&mut self, trace: impl IntoIterator<Item = Line>) {
        for l in trace {
            self.access(l);
        }
    }

    /// Total accesses observed.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Cold (compulsory) misses observed.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Number of distinct lines touched (the observed footprint).
    pub fn footprint_lines(&self) -> usize {
        self.stack.len()
    }

    /// The raw stack-distance histogram (`histogram()[d]` = accesses at
    /// distance `d`).
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Miss count for a fully-associative LRU cache of `capacity_lines`:
    /// cold misses plus all accesses with distance ≥ capacity.
    pub fn misses_at(&self, capacity_lines: usize) -> u64 {
        let reuse_misses: u64 = self.histogram.iter().skip(capacity_lines).sum();
        self.cold + reuse_misses
    }

    /// Miss *rate* at a capacity; NaN if no accesses were recorded.
    pub fn miss_rate_at(&self, capacity_lines: usize) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        self.misses_at(capacity_lines) as f64 / self.total as f64
    }

    /// Build a [`MissRateCurve`] sampled at every power-of-two capacity up
    /// to the footprint (plus the exact footprint point).
    pub fn miss_rate_curve(&self) -> MissRateCurve {
        let mut capacities: Vec<usize> = Vec::new();
        let mut c = 1usize;
        let fp = self.footprint_lines().max(1);
        while c < fp {
            capacities.push(c);
            c *= 2;
        }
        capacities.push(fp);
        capacities.push(fp * 2);
        let points = capacities
            .into_iter()
            .map(|cap| (cap as u64 * crate::LINE_BYTES, self.miss_rate_at(cap)))
            .collect();
        MissRateCurve::from_points(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_assoc::{CacheConfig, SetAssocCache};

    #[test]
    fn distances_of_simple_trace() {
        // Trace: A B C A -> A's second access has distance 2 (B, C between).
        let mut an = StackAnalyzer::new();
        assert_eq!(an.access(0), None);
        assert_eq!(an.access(1), None);
        assert_eq!(an.access(2), None);
        assert_eq!(an.access(0), Some(2));
        assert_eq!(an.access(0), Some(0));
        assert_eq!(an.cold_misses(), 3);
        assert_eq!(an.footprint_lines(), 3);
    }

    #[test]
    fn misses_match_exact_fully_associative_simulation() {
        // Deterministic pseudo-random trace over 64 lines.
        let trace: Vec<Line> = (0..4000u64)
            .map(|i| {
                let x = i.wrapping_mul(2654435761) ^ (i >> 3);
                x % 64
            })
            .collect();
        let mut an = StackAnalyzer::new();
        an.access_all(trace.iter().copied());

        for capacity in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let mut cache = SetAssocCache::new(CacheConfig::fully_associative(capacity), 1);
            for &l in &trace {
                cache.access(0, l);
            }
            assert_eq!(
                an.misses_at(capacity),
                cache.stats(0).misses,
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn miss_rate_monotone_in_capacity() {
        let trace: Vec<Line> = (0..2000u64).map(|i| (i * i) % 97).collect();
        let mut an = StackAnalyzer::new();
        an.access_all(trace);
        let mut prev = f64::INFINITY;
        for c in 1..120 {
            let mr = an.miss_rate_at(c);
            assert!(mr <= prev + 1e-15, "capacity {c}");
            prev = mr;
        }
    }

    #[test]
    fn capacity_beyond_footprint_leaves_only_cold_misses() {
        let mut an = StackAnalyzer::new();
        an.access_all([1u64, 2, 3, 1, 2, 3, 1, 2, 3]);
        assert_eq!(an.misses_at(100), 3);
        assert!((an.miss_rate_at(100) - 3.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn sequential_scan_has_no_reuse() {
        let mut an = StackAnalyzer::new();
        an.access_all(0..1000u64);
        assert_eq!(an.cold_misses(), 1000);
        assert!(an.histogram().iter().all(|&h| h == 0));
        assert_eq!(an.miss_rate_at(1_000_000), 1.0);
    }

    #[test]
    fn mrc_export_is_monotone_and_bounded() {
        let trace: Vec<Line> = (0..5000u64)
            .map(|i| (i.wrapping_mul(48271)) % 200)
            .collect();
        let mut an = StackAnalyzer::new();
        an.access_all(trace);
        let mrc = an.miss_rate_curve();
        let mut prev = f64::INFINITY;
        for &(_, mr) in mrc.points() {
            assert!((0.0..=1.0).contains(&mr));
            assert!(mr <= prev + 1e-15);
            prev = mr;
        }
    }

    #[test]
    fn empty_analyzer_is_nan() {
        let an = StackAnalyzer::new();
        assert!(an.miss_rate_at(4).is_nan());
        assert_eq!(an.total_accesses(), 0);
    }
}
