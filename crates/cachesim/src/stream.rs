//! Synthetic address streams with controllable temporal locality.
//!
//! Real applications were not available to this reproduction (the paper
//! uses PARSEC and NAS binaries), so workloads synthesize their memory
//! behaviour with the *LRU-stack access model*: each access either touches
//! a brand-new line (probability `p_new`, producing compulsory misses and
//! footprint growth) or re-touches the line at stack distance `d`, with `d`
//! drawn from a truncated power law. The stack-distance distribution of the
//! generated trace then matches the model by construction, which makes the
//! analytic miss-rate curve in [`StackDistanceDist::miss_rate_curve`] exact
//! — a property the crate's integration tests verify against the trace
//! simulators.
//!
//! ## Quantization
//!
//! Working sets in the workload suite reach hundreds of megabytes
//! (millions of cache lines), so the distribution does not store
//! per-distance probabilities. Distances are quantized onto a set of
//! *representative distances*: exact for small spans (≤ 256), log-spaced
//! above that. Both the sampler and the analytic miss-rate evaluation use
//! the same quantized support, so they agree exactly in distribution
//! regardless of span.

use crate::mrc::MissRateCurve;
use crate::Line;
use rand::Rng;
use rand::SeedableRng;

/// Distances below this are always represented exactly.
const EXACT_PREFIX: usize = 256;
/// Log-spaced representatives beyond the exact prefix.
const LOG_REPS: usize = 192;

/// A parametric stack-distance distribution.
///
/// With probability `p_new` an access touches a never-before-seen line;
/// otherwise it reuses the line at stack distance `d ∈ [0, reuse_span)`
/// where `P(d) ∝ (d + 1)^{-alpha}`. Larger `alpha` = tighter locality;
/// larger `reuse_span` = bigger working set.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StackDistanceDist {
    /// Probability of touching a fresh line.
    pub p_new: f64,
    /// Maximum reuse distance (in distinct lines).
    pub reuse_span: usize,
    /// Power-law exponent of the reuse-distance pdf.
    pub alpha: f64,
    /// Representative distances, ascending (quantized support).
    reps: Vec<usize>,
    /// CDF over `reps`, conditioned on the access being a reuse.
    cdf: Vec<f64>,
    /// Shared identity of the immutable `reps`/`cdf` tables: every clone of
    /// this distribution carries the same `Arc`, so downstream memo tables
    /// (digest transitions, derived miss-rate curves) can key on the token
    /// address instead of re-reading hundreds of table entries. Serialized
    /// as null and deserialized to a fresh identity, which only costs a
    /// memo miss. The tables themselves are private and never mutated
    /// after construction, so the identity is trustworthy.
    table_token: TableToken,
}

/// Identity token for a distribution's table set (see
/// [`StackDistanceDist::table_token`]). Carries no data — only the `Arc`
/// allocation's address matters — so it serializes as null and
/// deserializes to a fresh identity.
#[derive(Clone, Debug, Default)]
pub struct TableToken(std::sync::Arc<()>);

#[cfg(feature = "serde")]
impl serde::Serialize for TableToken {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

#[cfg(feature = "serde")]
impl serde::Deserialize for TableToken {
    fn from_value(_: &serde::Value) -> Result<TableToken, serde::DeError> {
        Ok(TableToken::default())
    }
}

impl StackDistanceDist {
    /// Build a truncated power-law distribution.
    ///
    /// # Panics
    /// Panics if `p_new` is outside `[0, 1]`, `reuse_span` is 0, or
    /// `alpha < 0`.
    pub fn power_law(reuse_span: usize, alpha: f64, p_new: f64) -> StackDistanceDist {
        assert!((0.0..=1.0).contains(&p_new), "p_new {p_new} out of [0,1]");
        assert!(reuse_span > 0, "reuse_span must be positive");
        assert!(alpha >= 0.0, "alpha must be non-negative");

        // Representative distances: exact prefix, then log-spaced.
        let mut reps: Vec<usize> = (0..reuse_span.min(EXACT_PREFIX)).collect();
        if reuse_span > EXACT_PREFIX {
            let lo = EXACT_PREFIX as f64;
            let hi = (reuse_span - 1) as f64;
            let ratio = (hi / lo).powf(1.0 / LOG_REPS as f64);
            let mut d = lo;
            for _ in 0..=LOG_REPS {
                let di = d.round() as usize;
                if *reps.last().expect("non-empty prefix") < di {
                    reps.push(di.min(reuse_span - 1));
                }
                d *= ratio;
            }
            if *reps.last().expect("non-empty") != reuse_span - 1 {
                reps.push(reuse_span - 1);
            }
        }

        // Mass of each band [reps[k], reps[k+1]) under the power law.
        // Exact summation for small spans, integral form above the prefix.
        let pdf_sum = |a: usize, b: usize| -> f64 {
            // Σ_{d=a}^{b-1} (d+1)^-alpha
            if b <= a {
                return 0.0;
            }
            if b - a <= 64 {
                (a..b).map(|d| ((d + 1) as f64).powf(-alpha)).sum()
            } else {
                // ∫_{a+0.5}^{b+0.5} (x+0.5... -> use midpoint-corrected integral
                let f = |x: f64| (x + 1.0).powf(-alpha);
                if (alpha - 1.0).abs() < 1e-9 {
                    ((b as f64 + 0.5) / (a as f64 + 0.5)).ln()
                } else {
                    let g = |x: f64| (x + 0.5).powf(1.0 - alpha) / (1.0 - alpha);
                    let _ = f;
                    g(b as f64) - g(a as f64)
                }
            }
        };

        let mut mass: Vec<f64> = Vec::with_capacity(reps.len());
        for k in 0..reps.len() {
            let a = reps[k];
            let b = if k + 1 < reps.len() {
                reps[k + 1]
            } else {
                reuse_span
            };
            mass.push(pdf_sum(a, b));
        }
        let total: f64 = mass.iter().sum();
        let mut cdf = Vec::with_capacity(mass.len());
        let mut acc = 0.0;
        for m in &mass {
            acc += m / total;
            cdf.push(acc);
        }
        // Pin the final value against rounding.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }

        StackDistanceDist {
            p_new,
            reuse_span,
            alpha,
            reps,
            cdf,
            table_token: TableToken::default(),
        }
    }

    /// Uniform reuse over the span (alpha = 0).
    pub fn uniform(reuse_span: usize, p_new: f64) -> StackDistanceDist {
        StackDistanceDist::power_law(reuse_span, 0.0, p_new)
    }

    /// The quantized support (representative distances).
    pub fn representatives(&self) -> &[usize] {
        &self.reps
    }

    /// The shared identity token of the immutable `reps`/`cdf` tables.
    /// Clones of a distribution share one token; independently constructed
    /// distributions never do. Memo tables key on `Arc::as_ptr` of this and
    /// hold a clone to pin the address for the entry's lifetime.
    pub fn table_token(&self) -> &std::sync::Arc<()> {
        &self.table_token.0
    }

    /// The CDF over the representatives.
    pub fn cdf(&self) -> &[f64] {
        &self.cdf
    }

    /// Probability that an access has stack distance ≥ `capacity_lines`
    /// (i.e. misses in a fully-associative LRU cache of that size), which
    /// is the analytic miss rate of the generated stream.
    pub fn miss_rate_at(&self, capacity_lines: usize) -> f64 {
        if capacity_lines == 0 {
            return 1.0;
        }
        // Reuses hit iff their representative distance < capacity.
        let k = self.reps.partition_point(|&r| r < capacity_lines);
        let p_hit = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.p_new + (1.0 - self.p_new) * (1.0 - p_hit)
    }

    /// Sample the analytic MRC at power-of-two capacities covering the span.
    pub fn miss_rate_curve(&self) -> MissRateCurve {
        let mut caps: Vec<usize> = Vec::new();
        let mut c = 1usize;
        while c < self.reuse_span {
            caps.push(c);
            // Finer sampling than powers of two: ×√2 steps.
            c = (c + c / 2).max(c + 1);
        }
        caps.push(self.reuse_span);
        caps.push(self.reuse_span.saturating_mul(2));
        MissRateCurve::from_points(
            caps.into_iter()
                .map(|cap| (cap as u64 * crate::LINE_BYTES, self.miss_rate_at(cap)))
                .collect(),
        )
    }

    /// Inverse-CDF sample of a reuse distance, given `u ∈ [0, 1)`.
    fn sample_distance(&self, u: f64) -> usize {
        let k = self
            .cdf
            .partition_point(|&c| c < u)
            .min(self.reps.len() - 1);
        self.reps[k]
    }
}

/// A deterministic address-stream generator implementing the LRU-stack
/// model for a given [`StackDistanceDist`].
///
/// Intended for validation and cache studies at moderate spans: the stack
/// is materialized (`reuse_span` entries) and updates are O(depth). The
/// machine simulator never generates streams — it uses the analytic MRC.
pub struct StreamGen {
    dist: StackDistanceDist,
    rng: rand::rngs::StdRng,
    /// LRU stack, most recent at the back.
    stack: Vec<Line>,
    next_line: Line,
}

impl StreamGen {
    /// Create a generator; `base_line` offsets the address space so
    /// multiple co-located generators never alias.
    ///
    /// The LRU stack is pre-populated with `reuse_span` lines so sampled
    /// reuse distances are never clamped by a shallow stack — without this,
    /// low-`p_new` streams would spend a long warm-up period with
    /// artificially tight locality.
    pub fn new(dist: StackDistanceDist, seed: u64, base_line: Line) -> StreamGen {
        let span = dist.reuse_span as Line;
        StreamGen {
            dist,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            stack: (base_line..base_line + span).collect(),
            next_line: base_line + span,
        }
    }

    /// Generate the next line address.
    pub fn next_access(&mut self) -> Line {
        let fresh = self.stack.is_empty() || self.rng.gen::<f64>() < self.dist.p_new;
        if fresh {
            let line = self.next_line;
            self.next_line += 1;
            self.stack.push(line);
            line
        } else {
            let u = self.rng.gen::<f64>();
            let d = self.dist.sample_distance(u).min(self.stack.len() - 1);
            let pos = self.stack.len() - 1 - d;
            let line = self.stack.remove(pos);
            self.stack.push(line);
            line
        }
    }

    /// Generate a trace of `n` accesses.
    pub fn take_trace(&mut self, n: usize) -> Vec<Line> {
        (0..n).map(|_| self.next_access()).collect()
    }

    /// Distinct lines touched so far.
    pub fn footprint_lines(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackAnalyzer;

    #[test]
    fn cdf_is_normalized_and_monotone() {
        for span in [100usize, 300, 100_000] {
            let d = StackDistanceDist::power_law(span, 1.2, 0.01);
            assert!((d.cdf().last().unwrap() - 1.0).abs() < 1e-12, "span {span}");
            for w in d.cdf().windows(2) {
                assert!(w[1] >= w[0] - 1e-15);
            }
            assert_eq!(d.representatives().len(), d.cdf().len());
        }
    }

    #[test]
    fn small_spans_are_exact() {
        let d = StackDistanceDist::power_law(100, 1.0, 0.0);
        // Representatives are every distance 0..100.
        assert_eq!(d.representatives().len(), 100);
        // P(d=0) = 1/H where H = Σ 1/(k+1).
        let h: f64 = (0..100).map(|k| 1.0 / (k + 1) as f64).sum();
        assert!((d.cdf()[0] - 1.0 / h).abs() < 1e-12);
    }

    #[test]
    fn large_span_support_is_compact() {
        let d = StackDistanceDist::power_law(4_000_000, 0.5, 0.01);
        assert!(
            d.representatives().len() < 600,
            "{}",
            d.representatives().len()
        );
        assert_eq!(*d.representatives().last().unwrap(), 3_999_999);
    }

    #[test]
    fn analytic_miss_rate_endpoints() {
        let d = StackDistanceDist::power_law(64, 1.0, 0.05);
        assert_eq!(d.miss_rate_at(0), 1.0);
        assert!((d.miss_rate_at(64) - 0.05).abs() < 1e-12);
        assert!((d.miss_rate_at(1000) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn higher_alpha_means_lower_miss_rate_at_small_caches() {
        let loose = StackDistanceDist::power_law(256, 0.2, 0.01);
        let tight = StackDistanceDist::power_law(256, 2.0, 0.01);
        assert!(tight.miss_rate_at(8) < loose.miss_rate_at(8));
    }

    #[test]
    fn generated_trace_matches_analytic_miss_rate() {
        // The core validation: simulate the generated stream through the
        // exact Mattson analyzer and compare with the analytic prediction.
        let dist = StackDistanceDist::power_law(128, 1.0, 0.002);
        let mut g = StreamGen::new(dist.clone(), 7, 0);
        let trace = g.take_trace(200_000);
        let mut an = StackAnalyzer::new();
        an.access_all(trace);
        for cap in [4usize, 16, 64, 128] {
            let measured = an.miss_rate_at(cap);
            let analytic = dist.miss_rate_at(cap);
            assert!(
                (measured - analytic).abs() < 0.01,
                "cap {cap}: measured {measured} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn quantized_trace_matches_analytic_too() {
        // Same validation beyond the exact prefix (span 2000 > 256).
        let dist = StackDistanceDist::power_law(2000, 0.8, 0.005);
        let mut g = StreamGen::new(dist.clone(), 13, 0);
        let trace = g.take_trace(150_000);
        let mut an = StackAnalyzer::new();
        an.access_all(trace);
        for cap in [32usize, 300, 1000, 2000] {
            let measured = an.miss_rate_at(cap);
            let analytic = dist.miss_rate_at(cap);
            assert!(
                (measured - analytic).abs() < 0.015,
                "cap {cap}: measured {measured} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let dist = StackDistanceDist::uniform(32, 0.1);
        let t1 = StreamGen::new(dist.clone(), 5, 0).take_trace(500);
        let t2 = StreamGen::new(dist, 5, 0).take_trace(500);
        assert_eq!(t1, t2);
    }

    #[test]
    fn base_line_separates_address_spaces() {
        let dist = StackDistanceDist::uniform(16, 0.5);
        let ta = StreamGen::new(dist.clone(), 1, 0).take_trace(100);
        let tb = StreamGen::new(dist, 1, 1 << 40).take_trace(100);
        let max_a = ta.iter().max().unwrap();
        let min_b = tb.iter().min().unwrap();
        assert!(max_a < min_b);
    }

    #[test]
    fn footprint_grows_with_p_new() {
        let sticky = StreamGen::new(StackDistanceDist::uniform(64, 0.001), 3, 0).take_trace(10_000);
        let churny = StreamGen::new(StackDistanceDist::uniform(64, 0.2), 3, 0).take_trace(10_000);
        let distinct = |t: &[Line]| {
            let mut v = t.to_vec();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert!(distinct(&churny) > distinct(&sticky) * 5);
    }

    #[test]
    #[should_panic(expected = "p_new")]
    fn rejects_bad_p_new() {
        StackDistanceDist::power_law(10, 1.0, 1.5);
    }

    #[test]
    fn mrc_export_spans_the_reuse_range() {
        let d = StackDistanceDist::power_law(1000, 0.8, 0.01);
        let mrc = d.miss_rate_curve();
        assert!(mrc.is_monotone());
        assert!((mrc.miss_rate(u64::MAX) - 0.01).abs() < 1e-9);
        assert!(mrc.miss_rate(crate::LINE_BYTES) > 0.5);
    }

    #[test]
    fn mrc_of_huge_span_is_cheap_and_sane() {
        let d = StackDistanceDist::power_law(8_000_000, 0.4, 0.02);
        let mrc = d.miss_rate_curve();
        assert!(mrc.is_monotone());
        // At 12 MiB (196608 lines) the miss rate should be strictly between
        // the extremes.
        let mr = mrc.miss_rate(12 << 20);
        assert!(mr > 0.03 && mr < 0.95, "mr {mr}");
    }
}
