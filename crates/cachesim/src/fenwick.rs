//! O(log n) stack-distance analysis (Bennett–Kruskal algorithm).
//!
//! The naive LRU-stack analyzer in [`crate::stack`] pays O(depth) per
//! access, which is fine for validation traces but quadratic-ish on
//! loosely-local streams. This module implements the classic
//! Bennett–Kruskal formulation: keep each line's *time of last access*,
//! mark those times in a Fenwick (binary-indexed) tree, and read the stack
//! distance as the number of marked slots after the line's previous
//! access — an O(log n) query + two O(log n) updates per access.
//!
//! Equivalence with the naive analyzer is property-tested; a Criterion
//! bench contrasts their scaling.

use crate::Line;
use std::collections::HashMap;

/// Fenwick tree over access timestamps, with mark/unmark semantics.
///
/// Grows by capacity doubling. A plain Fenwick array cannot be extended by
/// zero-padding — the new high nodes must cover sums of existing positions
/// — so growth rebuilds the tree from a live-position bitmap (amortized
/// O(log n) per operation overall).
struct Fenwick {
    tree: Vec<u32>,
    /// Bitmap of currently marked positions (1 bit per timestamp).
    live: Vec<u64>,
}

impl Fenwick {
    fn new() -> Fenwick {
        Fenwick {
            tree: Vec::new(),
            live: Vec::new(),
        }
    }

    #[inline]
    fn is_live(&self, i: usize) -> bool {
        self.live
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    fn grow_for(&mut self, i: usize) {
        if i < self.tree.len() {
            return;
        }
        let new_len = (i + 1).next_power_of_two().max(64);
        self.tree = vec![0; new_len];
        self.live.resize(new_len.div_ceil(64), 0);
        // Rebuild: re-apply every live mark into the fresh tree.
        for word_idx in 0..self.live.len() {
            let mut w = self.live[word_idx];
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                self.raw_add(word_idx * 64 + bit);
            }
        }
    }

    /// Internal +1 at position `i` without touching the bitmap.
    fn raw_add(&mut self, i: usize) {
        let mut idx = i + 1;
        while idx <= self.tree.len() {
            self.tree[idx - 1] += 1;
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Internal −1 at position `i`.
    fn raw_sub(&mut self, i: usize) {
        let mut idx = i + 1;
        while idx <= self.tree.len() {
            self.tree[idx - 1] -= 1;
            idx += idx & idx.wrapping_neg();
        }
    }

    /// Mark position `i` (must not already be marked).
    fn mark(&mut self, i: usize) {
        self.grow_for(i);
        debug_assert!(!self.is_live(i), "position {i} already marked");
        self.live[i / 64] |= 1u64 << (i % 64);
        self.raw_add(i);
    }

    /// Unmark position `i` (must be marked).
    fn unmark(&mut self, i: usize) {
        debug_assert!(self.is_live(i), "position {i} not marked");
        self.live[i / 64] &= !(1u64 << (i % 64));
        self.raw_sub(i);
    }

    /// Count of marked positions in `0..=i`.
    fn prefix(&self, i: usize) -> u32 {
        let mut idx = (i + 1).min(self.tree.len());
        let mut sum = 0u32;
        while idx > 0 {
            sum += self.tree[idx - 1];
            idx -= idx & idx.wrapping_neg();
        }
        sum
    }

    /// Count of marked positions in `lo..hi` (half-open). Positions at or
    /// beyond the tree's length are unmarked by definition.
    fn range(&self, lo: usize, hi: usize) -> u32 {
        if hi <= lo {
            return 0;
        }
        let upper = self.prefix(hi - 1);
        if lo == 0 {
            upper
        } else {
            upper - self.prefix(lo - 1)
        }
    }
}

/// O(log n)-per-access stack-distance analyzer, drop-in compatible with
/// the measurement surface of [`crate::StackAnalyzer`].
pub struct FastStackAnalyzer {
    last_access: HashMap<Line, usize>,
    marks: Fenwick,
    clock: usize,
    histogram: Vec<u64>,
    cold: u64,
    total: u64,
}

impl Default for FastStackAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl FastStackAnalyzer {
    /// A fresh analyzer.
    pub fn new() -> FastStackAnalyzer {
        FastStackAnalyzer {
            last_access: HashMap::new(),
            marks: Fenwick::new(),
            clock: 0,
            histogram: Vec::new(),
            cold: 0,
            total: 0,
        }
    }

    /// Record one access and return its stack distance (`None` = cold).
    pub fn access(&mut self, line: Line) -> Option<usize> {
        self.total += 1;
        let t = self.clock;
        self.clock += 1;
        match self.last_access.insert(line, t) {
            None => {
                self.marks.mark(t);
                self.cold += 1;
                None
            }
            Some(prev) => {
                // Distinct lines touched strictly after `prev`: each has
                // exactly one mark (its most recent access time).
                let dist = self.marks.range(prev + 1, t) as usize;
                self.marks.unmark(prev);
                self.marks.mark(t);
                if self.histogram.len() <= dist {
                    self.histogram.resize(dist + 1, 0);
                }
                self.histogram[dist] += 1;
                Some(dist)
            }
        }
    }

    /// Feed a whole trace.
    pub fn access_all(&mut self, trace: impl IntoIterator<Item = Line>) {
        for l in trace {
            self.access(l);
        }
    }

    /// Total accesses observed.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Cold (compulsory) misses observed.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Distinct lines touched.
    pub fn footprint_lines(&self) -> usize {
        self.last_access.len()
    }

    /// The stack-distance histogram.
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Miss count at a fully-associative LRU capacity.
    pub fn misses_at(&self, capacity_lines: usize) -> u64 {
        let reuse: u64 = self.histogram.iter().skip(capacity_lines).sum();
        self.cold + reuse
    }

    /// Miss rate at a capacity; NaN with no accesses.
    pub fn miss_rate_at(&self, capacity_lines: usize) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        self.misses_at(capacity_lines) as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackAnalyzer;
    use crate::stream::{StackDistanceDist, StreamGen};

    #[test]
    fn simple_trace_distances() {
        let mut an = FastStackAnalyzer::new();
        assert_eq!(an.access(10), None);
        assert_eq!(an.access(20), None);
        assert_eq!(an.access(30), None);
        assert_eq!(an.access(10), Some(2));
        assert_eq!(an.access(10), Some(0));
        assert_eq!(an.access(20), Some(2));
        assert_eq!(an.cold_misses(), 3);
        assert_eq!(an.footprint_lines(), 3);
    }

    #[test]
    fn matches_naive_analyzer_on_generated_stream() {
        let dist = StackDistanceDist::power_law(500, 0.7, 0.02);
        let trace = StreamGen::new(dist, 17, 0).take_trace(50_000);
        let mut fast = FastStackAnalyzer::new();
        let mut naive = StackAnalyzer::new();
        for &l in &trace {
            let a = fast.access(l);
            let b = naive.access(l);
            assert_eq!(a, b);
        }
        assert_eq!(fast.histogram(), naive.histogram());
        assert_eq!(fast.cold_misses(), naive.cold_misses());
        for cap in [1usize, 7, 64, 300, 1000] {
            assert_eq!(fast.misses_at(cap), naive.misses_at(cap));
        }
    }

    #[test]
    fn sequential_scan_all_cold() {
        let mut an = FastStackAnalyzer::new();
        an.access_all(0..5000u64);
        assert_eq!(an.cold_misses(), 5000);
        assert_eq!(an.miss_rate_at(1 << 20), 1.0);
    }

    #[test]
    fn cyclic_reuse_has_constant_distance() {
        let mut an = FastStackAnalyzer::new();
        for _ in 0..10 {
            for l in 0..8u64 {
                an.access(l);
            }
        }
        // After warmup every access has distance 7.
        assert_eq!(an.histogram()[7], 72);
        assert_eq!(an.misses_at(8), 8);
        assert_eq!(an.misses_at(7), 80);
    }

    #[test]
    fn empty_is_nan() {
        assert!(FastStackAnalyzer::new().miss_rate_at(1).is_nan());
    }
}
