//! # coloc-cachesim
//!
//! Last-level cache simulation substrate for the `coloc` workspace.
//!
//! The IPPS'15 methodology characterizes applications by their last-level
//! cache behaviour (misses, accesses, memory intensity — paper §IV-A3) and
//! attributes co-location slowdown to contention for the shared LLC and
//! DRAM. This crate provides the cache side of that story:
//!
//! * [`set_assoc::SetAssocCache`] — an exact set-associative LRU cache with
//!   per-owner statistics, usable both private and shared.
//! * [`stream`] — deterministic synthetic address-stream generators with
//!   controllable temporal locality (the LRU-stack access model).
//! * [`stack::StackAnalyzer`] — Mattson's stack algorithm: one pass over a
//!   trace yields the stack-distance histogram and hence the miss rate at
//!   *every* cache capacity simultaneously.
//! * [`mrc::MissRateCurve`] — miss rate as a function of allocated capacity,
//!   built from a stack histogram, an analytic distribution, or points.
//! * [`share`] — a fixed-point shared-cache occupancy model: given each
//!   co-runner's access rate and miss-rate curve, compute the equilibrium
//!   capacity split and resulting per-application miss rates.
//!
//! The machine simulator (`coloc-machine`) uses the analytic path
//! (distribution → MRC → occupancy model) for speed; the exact simulators
//! here exist to *validate* that path (see the crate's integration tests)
//! and for standalone cache studies.

pub mod fenwick;
pub mod mrc;
pub mod plru;
pub mod set_assoc;
pub mod share;
pub mod stack;
pub mod stream;

pub use fenwick::FastStackAnalyzer;
pub use mrc::MissRateCurve;
pub use plru::PlruCache;
pub use set_assoc::{AccessOutcome, CacheConfig, OwnerStats, SetAssocCache};
pub use share::{
    occupancy_step, occupancy_step_rates, shared_occupancy, SharedApp, SharedCacheSolution,
};
pub use stack::StackAnalyzer;
pub use stream::{StackDistanceDist, StreamGen};

/// A cache-line-aligned memory address (the line index, not the byte
/// address). All simulators in this crate operate on line numbers; callers
/// divide byte addresses by the line size once at the boundary.
pub type Line = u64;

/// Standard cache line size used across the workspace, in bytes.
pub const LINE_BYTES: u64 = 64;
