//! Exact set-associative LRU cache with per-owner accounting.
//!
//! This is the reference simulator the analytic models are validated
//! against. It supports multiple *owners* (co-located applications) sharing
//! one cache, tracking per-owner hits, misses and occupancy — the exact
//! quantities the shared-LLC occupancy model in [`crate::share`]
//! approximates.

use crate::Line;

/// Geometry of a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set). Use [`CacheConfig::fully_associative`]
    /// for a single-set cache.
    pub ways: usize,
}

impl CacheConfig {
    /// A fully-associative cache of `lines` lines.
    pub fn fully_associative(lines: usize) -> CacheConfig {
        CacheConfig {
            capacity_bytes: lines as u64 * crate::LINE_BYTES,
            line_bytes: crate::LINE_BYTES,
            ways: lines.max(1),
        }
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> usize {
        (self.capacity_bytes / self.line_bytes) as usize
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        (self.num_lines() / self.ways).max(1)
    }
}

/// Result of a single access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; if a valid line was displaced, `evicted_owner`
    /// names whose it was.
    Miss { evicted_owner: Option<usize> },
}

impl AccessOutcome {
    /// True for [`AccessOutcome::Miss`].
    pub fn is_miss(&self) -> bool {
        matches!(self, AccessOutcome::Miss { .. })
    }
}

/// Per-owner access statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OwnerStats {
    /// Total accesses issued by this owner.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl OwnerStats {
    /// Miss ratio; 0 when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tag: Line,
    owner: usize,
    /// Logical timestamp of last touch; larger = more recent.
    last_used: u64,
}

/// A set-associative LRU cache shared by multiple owners.
///
/// Owners are dense small integers (application slots); `new` takes the
/// owner count so occupancy is tracked in a flat vector.
pub struct SetAssocCache {
    config: CacheConfig,
    sets: Vec<Vec<Entry>>,
    stats: Vec<OwnerStats>,
    occupancy: Vec<u64>,
    clock: u64,
}

impl SetAssocCache {
    /// Create an empty cache for `num_owners` co-located owners.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero lines or ways).
    pub fn new(config: CacheConfig, num_owners: usize) -> SetAssocCache {
        assert!(config.ways > 0, "associativity must be positive");
        assert!(config.num_lines() > 0, "cache must hold at least one line");
        assert!(
            config.num_lines().is_multiple_of(config.ways),
            "lines ({}) must divide evenly into ways ({})",
            config.num_lines(),
            config.ways
        );
        let sets = vec![Vec::with_capacity(config.ways); config.num_sets()];
        SetAssocCache {
            config,
            sets,
            stats: vec![OwnerStats::default(); num_owners],
            occupancy: vec![0; num_owners],
            clock: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access `line` on behalf of `owner`, updating LRU state and stats.
    pub fn access(&mut self, owner: usize, line: Line) -> AccessOutcome {
        self.clock += 1;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let ways = self.config.ways;
        let set = &mut self.sets[set_idx];
        self.stats[owner].accesses += 1;

        if let Some(e) = set.iter_mut().find(|e| e.tag == line) {
            e.last_used = self.clock;
            self.stats[owner].hits += 1;
            return AccessOutcome::Hit;
        }

        self.stats[owner].misses += 1;
        let evicted_owner = if set.len() < ways {
            set.push(Entry {
                tag: line,
                owner,
                last_used: self.clock,
            });
            self.occupancy[owner] += 1;
            None
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|e| e.last_used)
                .expect("non-empty full set");
            let old_owner = victim.owner;
            self.occupancy[old_owner] -= 1;
            self.occupancy[owner] += 1;
            *victim = Entry {
                tag: line,
                owner,
                last_used: self.clock,
            };
            Some(old_owner)
        };
        AccessOutcome::Miss { evicted_owner }
    }

    /// Statistics for one owner.
    pub fn stats(&self, owner: usize) -> OwnerStats {
        self.stats[owner]
    }

    /// Lines currently held by `owner`.
    pub fn occupancy_lines(&self, owner: usize) -> u64 {
        self.occupancy[owner]
    }

    /// Fraction of total capacity currently held by `owner`.
    pub fn occupancy_fraction(&self, owner: usize) -> f64 {
        self.occupancy[owner] as f64 / self.config.num_lines() as f64
    }

    /// Total valid lines across all owners.
    pub fn total_occupied(&self) -> u64 {
        self.occupancy.iter().sum()
    }

    /// Reset statistics (not contents) — used to discard warm-up effects.
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = OwnerStats::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(lines: usize, ways: usize, owners: usize) -> SetAssocCache {
        SetAssocCache::new(
            CacheConfig {
                capacity_bytes: lines as u64 * 64,
                line_bytes: 64,
                ways,
            },
            owners,
        )
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny(8, 2, 1);
        assert!(c.access(0, 100).is_miss());
        assert_eq!(c.access(0, 100), AccessOutcome::Hit);
        assert_eq!(
            c.stats(0),
            OwnerStats {
                accesses: 2,
                hits: 1,
                misses: 1
            }
        );
    }

    #[test]
    fn lru_evicts_least_recent_within_set() {
        // Fully associative, 2 lines.
        let mut c = tiny(2, 2, 1);
        c.access(0, 1);
        c.access(0, 2);
        c.access(0, 1); // 1 is now MRU, 2 is LRU
        c.access(0, 3); // evicts 2
        assert_eq!(c.access(0, 1), AccessOutcome::Hit);
        assert!(c.access(0, 2).is_miss());
    }

    #[test]
    fn set_conflicts_cause_misses_despite_spare_capacity() {
        // 4 lines, direct-mapped (1 way, 4 sets). Lines 0 and 4 conflict.
        let mut c = tiny(4, 1, 1);
        c.access(0, 0);
        c.access(0, 4);
        assert!(c.access(0, 0).is_miss(), "conflict miss expected");
        // Lines 0 and 4 both map to set 0, so only one line is ever resident.
        assert_eq!(c.total_occupied(), 1);
    }

    #[test]
    fn shared_cache_tracks_owner_occupancy() {
        let mut c = tiny(4, 4, 2);
        c.access(0, 1);
        c.access(0, 2);
        c.access(1, 3);
        c.access(1, 4);
        assert_eq!(c.occupancy_lines(0), 2);
        assert_eq!(c.occupancy_lines(1), 2);
        assert!((c.occupancy_fraction(0) - 0.5).abs() < 1e-12);
        // Owner 1 streams through, stealing owner 0's lines.
        for line in 10..14 {
            c.access(1, line);
        }
        assert_eq!(c.occupancy_lines(0) + c.occupancy_lines(1), 4);
        assert!(c.occupancy_lines(1) > c.occupancy_lines(0));
    }

    #[test]
    fn eviction_reports_previous_owner() {
        let mut c = tiny(1, 1, 2);
        c.access(0, 7);
        match c.access(1, 8) {
            AccessOutcome::Miss { evicted_owner } => assert_eq!(evicted_owner, Some(0)),
            other => panic!("expected miss, got {other:?}"),
        }
    }

    #[test]
    fn hot_working_set_within_capacity_never_misses_after_warmup() {
        let mut c = tiny(64, 8, 1);
        let ws: Vec<Line> = (0..32).collect();
        for &l in &ws {
            c.access(0, l);
        }
        c.reset_stats();
        for _ in 0..10 {
            for &l in &ws {
                assert_eq!(c.access(0, l), AccessOutcome::Hit);
            }
        }
        assert_eq!(c.stats(0).miss_rate(), 0.0);
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes_under_lru() {
        // Classic LRU pathology: cyclic access to capacity+1 lines in a
        // fully-associative cache misses every time.
        let mut c = tiny(8, 8, 1);
        for _ in 0..5 {
            for l in 0..9u64 {
                c.access(0, l);
            }
        }
        let s = c.stats(0);
        assert_eq!(s.hits, 0, "{s:?}");
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = tiny(4, 4, 1);
        c.access(0, 1);
        c.reset_stats();
        assert_eq!(c.stats(0).accesses, 0);
        assert_eq!(c.access(0, 1), AccessOutcome::Hit);
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn zero_ways_panics() {
        tiny(4, 0, 1);
    }

    #[test]
    fn geometry_accessors() {
        let cfg = CacheConfig {
            capacity_bytes: 12 << 20,
            line_bytes: 64,
            ways: 16,
        };
        assert_eq!(cfg.num_lines(), 196_608);
        assert_eq!(cfg.num_sets(), 12_288);
        let fa = CacheConfig::fully_associative(128);
        assert_eq!(fa.num_sets(), 1);
    }
}
