//! Miss-rate curves: miss rate as a function of allocated cache capacity.
//!
//! A miss-rate curve (MRC) is the bridge between a workload's intrinsic
//! locality and its behaviour in any particular (share of a) cache. The
//! machine simulator evaluates each co-located application's MRC at its
//! equilibrium share of the LLC to obtain its effective miss rate under
//! contention.

/// A piecewise-linear miss-rate curve over capacity in bytes.
///
/// Points are sorted by capacity; evaluation interpolates linearly in
/// *log-capacity* (locality effects are multiplicative in size) and clamps
/// to the end values outside the sampled range.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MissRateCurve {
    /// `(capacity_bytes, miss_rate)`, sorted ascending by capacity.
    points: Vec<(u64, f64)>,
}

impl MissRateCurve {
    /// Build from unsorted points. Duplicate capacities keep the last value.
    ///
    /// # Panics
    /// Panics if `points` is empty or any miss rate is outside `[0, 1]`.
    pub fn from_points(mut points: Vec<(u64, f64)>) -> MissRateCurve {
        assert!(!points.is_empty(), "MRC needs at least one point");
        for &(c, m) in &points {
            assert!(
                (0.0..=1.0).contains(&m) && m.is_finite(),
                "miss rate {m} at capacity {c} out of [0,1]"
            );
        }
        points.sort_by_key(|&(c, _)| c);
        points.dedup_by_key(|&mut (c, _)| c);
        MissRateCurve { points }
    }

    /// A constant curve (capacity-insensitive workload, e.g. a pure-compute
    /// kernel whose few misses are all compulsory).
    pub fn constant(miss_rate: f64) -> MissRateCurve {
        MissRateCurve::from_points(vec![(1, miss_rate)])
    }

    /// The sampled points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Miss rate at an allocated capacity of `bytes`, by log-linear
    /// interpolation with clamping.
    pub fn miss_rate(&self, bytes: u64) -> f64 {
        let pts = &self.points;
        if bytes <= pts[0].0 {
            return pts[0].1;
        }
        if bytes >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the bracketing segment.
        let idx = pts.partition_point(|&(c, _)| c <= bytes);
        let (c0, m0) = pts[idx - 1];
        let (c1, m1) = pts[idx];
        if c0 == c1 {
            return m1;
        }
        let t = ((bytes as f64).ln() - (c0 as f64).ln()) / ((c1 as f64).ln() - (c0 as f64).ln());
        m0 + t * (m1 - m0)
    }

    /// Like [`MissRateCurve::miss_rate`], seeded with the bracketing
    /// segment a previous probe found.
    ///
    /// `hint` is the upper index of the last bracketing segment (what
    /// `partition_point` returned last time). When the query still falls
    /// in that segment — the common case for a damped fixed point, where
    /// successive occupancies move by ever-smaller steps — the binary
    /// search is skipped entirely. A stale or out-of-range hint falls
    /// back to the full search, so the result is *always* bit-identical
    /// to [`MissRateCurve::miss_rate`]: the hint validity test
    /// (`points[hint-1].0 <= bytes < points[hint].0`) is exactly the
    /// `partition_point` postcondition on a strictly-increasing capacity
    /// axis (duplicates are deduped at construction), hence both paths
    /// select the same segment and evaluate the same interpolation.
    /// `hint` is updated to the segment actually used.
    pub fn miss_rate_hinted(&self, bytes: u64, hint: &mut usize) -> f64 {
        let pts = &self.points;
        if bytes <= pts[0].0 {
            return pts[0].1;
        }
        if bytes >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        let mut idx = *hint;
        if !(idx >= 1 && idx < pts.len() && pts[idx - 1].0 <= bytes && bytes < pts[idx].0) {
            idx = pts.partition_point(|&(c, _)| c <= bytes);
        }
        *hint = idx;
        let (c0, m0) = pts[idx - 1];
        let (c1, m1) = pts[idx];
        let t = ((bytes as f64).ln() - (c0 as f64).ln()) / ((c1 as f64).ln() - (c0 as f64).ln());
        m0 + t * (m1 - m0)
    }

    /// The smallest sampled capacity at which the miss rate first drops to
    /// within `epsilon` of its minimum — a practical "working set size".
    pub fn working_set_bytes(&self, epsilon: f64) -> u64 {
        let min_mr = self
            .points
            .iter()
            .map(|&(_, m)| m)
            .fold(f64::INFINITY, f64::min);
        self.points
            .iter()
            .find(|&&(_, m)| m <= min_mr + epsilon)
            .map(|&(c, _)| c)
            .unwrap_or(self.points[self.points.len() - 1].0)
    }

    /// True if the curve never increases with capacity (LRU stack property;
    /// synthetic curves should satisfy this).
    pub fn is_monotone(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 <= w[0].1 + 1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MissRateCurve {
        MissRateCurve::from_points(vec![
            (1 << 10, 0.80),
            (1 << 14, 0.40),
            (1 << 20, 0.05),
            (1 << 24, 0.01),
        ])
    }

    #[test]
    fn clamps_outside_range() {
        let mrc = sample();
        assert_eq!(mrc.miss_rate(1), 0.80);
        assert_eq!(mrc.miss_rate(u64::MAX), 0.01);
    }

    #[test]
    fn interpolates_at_sample_points_exactly() {
        let mrc = sample();
        assert!((mrc.miss_rate(1 << 14) - 0.40).abs() < 1e-12);
        assert!((mrc.miss_rate(1 << 20) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn log_interpolation_midpoint() {
        let mrc = MissRateCurve::from_points(vec![(1 << 10, 0.8), (1 << 14, 0.4)]);
        // Log-midpoint of 2^10 and 2^14 is 2^12.
        assert!((mrc.miss_rate(1 << 12) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn interpolation_is_monotone_between_points() {
        let mrc = sample();
        let mut prev = f64::INFINITY;
        for exp in 8..26 {
            let mr = mrc.miss_rate(1u64 << exp);
            assert!(mr <= prev + 1e-12, "at 2^{exp}");
            prev = mr;
        }
        assert!(mrc.is_monotone());
    }

    #[test]
    fn constant_curve() {
        let mrc = MissRateCurve::constant(0.002);
        assert_eq!(mrc.miss_rate(0), 0.002);
        assert_eq!(mrc.miss_rate(1 << 30), 0.002);
    }

    #[test]
    fn working_set_detection() {
        let mrc = sample();
        // Within 0.05 of min (0.01) first happens at 1 MiB (0.05).
        assert_eq!(mrc.working_set_bytes(0.05), 1 << 20);
        // Exact min only at 16 MiB.
        assert_eq!(mrc.working_set_bytes(0.0), 1 << 24);
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn rejects_bad_miss_rate() {
        MissRateCurve::from_points(vec![(1, 1.5)]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn rejects_empty() {
        MissRateCurve::from_points(vec![]);
    }

    #[test]
    fn duplicate_capacities_deduped() {
        let mrc = MissRateCurve::from_points(vec![(100, 0.5), (100, 0.4), (200, 0.2)]);
        assert_eq!(mrc.points().len(), 2);
    }
}
