//! Minimal `--flag value` argument parsing.

use std::collections::BTreeMap;

/// Parsed `--key value` pairs plus repeated keys and boolean flags.
#[derive(Debug, Default)]
pub struct ArgMap {
    values: BTreeMap<String, Vec<String>>,
    flags: Vec<String>,
}

impl ArgMap {
    /// Parse an argument list. `--key value` adds a value (repeatable);
    /// `--key` followed by another `--` token (or nothing) is a boolean
    /// flag.
    pub fn parse(argv: &[String]) -> Result<ArgMap, String> {
        let mut out = ArgMap::default();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            let Some(key) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{tok}`"));
            };
            if key.is_empty() {
                return Err("empty flag `--`".into());
            }
            let has_value = argv.get(i + 1).is_some_and(|v| !v.starts_with("--"));
            if has_value {
                out.values
                    .entry(key.to_string())
                    .or_default()
                    .push(argv[i + 1].clone());
                i += 2;
            } else {
                out.flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(out)
    }

    /// Single value for a key, if given exactly once.
    pub fn get(&self, key: &str) -> Option<&str> {
        match self.values.get(key).map(Vec::as_slice) {
            Some([v]) => Some(v),
            _ => None,
        }
    }

    /// Required single value.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required option --{key} <value>"))
    }

    /// All values for a repeatable key.
    pub fn get_all(&self, key: &str) -> &[String] {
        self.values.get(key).map_or(&[], Vec::as_slice)
    }

    /// Whether a boolean flag was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Value parsed as a type, with a default when absent.
    pub fn get_parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|e| format!("invalid value for --{key}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_flags_and_repeats() {
        let a = ArgMap::parse(&argv(&[
            "--machine",
            "e5649",
            "--co",
            "cg:2",
            "--co",
            "ep:1",
            "--paper-plan",
        ]))
        .unwrap();
        assert_eq!(a.get("machine"), Some("e5649"));
        assert_eq!(a.get_all("co"), &["cg:2".to_string(), "ep:1".to_string()]);
        assert!(a.has_flag("paper-plan"));
        assert!(!a.has_flag("machine"));
        // Repeated key is not a single value.
        assert_eq!(a.get("co"), None);
    }

    #[test]
    fn rejects_positionals() {
        assert!(ArgMap::parse(&argv(&["stray"])).is_err());
        assert!(ArgMap::parse(&argv(&["--"])).is_err());
    }

    #[test]
    fn parsed_defaults() {
        let a = ArgMap::parse(&argv(&["--pstate", "3"])).unwrap();
        assert_eq!(a.get_parsed_or("pstate", 0usize).unwrap(), 3);
        assert_eq!(a.get_parsed_or("seed", 42u64).unwrap(), 42);
        assert!(a.get_parsed_or::<usize>("pstate", 0).is_ok());
        let bad = ArgMap::parse(&argv(&["--pstate", "xyz"])).unwrap();
        assert!(bad.get_parsed_or::<usize>("pstate", 0).is_err());
    }

    #[test]
    fn require_reports_missing() {
        let a = ArgMap::parse(&argv(&[])).unwrap();
        assert!(a.require("model").unwrap_err().contains("--model"));
    }
}
