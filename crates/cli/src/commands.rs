//! Command implementations.

use crate::args::ArgMap;
use coloc_machine::{FaultPlan, MachineSpec, StageId, StageProfile};
use coloc_model::lab::CheckpointConfig;
use coloc_model::persist;
use coloc_model::scheduler::{Policy, Scheduler};
use coloc_model::{
    ColocError, CrossMatrix, FeatureSet, Lab, ModelKind, ModelRegistry, Scenario, TrainPolicy,
    TrainRequest, TrainingPlan,
};
use coloc_serve::proto::QueryMode;
use coloc_serve::server::{BindAddr, ServeConfig, Server};
use coloc_serve::{QueryClient, Reply, RetryPolicy};

type CmdResult = Result<(), String>;

/// A command failure carrying the process exit code. Service errors map
/// to the sysexits-style codes scripts key on: `overloaded` → 75
/// (EX_TEMPFAIL, retry later), `timeout` → 124 (the `timeout(1)`
/// convention), `shutting_down` → 69 (EX_UNAVAILABLE); everything else
/// is the generic 1.
#[derive(Debug)]
pub struct Failure {
    /// Process exit code.
    pub code: u8,
    /// Message printed to stderr.
    pub message: String,
}

impl From<String> for Failure {
    fn from(message: String) -> Failure {
        Failure { code: 1, message }
    }
}

/// The exit code a [`ColocError`] terminates the process with.
pub fn exit_code_for(err: &ColocError) -> u8 {
    match err {
        ColocError::Overloaded { .. } => 75,
        ColocError::Timeout { .. } => 124,
        ColocError::ShuttingDown => 69,
        _ => 1,
    }
}

fn service_failure(err: ColocError) -> Failure {
    Failure {
        code: exit_code_for(&err),
        message: err.to_string(),
    }
}

fn machine_by_key(key: &str) -> Result<MachineSpec, String> {
    match key {
        "e5649" | "6core" => Ok(coloc_machine::presets::xeon_e5649()),
        "e5_2697v2" | "e5-2697v2" | "12core" => Ok(coloc_machine::presets::xeon_e5_2697v2()),
        "e5_2630v3" | "e5-2630v3" | "8core" => Ok(coloc_machine::presets::xeon_e5_2630v3()),
        "platinum_8153" | "platinum-8153" | "16core" => {
            Ok(coloc_machine::presets::xeon_platinum_8153())
        }
        other => Err(format!(
            "unknown machine `{other}` (try `coloc machines` for the preset list)"
        )),
    }
}

/// The CLI key for a preset spec — inverse of [`machine_by_key`] over the
/// preset list (core counts are unique across presets).
fn preset_key(m: &MachineSpec) -> &'static str {
    match m.cores {
        6 => "e5649",
        8 => "e5_2630v3",
        12 => "e5_2697v2",
        _ => "platinum_8153",
    }
}

fn lab_from(args: &ArgMap) -> Result<Lab, String> {
    let spec = machine_by_key(args.get("machine").unwrap_or("e5649"))?;
    let seed = args.get_parsed_or("seed", 2015u64)?;
    let threads = args.get_parsed_or("threads", 0usize)?;
    let lab = Lab::new(spec, coloc_workloads::standard(), seed).map_err(|e| e.to_string())?;
    let mut lab = lab.with_threads(threads);
    if let Some(spec) = args.get("faults") {
        lab = lab
            .with_faults(parse_fault_plan(spec, seed)?)
            .map_err(|e| e.to_string())?;
    }
    Ok(lab)
}

/// Parse a `--faults` spec: the built-in `light`/`heavy` presets (seeded
/// from the lab seed) or a path to a JSON-serialized [`FaultPlan`].
fn parse_fault_plan(spec: &str, seed: u64) -> Result<FaultPlan, String> {
    match spec {
        "light" => Ok(FaultPlan::light(seed)),
        "heavy" => Ok(FaultPlan::heavy(seed)),
        path => {
            let bytes = std::fs::read(path).map_err(|e| {
                format!("--faults `{path}` is neither light|heavy nor a readable file: {e}")
            })?;
            serde_json::from_slice(&bytes).map_err(|e| format!("bad fault plan `{path}`: {e}"))
        }
    }
}

fn parse_kind(s: &str) -> Result<ModelKind, String> {
    match s {
        "linear" => Ok(ModelKind::Linear),
        "nn" | "neural-net" => Ok(ModelKind::NeuralNet),
        "quadratic" => Ok(ModelKind::QuadraticLinear),
        other => Err(format!(
            "unknown model kind `{other}` (linear | nn | quadratic)"
        )),
    }
}

fn parse_set(s: &str) -> Result<FeatureSet, String> {
    FeatureSet::ALL
        .into_iter()
        .find(|f| f.label().eq_ignore_ascii_case(s))
        .ok_or_else(|| format!("unknown feature set `{s}` (A..F)"))
}

/// Parse `name:count` co-runner specs.
fn parse_co(specs: &[String]) -> Result<Vec<(String, usize)>, String> {
    specs
        .iter()
        .map(|s| {
            let (name, count) = s.split_once(':').unwrap_or((s.as_str(), "1"));
            let count: usize = count
                .parse()
                .map_err(|_| format!("bad co-runner spec `{s}` (want name:count)"))?;
            Ok((name.to_string(), count))
        })
        .collect()
}

/// `coloc baselines --machine <key> [--seed N] --out <file>`
pub fn baselines(argv: &[String]) -> CmdResult {
    let args = ArgMap::parse(argv)?;
    if args.has_flag("help") {
        println!("coloc baselines --machine <e5649|e5_2697v2> [--seed N] --out <file>");
        return Ok(());
    }
    let lab = lab_from(&args)?;
    let out = args.require("out")?;
    let db = lab.baselines();
    db.save(out).map_err(|e| e.to_string())?;
    println!("wrote {} baselines to {out}", db.len());
    for b in db.iter() {
        println!(
            "  {:<14} MI {:.3e}  t@P0 {:.0}s",
            b.name, b.memory_intensity, b.exec_time_s[0]
        );
    }
    Ok(())
}

/// `coloc collect --machine <key> (--paper-plan | --counts a,b,c) --out <file>`
pub fn collect(argv: &[String]) -> CmdResult {
    let args = ArgMap::parse(argv)?;
    if args.has_flag("help") {
        println!(
            "coloc collect --machine <key> [--paper-plan] [--counts 1,3,5] \
             [--pstates 0,3] [--seed N] [--threads N] [--stage-stats] \
             [--faults light|heavy|<plan.json>] [--checkpoint <file>] \
             [--checkpoint-every N] [--crash-after N] --out <file>"
        );
        return Ok(());
    }
    let mut lab = lab_from(&args)?;
    if args.has_flag("stage-stats") {
        lab = lab.with_stage_stats(true);
    }
    let out = args.require("out")?;
    let mut plan = lab.paper_plan();
    if !args.has_flag("paper-plan") {
        if let Some(counts) = args.get("counts") {
            plan.counts = parse_usize_list(counts)?;
        }
        if let Some(pstates) = args.get("pstates") {
            plan.pstates = parse_usize_list(pstates)?;
        }
    }
    eprintln!("collecting {} runs…", plan.len());
    let samples = if let Some(cp) = args.get("checkpoint") {
        let cfg = CheckpointConfig {
            path: cp.into(),
            every: args.get_parsed_or("checkpoint-every", 25usize)?,
            crash_after: match args.get("crash-after") {
                Some(v) => Some(
                    v.parse()
                        .map_err(|e| format!("invalid value for --crash-after: {e}"))?,
                ),
                None => None,
            },
        };
        lab.collect_resumable(&plan.scenarios(), &cfg)
            .map_err(|e| e.to_string())?
    } else {
        lab.collect(&plan).map_err(|e| e.to_string())?
    };
    let stats = lab.sweep_stats();
    eprintln!("sweep: {stats}");
    if let Some(stages) = stats.stage_summary() {
        eprintln!("stage breakdown (engine misses only):\n{stages}");
    }
    persist::save_samples(&samples, out).map_err(|e| e.to_string())?;
    println!("wrote {} samples to {out}", samples.len());
    Ok(())
}

fn parse_usize_list(s: &str) -> Result<Vec<usize>, String> {
    s.split(',')
        .map(|x| {
            x.trim()
                .parse()
                .map_err(|_| format!("bad list entry `{x}`"))
        })
        .collect()
}

/// `coloc train --samples <file> --kind <k> --set <s> --out <file>`
pub fn train(argv: &[String]) -> CmdResult {
    let args = ArgMap::parse(argv)?;
    if args.has_flag("help") {
        println!(
            "coloc train --samples <file> [--kind linear|nn|quadratic] \
             [--set A..F] [--seed N] [--robust] [--retries N] --out <file>\n\n\
             Trains through the model registry and writes a versioned,\n\
             digest-addressed model artifact (predictor + provenance) that\n\
             `coloc predict`, `coloc schedule`, `coloc matrix` and\n\
             `coloc serve --model` all resolve the same way."
        );
        return Ok(());
    }
    let samples = persist::load_samples(args.require("samples")?).map_err(|e| e.to_string())?;
    let kind = parse_kind(args.get("kind").unwrap_or("nn"))?;
    let set = parse_set(args.get("set").unwrap_or("F"))?;
    let seed = args.get_parsed_or("seed", 2015u64)?;
    let out = args.require("out")?;
    let policy = if args.has_flag("robust") || args.get("retries").is_some() {
        Some(TrainPolicy {
            retries: args.get_parsed_or("retries", TrainPolicy::default().retries)?,
            ..Default::default()
        })
    } else {
        None
    };
    let registry = ModelRegistry::new();
    let trained = registry
        .train_from_samples(&samples, kind, set, seed, policy.as_ref())
        .map_err(|e| e.to_string())?;
    if let Some(report) = &trained.report {
        eprintln!("robust training: {report}");
    }
    registry
        .save(&trained.artifact, out)
        .map_err(|e| e.to_string())?;
    println!(
        "trained {} model on feature set {} ({} samples) -> {out}",
        trained.artifact.predictor.kind().label(),
        set.label(),
        samples.len()
    );
    println!("artifact digest {}", trained.artifact.digest_hex());
    Ok(())
}

/// `coloc predict --machine <key> --model <file> --target <app> --co name:count… --pstate N`
pub fn predict(argv: &[String]) -> CmdResult {
    let args = ArgMap::parse(argv)?;
    if args.has_flag("help") {
        println!(
            "coloc predict --machine <key> --model <file> --target <app> \
             [--co name:count]… [--pstate N] [--measure]"
        );
        return Ok(());
    }
    let lab = lab_from(&args)?;
    let artifact = ModelRegistry::new()
        .load(args.require("model")?)
        .map_err(|e| e.to_string())?;
    let model = &artifact.predictor;
    let scenario = Scenario {
        target: args.require("target")?.to_string(),
        co_located: parse_co(args.get_all("co"))?,
        pstate: args.get_parsed_or("pstate", 0usize)?,
    };
    let features = lab.featurize(&scenario).map_err(|e| e.to_string())?;
    let predicted = model.predict(&features);
    println!("scenario:  {scenario}");
    println!(
        "predicted: {predicted:.1} s  (slowdown {:.3}x)",
        model.predict_slowdown(&features)
    );
    if args.has_flag("measure") {
        let actual = lab.run_scenario(&scenario).map_err(|e| e.to_string())?;
        println!(
            "measured:  {actual:.1} s  (prediction error {:+.2}%)",
            100.0 * (predicted - actual) / actual
        );
    }
    Ok(())
}

/// `coloc schedule --machine <key> --model <file> --jobs a,b,c --sockets N`
pub fn schedule(argv: &[String]) -> CmdResult {
    let args = ArgMap::parse(argv)?;
    if args.has_flag("help") {
        println!(
            "coloc schedule --machine <key> --model <file> --jobs a,b,c \
             [--sockets N] [--pstate N] [--naive]"
        );
        return Ok(());
    }
    let lab = lab_from(&args)?;
    let artifact = ModelRegistry::new()
        .load(args.require("model")?)
        .map_err(|e| e.to_string())?;
    let model = &artifact.predictor;
    let jobs: Vec<String> = args
        .require("jobs")?
        .split(',')
        .map(|s| s.trim().to_string())
        .collect();
    let sockets = args.get_parsed_or("sockets", 1usize)?;
    let pstate = args.get_parsed_or("pstate", 0usize)?;
    let policy = if args.has_flag("naive") {
        Policy::PackFirstFit
    } else {
        Policy::LeastInterference
    };
    let sched = Scheduler::new(&lab, model, pstate);
    let placement = sched
        .place(&jobs, sockets, policy)
        .map_err(|e| e.to_string())?;
    for (i, s) in placement.sockets.iter().enumerate() {
        println!("socket {i}: {}", s.jobs.join(", "));
    }
    if placement.predicted_slowdowns.is_empty() {
        println!("no jobs placed");
        return Ok(());
    }
    println!(
        "predicted slowdown: mean {:.3}x, worst {:.3}x, unfairness {:.3} ({} sockets used)",
        placement.mean_slowdown().map_err(|e| e.to_string())?,
        placement.max_slowdown().map_err(|e| e.to_string())?,
        placement.unfairness().map_err(|e| e.to_string())?,
        placement.sockets_used()
    );
    Ok(())
}

/// `coloc matrix --machine <key> [--pstate N] [--model <file>] [--out <file>]`
///
/// Measures the full pairwise cross-interference matrix over the suite
/// (every target × every single co-runner) and compares it with a
/// registry-resolved model's predictions.
pub fn matrix(argv: &[String]) -> CmdResult {
    let args = ArgMap::parse(argv)?;
    if args.has_flag("help") {
        println!(
            "coloc matrix --machine <key> [--pstate N] [--seed N] [--threads N]\n\
             \x20           [--model <artifact.json>] [--out <matrix.json>]\n\n\
             Measures slowdown for all suite pairs (target × 1 co-runner) and\n\
             fills the predicted side from a model artifact: either --model,\n\
             or a linear full-feature model the registry trains on the spot.\n\
             Identical-app pairs are checked for bit-identical per-group\n\
             counters (the `matrix-identical-pair-symmetry` law)."
        );
        return Ok(());
    }
    let lab = lab_from(&args)?;
    let pstate = args.get_parsed_or("pstate", 0usize)?;
    let registry = ModelRegistry::new();
    let artifact = match args.get("model") {
        Some(path) => registry.load(path).map_err(|e| e.to_string())?,
        None => {
            let cores = lab.machine().spec().cores;
            let mut counts = vec![1usize, (cores / 2).max(1), cores - 1];
            counts.dedup();
            counts.retain(|&c| c >= 1);
            let req = TrainRequest {
                kind: ModelKind::Linear,
                set: FeatureSet::F,
                plan: TrainingPlan {
                    pstates: vec![pstate],
                    targets: lab.suite().iter().map(|b| b.name.to_string()).collect(),
                    co_runners: coloc_workloads::training_co_runners()
                        .iter()
                        .map(|b| b.name.to_string())
                        .collect(),
                    counts,
                },
                seed: args.get_parsed_or("seed", 2015u64)?,
                policy: None,
            };
            registry.resolve(&lab, &req).map_err(|e| e.to_string())?
        }
    };
    let m = CrossMatrix::compute(&lab, &artifact, pstate).map_err(|e| e.to_string())?;
    print!(
        "measured slowdown matrix ({} @ P{}):\n{}",
        m.machine,
        m.pstate,
        m.render_measured()
    );
    println!(
        "model {}: MPE {:.2}%, NRMSE {:.2}%, worst cell {:.2}%",
        m.model_digest, m.summary.mpe_pct, m.summary.nrmse_pct, m.summary.max_abs_pct_err
    );
    println!(
        "identical-pair counter symmetry: {}",
        if m.summary.identical_pairs_symmetric {
            "ok (all pairs bit-identical)"
        } else {
            "VIOLATED"
        }
    );
    if let Some(out) = args.get("out") {
        persist::save_json_atomic(&m, out).map_err(|e| e.to_string())?;
        println!("wrote matrix artifact to {out}");
    }
    if !m.summary.identical_pairs_symmetric {
        return Err("identical-app pairs produced asymmetric counters".into());
    }
    Ok(())
}

/// `coloc suite`
pub fn suite(argv: &[String]) -> CmdResult {
    let args = ArgMap::parse(argv)?;
    if args.has_flag("help") {
        println!("coloc suite — list the benchmark suite");
        return Ok(());
    }
    println!("{:<16} {:<8} class", "application", "suite");
    for b in coloc_workloads::standard() {
        println!("{:<16} {:<8} {}", b.name, b.suite.tag(), b.class);
    }
    Ok(())
}

/// `coloc machines`
pub fn machines(argv: &[String]) -> CmdResult {
    let args = ArgMap::parse(argv)?;
    if args.has_flag("help") {
        println!("coloc machines — list machine presets");
        return Ok(());
    }
    for m in coloc_machine::presets::all() {
        let key = preset_key(&m);
        println!(
            "{key:<12} {} — {} cores, {} MB L3, {:.2}–{:.2} GHz",
            m.name,
            m.cores,
            m.llc_bytes >> 20,
            m.pstates_ghz.last().expect("pstates"),
            m.pstates_ghz[0]
        );
    }
    Ok(())
}

/// `coloc trace --machine <key> --target <app> [--co name:count]… [--pstate N]`
///
/// Runs one scenario through the staged engine with the segment trace
/// ring attached and dumps the most recent segments: per-segment dt,
/// converged DRAM latency, fixed-point iteration count and final
/// residual. `--stage-stats` adds the per-stage pipeline breakdown.
pub fn trace(argv: &[String]) -> CmdResult {
    let args = ArgMap::parse(argv)?;
    if args.has_flag("help") {
        println!(
            "coloc trace --machine <key> --target <app> [--co name:count]… \
             [--pstate N] [--seed N] [--last N] [--stage-stats]\n\n\
             Replays one scenario with the engine's segment trace ring\n\
             attached and dumps the last N segments (default 32), plus the\n\
             per-stage pipeline breakdown with --stage-stats."
        );
        return Ok(());
    }
    let lab = lab_from(&args)?;
    let scenario = Scenario {
        target: args.require("target")?.to_string(),
        co_located: parse_co(args.get_all("co"))?,
        pstate: args.get_parsed_or("pstate", 0usize)?,
    };
    let last = args.get_parsed_or("last", 32usize)?;
    let ir = lab.scenario_ir(&scenario).map_err(|e| e.to_string())?;
    let machine = ir.machine().map_err(|e| e.to_string())?;
    let (outcome, trace) = machine
        .run_scheduled_traced(&ir.workload, ir.schedules.as_deref(), &ir.opts, last)
        .map_err(|e| e.to_string())?;

    println!("scenario: {scenario}");
    println!("ir digest: {:#034x}", ir.digest());
    println!(
        "{} segments, {} fixed-point iters, wall {:.3}s",
        outcome.segments, outcome.fp_iterations, outcome.wall_time_s
    );
    if trace.dropped() > 0 {
        println!(
            "… {} earlier segments dropped (ring capacity {})",
            trace.dropped(),
            trace.capacity()
        );
    }
    println!(
        "{:>9}  {:>13}  {:>12}  {:>4}  {:>10}  {:>6}  {:>8}",
        "segment", "dt (s)", "latency (ns)", "fp", "residual", "events", "resident"
    );
    for r in trace.records() {
        println!(
            "{:>9}  {:>13.6}  {:>12.2}  {:>4}  {:>10.3e}  {:>6}  {:>8}",
            r.segment, r.dt, r.latency_ns, r.fp_iters, r.residual, r.events, r.resident_groups
        );
    }

    if args.has_flag("stage-stats") {
        let mut profile = StageProfile::new();
        machine
            .run_scheduled_instrumented(
                &ir.workload,
                ir.schedules.as_deref(),
                &ir.opts,
                &mut profile,
            )
            .map_err(|e| e.to_string())?;
        println!("stage breakdown:");
        for id in StageId::ALL {
            let s = profile.get(id);
            println!(
                "  {:<17} {:>9} calls  {:>10.3} ms",
                id.label(),
                s.invocations,
                s.nanos as f64 * 1e-6
            );
        }
    }
    Ok(())
}

/// `coloc place --jobs N [--fleet standard:<scale> | --machine <key>
/// --sockets N] [--mix <name>] [--policy <name>|all] [--qos X]
/// [--seed N] [--threads N] [--out <file>]`
pub fn place(argv: &[String]) -> CmdResult {
    use coloc_placement::{ClassMix, FleetSpec, PlacePolicy, PlacementSim, SimConfig};
    let args = ArgMap::parse(argv)?;
    if args.has_flag("help") {
        println!(
            "coloc place --jobs N [--fleet standard:<scale>] [--machine <key> --sockets N]\n\
             \x20          [--mix uniform|memory-heavy|compute-heavy] [--policy <name>|all]\n\
             \x20          [--qos X] [--seed N] [--threads N] [--out <file>]\n\n\
             Streams N synthetic jobs through a simulated fleet in waves,\n\
             places each wave with the chosen policy (pack-first-fit |\n\
             least-interference | regret-batched | all), and scores the\n\
             result against the simulator-as-oracle: mean/max slowdown,\n\
             unfairness, QoS violations above --qos, sockets used, and the\n\
             regret between decision-time expectations and measured truth.\n\
             --fleet standard:<scale> is the mixed 4-preset rack (8×scale\n\
             sockets); --machine/--sockets builds a single-preset fleet.\n\
             --out writes the full JSON report."
        );
        return Ok(());
    }
    let jobs = args.get_parsed_or("jobs", 1000usize)?;
    let fleet = match (args.get("fleet"), args.get("machine")) {
        (Some(_), Some(_)) => return Err("--fleet and --machine are mutually exclusive".into()),
        (None, Some(key)) => {
            FleetSpec::single(machine_by_key(key)?, args.get_parsed_or("sockets", 4usize)?)
        }
        (fleet, None) => {
            let spec = fleet.unwrap_or("standard:1");
            let scale = match spec.strip_prefix("standard:") {
                Some(s) => s
                    .parse::<usize>()
                    .map_err(|_| format!("bad fleet scale in `{spec}`"))?,
                None => return Err(format!("unknown fleet `{spec}` (try standard:<scale>)")),
            };
            FleetSpec::standard(scale)
        }
    };
    let mix = ClassMix::by_name(args.get("mix").unwrap_or("uniform"))?;
    let cfg = SimConfig {
        fleet,
        jobs,
        mix,
        seed: args.get_parsed_or("seed", 2015u64)?,
        pstate: args.get_parsed_or("pstate", 0usize)?,
        qos_threshold: args.get_parsed_or("qos", 1.5f64)?,
        noise_sigma: None,
        threads: args.get_parsed_or("threads", 0usize)?,
    };
    let mut sim = PlacementSim::new(cfg).map_err(|e| e.to_string())?;
    let report = match args.get("policy").unwrap_or("all") {
        "all" => sim.run_benchmark().map_err(|e| e.to_string())?,
        name => {
            let policy = PlacePolicy::by_name(name)?;
            let outcome = sim.run_policy(policy).map_err(|e| e.to_string())?;
            let mut report = sim.report_shell();
            report.policies.push(outcome);
            report
        }
    };
    println!(
        "fleet: {} ({} sockets, {} cores) — {} jobs, seed {}",
        report.fleet.join(" + "),
        report.total_sockets,
        report.total_cores,
        report.jobs,
        report.seed
    );
    println!(
        "{:<32} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>10}",
        "policy", "regret", "oracle-sd", "unfair", "qos", "sockets", "waves", "jobs/s"
    );
    for p in &report.policies {
        println!(
            "{:<32} {:>10.4} {:>10.4} {:>10.3} {:>8} {:>8} {:>8} {:>10.0}",
            p.policy,
            p.regret_mean,
            p.oracle_mean_slowdown,
            p.unfairness,
            p.qos_violations,
            p.sockets_used,
            p.waves,
            p.jobs_per_sec
        );
    }
    if let Some(out) = args.get("out") {
        let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
        std::fs::write(out, json + "\n").map_err(|e| format!("{out}: {e}"))?;
        println!("report written to {out}");
    }
    Ok(())
}

/// `coloc verify [--corpus <dir>] [--spot N] [--seed N] [--threads N]`
pub fn verify(argv: &[String]) -> CmdResult {
    let args = ArgMap::parse(argv)?;
    if args.has_flag("help") {
        println!(
            "coloc verify [--corpus <dir>] [--spot N] [--seed N] [--threads N]\n\n\
             Replays the checked-in conformance corpus (differential cases\n\
             through the naive reference engine, law-tagged cases through\n\
             their metamorphic law), then differential-spot-checks N freshly\n\
             generated scenarios. Cases fan out across --threads workers\n\
             (0 = one per core); the report is identical at any setting.\n\
             Exits non-zero on any divergence."
        );
        return Ok(());
    }
    let dir = match args.get("corpus") {
        Some(d) => std::path::PathBuf::from(d),
        None => coloc_conformance::default_corpus_dir(),
    };
    let spot = args.get_parsed_or("spot", 16usize)?;
    let seed = args.get_parsed_or("seed", 0xC0_10Cu64)?;
    let threads = args.get_parsed_or("threads", 0usize)?;

    let report = coloc_conformance::verify_dir_threaded(&dir, threads)?;
    println!(
        "corpus {} — {} cases replayed ({} differential, {} law)",
        dir.display(),
        report.total(),
        report.differential,
        report.law_checks
    );
    for failure in &report.failures {
        println!("  FAIL {failure}");
    }

    let placement_dir = coloc_conformance::placement_corpus_dir(&dir);
    let placement = coloc_conformance::verify_placement_dir(&placement_dir)?;
    println!(
        "placement corpus {} — {} cases replayed through their laws",
        placement_dir.display(),
        placement.law_checks
    );
    for failure in &placement.failures {
        println!("  FAIL {failure}");
    }

    let mut spot_failures = 0usize;
    if spot > 0 {
        match coloc_conformance::differential_sweep_threaded(seed, spot, threads) {
            Ok(summary) => println!(
                "spot-check — {} generated scenarios agree (max slowdown gap {:.2e})",
                summary.cases, summary.max_slowdown_gap
            ),
            Err(failure) => {
                spot_failures = 1;
                println!(
                    "  FAIL spot-check (shrunk): {}\n       {}",
                    failure.case.describe(),
                    failure.detail
                );
            }
        }
    }

    if report.is_clean() && placement.is_clean() && spot_failures == 0 {
        println!("verify: OK");
        Ok(())
    } else {
        Err(format!(
            "{} corpus failure(s), {} placement failure(s), {} spot-check failure(s)",
            report.failures.len(),
            placement.failures.len(),
            spot_failures
        ))
    }
}

/// `coloc serve [--tcp addr | --unix path] [--machine <key>] …`
///
/// Runs the prediction service on the calling thread until SIGTERM /
/// SIGINT / a `shutdown` frame drains it, then prints the final stats
/// frame to stderr. SIGHUP (or a `reload` frame) hot-swaps the model
/// artifacts without a drain.
pub fn serve(argv: &[String]) -> Result<(), Failure> {
    let args = ArgMap::parse(argv)?;
    if args.has_flag("help") {
        println!(
            "coloc serve [--tcp 127.0.0.1:7105 | --unix <path>] [--machine <key>]\n\
             \x20           [--seed N] [--threads N] [--capacity N] [--watermark N]\n\
             \x20           [--max-batch N] [--deadline-ms N] [--retry-hint-ms N]\n\
             \x20           [--stats-interval-s N] [--model <file>] [--quiet]\n\n\
             Serves slowdown queries as line-delimited JSON. Bounded admission\n\
             sheds with `overloaded` past --capacity; past --watermark the\n\
             degradation ladder answers from cache / the linear fallback and\n\
             labels those answers degraded. --model points at a registry\n\
             artifact (as written by `coloc train`); SIGHUP or a `reload`\n\
             frame hot-swaps it with zero drain — in-flight requests finish\n\
             on the old artifact and stats frames report model_epoch and\n\
             model_digest. SIGTERM drains gracefully."
        );
        return Ok(());
    }
    let bind = match (args.get("tcp"), args.get("unix")) {
        (Some(_), Some(_)) => {
            return Err(Failure::from(
                "--tcp and --unix are mutually exclusive".to_string(),
            ))
        }
        (None, Some(path)) => BindAddr::Unix(path.into()),
        (tcp, None) => BindAddr::Tcp(tcp.unwrap_or("127.0.0.1:7105").to_string()),
    };
    let machine = args.get("machine").unwrap_or("e5649");
    machine_by_key(machine)?; // fail with the preset list before binding
    let cfg = ServeConfig {
        bind,
        seed: args.get_parsed_or("seed", 2015u64)?,
        default_machine: machine.to_string(),
        admission_capacity: args.get_parsed_or("capacity", 256usize)?,
        degrade_watermark: args.get_parsed_or("watermark", 128usize)?,
        max_batch: args.get_parsed_or("max-batch", 32usize)?,
        engine_threads: args.get_parsed_or("threads", 0usize)?,
        default_deadline_ms: args.get_parsed_or("deadline-ms", 2_000u64)?,
        retry_hint_ms: args.get_parsed_or("retry-hint-ms", 50u64)?,
        stats_interval: std::time::Duration::from_secs(
            args.get_parsed_or("stats-interval-s", 10u64)?,
        ),
        quiet: args.has_flag("quiet"),
        model_path: args.get("model").map(Into::into),
    };
    coloc_serve::signals::install();
    let frame = Server::run(cfg).map_err(service_failure)?;
    eprintln!(
        "serve: drained — {} admitted, {} completed, {} shed, p99 {:.1} ms",
        frame.admitted,
        frame.completed,
        frame.shed_overload + frame.shed_deadline,
        frame.latency_p99_ms
    );
    Ok(())
}

fn connect_client(args: &ArgMap) -> Result<QueryClient, Failure> {
    match (args.get("addr"), args.get("unix")) {
        (Some(_), Some(_)) => Err(Failure::from(
            "--addr and --unix are mutually exclusive".to_string(),
        )),
        (None, Some(path)) => {
            #[cfg(unix)]
            {
                QueryClient::connect_unix(std::path::Path::new(path)).map_err(service_failure)
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                Err(Failure::from(
                    "--unix sockets are only available on Unix targets".to_string(),
                ))
            }
        }
        (addr, None) => {
            QueryClient::connect_tcp(addr.unwrap_or("127.0.0.1:7105")).map_err(service_failure)
        }
    }
}

/// `coloc query [--addr host:port | --unix path] --target <app> …`
///
/// One round trip to a running `coloc serve`, with the bounded
/// retry-with-backoff discipline on `overloaded` answers. Exit codes:
/// 0 ok, 75 overloaded after retries, 124 deadline expired, 69 server
/// draining, 1 anything else.
pub fn query(argv: &[String]) -> Result<(), Failure> {
    let args = ArgMap::parse(argv)?;
    if args.has_flag("help") {
        println!(
            "coloc query [--addr 127.0.0.1:7105 | --unix <path>] --target <app>\n\
             \x20           [--co name:count]… [--pstate N] [--predict]\n\
             \x20           [--deadline-ms N] [--machine <key>] [--retries N]\n\
             \x20           [--backoff-ms N] [--jitter-seed N]\n\
             coloc query … --ping | --stats | --reload | --shutdown\n\n\
             Exit codes: 0 ok, 75 overloaded (after retries), 124 deadline\n\
             expired, 69 server shutting down, 1 other errors, 2 usage."
        );
        return Ok(());
    }
    let mut client = connect_client(&args)?;
    if args.has_flag("ping") {
        client.ping().map_err(service_failure)?;
        println!("pong");
        return Ok(());
    }
    if args.has_flag("stats") {
        let frame = client.stats().map_err(service_failure)?;
        println!(
            "{}",
            serde_json::to_string(&frame).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    if args.has_flag("reload") {
        let (epoch, digest) = client.reload().map_err(service_failure)?;
        println!("reloaded: model_epoch {epoch}, model_digest {digest}");
        return Ok(());
    }
    if args.has_flag("shutdown") {
        client.shutdown().map_err(service_failure)?;
        println!("server draining");
        return Ok(());
    }
    let scenario = Scenario {
        target: args.require("target")?.to_string(),
        co_located: parse_co(args.get_all("co"))?,
        pstate: args.get_parsed_or("pstate", 0usize)?,
    };
    let mode = if args.has_flag("predict") {
        QueryMode::Predict
    } else {
        QueryMode::Measure
    };
    let deadline_ms = match args.get("deadline-ms") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|e| format!("invalid value for --deadline-ms: {e}"))?,
        ),
        None => None,
    };
    let policy = RetryPolicy {
        retries: args.get_parsed_or("retries", RetryPolicy::default().retries)?,
        base_backoff_ms: args
            .get_parsed_or("backoff-ms", RetryPolicy::default().base_backoff_ms)?,
        jitter_seed: args.get_parsed_or("jitter-seed", RetryPolicy::default().jitter_seed)?,
        ..RetryPolicy::default()
    };
    let reply = client
        .query_with_retry(&scenario, mode, deadline_ms, args.get("machine"), &policy)
        .map_err(service_failure)?;
    match reply {
        Reply::Ok {
            time_s,
            slowdown,
            source,
            degraded,
            ..
        } => {
            println!("scenario:  {scenario}");
            print!("answer:    {time_s:.3} s");
            if let Some(s) = slowdown {
                print!("  (slowdown {s:.3}x)");
            }
            print!("  [{source}]");
            if degraded {
                print!("  DEGRADED");
            }
            println!();
            Ok(())
        }
        Reply::Err { error, .. } => Err(service_failure(error)),
        other => Err(Failure::from(format!("unexpected reply: {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("coloc-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn full_workflow_roundtrips_through_files() {
        let samples_path = tmp("samples.json");
        let model_path = tmp("model.json");
        let baselines_path = tmp("baselines.json");

        baselines(&argv(&["--machine", "e5649", "--out", &baselines_path])).unwrap();
        collect(&argv(&[
            "--machine",
            "e5649",
            "--counts",
            "1,3",
            "--pstates",
            "0",
            "--out",
            &samples_path,
        ]))
        .unwrap();
        train(&argv(&[
            "--samples",
            &samples_path,
            "--kind",
            "linear",
            "--set",
            "C",
            "--out",
            &model_path,
        ]))
        .unwrap();
        predict(&argv(&[
            "--machine",
            "e5649",
            "--model",
            &model_path,
            "--target",
            "canneal",
            "--co",
            "cg:3",
            "--pstate",
            "0",
        ]))
        .unwrap();
        schedule(&argv(&[
            "--machine",
            "e5649",
            "--model",
            &model_path,
            "--jobs",
            "cg,cg,ep,ep",
            "--sockets",
            "2",
        ]))
        .unwrap();
    }

    #[test]
    fn chaotic_workflow_with_faults_checkpoint_and_robust_training() {
        let samples_path = tmp("chaos_samples.json");
        let model_path = tmp("chaos_model.json");
        let checkpoint_path = tmp("chaos_checkpoint.json");
        let _ = std::fs::remove_file(&checkpoint_path);

        // A crash-after collect is interrupted but leaves a checkpoint…
        let collect_args = |crash: Option<&str>| {
            let mut v = argv(&[
                "--machine",
                "e5649",
                "--counts",
                "1,3",
                "--pstates",
                "0",
                "--faults",
                "heavy",
                "--checkpoint",
                &checkpoint_path,
                "--checkpoint-every",
                "3",
                "--out",
                &samples_path,
            ]);
            if let Some(n) = crash {
                v.extend(argv(&["--crash-after", n]));
            }
            v
        };
        let err = collect(&collect_args(Some("4"))).unwrap_err();
        assert!(err.contains("interrupted after 4"), "{err}");
        // …and a rerun resumes from it and completes.
        collect(&collect_args(None)).unwrap();

        train(&argv(&[
            "--samples",
            &samples_path,
            "--kind",
            "nn",
            "--set",
            "C",
            "--robust",
            "--out",
            &model_path,
        ]))
        .unwrap();
        let artifact = ModelRegistry::new().load(&model_path).unwrap();
        assert!(artifact.spec.robust, "provenance records the robust ladder");

        assert!(parse_fault_plan("light", 1).is_ok());
        assert!(parse_fault_plan("/nonexistent/plan.json", 1).is_err());
        let _ = std::fs::remove_file(&checkpoint_path);
    }

    #[test]
    fn helpful_errors() {
        assert!(machine_by_key("pentium4").is_err());
        assert!(parse_kind("svm").is_err());
        assert!(parse_set("G").is_err());
        assert!(parse_co(&["cg:x".to_string()]).is_err());
        assert!(train(&argv(&["--out", "x.json"])).is_err());
        assert!(predict(&argv(&[])).is_err());
    }

    #[test]
    fn co_spec_defaults_to_one() {
        let co = parse_co(&["cg".to_string(), "ep:4".to_string()]).unwrap();
        assert_eq!(co, vec![("cg".to_string(), 1), ("ep".to_string(), 4)]);
    }

    #[test]
    fn info_commands_run() {
        suite(&[]).unwrap();
        machines(&[]).unwrap();
    }

    #[test]
    fn trace_dumps_segment_telemetry() {
        trace(&argv(&[
            "--machine",
            "e5649",
            "--target",
            "canneal",
            "--co",
            "cg:3",
            "--last",
            "8",
            "--stage-stats",
        ]))
        .unwrap();
        assert!(trace(&argv(&["--machine", "e5649", "--target", "doom"])).is_err());
    }

    #[test]
    fn collect_with_stage_stats_writes_the_same_samples() {
        let plain_path = tmp("stageless_samples.json");
        let staged_path = tmp("staged_samples.json");
        let base = [
            "--machine",
            "e5649",
            "--counts",
            "1",
            "--pstates",
            "0",
            "--out",
        ];
        let mut plain = argv(&base);
        plain.push(plain_path.clone());
        collect(&plain).unwrap();
        let mut staged = argv(&base);
        staged.push(staged_path.clone());
        staged.push("--stage-stats".into());
        collect(&staged).unwrap();
        // Instrumentation is observation only: identical artifacts.
        assert_eq!(
            std::fs::read(&plain_path).unwrap(),
            std::fs::read(&staged_path).unwrap()
        );
    }

    #[test]
    fn query_round_trips_against_a_spawned_server() {
        let handle = Server::spawn(ServeConfig {
            bind: BindAddr::Tcp("127.0.0.1:0".into()),
            quiet: true,
            engine_threads: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let addr = handle.local_addr().unwrap().to_string();
        query(&argv(&["--addr", &addr, "--ping"])).unwrap();
        query(&argv(&[
            "--addr", &addr, "--target", "canneal", "--co", "cg:3", "--pstate", "0",
        ]))
        .unwrap();
        query(&argv(&["--addr", &addr, "--target", "ep", "--predict"])).unwrap();
        query(&argv(&["--addr", &addr, "--stats"])).unwrap();
        // An unknown target surfaces as a generic (code 1) failure.
        let f = query(&argv(&["--addr", &addr, "--target", "doom"])).unwrap_err();
        assert_eq!(f.code, 1, "{}", f.message);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn service_errors_map_to_typed_exit_codes() {
        assert_eq!(
            exit_code_for(&ColocError::Overloaded { queue_depth: 9 }),
            75
        );
        assert_eq!(exit_code_for(&ColocError::Timeout { deadline_ms: 5 }), 124);
        assert_eq!(exit_code_for(&ColocError::ShuttingDown), 69);
        assert_eq!(exit_code_for(&ColocError::Machine("x".into())), 1);
        let f: Failure = "boom".to_string().into();
        assert_eq!((f.code, f.message.as_str()), (1, "boom"));
    }

    #[test]
    fn verify_replays_corpus_and_spot_checks() {
        // Default corpus, tiny spot-check: must come back clean.
        verify(&argv(&["--spot", "2", "--seed", "11"])).unwrap();
        // An empty corpus directory is vacuously clean.
        let dir = tmp("empty-corpus");
        std::fs::create_dir_all(&dir).unwrap();
        verify(&argv(&["--corpus", &dir, "--spot", "0"])).unwrap();
    }

    #[test]
    fn verify_fails_on_a_poisoned_corpus_case() {
        let dir = std::env::temp_dir()
            .join("coloc-cli-tests")
            .join("bad-corpus");
        std::fs::create_dir_all(&dir).unwrap();
        let mut case =
            coloc_conformance::gen_case(7, &coloc_conformance::GenConstraints::default());
        case.law = Some("not-a-law".into());
        coloc_conformance::corpus::save_case(&dir.join("bad.json"), &case).unwrap();
        let err = verify(&argv(&["--corpus", &dir.to_string_lossy(), "--spot", "0"])).unwrap_err();
        assert!(err.contains("1 corpus failure"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
