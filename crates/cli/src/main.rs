//! `coloc` — the command-line face of the methodology.
//!
//! Implements the deployment workflow end to end:
//!
//! ```text
//! coloc baselines --machine e5649 --out baselines.json
//! coloc collect   --machine e5649 --paper-plan --out samples.json
//! coloc train     --samples samples.json --kind nn --set F --out model.json
//! coloc predict   --machine e5649 --model model.json --target canneal \
//!                 --co cg:3 --co ep:2 --pstate 0
//! coloc schedule  --machine e5649 --model model.json --sockets 2 \
//!                 --jobs cg,cg,canneal,sp,ep,ep
//! ```
//!
//! Argument parsing is deliberately hand-rolled (the workspace keeps its
//! dependency set minimal); see [`args::ArgMap`].

mod args;
mod commands;

use std::process::ExitCode;

const USAGE: &str = "\
coloc — co-location aware application performance modeling

USAGE:
    coloc <command> [options]

COMMANDS:
    baselines   profile every suite application solo; write a baseline DB
    collect     run a training sweep; write featurized samples
    train       fit a model on collected samples; write it as JSON
    predict     predict a co-location scenario with a trained model
    schedule    place jobs on sockets with a trained model
    matrix      measure the full pairwise cross-interference matrix and
                score a registry-resolved model against it
    place       stream synthetic jobs through a simulated fleet and score
                placement policies against the simulator-as-oracle
    suite       list the benchmark suite and its memory-intensity classes
    machines    list available machine presets
    trace       replay one scenario with the segment trace ring attached
                and dump per-segment solver telemetry
    verify      replay the conformance corpus and spot-check the engine
                against the naive reference implementation
    serve       run the overload-safe prediction service (JSON lines over
                TCP or a Unix socket; SIGTERM drains gracefully)
    query       ask a running `coloc serve` for one answer, with bounded
                retry/backoff on overload
    help        show this message

Run `coloc <command> --help` for per-command options.

EXIT CODES:
    0 ok · 1 error · 2 usage · 69 server shutting down ·
    75 overloaded (after retries) · 124 deadline expired";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result: Result<(), commands::Failure> = match cmd.as_str() {
        "baselines" => commands::baselines(rest).map_err(Into::into),
        "collect" => commands::collect(rest).map_err(Into::into),
        "train" => commands::train(rest).map_err(Into::into),
        "predict" => commands::predict(rest).map_err(Into::into),
        "schedule" => commands::schedule(rest).map_err(Into::into),
        "matrix" => commands::matrix(rest).map_err(Into::into),
        "place" => commands::place(rest).map_err(Into::into),
        "suite" => commands::suite(rest).map_err(Into::into),
        "machines" => commands::machines(rest).map_err(Into::into),
        "trace" => commands::trace(rest).map_err(Into::into),
        "verify" => commands::verify(rest).map_err(Into::into),
        "serve" => commands::serve(rest),
        "query" => commands::query(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(commands::Failure {
            code: 2,
            message: format!("unknown command `{other}`\n\n{USAGE}"),
        }),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(f) => {
            eprintln!("error: {}", f.message);
            ExitCode::from(f.code)
        }
    }
}
