//! Digest-stability fixture for the canonical [`ScenarioIr`] encoding.
//!
//! `RunCache` keys, `Lab::plan_digest` checkpoints, and the conformance
//! corpus all hash scenarios through one implementation:
//! [`ScenarioIr::digest`]. That makes the digest a *persistence format* —
//! an accidental change to the canonical encoding silently invalidates
//! every memo entry and orphans every sweep checkpoint in the field. This
//! test pins the digests of a fixed scenario set against a checked-in
//! fixture; after an **intentional** encoding change, regenerate with
//! `COLOC_REGEN_FIXTURES=1 cargo test -p coloc-machine --test digest_stability`.
//!
//! The fixture is plain text, one `name = 0x<32 hex>` line per scenario,
//! so an encoding change reviews as a readable diff.
//!
//! The same fixture also pins the [`MixFeatures`] canonical encoding
//! (`mix-*` lines, appended after the `ScenarioIr` block): the mix digest
//! addresses per-co-runner feature rows in training checkpoints, so it is
//! a persistence format under the exact same contract. The fixture is
//! **append-only** — new encoding axes add lines, existing lines never
//! change without a schema-version bump.

use coloc_cachesim::StackDistanceDist;
use coloc_machine::{
    presets, AppPhase, AppProfile, FaultPlan, GroupSchedule, RunOptions, RunnerGroup, ScenarioIr,
};
use coloc_model::{CoVector, MixFeatures};
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/scenario_digests.txt")
}

fn hungry(name: &str, instructions: f64) -> AppProfile {
    AppProfile::single_phase(
        name,
        instructions,
        AppPhase {
            weight: 1.0,
            dist: StackDistanceDist::power_law(1_000_000, 0.35, 0.02),
            accesses_per_instr: 0.03,
            cpi_base: 0.9,
            mlp: 4.0,
        },
    )
}

fn phased(name: &str, instructions: f64) -> AppProfile {
    AppProfile {
        name: name.into(),
        instructions,
        phases: vec![
            AppPhase {
                weight: 0.5,
                dist: StackDistanceDist::power_law(1_000_000, 0.35, 0.02),
                accesses_per_instr: 0.03,
                cpi_base: 0.9,
                mlp: 4.0,
            },
            AppPhase {
                weight: 0.5,
                dist: StackDistanceDist::power_law(2_000, 2.0, 1e-6),
                accesses_per_instr: 0.001,
                cpi_base: 0.7,
                mlp: 2.0,
            },
        ],
    }
}

/// The pinned scenario set: every encoding axis is exercised by at least
/// one entry (machine preset, group counts, multi-phase apps, P-state,
/// seed, noise, partitioning, budget, and fault plans — firing and no-op).
fn pinned_scenarios() -> Vec<(&'static str, ScenarioIr)> {
    let solo = ScenarioIr::new(
        presets::xeon_e5649(),
        vec![RunnerGroup::solo(hungry("streamer", 50e9))],
        RunOptions::default(),
    );

    let contended = ScenarioIr::new(
        presets::xeon_e5649(),
        vec![
            RunnerGroup::solo(phased("target", 100e9)),
            RunnerGroup {
                app: hungry("co", 60e9),
                count: 3,
            },
        ],
        RunOptions {
            pstate: 2,
            seed: 7,
            noise_sigma: 0.008,
            ..Default::default()
        },
    );

    let partitioned_budgeted = ScenarioIr::new(
        presets::xeon_e5_2697v2(),
        vec![
            RunnerGroup::solo(hungry("target", 80e9)),
            RunnerGroup {
                app: phased("co", 40e9),
                count: 7,
            },
        ],
        RunOptions {
            pstate: 5,
            seed: 99,
            llc_partitioned: true,
            fp_budget: 32,
            max_segments: 50_000,
            ..Default::default()
        },
    );

    let faulted = ScenarioIr::new(
        presets::xeon_e5649(),
        vec![
            RunnerGroup::solo(hungry("target", 80e9)),
            RunnerGroup {
                app: hungry("co", 60e9),
                count: 2,
            },
        ],
        RunOptions {
            seed: 11,
            noise_sigma: 0.008,
            ..Default::default()
        },
    )
    .with_faults(FaultPlan::heavy(123));

    let noop_faulted = ScenarioIr::new(
        presets::xeon_e5649(),
        vec![RunnerGroup::solo(hungry("target", 80e9))],
        RunOptions::default(),
    )
    .with_faults(FaultPlan::default());

    // Event schedules: a staggered, windowed, clock-ratioed co-runner.
    // The schedule block is appended to the encoding only when some
    // field is non-default, so this entry pins the extended format while
    // the five entries above pin that lockstep scenarios still encode
    // exactly as they did before schedules existed.
    let scheduled = ScenarioIr::new(
        presets::xeon_e5649(),
        vec![
            RunnerGroup::solo(hungry("target", 80e9)),
            RunnerGroup {
                app: hungry("co", 60e9),
                count: 2,
            },
        ],
        RunOptions {
            seed: 5,
            ..Default::default()
        },
    )
    .with_schedules(vec![
        GroupSchedule::default(),
        GroupSchedule {
            phase_offset: 0.25,
            arrival_tick: 0.015625,
            departure_tick: Some(0.25),
            clock_ratio: 1.25,
        },
    ]);

    // Departure-free variant: pins the Option-tag byte in the encoding.
    let scheduled_no_departure = ScenarioIr::new(
        presets::xeon_e5649(),
        vec![
            RunnerGroup::solo(hungry("target", 80e9)),
            RunnerGroup {
                app: hungry("co", 60e9),
                count: 2,
            },
        ],
        RunOptions {
            seed: 5,
            ..Default::default()
        },
    )
    .with_schedules(vec![
        GroupSchedule::default(),
        GroupSchedule {
            phase_offset: 0.25,
            arrival_tick: 0.015625,
            departure_tick: None,
            clock_ratio: 1.25,
        },
    ]);

    // Scheduled *and* faulted: the schedule block sits after the fault
    // block, so their composition is its own encoding axis.
    let scheduled_faulted = ScenarioIr::new(
        presets::xeon_e5649(),
        vec![
            RunnerGroup::solo(hungry("target", 80e9)),
            RunnerGroup {
                app: hungry("co", 60e9),
                count: 2,
            },
        ],
        RunOptions {
            seed: 11,
            noise_sigma: 0.008,
            ..Default::default()
        },
    )
    .with_faults(FaultPlan::heavy(123))
    .with_schedules(vec![
        GroupSchedule::default(),
        GroupSchedule {
            phase_offset: 0.5,
            arrival_tick: 0.0,
            departure_tick: Some(0.125),
            clock_ratio: 1.0,
        },
    ]);

    vec![
        ("solo", solo),
        ("contended", contended),
        ("partitioned-budgeted", partitioned_budgeted),
        ("faulted-heavy", faulted),
        ("faulted-noop", noop_faulted),
        ("scheduled", scheduled),
        ("scheduled-no-departure", scheduled_no_departure),
        ("scheduled-faulted", scheduled_faulted),
    ]
}

/// Pinned [`MixFeatures`] rows, one per encoding axis: no co-runners,
/// a homogeneous group, and a heterogeneous mix whose listing order is
/// part of the canonical byte stream. Literal values, not
/// baseline-derived, so the lines pin the *encoding* alone.
fn pinned_mixes() -> Vec<(&'static str, MixFeatures)> {
    let target = |co: Vec<CoVector>| MixFeatures {
        target: "cg".into(),
        pstate: 2,
        base_time_s: 123.456,
        target_mem: 1.8e-2,
        target_cm_ca: 0.5,
        target_ca_ins: 0.036,
        co,
    };
    let co = |app: &str, count: usize, mem: f64| CoVector {
        app: app.into(),
        count,
        memory_intensity: mem,
        cm_ca: 0.25,
        ca_ins: 0.012,
    };
    vec![
        ("mix-solo", target(vec![])),
        ("mix-homogeneous", target(vec![co("ep", 3, 1.1e-5)])),
        (
            "mix-heterogeneous",
            target(vec![co("ep", 1, 1.1e-5), co("streamcluster", 2, 2.4e-2)]),
        ),
        (
            "mix-heterogeneous-swapped",
            target(vec![co("streamcluster", 2, 2.4e-2), co("ep", 1, 1.1e-5)]),
        ),
    ]
}

fn render(scenarios: &[(&str, ScenarioIr)], mixes: &[(&str, MixFeatures)]) -> String {
    let mut out = String::new();
    for (name, ir) in scenarios {
        out.push_str(&format!("{name} = {:#034x}\n", ir.digest()));
    }
    for (name, mix) in mixes {
        out.push_str(&format!("{name} = {:#034x}\n", mix.digest()));
    }
    out
}

#[test]
fn scenario_digests_match_the_checked_in_fixture() {
    let scenarios = pinned_scenarios();
    let rendered = render(&scenarios, &pinned_mixes());
    let path = fixture_path();
    if std::env::var("COLOC_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
    }
    let on_disk = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (run with COLOC_REGEN_FIXTURES=1)", path.display()));
    assert_eq!(
        on_disk, rendered,
        "canonical ScenarioIr encoding changed: run-cache keys and sweep \
         checkpoints in the field would be invalidated. If intentional, \
         regenerate with COLOC_REGEN_FIXTURES=1."
    );
}

#[test]
fn pinned_digests_are_pairwise_distinct() {
    let scenarios = pinned_scenarios();
    for (i, (na, a)) in scenarios.iter().enumerate() {
        for (nb, b) in &scenarios[i + 1..] {
            assert_ne!(a.digest(), b.digest(), "{na} collides with {nb}");
        }
    }
}

#[test]
fn mix_digests_are_pairwise_distinct_and_order_sensitive() {
    let mixes = pinned_mixes();
    for (i, (na, a)) in mixes.iter().enumerate() {
        for (nb, b) in &mixes[i + 1..] {
            assert_ne!(a.digest(), b.digest(), "{na} collides with {nb}");
        }
    }
    // The two heterogeneous rows are the same *mix* in different listing
    // order: the canonical encoding keeps the order (the digest is an
    // identity, not a set hash), while the lowered feature sums — two
    // commuting float adds — are bit-identical either way. Both facts
    // are contracts.
    let by_name = |n: &str| &mixes.iter().find(|(m, _)| *m == n).unwrap().1;
    let fwd = by_name("mix-heterogeneous");
    let rev = by_name("mix-heterogeneous-swapped");
    assert_ne!(fwd.digest(), rev.digest(), "listing order must be encoded");
    let (lf, lr) = (fwd.lower(), rev.lower());
    for i in 0..8 {
        assert_eq!(lf[i].to_bits(), lr[i].to_bits(), "lowered feature {i}");
    }
}

#[test]
fn default_schedules_leave_every_pinned_digest_unchanged() {
    // An all-default schedule vector is canonicalized away: attaching it
    // to *any* scenario must reproduce the schedule-free digest exactly.
    // This is the compatibility contract that keeps pre-event cache
    // entries, checkpoints, and corpus digests valid.
    for (name, ir) in pinned_scenarios() {
        let n = ir.workload.len();
        let with_defaults = ir.clone().with_schedules(vec![GroupSchedule::default(); n]);
        if ir
            .schedules
            .as_deref()
            .is_none_or(|s| s.iter().all(GroupSchedule::is_default))
        {
            assert_eq!(
                ir.digest(),
                with_defaults.digest(),
                "{name}: default schedules moved the digest"
            );
        } else {
            // A genuinely scheduled scenario must NOT collide with its
            // lockstep shadow — the block has to be hashed when present.
            assert_ne!(
                ir.digest(),
                with_defaults.digest(),
                "{name}: schedule block is not part of the digest"
            );
        }
    }
}

#[test]
fn digest64_is_stable_too() {
    // `Lab::plan_digest` folds the 64-bit projection; pin its relation to
    // the full digest rather than a second fixture.
    for (name, ir) in pinned_scenarios() {
        let d = ir.digest();
        assert_eq!(
            ir.digest64(),
            (d >> 64) as u64 ^ d as u64,
            "{name}: digest64 is no longer the folded 128-bit digest"
        );
    }
}
