//! Concurrency and compatibility properties of the sharded [`RunCache`].
//!
//! Two contracts pinned here, from the service PR that sharded the
//! cache:
//!
//! * **Concurrent soundness** — under an 8-thread storm of overlapping
//!   lookups, the aggregate counters stay consistent (`hits + misses`
//!   equals the exact number of lookups), every returned outcome is
//!   bit-identical to a direct engine run (no lost or torn insertions),
//!   and the per-shard LRU bound holds throughout.
//! * **Single-shard compatibility** — `with_shards(cap, 1)` reproduces
//!   the pre-sharding single-mutex cache exactly on a pinned access
//!   plan: one map, one lock, one global eviction order. The old cache
//!   evicted in insertion (FIFO) order and never promoted on hit, which
//!   LRU reproduces verbatim on any hit-free plan; the hit-bearing plan
//!   below pins the one intentional divergence (promote-on-hit) against
//!   an explicit model so the semantics can never drift silently.

use coloc_machine::cachesim::StackDistanceDist;
use coloc_machine::{presets, AppPhase, AppProfile, Machine, RunCache, RunOptions, RunnerGroup};
use std::collections::VecDeque;

fn app(name: &str, span: usize) -> AppProfile {
    AppProfile::single_phase(
        name,
        30e9,
        AppPhase {
            weight: 1.0,
            dist: StackDistanceDist::power_law(span, 0.35, 0.02),
            accesses_per_instr: 0.03,
            cpi_base: 0.9,
            mlp: 4.0,
        },
    )
}

fn wl(span: usize) -> Vec<RunnerGroup> {
    vec![
        RunnerGroup::solo(app("t", span)),
        RunnerGroup {
            app: app("c", span / 2),
            count: 2,
        },
    ]
}

/// Eight threads hammer a cache whose capacity is far below the working
/// set, with heavily overlapping keys. Everything observable must stay
/// exact.
#[test]
fn eight_thread_storm_keeps_counters_and_outcomes_exact() {
    let machine = Machine::new(presets::xeon_e5649()).unwrap();
    let opts = RunOptions::default();

    // 12 distinct scenarios, capacity 8 across 4 shards: misses, hits
    // and evictions all occur concurrently.
    let spans: Vec<usize> = (0..12).map(|i| 100_000 + 20_000 * i).collect();
    let workloads: Vec<Vec<RunnerGroup>> = spans.iter().map(|&s| wl(s)).collect();

    // Ground truth, computed single-threaded outside the cache.
    let direct: Vec<u64> = workloads
        .iter()
        .map(|w| machine.run(w, &opts).unwrap().wall_time_s.to_bits())
        .collect();

    let cache = RunCache::with_shards(8, 4);
    assert_eq!(cache.shard_count(), 4);
    assert_eq!(cache.shard_capacity(), 2);

    const THREADS: usize = 8;
    const PASSES: usize = 4;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = &cache;
                let machine = &machine;
                let workloads = &workloads;
                let direct = &direct;
                let opts = &opts;
                scope.spawn(move || {
                    // Each thread walks the working set from a different
                    // offset so shard locks genuinely interleave.
                    for pass in 0..PASSES {
                        for i in 0..workloads.len() {
                            let k = (i + t * 5 + pass) % workloads.len();
                            let out = cache.run(machine, &workloads[k], opts).unwrap();
                            assert_eq!(
                                out.wall_time_s.to_bits(),
                                direct[k],
                                "thread {t} got a wrong outcome for workload {k}"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });

    let s = cache.stats();
    let lookups = (THREADS * PASSES * workloads.len()) as u64;
    // Counter conservation: every lookup was exactly a hit or a miss.
    assert_eq!(s.hits + s.misses, lookups, "{s:?}");
    // The working set exceeds capacity, so both paths were exercised.
    assert!(s.hits > 0, "{s:?}");
    assert!(s.misses >= workloads.len() as u64, "{s:?}");
    // Conservation of entries: inserted = resident + evicted. (Every
    // miss inserts; concurrent same-key misses insert-if-vacant, so
    // misses can exceed insertions — never the reverse.)
    assert!(s.len as u64 + s.evictions <= s.misses, "{s:?}");
    // Per-shard LRU bound: 4 shards × 2 entries.
    assert!(s.len <= 8, "{s:?}");

    // No lost insertions: after a full quiet pass, every scenario is
    // answerable and still bit-exact.
    for (k, w) in workloads.iter().enumerate() {
        let out = cache.run(&machine, w, &opts).unwrap();
        assert_eq!(out.wall_time_s.to_bits(), direct[k]);
    }
}

/// Reference model of the cache's replacement policy: a capacity-bound
/// map with a recency queue. `promote_on_hit = false` models the
/// pre-sharding FIFO cache; `true` models the sharded LRU.
struct ModelCache {
    capacity: usize,
    promote_on_hit: bool,
    order: VecDeque<u128>,
}

impl ModelCache {
    /// Apply one access; returns `(hit, evicted_key)`.
    fn access(&mut self, key: u128) -> (bool, Option<u128>) {
        if self.order.contains(&key) {
            if self.promote_on_hit {
                self.order.retain(|&k| k != key);
                self.order.push_back(key);
            }
            return (true, None);
        }
        self.order.push_back(key);
        let evicted = if self.order.len() > self.capacity {
            self.order.pop_front()
        } else {
            None
        };
        (false, evicted)
    }
}

/// Drive `cache` and the model through the same pinned access plan and
/// assert they agree access-by-access: same hit/miss, same residency
/// after every step (checked via counter deltas, which observe the
/// internal state without re-running anything).
fn assert_matches_model(cache: &RunCache, model: &mut ModelCache, plan: &[usize]) {
    let machine = Machine::new(presets::xeon_e5649()).unwrap();
    let opts = RunOptions::default();
    for (step, &span) in plan.iter().enumerate() {
        let w = wl(span);
        let key = cache.key_for(&machine, &w, &opts, None);
        let before = cache.stats();
        let (out, was_hit) = cache.run_with_status(&machine, &w, &opts).unwrap();
        assert!(out.wall_time_s.is_finite());
        let after = cache.stats();
        let (model_hit, model_evicted) = model.access(key);
        assert_eq!(
            was_hit, model_hit,
            "step {step} (span {span}): cache and model disagree on hit/miss"
        );
        assert_eq!(
            after.evictions - before.evictions,
            u64::from(model_evicted.is_some()),
            "step {step} (span {span}): eviction behavior diverged"
        );
        assert_eq!(
            after.len,
            model.order.len(),
            "step {step}: residency diverged"
        );
    }
}

/// On a hit-free plan, promote-on-hit never fires, so the sharded LRU
/// at shard count 1 must walk the exact eviction sequence the old FIFO
/// single-mutex cache walked.
#[test]
fn single_shard_reproduces_fifo_eviction_order_on_hit_free_plan() {
    // 6 distinct scenarios through a 3-entry, 1-shard cache; every
    // access is a first sight, twice over (the second round re-misses
    // everything the first round evicted).
    let plan: Vec<usize> = vec![
        100_000, 140_000, 180_000, 220_000, 260_000, 300_000, // fill + evict
        100_000, 140_000, 180_000, // all evicted by now: miss again
    ];
    let cache = RunCache::with_shards(3, 1);
    assert_eq!(cache.shard_count(), 1);
    let mut fifo = ModelCache {
        capacity: 3,
        promote_on_hit: false,
        order: VecDeque::new(),
    };
    assert_matches_model(&cache, &mut fifo, &plan);
    let s = cache.stats();
    assert_eq!(s.hits, 0, "the plan is hit-free by construction");
    assert_eq!(s.misses, plan.len() as u64);

    // The same plan against an LRU model also matches — with no hits
    // the two policies are indistinguishable, which is exactly why the
    // sharded cache is a drop-in for the old one on miss-dominated
    // sweeps.
    let cache2 = RunCache::with_shards(3, 1);
    let mut lru = ModelCache {
        capacity: 3,
        promote_on_hit: true,
        order: VecDeque::new(),
    };
    assert_matches_model(&cache2, &mut lru, &plan);
}

/// A hit-bearing pinned plan, checked against the LRU model: documents
/// the one intentional behavior change vs the old FIFO cache
/// (promote-on-hit) precisely, so future edits cannot drift it.
#[test]
fn single_shard_follows_lru_model_on_hit_bearing_plan() {
    let plan: Vec<usize> = vec![
        100_000, 140_000, 180_000, // fill (cap 3)
        100_000, // hit: promotes the oldest entry
        220_000, // insert: evicts 140k (not the promoted 100k)
        140_000, // miss again — FIFO would have kept it and hit
        100_000, // still resident: hit
    ];
    let cache = RunCache::with_shards(3, 1);
    let mut lru = ModelCache {
        capacity: 3,
        promote_on_hit: true,
        order: VecDeque::new(),
    };
    assert_matches_model(&cache, &mut lru, &plan);
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.evictions), (2, 5, 2), "{s:?}");
}
