//! Audit tests for run observation: stage profiles and segment traces
//! must *describe* a run without perturbing it, and their accounting has
//! to be physically possible — per-stage time can never exceed the time
//! the whole run took, and event-granular counts must add up to the
//! schedule that was actually dispatched.

use coloc_cachesim::StackDistanceDist;
use coloc_machine::{
    presets, AppPhase, AppProfile, GroupSchedule, Machine, RunOptions, RunnerGroup, StageId,
    StageProfile,
};

fn hungry(name: &str, instructions: f64) -> AppProfile {
    AppProfile::single_phase(
        name,
        instructions,
        AppPhase {
            weight: 1.0,
            dist: StackDistanceDist::power_law(1_000_000, 0.35, 0.02),
            accesses_per_instr: 0.03,
            cpi_base: 0.9,
            mlp: 4.0,
        },
    )
}

fn scheduled_fixture() -> (Machine, Vec<RunnerGroup>, Vec<GroupSchedule>, RunOptions) {
    let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
    let workload = vec![
        RunnerGroup::solo(hungry("target", 2e9)),
        RunnerGroup {
            app: hungry("windowed", 1e9),
            count: 2,
        },
        RunnerGroup {
            app: hungry("late", 1e9),
            count: 1,
        },
    ];
    // Probe the horizon so the window is guaranteed to open and close
    // mid-run: departure at half the co-located wall, arrival at an
    // eighth of it.
    let probe = machine
        .run(&workload, &RunOptions::default())
        .expect("probe run")
        .wall_time_s;
    let schedules = vec![
        GroupSchedule::default(),
        GroupSchedule {
            departure_tick: Some(probe * 0.5),
            ..GroupSchedule::default()
        },
        GroupSchedule {
            arrival_tick: probe * 0.125,
            ..GroupSchedule::default()
        },
    ];
    (machine, workload, schedules, RunOptions::default())
}

#[test]
fn stage_nanos_never_exceed_the_run_wall_clock() {
    let (machine, workload, schedules, opts) = scheduled_fixture();
    let mut profile = StageProfile::new();
    let started = std::time::Instant::now();
    let outcome = machine
        .run_scheduled_instrumented(&workload, Some(&schedules), &opts, &mut profile)
        .expect("instrumented run");
    let elapsed = started.elapsed().as_nanos() as u64;

    // Stages are timed disjointly inside the run, so their sum is a
    // lower-bound decomposition of the run's own wall clock: any stage
    // (and the total) claiming more time than the run took is
    // double-counting.
    let mut total_nanos = 0u64;
    for (id, stats) in profile.iter() {
        assert!(
            stats.nanos <= elapsed,
            "stage {} claims {}ns of a {}ns run",
            id.label(),
            stats.nanos,
            elapsed
        );
        total_nanos += stats.nanos;
    }
    assert!(
        total_nanos <= elapsed,
        "stages claim {total_nanos}ns of a {elapsed}ns run"
    );
    assert!(outcome.wall_time_s > 0.0);
}

#[test]
fn event_dispatch_is_counted_iff_events_fire() {
    let (machine, workload, schedules, opts) = scheduled_fixture();

    // The scheduled run dispatches events, and says so.
    let mut scheduled = StageProfile::new();
    machine
        .run_scheduled_instrumented(&workload, Some(&schedules), &opts, &mut scheduled)
        .expect("instrumented run");
    assert!(
        scheduled.get(StageId::EventDispatch).invocations > 0,
        "no event dispatch recorded for a scheduled run"
    );

    // A lockstep run of the same workload never touches the stage.
    let mut lockstep = StageProfile::new();
    machine
        .run_instrumented(&workload, &opts, &mut lockstep)
        .expect("instrumented run");
    assert_eq!(
        lockstep.get(StageId::EventDispatch).invocations,
        0,
        "event dispatch recorded for a lockstep run"
    );
    // ...and neither does an all-default schedule (the degenerate case).
    let defaults = vec![GroupSchedule::default(); workload.len()];
    let mut degenerate = StageProfile::new();
    machine
        .run_scheduled_instrumented(&workload, Some(&defaults), &opts, &mut degenerate)
        .expect("instrumented run");
    assert_eq!(degenerate.get(StageId::EventDispatch).invocations, 0);
}

#[test]
fn observation_does_not_perturb_the_outcome() {
    let (machine, workload, schedules, opts) = scheduled_fixture();
    let plain = machine
        .run_scheduled(&workload, Some(&schedules), &opts)
        .expect("plain run");
    let mut profile = StageProfile::new();
    let instrumented = machine
        .run_scheduled_instrumented(&workload, Some(&schedules), &opts, &mut profile)
        .expect("instrumented run");
    let (traced, _) = machine
        .run_scheduled_traced(&workload, Some(&schedules), &opts, 64)
        .expect("traced run");
    for other in [&instrumented, &traced] {
        assert_eq!(plain.wall_time_s.to_bits(), other.wall_time_s.to_bits());
        assert_eq!(plain.segments, other.segments);
        assert_eq!(plain.fp_iterations, other.fp_iterations);
        for (a, b) in plain.counters.iter().zip(&other.counters) {
            assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
            assert_eq!(a.instructions.to_bits(), b.instructions.to_bits());
        }
    }
}

#[test]
fn segment_trace_accounts_for_every_dispatched_event() {
    let (machine, workload, schedules, opts) = scheduled_fixture();
    // Capacity covers the whole run, so no record is evicted and the
    // event counts must add up exactly: one departure + one arrival.
    let (outcome, trace) = machine
        .run_scheduled_traced(&workload, Some(&schedules), &opts, 1_000_000)
        .expect("traced run");
    assert_eq!(trace.records().count(), outcome.segments);
    let fired: u32 = trace.records().map(|r| r.events).sum();
    assert_eq!(fired, 2, "expected exactly one departure and one arrival");

    // Era structure: residency shrinks after the departure, grows after
    // the arrival, and is always within [1, groups].
    let n_groups = workload.len();
    for record in trace.records() {
        assert!(record.resident_groups >= 1 && record.resident_groups <= n_groups);
        assert!(record.dt >= 0.0);
    }
    // A lockstep trace reports full residency and zero events everywhere.
    let (_, lockstep) = machine
        .run_traced(&workload, &opts, 1_000_000)
        .expect("traced run");
    for record in lockstep.records() {
        assert_eq!(record.events, 0);
        assert_eq!(record.resident_groups, n_groups);
    }
}
