//! Property-based tests for the co-execution engine's invariants.

use coloc_cachesim::StackDistanceDist;
use coloc_machine::{
    presets, AppPhase, AppProfile, EventKind, EventQueue, GroupSchedule, Machine, RunOptions,
    RunnerGroup,
};
use proptest::prelude::*;

fn app_strategy() -> impl Strategy<Value = AppProfile> {
    (
        10u64..200,    // instructions, billions
        1usize..400,   // working set, thousands of lines
        0.2f64..1.8,   // locality alpha
        1e-4f64..0.05, // churn
        1e-4f64..0.05, // accesses per instruction
        0.5f64..1.5,   // base CPI
        1.0f64..8.0,   // MLP
    )
        .prop_map(|(gi, ws, alpha, churn, apki, cpi, mlp)| {
            AppProfile::single_phase(
                "prop",
                gi as f64 * 1e9,
                AppPhase {
                    weight: 1.0,
                    dist: StackDistanceDist::power_law(ws * 1000, alpha, churn),
                    accesses_per_instr: apki,
                    cpi_base: cpi,
                    mlp,
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation and sanity of counters for arbitrary solo runs.
    #[test]
    fn solo_run_counters_are_consistent(app in app_strategy(), pstate in 0usize..6) {
        let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let out = m.run_solo(&app, &RunOptions { pstate, ..Default::default() }).unwrap();
        let c = &out.counters[0];
        // All instructions retired, exactly one completion.
        prop_assert!((c.instructions - app.instructions).abs() < 1e-3 * app.instructions);
        prop_assert_eq!(c.completed_runs, 1);
        // Misses never exceed accesses; counters non-negative.
        prop_assert!(c.llc_misses <= c.llc_accesses + 1e-9);
        prop_assert!(c.llc_misses >= 0.0 && c.llc_accesses >= 0.0);
        // Cycles consistent with wall time and frequency.
        let freq = m.spec().freq_hz(pstate).unwrap();
        prop_assert!((c.cycles - out.wall_time_s * freq).abs() < 1.0);
        // Time is bounded below by pure compute and above by a stall bound.
        let compute = app.instructions * app.phases[0].cpi_base / freq;
        prop_assert!(out.wall_time_s >= compute * 0.999);
        prop_assert!(out.wall_time_s <= compute * 1000.0);
    }

    /// Co-location never speeds the target up, and the target's solo time
    /// is a lower bound.
    #[test]
    fn co_location_never_helps(
        target in app_strategy(),
        co in app_strategy(),
        n in 1usize..6,
    ) {
        let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let solo = m.run_solo(&target, &RunOptions::default()).unwrap();
        let wl = vec![
            RunnerGroup::solo(target.clone()),
            RunnerGroup { app: co, count: n },
        ];
        let shared = m.run(&wl, &RunOptions::default()).unwrap();
        prop_assert!(
            shared.wall_time_s >= solo.wall_time_s * 0.999,
            "co-location sped target up: {} vs {}",
            shared.wall_time_s,
            solo.wall_time_s
        );
        // Target misses can only grow under contention.
        prop_assert!(
            shared.counters[0].llc_misses >= solo.counters[0].llc_misses * 0.999
        );
    }

    /// Frequency scaling: lower P-states never make anything faster, and
    /// the slowdown never exceeds the frequency ratio.
    #[test]
    fn pstate_scaling_is_bounded(app in app_strategy()) {
        let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let fast = m.run_solo(&app, &RunOptions::default()).unwrap();
        let slow = m.run_solo(&app, &RunOptions { pstate: 5, ..Default::default() }).unwrap();
        let ratio = slow.wall_time_s / fast.wall_time_s;
        let freq_ratio = 2.53 / 1.60;
        prop_assert!(ratio >= 0.999, "lower frequency sped things up: {ratio}");
        prop_assert!(ratio <= freq_ratio * 1.001, "{ratio} > frequency ratio");
    }

    /// Partitioned-LLC runs conserve the same instruction totals.
    #[test]
    fn partitioning_preserves_work(target in app_strategy(), n in 1usize..5) {
        let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let wl = vec![
            RunnerGroup::solo(target.clone()),
            RunnerGroup { app: target.clone(), count: n },
        ];
        let parts = m
            .run(&wl, &RunOptions { llc_partitioned: true, ..Default::default() })
            .unwrap();
        prop_assert!(
            (parts.counters[0].instructions - target.instructions).abs()
                < 1e-3 * target.instructions
        );
        // Equal fixed shares.
        let slice = m.spec().llc_bytes as f64 / (n + 1) as f64;
        prop_assert!((parts.avg_llc_share_bytes[0] - slice).abs() < 1.0);
    }

    /// The event queue's pop order is a *total* order on `(tick, seq)`:
    /// ticks never move backwards, and events at equal ticks pop in push
    /// (sequence) order — the stable tie-break that makes the scheduler
    /// deterministic.
    #[test]
    fn event_queue_pop_order_is_total_and_stable(
        ticks in prop::collection::vec(0u32..16, 1..64),
    ) {
        // Draw from a small integer palette so equal ticks are common —
        // the tie-break is the property under test.
        let mut queue = EventQueue::new();
        for (i, &t) in ticks.iter().enumerate() {
            // Alternate kinds; the order must not depend on the payload.
            let kind = if i % 2 == 0 {
                EventKind::Arrival(i)
            } else {
                EventKind::Departure(i)
            };
            queue.push(f64::from(t) * 0.125, kind);
        }
        prop_assert_eq!(queue.len(), ticks.len());

        let mut popped = Vec::new();
        while let Some(next) = queue.peek_tick() {
            let ev = queue.pop().unwrap();
            // `peek_tick` previews exactly the event `pop` returns.
            prop_assert_eq!(next.to_bits(), ev.tick.to_bits());
            popped.push(ev);
        }
        prop_assert_eq!(popped.len(), ticks.len());
        for pair in popped.windows(2) {
            // Ticks are non-decreasing…
            prop_assert!(pair[1].tick >= pair[0].tick, "tick moved backwards");
            // …and ties break by sequence number, i.e. push order.
            if pair[0].tick == pair[1].tick {
                prop_assert!(pair[0].seq < pair[1].seq, "tie-break not stable");
            }
        }
    }

    /// `pop_through` drains exactly the prefix at or before the horizon,
    /// in the same total order `pop` would produce.
    #[test]
    fn event_queue_pop_through_respects_the_horizon(
        ticks in prop::collection::vec(0u32..16, 1..48),
        horizon in 0u32..16,
    ) {
        let horizon = f64::from(horizon) * 0.125;
        let mut queue = EventQueue::new();
        let mut mirror = EventQueue::new();
        for (i, &t) in ticks.iter().enumerate() {
            queue.push(f64::from(t) * 0.125, EventKind::Arrival(i));
            mirror.push(f64::from(t) * 0.125, EventKind::Arrival(i));
        }
        let fired = queue.pop_through(horizon);
        // Everything fired is within the horizon; everything left is past it.
        for ev in &fired {
            prop_assert!(ev.tick <= horizon);
        }
        if let Some(next) = queue.peek_tick() {
            prop_assert!(next > horizon);
        }
        // The fired prefix matches a pop-by-pop drain exactly.
        for ev in &fired {
            let expect = mirror.pop().unwrap();
            prop_assert_eq!(expect.tick.to_bits(), ev.tick.to_bits());
            prop_assert_eq!(expect.seq, ev.seq);
        }
    }

    /// Scheduled (event-mode) runs are deterministic: re-running the same
    /// schedule yields bit-identical outcomes, and a departing co-runner
    /// never makes the target slower than the same co-runner staying.
    #[test]
    fn scheduled_runs_are_deterministic(
        target in app_strategy(),
        co in app_strategy(),
        n in 1usize..4,
        stay_num in 1u32..8,
    ) {
        let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let wl = vec![
            RunnerGroup::solo(target.clone()),
            RunnerGroup { app: co, count: n },
        ];
        let solo = m.run_solo(&target, &RunOptions::default()).unwrap();
        // Departure mid-run, as a binary fraction of the solo wall time
        // (any exact value works; exactness just keeps the test honest).
        let depart = solo.wall_time_s * (f64::from(stay_num) / 8.0);
        let schedules = vec![
            GroupSchedule::default(),
            GroupSchedule { departure_tick: Some(depart), ..GroupSchedule::default() },
        ];
        let a = m.run_scheduled(&wl, Some(&schedules), &RunOptions::default()).unwrap();
        let b = m.run_scheduled(&wl, Some(&schedules), &RunOptions::default()).unwrap();
        prop_assert_eq!(a.wall_time_s.to_bits(), b.wall_time_s.to_bits());
        for (ca, cb) in a.counters.iter().zip(&b.counters) {
            prop_assert_eq!(ca.cycles.to_bits(), cb.cycles.to_bits());
            prop_assert_eq!(ca.instructions.to_bits(), cb.instructions.to_bits());
        }
        // Leaving early can only help the target (or leave it unchanged).
        let full = m.run(&wl, &RunOptions::default()).unwrap();
        prop_assert!(
            a.wall_time_s <= full.wall_time_s * 1.001,
            "departure at {} made the target slower: {} vs {}",
            depart, a.wall_time_s, full.wall_time_s
        );
        prop_assert!(a.wall_time_s >= solo.wall_time_s * 0.999);
    }
}
