//! Property-based tests for the co-execution engine's invariants.

use coloc_cachesim::StackDistanceDist;
use coloc_machine::{presets, AppPhase, AppProfile, Machine, RunOptions, RunnerGroup};
use proptest::prelude::*;

fn app_strategy() -> impl Strategy<Value = AppProfile> {
    (
        10u64..200,    // instructions, billions
        1usize..400,   // working set, thousands of lines
        0.2f64..1.8,   // locality alpha
        1e-4f64..0.05, // churn
        1e-4f64..0.05, // accesses per instruction
        0.5f64..1.5,   // base CPI
        1.0f64..8.0,   // MLP
    )
        .prop_map(|(gi, ws, alpha, churn, apki, cpi, mlp)| {
            AppProfile::single_phase(
                "prop",
                gi as f64 * 1e9,
                AppPhase {
                    weight: 1.0,
                    dist: StackDistanceDist::power_law(ws * 1000, alpha, churn),
                    accesses_per_instr: apki,
                    cpi_base: cpi,
                    mlp,
                },
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation and sanity of counters for arbitrary solo runs.
    #[test]
    fn solo_run_counters_are_consistent(app in app_strategy(), pstate in 0usize..6) {
        let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let out = m.run_solo(&app, &RunOptions { pstate, ..Default::default() }).unwrap();
        let c = &out.counters[0];
        // All instructions retired, exactly one completion.
        prop_assert!((c.instructions - app.instructions).abs() < 1e-3 * app.instructions);
        prop_assert_eq!(c.completed_runs, 1);
        // Misses never exceed accesses; counters non-negative.
        prop_assert!(c.llc_misses <= c.llc_accesses + 1e-9);
        prop_assert!(c.llc_misses >= 0.0 && c.llc_accesses >= 0.0);
        // Cycles consistent with wall time and frequency.
        let freq = m.spec().freq_hz(pstate).unwrap();
        prop_assert!((c.cycles - out.wall_time_s * freq).abs() < 1.0);
        // Time is bounded below by pure compute and above by a stall bound.
        let compute = app.instructions * app.phases[0].cpi_base / freq;
        prop_assert!(out.wall_time_s >= compute * 0.999);
        prop_assert!(out.wall_time_s <= compute * 1000.0);
    }

    /// Co-location never speeds the target up, and the target's solo time
    /// is a lower bound.
    #[test]
    fn co_location_never_helps(
        target in app_strategy(),
        co in app_strategy(),
        n in 1usize..6,
    ) {
        let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let solo = m.run_solo(&target, &RunOptions::default()).unwrap();
        let wl = vec![
            RunnerGroup::solo(target.clone()),
            RunnerGroup { app: co, count: n },
        ];
        let shared = m.run(&wl, &RunOptions::default()).unwrap();
        prop_assert!(
            shared.wall_time_s >= solo.wall_time_s * 0.999,
            "co-location sped target up: {} vs {}",
            shared.wall_time_s,
            solo.wall_time_s
        );
        // Target misses can only grow under contention.
        prop_assert!(
            shared.counters[0].llc_misses >= solo.counters[0].llc_misses * 0.999
        );
    }

    /// Frequency scaling: lower P-states never make anything faster, and
    /// the slowdown never exceeds the frequency ratio.
    #[test]
    fn pstate_scaling_is_bounded(app in app_strategy()) {
        let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let fast = m.run_solo(&app, &RunOptions::default()).unwrap();
        let slow = m.run_solo(&app, &RunOptions { pstate: 5, ..Default::default() }).unwrap();
        let ratio = slow.wall_time_s / fast.wall_time_s;
        let freq_ratio = 2.53 / 1.60;
        prop_assert!(ratio >= 0.999, "lower frequency sped things up: {ratio}");
        prop_assert!(ratio <= freq_ratio * 1.001, "{ratio} > frequency ratio");
    }

    /// Partitioned-LLC runs conserve the same instruction totals.
    #[test]
    fn partitioning_preserves_work(target in app_strategy(), n in 1usize..5) {
        let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let wl = vec![
            RunnerGroup::solo(target.clone()),
            RunnerGroup { app: target.clone(), count: n },
        ];
        let parts = m
            .run(&wl, &RunOptions { llc_partitioned: true, ..Default::default() })
            .unwrap();
        prop_assert!(
            (parts.counters[0].instructions - target.instructions).abs()
                < 1e-3 * target.instructions
        );
        // Equal fixed shares.
        let slice = m.spec().llc_bytes as f64 / (n + 1) as f64;
        prop_assert!((parts.avg_llc_share_bytes[0] - slice).abs() < 1.0);
    }
}
