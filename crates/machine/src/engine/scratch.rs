//! Reusable per-run buffers for the segment solver.

use super::RunnerGroup;
use coloc_cachesim::{MissRateCurve, SharedApp};

/// Reusable per-run buffers for the segment solver. Built once per run;
/// every per-segment quantity lives here so the hot loop allocates
/// nothing. `instances` holds one [`SharedApp`] per core-resident app
/// instance; its MRC is re-cloned only when that group's phase changes,
/// not every segment.
pub(crate) struct RunScratch {
    /// One entry per instance, grouped contiguously by workload group.
    pub(crate) instances: Vec<SharedApp>,
    /// Owning group of each instance.
    pub(crate) owner_group: Vec<usize>,
    /// Index of the first instance of each group (instances within a group
    /// are symmetric, so reading the first suffices — this replaces the
    /// O(groups × instances) `position()` scans).
    pub(crate) group_first: Vec<usize>,
    /// Phase currently loaded into each group's instance MRCs.
    pub(crate) loaded_phase: Vec<usize>,
    /// LLC occupancy per instance, bytes; refilled to the equal split at
    /// the start of each segment (same numerics as a fresh allocation).
    pub(crate) occ: Vec<f64>,
    /// Current phase index and end boundary per group.
    pub(crate) phase_info: Vec<(usize, f64)>,
    /// Per-group stationary rates for the segment being solved.
    pub(crate) ips: Vec<f64>,
    pub(crate) miss_rate: Vec<f64>,
    pub(crate) access_rate: Vec<f64>,
    pub(crate) occ_per_instance: Vec<f64>,
}

impl RunScratch {
    pub(crate) fn new(workload: &[RunnerGroup], mrcs: &[Vec<MissRateCurve>]) -> RunScratch {
        let n_groups = workload.len();
        let mut instances = Vec::new();
        let mut owner_group = Vec::new();
        let mut group_first = Vec::with_capacity(n_groups);
        for (gi, g) in workload.iter().enumerate() {
            group_first.push(instances.len());
            let mrc = &mrcs[gi][0];
            for _ in 0..g.count {
                instances.push(SharedApp {
                    access_rate: 0.0,
                    mrc: mrc.clone(),
                });
                owner_group.push(gi);
            }
        }
        let n_inst = instances.len();
        RunScratch {
            instances,
            owner_group,
            group_first,
            loaded_phase: vec![0; n_groups],
            occ: vec![0.0; n_inst],
            phase_info: vec![(0, 0.0); n_groups],
            ips: vec![0.0; n_groups],
            miss_rate: vec![0.0; n_groups],
            access_rate: vec![0.0; n_groups],
            occ_per_instance: vec![0.0; n_groups],
        }
    }

    /// Load each group's current-phase MRC into its instances, cloning
    /// only for groups whose phase actually changed.
    pub(crate) fn sync_phases(&mut self, mrcs: &[Vec<MissRateCurve>]) {
        for (gi, group_mrcs) in mrcs.iter().enumerate() {
            let phase = self.phase_info[gi].0;
            if self.loaded_phase[gi] != phase {
                self.loaded_phase[gi] = phase;
                let mrc = &group_mrcs[phase];
                let start = self.group_first[gi];
                let end = self
                    .group_first
                    .get(gi + 1)
                    .copied()
                    .unwrap_or(self.instances.len());
                for inst in &mut self.instances[start..end] {
                    inst.mrc = mrc.clone();
                }
            }
        }
    }
}
