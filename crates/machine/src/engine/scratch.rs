//! Reusable per-run buffers for the segment solver.

use super::GroupRef;

/// Reusable per-run buffers for the segment solver, in struct-of-arrays
/// form: every per-instance quantity the fixed-point loop touches is a
/// contiguous `f64` (or `usize`) slice indexed by instance, with instances
/// grouped contiguously by workload group. Built once per run; the hot
/// loop allocates nothing and iterates flat slices. Miss-rate curves are
/// *not* stored here — stages read them straight from the per-run
/// [`super::SegmentEnv::mrcs`] table via each group's current phase, so a
/// phase change costs an index update instead of re-cloning curves into
/// per-instance structs.
pub(crate) struct RunScratch {
    /// Index of the first instance of each group (instances within a group
    /// are symmetric, so reading the first suffices — this replaces the
    /// O(groups × instances) `position()` scans). One trailing entry
    /// holds the total instance count, so a group's instances are
    /// `group_first[gi]..group_first[gi + 1]`.
    pub(crate) group_first: Vec<usize>,
    /// LLC occupancy per instance, bytes; refilled to the equal split at
    /// the start of each segment (same numerics as a fresh allocation).
    pub(crate) occ: Vec<f64>,
    /// Per-instance insertion rates for the occupancy step (access rate ×
    /// miss rate at the current share).
    pub(crate) ins: Vec<f64>,
    /// Per-instance incremental-MRC cursor: the bracketing-segment index
    /// the last probe used, fed back to
    /// [`coloc_cachesim::MissRateCurve::miss_rate_hinted`]. Only ever a
    /// hint — a stale cursor re-probes, it never changes a result.
    pub(crate) mrc_hint: Vec<usize>,
    /// Current phase index and end boundary per group.
    pub(crate) phase_info: Vec<(usize, f64)>,
    /// Per-group stationary rates for the segment being solved.
    pub(crate) ips: Vec<f64>,
    pub(crate) miss_rate: Vec<f64>,
    pub(crate) access_rate: Vec<f64>,
    pub(crate) occ_per_instance: Vec<f64>,
    /// Per-group effective frequency for the current segment: the chip's
    /// P-state frequency times the group's clock ratio (per-core DVFS).
    /// Filled by `PStateStage`; `freq_hz × 1.0` is bit-identical to
    /// `freq_hz`, so default schedules reproduce the lockstep numerics.
    pub(crate) freq: Vec<f64>,
}

impl RunScratch {
    pub(crate) fn new(workload: &[GroupRef<'_>]) -> RunScratch {
        let n_groups = workload.len();
        let mut group_first = Vec::with_capacity(n_groups + 1);
        let mut n_inst = 0usize;
        for g in workload {
            group_first.push(n_inst);
            n_inst += g.count;
        }
        group_first.push(n_inst);
        RunScratch {
            group_first,
            occ: vec![0.0; n_inst],
            ins: vec![0.0; n_inst],
            mrc_hint: vec![0; n_inst],
            phase_info: vec![(0, 0.0); n_groups],
            ips: vec![0.0; n_groups],
            miss_rate: vec![0.0; n_groups],
            access_rate: vec![0.0; n_groups],
            occ_per_instance: vec![0.0; n_groups],
            freq: vec![0.0; n_groups],
        }
    }

    /// Total core-resident instances.
    pub(crate) fn n_instances(&self) -> usize {
        self.occ.len()
    }

    /// Instance range of group `gi` (contiguous by construction).
    pub(crate) fn group_range(&self, gi: usize) -> std::ops::Range<usize> {
        self.group_first[gi]..self.group_first[gi + 1]
    }
}
