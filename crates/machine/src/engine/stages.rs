//! The staged segment pipeline.
//!
//! [`super::Machine::run`] advances a workload through piecewise-constant
//! segments; this module decomposes the body of that loop into five
//! explicit [`EpochStage`]s composed by a thin driver in the parent
//! module:
//!
//! ```text
//!   ┌────────────── per segment ───────────────────────────────────┐
//!   │ PState ─► PhaseSync ─► ┌─ fixed-point loop ─────────┐        │
//!   │ (governor:              │  LlcShare ─► DramFixedPoint │ ─►    │
//!   │  frequency,             │  (occupancy,  (latency,     │  Counter
//!   │  iteration budget)      │   miss rates)  damped CPI)  │  Accrual
//!   │                         └── until converged/capped ──┘        │
//!   └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! The decomposition is pure code motion from the former monolithic
//! `Machine::run`: the arithmetic, its ordering, and every early-exit
//! condition are unchanged, so the staged driver is bit-identical to the
//! pre-split engine (the conformance differential suite holds it to
//! that). What the split buys is a seam: each stage is independently
//! testable, and the driver can time every stage invocation into a
//! [`StageProfile`] or record per-segment history into a [`SegmentTrace`]
//! without touching the physics.

use super::scratch::RunScratch;
use super::{CounterBlock, GroupRef, RunOptions, DEGRADED_FP_ITERS, FP_TOLERANCE, MAX_FP_ITERS};
use crate::spec::MachineSpec;
use crate::{MachineError, Result};
use coloc_cachesim::{occupancy_step_rates, MissRateCurve};
use coloc_memsys::{MemorySystem, MISS_BYTES};
use std::collections::VecDeque;
use std::time::Duration;

/// Identity of one pipeline stage, in driver execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StageId {
    /// Governor / P-state application: per-segment operating frequency and
    /// the fixed-point iteration budget for the upcoming solve.
    PState,
    /// Phase bookkeeping: locate each group's current phase and load its
    /// miss-rate curves.
    PhaseSync,
    /// One LLC iteration: access rates from current CPI, an occupancy
    /// step, per-group miss rates.
    LlcShare,
    /// One DRAM/CPI iteration: latency at the aggregate miss bandwidth,
    /// damped CPI update, convergence decision.
    DramFixedPoint,
    /// Segment close-out: segment length, counter accrual, boundary
    /// snapping, completion/restart handling.
    CounterAccrual,
    /// Discrete-event dispatch: popping due arrivals/departures off the
    /// event queue and rebuilding the resident set for the next era.
    /// Zero invocations for lockstep (default-schedule) runs.
    EventDispatch,
}

impl StageId {
    /// Every stage, in driver execution order.
    pub const ALL: [StageId; 6] = [
        StageId::PState,
        StageId::PhaseSync,
        StageId::LlcShare,
        StageId::DramFixedPoint,
        StageId::CounterAccrual,
        StageId::EventDispatch,
    ];

    /// Stable human-readable name (used by `--stage-stats` output).
    pub fn label(self) -> &'static str {
        match self {
            StageId::PState => "pstate",
            StageId::PhaseSync => "phase-sync",
            StageId::LlcShare => "llc-share",
            StageId::DramFixedPoint => "dram-fixed-point",
            StageId::CounterAccrual => "counter-accrual",
            StageId::EventDispatch => "event-dispatch",
        }
    }

    /// Dense index into per-stage arrays (`0..6`, driver order).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// What the driver should do after a stage returns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageFlow {
    /// Proceed to the next stage (or next solver iteration).
    Continue,
    /// The fixed-point solve for this segment is finished (converged or
    /// hit its iteration cap); leave the solver loop.
    SolverDone,
    /// The target application completed; the run is over.
    TargetDone,
}

/// Read-only per-run context shared by every stage: the machine being
/// simulated, the workload, the run options, and the pre-computed
/// per-group, per-phase miss-rate curves.
pub struct SegmentEnv<'a> {
    pub(crate) spec: &'a MachineSpec,
    pub(crate) mem: &'a MemorySystem,
    pub(crate) workload: &'a [GroupRef<'a>],
    pub(crate) opts: &'a RunOptions,
    pub(crate) mrcs: &'a [Vec<std::sync::Arc<MissRateCurve>>],
}

impl<'a> SegmentEnv<'a> {
    /// The machine spec being simulated.
    pub fn spec(&self) -> &MachineSpec {
        self.spec
    }

    /// The workload (group 0 = target), as borrowed group views.
    pub fn workload(&self) -> &[GroupRef<'a>] {
        self.workload
    }

    /// The run options.
    pub fn opts(&self) -> &RunOptions {
        self.opts
    }
}

/// The mutable state a run threads through the pipeline: progress,
/// counters, time accumulators, the CPI warm start, and the per-segment
/// solver scratch. Stages communicate exclusively through this value;
/// fields are crate-private so the contention physics stays sealed behind
/// the stage seam.
pub struct EpochState {
    pub(crate) scratch: RunScratch,
    pub(crate) progress: Vec<f64>,
    pub(crate) counters: Vec<CounterBlock>,
    pub(crate) share_time_acc: Vec<f64>,
    pub(crate) latency_time_acc: f64,
    pub(crate) wall: f64,
    pub(crate) segments: usize,
    pub(crate) fp_iterations: u64,
    pub(crate) degraded: bool,
    pub(crate) worst_residual: f64,
    /// CPI warm start carried across segments for fast convergence.
    pub(crate) cpi: Vec<f64>,
    /// Operating frequency for the current segment (set by [`PStateStage`]).
    pub(crate) freq_hz: f64,
    /// Per-segment fixed-point iteration cap (set by [`PStateStage`]).
    pub(crate) iter_cap: u64,
    /// Iterations spent on the current segment's solve so far.
    pub(crate) seg_iters: u64,
    /// Final relative CPI residual of the current segment's solve (0.0
    /// when converged below [`FP_TOLERANCE`]).
    pub(crate) seg_residual: f64,
    /// DRAM latency of the current segment, ns.
    pub(crate) latency_ns: f64,
    /// Length of the segment just closed, seconds.
    pub(crate) dt: f64,
    pub(crate) target_done: bool,
    /// Per-group clock ratios for the groups in this (era's) workload.
    /// All 1.0 for lockstep runs — `freq_hz × 1.0` is exact, so the
    /// generalization costs no bits on the default path.
    pub(crate) clock: Vec<f64>,
    /// Upper bound on the next segment's length, seconds: the distance
    /// to the next scheduled event. `INFINITY` (never binding) for
    /// lockstep runs; set by the event driver each segment.
    pub(crate) dt_cap: f64,
    /// True when the segment just closed was cut short by `dt_cap`
    /// rather than a phase boundary — the driver's cue to dispatch
    /// events and start a new era.
    pub(crate) event_capped: bool,
}

impl EpochState {
    pub(crate) fn new(workload: &[GroupRef<'_>], freq_hz: f64) -> EpochState {
        let n_groups = workload.len();
        EpochState {
            scratch: RunScratch::new(workload),
            progress: vec![0.0; n_groups],
            counters: vec![CounterBlock::default(); n_groups],
            share_time_acc: vec![0.0; n_groups],
            latency_time_acc: 0.0,
            wall: 0.0,
            segments: 0,
            fp_iterations: 0,
            degraded: false,
            worst_residual: 0.0,
            cpi: workload.iter().map(|g| g.app.phases[0].cpi_base).collect(),
            freq_hz,
            iter_cap: 0,
            seg_iters: 0,
            seg_residual: 0.0,
            latency_ns: 0.0,
            dt: 0.0,
            target_done: false,
            clock: vec![1.0; n_groups],
            dt_cap: f64::INFINITY,
            event_capped: false,
        }
    }

    /// Reset the solver state for a fresh segment: refill occupancies to
    /// the equal split (same numerics as a fresh allocation) and start
    /// latency from idle. Driver glue between [`PhaseSyncStage`] and the
    /// solver loop.
    pub(crate) fn begin_solve(&mut self, env: &SegmentEnv<'_>) {
        let cap = env.spec.llc_bytes;
        let n_inst = self.scratch.n_instances();
        self.scratch
            .occ
            .iter_mut()
            .for_each(|o| *o = cap as f64 / n_inst as f64);
        self.latency_ns = env.mem.spec().idle_latency_ns;
        self.seg_iters = 0;
        self.seg_residual = 0.0;
    }

    /// Segments simulated so far (including the one in flight).
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Fixed-point iterations spent on *closed* segments so far.
    pub fn fp_iterations(&self) -> u64 {
        self.fp_iterations
    }

    /// Simulated wall time accumulated so far, seconds.
    pub fn wall(&self) -> f64 {
        self.wall
    }
}

/// One stage of the segment pipeline. Stages are stateless; everything a
/// stage reads or writes lives in [`SegmentEnv`] / [`EpochState`], which
/// is what makes per-stage instrumentation and isolated testing possible.
pub trait EpochStage {
    /// Which stage this is (indexes [`StageProfile`] slots).
    fn id(&self) -> StageId;

    /// Execute the stage once against the current state.
    fn run(&self, env: &SegmentEnv<'_>, st: &mut EpochState) -> Result<StageFlow>;
}

/// Governor seam: applies the segment's operating frequency from the
/// P-state table and budgets the upcoming fixed-point solve. Under an
/// [`RunOptions::fp_budget`], segments past the budget get a short
/// truncated solve instead of spinning; the run still terminates, marked
/// degraded by the driver if any truncated segment missed tolerance.
pub struct PStateStage;

impl EpochStage for PStateStage {
    fn id(&self) -> StageId {
        StageId::PState
    }

    fn run(&self, env: &SegmentEnv<'_>, st: &mut EpochState) -> Result<StageFlow> {
        st.freq_hz = env
            .spec
            .freq_hz(env.opts.pstate)
            .ok_or(MachineError::BadPState {
                index: env.opts.pstate,
                available: env.spec.num_pstates(),
            })?;
        st.iter_cap = if env.opts.fp_budget == 0 {
            MAX_FP_ITERS
        } else {
            let remaining = env.opts.fp_budget.saturating_sub(st.fp_iterations);
            remaining.clamp(DEGRADED_FP_ITERS, MAX_FP_ITERS)
        };
        // Per-group effective frequency: chip clock × clock ratio. A
        // ratio of exactly 1.0 multiplies out to the chip frequency
        // bit-for-bit, so lockstep runs see the lockstep numerics.
        for gi in 0..env.workload.len() {
            st.scratch.freq[gi] = st.freq_hz * st.clock[gi];
        }
        Ok(StageFlow::Continue)
    }
}

/// Phase bookkeeping: locates each group's current phase and its end
/// boundary. The phase index is all downstream stages need — they read
/// miss-rate curves straight from the pre-computed `SegmentEnv` MRC
/// table, so a phase change costs an index update, never a curve clone.
pub struct PhaseSyncStage;

impl EpochStage for PhaseSyncStage {
    fn id(&self) -> StageId {
        StageId::PhaseSync
    }

    fn run(&self, env: &SegmentEnv<'_>, st: &mut EpochState) -> Result<StageFlow> {
        for (gi, (g, &p)) in env.workload.iter().zip(&st.progress).enumerate() {
            st.scratch.phase_info[gi] = g.app.phase_at(p);
        }
        Ok(StageFlow::Continue)
    }
}

/// One LLC iteration of the segment fixed point: access rates from the
/// current CPI estimate, one occupancy step at those rates (skipped when
/// the LLC is statically partitioned: shares are fixed equal slices), and
/// per-group miss rates at the resulting shares.
pub struct LlcShareStage;

impl EpochStage for LlcShareStage {
    fn id(&self) -> StageId {
        StageId::LlcShare
    }

    #[allow(clippy::needless_range_loop)]
    fn run(&self, env: &SegmentEnv<'_>, st: &mut EpochState) -> Result<StageFlow> {
        let n_groups = env.workload.len();
        // Rates from current CPI.
        for gi in 0..n_groups {
            let ph = &env.workload[gi].app.phases[st.scratch.phase_info[gi].0];
            st.scratch.access_rate[gi] = st.scratch.freq[gi] / st.cpi[gi] * ph.accesses_per_instr;
        }

        if !env.opts.llc_partitioned {
            // Per-instance insertion rates into the flat `ins` buffer:
            // access rate × miss rate at the current share, with the same
            // floors and evaluation order as [`coloc_cachesim::
            // occupancy_step`]. The MRC probe is incremental — each
            // instance feeds back the bracketing segment its last probe
            // found, which a damped fixed point rarely leaves.
            for gi in 0..n_groups {
                let mrc = &env.mrcs[gi][st.scratch.phase_info[gi].0];
                let rate = st.scratch.access_rate[gi].max(0.0);
                for ii in st.scratch.group_range(gi) {
                    let miss = mrc
                        .miss_rate_hinted(st.scratch.occ[ii] as u64, &mut st.scratch.mrc_hint[ii])
                        .max(1e-9);
                    st.scratch.ins[ii] = rate * miss;
                }
            }
            occupancy_step_rates(env.spec.llc_bytes, &st.scratch.ins, &mut st.scratch.occ);
        }
        for gi in 0..n_groups {
            // All instances of a group are symmetric; read the first. The
            // hinted probe returns exactly what `miss_rate` would.
            let ii = st.scratch.group_first[gi];
            st.scratch.miss_rate[gi] = env.mrcs[gi][st.scratch.phase_info[gi].0]
                .miss_rate_hinted(st.scratch.occ[ii] as u64, &mut st.scratch.mrc_hint[ii]);
        }
        Ok(StageFlow::Continue)
    }
}

/// One DRAM/CPI iteration of the segment fixed point: latency at the
/// aggregate miss bandwidth, damped CPI update, and the convergence
/// decision — [`StageFlow::SolverDone`] when the relative CPI residual
/// drops below [`FP_TOLERANCE`] or the iteration cap is reached.
pub struct DramFixedPointStage;

impl EpochStage for DramFixedPointStage {
    fn id(&self) -> StageId {
        StageId::DramFixedPoint
    }

    #[allow(clippy::needless_range_loop)]
    fn run(&self, env: &SegmentEnv<'_>, st: &mut EpochState) -> Result<StageFlow> {
        let n_groups = env.workload.len();

        // DRAM latency at the aggregate miss bandwidth.
        let mut bw = 0.0;
        let mut streams = 0usize;
        for gi in 0..n_groups {
            let miss_per_sec = st.scratch.access_rate[gi] * st.scratch.miss_rate[gi];
            bw += env.workload[gi].count as f64 * miss_per_sec * MISS_BYTES;
            if miss_per_sec > 1e5 {
                streams += env.workload[gi].count;
            }
        }
        st.latency_ns = env.mem.access_latency_ns(bw, streams);

        // CPI update with damping.
        let mut max_rel = 0.0f64;
        for gi in 0..n_groups {
            let ph = &env.workload[gi].app.phases[st.scratch.phase_info[gi].0];
            let stall_cycles_per_instr = ph.accesses_per_instr
                * st.scratch.miss_rate[gi]
                * (st.latency_ns * 1e-9 * st.scratch.freq[gi])
                / ph.mlp;
            let target = ph.cpi_base + stall_cycles_per_instr;
            let next = 0.5 * st.cpi[gi] + 0.5 * target;
            max_rel = max_rel.max(((next - st.cpi[gi]) / st.cpi[gi]).abs());
            st.cpi[gi] = next;
        }
        st.seg_residual = max_rel;
        if max_rel < FP_TOLERANCE {
            st.seg_residual = 0.0;
            return Ok(StageFlow::SolverDone);
        }
        if st.seg_iters >= st.iter_cap {
            return Ok(StageFlow::SolverDone);
        }
        Ok(StageFlow::Continue)
    }
}

/// Segment close-out: converts the converged CPIs into instruction rates,
/// sizes the segment (time until the nearest phase boundary), accrues
/// hardware counters and time-weighted telemetry, snaps boundary
/// crossings, and handles completions — co-runners restart to keep
/// contention pressure constant; target completion ends the run with
/// [`StageFlow::TargetDone`].
pub struct CounterAccrualStage;

impl EpochStage for CounterAccrualStage {
    fn id(&self) -> StageId {
        StageId::CounterAccrual
    }

    #[allow(clippy::needless_range_loop)]
    fn run(&self, env: &SegmentEnv<'_>, st: &mut EpochState) -> Result<StageFlow> {
        let n_groups = env.workload.len();

        // Converged per-group rates and shares for this segment.
        for gi in 0..n_groups {
            st.scratch.ips[gi] = st.scratch.freq[gi] / st.cpi[gi];
            st.scratch.occ_per_instance[gi] = st.scratch.occ[st.scratch.group_first[gi]];
        }

        // Time until each group hits its next boundary.
        let mut dt = f64::INFINITY;
        for (gi, p) in st.progress.iter().enumerate() {
            let remaining = st.scratch.phase_info[gi].1 - p;
            let t = remaining / st.scratch.ips[gi];
            if t < dt {
                dt = t;
            }
        }
        // The next scheduled event caps the segment: strictly-less, so
        // a boundary landing exactly on the event tick takes the
        // boundary path (same arithmetic), and the lockstep cap of
        // `INFINITY` never binds — that comparison is the *only* thing
        // the event generalization adds to a default-schedule segment.
        st.event_capped = st.dt_cap < dt;
        if st.event_capped {
            dt = st.dt_cap;
        }
        if !(dt.is_finite() && dt > 0.0) {
            return Err(MachineError::Numeric(format!(
                "degenerate segment dt = {dt} at segment {}",
                st.segments
            )));
        }
        st.dt = dt;

        // Advance everyone by dt.
        for gi in 0..n_groups {
            let instr = st.scratch.ips[gi] * dt;
            st.progress[gi] += instr;
            let acc =
                instr * env.workload[gi].app.phases[st.scratch.phase_info[gi].0].accesses_per_instr;
            st.counters[gi].instructions += instr;
            st.counters[gi].cycles += st.scratch.freq[gi] * dt;
            st.counters[gi].llc_accesses += acc;
            st.counters[gi].llc_misses += acc * st.scratch.miss_rate[gi];
            st.share_time_acc[gi] += st.scratch.occ_per_instance[gi] * dt;
        }
        st.latency_time_acc += st.latency_ns * dt;
        st.wall += dt;

        // Snap boundary crossings and handle completions.
        let mut target_done = false;
        for gi in 0..n_groups {
            let boundary = st.scratch.phase_info[gi].1;
            if st.progress[gi] >= boundary - 1e-6 * env.workload[gi].app.instructions.max(1.0) {
                st.progress[gi] = boundary;
                if (boundary - env.workload[gi].app.instructions).abs()
                    < 1e-9 * env.workload[gi].app.instructions
                {
                    st.counters[gi].completed_runs += 1;
                    if gi == 0 {
                        target_done = true;
                    } else {
                        st.progress[gi] = 0.0; // co-runner restarts
                    }
                }
            }
        }
        st.target_done = target_done;
        Ok(if target_done {
            StageFlow::TargetDone
        } else {
            StageFlow::Continue
        })
    }
}

/// Accumulated cost of one pipeline stage across a run (or a whole
/// sweep, when profiles are merged).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Times the stage executed.
    pub invocations: u64,
    /// Total wall time spent inside the stage, nanoseconds.
    pub nanos: u64,
}

/// Per-stage cost counters for an instrumented run: one [`StageStats`]
/// slot per [`StageId`]. The un-instrumented path pays nothing — the
/// driver only reads clocks when a profile is attached.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageProfile {
    stats: [StageStats; 6],
}

impl StageProfile {
    /// An empty profile.
    pub fn new() -> StageProfile {
        StageProfile::default()
    }

    /// Record one invocation of `id` costing `elapsed`.
    pub fn record(&mut self, id: StageId, elapsed: Duration) {
        let slot = &mut self.stats[id.index()];
        slot.invocations += 1;
        slot.nanos += elapsed.as_nanos() as u64;
    }

    /// Counters for one stage.
    pub fn get(&self, id: StageId) -> StageStats {
        self.stats[id.index()]
    }

    /// Fold another profile into this one (sweep aggregation).
    pub fn merge(&mut self, other: &StageProfile) {
        for id in StageId::ALL {
            self.stats[id.index()].invocations += other.stats[id.index()].invocations;
            self.stats[id.index()].nanos += other.stats[id.index()].nanos;
        }
    }

    /// All stages with their counters, in driver order.
    pub fn iter(&self) -> impl Iterator<Item = (StageId, StageStats)> + '_ {
        StageId::ALL.iter().map(|&id| (id, self.get(id)))
    }

    /// Per-stage invocation counts, indexed by [`StageId::index`].
    pub fn invocations(&self) -> [u64; 6] {
        let mut out = [0u64; 6];
        for id in StageId::ALL {
            out[id.index()] = self.stats[id.index()].invocations;
        }
        out
    }

    /// Per-stage nanoseconds, indexed by [`StageId::index`].
    pub fn nanos(&self) -> [u64; 6] {
        let mut out = [0u64; 6];
        for id in StageId::ALL {
            out[id.index()] = self.stats[id.index()].nanos;
        }
        out
    }
}

/// One closed segment, as recorded by a traced run.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SegmentRecord {
    /// 1-based segment index.
    pub segment: usize,
    /// Segment length, seconds.
    pub dt: f64,
    /// DRAM latency over the segment, ns.
    pub latency_ns: f64,
    /// Fixed-point iterations the segment's solve took.
    pub fp_iters: u64,
    /// Final relative CPI residual (0.0 = converged).
    pub residual: f64,
    /// Scheduled events (arrivals/departures) dispatched when this
    /// segment closed. Always 0 for lockstep runs; a positive count
    /// marks an era boundary — the segment was cut at the event tick
    /// rather than a phase boundary.
    pub events: u32,
    /// Groups resident (on core) during this segment.
    pub resident_groups: usize,
}

/// Bounded ring buffer of the most recent [`SegmentRecord`]s from a
/// traced run. Capacity-bounded so tracing a million-segment run holds
/// memory constant; `dropped` counts evicted records.
#[derive(Clone, Debug)]
pub struct SegmentTrace {
    capacity: usize,
    records: VecDeque<SegmentRecord>,
    dropped: u64,
}

impl SegmentTrace {
    /// A trace retaining at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> SegmentTrace {
        SegmentTrace {
            capacity: capacity.max(1),
            records: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn push(&mut self, record: SegmentRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(record);
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &SegmentRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::super::Machine;
    use super::*;
    use crate::app::{AppPhase, AppProfile};
    use crate::presets;
    use coloc_cachesim::StackDistanceDist;

    fn hungry(name: &str, instructions: f64) -> AppProfile {
        AppProfile::single_phase(
            name,
            instructions,
            AppPhase {
                weight: 1.0,
                dist: StackDistanceDist::power_law(1_000_000, 0.35, 0.02),
                accesses_per_instr: 0.03,
                cpi_base: 0.9,
                mlp: 4.0,
            },
        )
    }

    /// Two-group fixture: a two-phase target plus two hungry co-runners,
    /// with everything a stage needs (machine, MRCs, state) pre-built.
    /// The workload is leaked to `'static` so the fixture can hold the
    /// borrowed [`GroupRef`] views the engine now runs on (a few hundred
    /// bytes per test — fine for a test process).
    struct Fixture {
        machine: Machine,
        groups: Vec<GroupRef<'static>>,
        opts: RunOptions,
        mrcs: Vec<Vec<std::sync::Arc<coloc_cachesim::MissRateCurve>>>,
    }

    impl Fixture {
        fn new(opts: RunOptions) -> Fixture {
            let target = AppProfile {
                name: "phased".into(),
                instructions: 100e9,
                phases: vec![
                    AppPhase {
                        weight: 0.5,
                        dist: StackDistanceDist::power_law(1_000_000, 0.35, 0.02),
                        accesses_per_instr: 0.03,
                        cpi_base: 0.9,
                        mlp: 4.0,
                    },
                    AppPhase {
                        weight: 0.5,
                        dist: StackDistanceDist::power_law(2_000, 2.0, 1e-6),
                        accesses_per_instr: 0.001,
                        cpi_base: 0.7,
                        mlp: 2.0,
                    },
                ],
            };
            let workload = vec![
                super::super::RunnerGroup::solo(target),
                super::super::RunnerGroup {
                    app: hungry("co", 60e9),
                    count: 2,
                },
            ];
            let workload: &'static [super::super::RunnerGroup] =
                Box::leak(workload.into_boxed_slice());
            let groups: Vec<GroupRef<'static>> =
                workload.iter().map(GroupRef::from_group).collect();
            let mrcs = workload
                .iter()
                .map(|g| {
                    g.app
                        .phases
                        .iter()
                        .map(|p| std::sync::Arc::new(p.mrc()))
                        .collect()
                })
                .collect();
            Fixture {
                machine: Machine::new(presets::xeon_e5649()).unwrap(),
                groups,
                opts,
                mrcs,
            }
        }

        fn env(&self) -> SegmentEnv<'_> {
            SegmentEnv {
                spec: self.machine.spec(),
                mem: self.machine.mem(),
                workload: &self.groups,
                opts: &self.opts,
                mrcs: &self.mrcs,
            }
        }

        fn state(&self) -> EpochState {
            // 0.0 for an out-of-range pstate: PStateStage re-derives (and
            // rejects) it anyway.
            let freq = self.machine.spec().freq_hz(self.opts.pstate).unwrap_or(0.0);
            EpochState::new(&self.groups, freq)
        }
    }

    #[test]
    fn pstate_stage_sets_frequency_and_budget() {
        let fx = Fixture::new(RunOptions::default());
        let mut st = fx.state();
        st.freq_hz = 0.0;
        assert_eq!(
            PStateStage.run(&fx.env(), &mut st).unwrap(),
            StageFlow::Continue
        );
        assert_eq!(st.freq_hz, 2.53e9);
        assert_eq!(st.iter_cap, 250, "unbudgeted runs get the full cap");

        // Under a budget the cap shrinks with spent iterations, floored at
        // the degraded minimum.
        let fx = Fixture::new(RunOptions {
            fp_budget: 100,
            ..Default::default()
        });
        let mut st = fx.state();
        st.fp_iterations = 90;
        PStateStage.run(&fx.env(), &mut st).unwrap();
        assert_eq!(st.iter_cap, 10);
        st.fp_iterations = 100_000;
        PStateStage.run(&fx.env(), &mut st).unwrap();
        assert_eq!(
            st.iter_cap, 4,
            "exhausted budget floors at the degraded cap"
        );
    }

    #[test]
    fn pstate_stage_reports_bad_pstates() {
        let fx = Fixture::new(RunOptions {
            pstate: 99,
            ..Default::default()
        });
        let mut st = fx.state();
        assert!(matches!(
            PStateStage.run(&fx.env(), &mut st),
            Err(MachineError::BadPState {
                index: 99,
                available: 6
            })
        ));
    }

    #[test]
    fn phase_sync_stage_tracks_phase_boundaries() {
        let fx = Fixture::new(RunOptions::default());
        let mut st = fx.state();
        PhaseSyncStage.run(&fx.env(), &mut st).unwrap();
        assert_eq!(st.scratch.phase_info[0], (0, 50e9), "phase 0 ends halfway");
        assert_eq!(st.scratch.phase_info[1], (0, 60e9));

        // Push the target past its phase boundary: the stage must flip its
        // phase index, which redirects downstream MRC reads to the
        // compute-phase curve in the env table.
        let miss_before = fx.mrcs[0][st.scratch.phase_info[0].0].miss_rate(1 << 20);
        st.progress[0] = 60e9;
        PhaseSyncStage.run(&fx.env(), &mut st).unwrap();
        assert_eq!(st.scratch.phase_info[0], (1, 100e9));
        let miss_after = fx.mrcs[0][st.scratch.phase_info[0].0].miss_rate(1 << 20);
        assert!(
            miss_after < miss_before,
            "compute phase must miss less: {miss_after} !< {miss_before}"
        );
    }

    #[test]
    fn llc_share_stage_computes_rates_shares_and_misses() {
        let fx = Fixture::new(RunOptions::default());
        let mut st = fx.state();
        PStateStage.run(&fx.env(), &mut st).unwrap();
        PhaseSyncStage.run(&fx.env(), &mut st).unwrap();
        st.begin_solve(&fx.env());
        st.seg_iters = 1;
        assert_eq!(
            LlcShareStage.run(&fx.env(), &mut st).unwrap(),
            StageFlow::Continue
        );

        // Access rates follow directly from frequency, CPI, and the phase.
        let expect = st.freq_hz / st.cpi[0] * 0.03;
        assert_eq!(st.scratch.access_rate[0], expect);
        // Occupancies stay a partition of the LLC.
        let total: f64 = st.scratch.occ.iter().sum();
        let cap = fx.machine.spec().llc_bytes as f64;
        assert!(
            (total - cap).abs() < 1.0,
            "occupancy leaked: {total} vs {cap}"
        );
        for gi in 0..2 {
            assert!((0.0..=1.0).contains(&st.scratch.miss_rate[gi]));
        }

        // Partitioned mode pins every instance at the equal slice.
        let fx_part = Fixture::new(RunOptions {
            llc_partitioned: true,
            ..Default::default()
        });
        let mut stp = fx_part.state();
        PStateStage.run(&fx_part.env(), &mut stp).unwrap();
        PhaseSyncStage.run(&fx_part.env(), &mut stp).unwrap();
        stp.begin_solve(&fx_part.env());
        LlcShareStage.run(&fx_part.env(), &mut stp).unwrap();
        let slice = cap / 3.0;
        for &o in &stp.scratch.occ {
            assert_eq!(o, slice);
        }
    }

    #[test]
    fn dram_stage_converges_the_damped_fixed_point() {
        let fx = Fixture::new(RunOptions::default());
        let mut st = fx.state();
        PStateStage.run(&fx.env(), &mut st).unwrap();
        PhaseSyncStage.run(&fx.env(), &mut st).unwrap();
        st.begin_solve(&fx.env());

        let idle = fx.machine.mem().spec().idle_latency_ns;
        let mut iters = 0u64;
        loop {
            st.seg_iters += 1;
            iters += 1;
            LlcShareStage.run(&fx.env(), &mut st).unwrap();
            match DramFixedPointStage.run(&fx.env(), &mut st).unwrap() {
                StageFlow::SolverDone => break,
                _ => assert!(iters < 250, "solver failed to converge"),
            }
        }
        assert_eq!(
            st.seg_residual, 0.0,
            "converged solve reports zero residual"
        );
        assert!(st.latency_ns >= idle, "contended latency below idle");
        // Contention must raise CPI above the base for the hungry phase.
        assert!(st.cpi[0] > 0.9 && st.cpi[0].is_finite());
    }

    #[test]
    fn dram_stage_respects_the_iteration_cap() {
        let fx = Fixture::new(RunOptions::default());
        let mut st = fx.state();
        PStateStage.run(&fx.env(), &mut st).unwrap();
        PhaseSyncStage.run(&fx.env(), &mut st).unwrap();
        st.begin_solve(&fx.env());
        st.iter_cap = 1;
        st.seg_iters = 1;
        LlcShareStage.run(&fx.env(), &mut st).unwrap();
        assert_eq!(
            DramFixedPointStage.run(&fx.env(), &mut st).unwrap(),
            StageFlow::SolverDone,
            "cap of 1 ends the solve after one iteration"
        );
        assert!(
            st.seg_residual > 0.0,
            "truncated solve reports its residual"
        );
    }

    #[test]
    fn counter_accrual_stage_advances_and_completes() {
        let fx = Fixture::new(RunOptions::default());
        let mut st = fx.state();
        PStateStage.run(&fx.env(), &mut st).unwrap();
        st.segments = 1;
        PhaseSyncStage.run(&fx.env(), &mut st).unwrap();
        st.begin_solve(&fx.env());
        loop {
            st.seg_iters += 1;
            LlcShareStage.run(&fx.env(), &mut st).unwrap();
            if DramFixedPointStage.run(&fx.env(), &mut st).unwrap() == StageFlow::SolverDone {
                break;
            }
        }
        let flow = CounterAccrualStage.run(&fx.env(), &mut st).unwrap();
        assert_eq!(
            flow,
            StageFlow::Continue,
            "first segment cannot finish the run"
        );
        assert!(st.dt > 0.0 && st.wall == st.dt);
        let c = &st.counters[0];
        assert!((c.instructions - st.scratch.ips[0] * st.dt).abs() < 1e-3);
        assert_eq!(c.cycles, st.freq_hz * st.dt);
        assert!(c.llc_misses <= c.llc_accesses);

        // Drop the target at the brink of completion: the stage must snap
        // the boundary, count the completion, and end the run.
        let mut st2 = fx.state();
        PStateStage.run(&fx.env(), &mut st2).unwrap();
        st2.segments = 1;
        st2.progress[0] = 100e9 - 1.0;
        st2.progress[1] = 1.0;
        PhaseSyncStage.run(&fx.env(), &mut st2).unwrap();
        st2.begin_solve(&fx.env());
        loop {
            st2.seg_iters += 1;
            LlcShareStage.run(&fx.env(), &mut st2).unwrap();
            if DramFixedPointStage.run(&fx.env(), &mut st2).unwrap() == StageFlow::SolverDone {
                break;
            }
        }
        assert_eq!(
            CounterAccrualStage.run(&fx.env(), &mut st2).unwrap(),
            StageFlow::TargetDone
        );
        assert_eq!(st2.counters[0].completed_runs, 1);
        assert_eq!(st2.progress[0], 100e9);
    }

    #[test]
    fn counter_accrual_rejects_degenerate_segments() {
        let fx = Fixture::new(RunOptions::default());
        let mut st = fx.state();
        PStateStage.run(&fx.env(), &mut st).unwrap();
        st.segments = 7;
        PhaseSyncStage.run(&fx.env(), &mut st).unwrap();
        // A non-finite rate forces dt = inf/NaN, which must surface as a
        // typed numeric error naming the segment.
        st.scratch.ips = vec![0.0, 0.0];
        st.scratch.phase_info[0].1 = st.progress[0]; // remaining = 0
        match CounterAccrualStage.run(&fx.env(), &mut st) {
            Err(MachineError::Numeric(msg)) => {
                assert!(msg.contains("segment 7"), "unexpected message: {msg}")
            }
            other => panic!("expected Numeric, got {other:?}"),
        }
    }

    #[test]
    fn stage_profile_records_and_merges() {
        let mut a = StageProfile::new();
        a.record(StageId::LlcShare, Duration::from_nanos(50));
        a.record(StageId::LlcShare, Duration::from_nanos(25));
        a.record(StageId::PState, Duration::from_nanos(5));
        let mut b = StageProfile::new();
        b.record(StageId::LlcShare, Duration::from_nanos(100));
        a.merge(&b);
        assert_eq!(
            a.get(StageId::LlcShare),
            StageStats {
                invocations: 3,
                nanos: 175
            }
        );
        assert_eq!(a.get(StageId::PState).invocations, 1);
        assert_eq!(a.get(StageId::CounterAccrual), StageStats::default());
        assert_eq!(a.invocations(), [1, 0, 3, 0, 0, 0]);
        assert_eq!(a.nanos(), [5, 0, 175, 0, 0, 0]);
        assert_eq!(a.iter().count(), 6);
    }

    #[test]
    fn segment_trace_is_a_bounded_ring() {
        let mut t = SegmentTrace::new(3);
        for i in 1..=5 {
            t.push(SegmentRecord {
                segment: i,
                dt: i as f64,
                latency_ns: 60.0,
                fp_iters: 2,
                residual: 0.0,
                events: 0,
                resident_groups: 2,
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let kept: Vec<usize> = t.records().map(|r| r.segment).collect();
        assert_eq!(kept, vec![3, 4, 5], "ring keeps the most recent records");
        assert!(!t.is_empty());
        assert_eq!(t.capacity(), 3);
        assert_eq!(SegmentTrace::new(0).capacity(), 1, "capacity floors at 1");
    }

    #[test]
    fn stage_ids_are_dense_and_labelled() {
        for (i, id) in StageId::ALL.iter().enumerate() {
            assert_eq!(id.index(), i);
            assert!(!id.label().is_empty());
        }
        let labels: std::collections::HashSet<_> =
            StageId::ALL.iter().map(|id| id.label()).collect();
        assert_eq!(labels.len(), 6, "labels are unique");
    }
}
