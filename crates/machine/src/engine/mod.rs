//! The co-execution engine.
//!
//! A run places a *target* application (group 0) and zero or more groups
//! of identical co-runners on the machine's cores and advances them
//! through piecewise-constant *segments*. Within a segment every
//! application's behaviour is stationary, so the coupled contention state —
//! LLC occupancy split, per-app miss rate, DRAM latency at the aggregate
//! miss bandwidth, and effective CPI — is a fixed point, found by damped
//! iteration (interleaving [`coloc_cachesim::occupancy_step`] with CPI/DRAM
//! updates). A segment ends when any application crosses a phase boundary,
//! a co-runner finishes (and restarts, keeping contention pressure constant
//! — the standard co-location measurement methodology), or the target
//! completes, which ends the run.
//!
//! The circular dependency the fixed point resolves is physical: an app's
//! access *rate* depends on its CPI, its CPI depends on memory latency and
//! its miss rate, its miss rate depends on its LLC share, and its LLC share
//! depends on everyone's access rates.
//!
//! Structurally, the per-segment work is a staged pipeline: explicit
//! [`EpochStage`] implementations for governor/P-state
//! application, phase sync, LLC share solving, DRAM latency/fixed-point
//! convergence, and counter accrual, composed by the thin driver in
//! [`Machine::run`]. The driver can time each stage into a
//! [`StageProfile`] ([`Machine::run_instrumented`]) or record per-segment
//! history into a [`SegmentTrace`] ([`Machine::run_traced`]) at zero cost
//! to plain runs.

mod scratch;
mod stages;

pub use stages::{
    CounterAccrualStage, DramFixedPointStage, EpochStage, EpochState, LlcShareStage, PStateStage,
    PhaseSyncStage, SegmentEnv, SegmentRecord, SegmentTrace, StageFlow, StageId, StageProfile,
    StageStats,
};

use crate::app::AppProfile;
use crate::event::{self, Event, EventKind, EventQueue, GroupSchedule};
use crate::faults::FaultEvent;
use crate::spec::MachineSpec;
use crate::{MachineError, Result};
use coloc_cachesim::MissRateCurve;
use coloc_memsys::MemorySystem;
use rand::Rng as _;
use rand::SeedableRng as _;

/// A group of `count` identical co-located application instances. Instances
/// in a group start together and advance in lockstep.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunnerGroup {
    /// Profile shared by every instance in the group.
    pub app: AppProfile,
    /// Number of instances (one core each).
    pub count: usize,
}

impl RunnerGroup {
    /// A single-instance group.
    pub fn solo(app: AppProfile) -> RunnerGroup {
        RunnerGroup { app, count: 1 }
    }
}

/// A borrowed view of one workload group — the engine's internal workload
/// representation. [`Machine::run`] lowers `&[RunnerGroup]` to a slice of
/// these (a pointer-sized copy per group), and [`Machine::run_solo`]
/// builds one directly from the borrowed profile, so the per-query
/// baseline measurement no longer deep-clones the [`AppProfile`] (phases,
/// locality CDF tables and all) just to run it.
#[derive(Clone, Copy, Debug)]
pub struct GroupRef<'a> {
    /// Profile shared by every instance in the group.
    pub app: &'a AppProfile,
    /// Number of instances (one core each).
    pub count: usize,
}

impl<'a> GroupRef<'a> {
    /// Borrow a [`RunnerGroup`].
    pub fn from_group(g: &'a RunnerGroup) -> GroupRef<'a> {
        GroupRef {
            app: &g.app,
            count: g.count,
        }
    }

    /// A single-instance group over a borrowed profile.
    pub fn solo(app: &'a AppProfile) -> GroupRef<'a> {
        GroupRef { app, count: 1 }
    }
}

/// Per-instance hardware event counts accumulated over a run, as a
/// performance-counter reader would observe them. Values are `f64` because
/// segments advance in fractional quanta; round at the presentation layer.
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CounterBlock {
    /// Instructions retired.
    pub instructions: f64,
    /// Core cycles elapsed.
    pub cycles: f64,
    /// LLC accesses issued.
    pub llc_accesses: f64,
    /// LLC misses suffered.
    pub llc_misses: f64,
    /// Completed runs (co-runners restart; the target completes exactly 1).
    pub completed_runs: u32,
}

impl CounterBlock {
    /// Memory intensity: LLC misses per instruction (paper §IV-A3).
    pub fn memory_intensity(&self) -> f64 {
        if self.instructions > 0.0 {
            self.llc_misses / self.instructions
        } else {
            0.0
        }
    }

    /// LLC misses per LLC access (the paper's CM/CA feature).
    pub fn miss_ratio(&self) -> f64 {
        if self.llc_accesses > 0.0 {
            self.llc_misses / self.llc_accesses
        } else {
            0.0
        }
    }

    /// LLC accesses per instruction (the paper's CA/INS feature).
    pub fn access_ratio(&self) -> f64 {
        if self.instructions > 0.0 {
            self.llc_accesses / self.instructions
        } else {
            0.0
        }
    }
}

/// Options for one run.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunOptions {
    /// P-state index into the machine's frequency table (0 = fastest).
    pub pstate: usize,
    /// Seed for measurement noise (ignored when `noise_sigma == 0`).
    pub seed: u64,
    /// Relative σ of multiplicative lognormal noise on the measured wall
    /// time, modeling run-to-run variation (≈ 0.008 matches the tight
    /// intervals the paper reports; 0 = noiseless).
    pub noise_sigma: f64,
    /// Safety cap on segments (guards against degenerate profiles).
    pub max_segments: usize,
    /// Statically way-partition the LLC: every application instance gets an
    /// equal private slice instead of competing for occupancy. Isolates the
    /// cache-contention component of slowdown from the memory-bandwidth
    /// component (DRAM stays shared) — an ablation over the paper's premise
    /// that the *shared* LLC drives interference.
    pub llc_partitioned: bool,
    /// Budget on total fixed-point iterations across the whole run
    /// (0 = unlimited). Once exceeded, remaining segments solve under a
    /// small per-segment iteration cap and the outcome is marked
    /// [`Convergence::Degraded`] instead of spinning — the run always
    /// terminates with its residual reported.
    pub fp_budget: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            pstate: 0,
            seed: 0,
            noise_sigma: 0.0,
            max_segments: 200_000,
            llc_partitioned: false,
            fp_budget: 0,
        }
    }
}

/// Whether the contention solver converged within its budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Convergence {
    /// Every segment's fixed point converged to tolerance.
    Converged,
    /// The run exhausted its fixed-point budget; later segments used a
    /// truncated solve. The result is usable but approximate.
    Degraded {
        /// Total fixed-point iterations actually spent.
        fp_iterations: u64,
        /// Worst relative CPI residual among truncated segments.
        residual: f64,
    },
}

impl Convergence {
    /// True when the solver hit its budget.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Convergence::Degraded { .. })
    }
}

/// Everything measured about one run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Wall-clock execution time of the target, seconds (noise applied).
    pub wall_time_s: f64,
    /// Per-group, per-instance counters (index matches the workload).
    pub counters: Vec<CounterBlock>,
    /// Segments simulated.
    pub segments: usize,
    /// Fixed-point solver iterations summed over all segments — the
    /// engine's unit of simulation work, surfaced for sweep telemetry.
    pub fp_iterations: u64,
    /// Average LLC share of each group's instances over the run, bytes
    /// (time-weighted).
    pub avg_llc_share_bytes: Vec<f64>,
    /// Time-average DRAM latency seen by the target's misses, ns.
    pub avg_mem_latency_ns: f64,
    /// Whether every segment's fixed point converged, or the run degraded
    /// after exhausting [`RunOptions::fp_budget`].
    pub convergence: Convergence,
    /// Measurement faults injected into this outcome (empty for a clean
    /// engine run; populated by [`crate::FaultPlan::apply`]).
    pub faults: Vec<FaultEvent>,
}

/// Memo key for a constructed miss-rate curve: the distribution's table
/// identity (token address) plus the bit patterns of every scalar the
/// curve construction reads (`p_new`, `alpha`, `reuse_span`). The scalars
/// are public fields a caller may rewrite after construction, so identity
/// alone is not enough.
type MrcKey = (usize, u64, u64, u64);

/// The per-machine curve memo: key → (token keepalive, shared curve).
type MrcMemo =
    std::collections::HashMap<MrcKey, (std::sync::Arc<()>, std::sync::Arc<MissRateCurve>)>;

/// Cap on distinct curves the per-machine memo holds; reaching it clears
/// the map (entries are pure caches, so a reset is behavior-transparent).
const MRC_MEMO_CAP: usize = 4096;

/// The simulator: a machine spec plus its memory system.
///
/// Clones share the miss-rate-curve memo: a sweep that clones one machine
/// across worker threads warms a single curve cache.
#[derive(Clone, Debug)]
pub struct Machine {
    spec: MachineSpec,
    mem: MemorySystem,
    /// Memoized per-phase miss-rate curves. Construction walks the full
    /// representative/CDF tables (microseconds); sweeps re-run the same
    /// few distributions thousands of times, so the curves are built once
    /// and shared. The stored token clone keeps each key's address from
    /// being recycled by a different distribution.
    mrc_memo: std::sync::Arc<std::sync::Mutex<MrcMemo>>,
}

/// Run `f`, attributing its wall time to `id` when a profile is attached.
/// The un-instrumented path never reads a clock.
fn timed<T>(profile: &mut Option<&mut StageProfile>, id: StageId, f: impl FnOnce() -> T) -> T {
    if let Some(p) = profile {
        let t0 = std::time::Instant::now();
        let out = f();
        p.record(id, t0.elapsed());
        out
    } else {
        f()
    }
}

impl Machine {
    /// Build a machine from a spec, validating it first. Malformed specs —
    /// which reach this path from user-supplied configuration, not just
    /// presets — come back as [`MachineError::InvalidSpec`] instead of a
    /// panic.
    pub fn new(spec: MachineSpec) -> Result<Machine> {
        spec.validate().map_err(MachineError::InvalidSpec)?;
        let mem = MemorySystem::new(spec.dram);
        Ok(Machine {
            spec,
            mem,
            mrc_memo: std::sync::Arc::default(),
        })
    }

    /// Miss-rate curves for every phase of every group, served from the
    /// machine's curve memo. Bit-identical to constructing each curve
    /// fresh: the key captures the table identity and every scalar the
    /// construction reads, and a memoized curve is the value an earlier
    /// identical construction produced.
    fn mrcs_for(&self, workload: &[GroupRef<'_>]) -> Vec<Vec<std::sync::Arc<MissRateCurve>>> {
        let mut memo = self.mrc_memo.lock().ok();
        workload
            .iter()
            .map(|g| {
                g.app
                    .phases
                    .iter()
                    .map(|p| match memo.as_mut() {
                        Some(m) => {
                            let key: MrcKey = (
                                std::sync::Arc::as_ptr(p.dist.table_token()) as usize,
                                p.dist.p_new.to_bits(),
                                p.dist.alpha.to_bits(),
                                p.dist.reuse_span as u64,
                            );
                            if m.len() >= MRC_MEMO_CAP && !m.contains_key(&key) {
                                m.clear();
                            }
                            let (_, mrc) = m.entry(key).or_insert_with(|| {
                                (
                                    std::sync::Arc::clone(p.dist.table_token()),
                                    std::sync::Arc::new(p.mrc()),
                                )
                            });
                            std::sync::Arc::clone(mrc)
                        }
                        // A poisoned memo degrades to direct construction.
                        None => std::sync::Arc::new(p.mrc()),
                    })
                    .collect()
            })
            .collect()
    }

    /// The machine's spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// The machine's memory system (stage-test access).
    #[cfg(test)]
    pub(crate) fn mem(&self) -> &MemorySystem {
        &self.mem
    }

    /// Run `workload` (group 0 = target) at the given options until the
    /// target completes. Returns the measured outcome.
    pub fn run(&self, workload: &[RunnerGroup], opts: &RunOptions) -> Result<RunOutcome> {
        let groups: Vec<GroupRef<'_>> = workload.iter().map(GroupRef::from_group).collect();
        self.run_observed(&groups, None, opts, None, None)
    }

    /// Run `workload` under per-group event schedules: phase offsets,
    /// arrival/departure ticks, per-core clock ratios. `schedules`, when
    /// present, must supply one [`GroupSchedule`] per group; `None` — or
    /// all-default schedules — is exactly [`Machine::run`], bit-for-bit.
    pub fn run_scheduled(
        &self,
        workload: &[RunnerGroup],
        schedules: Option<&[GroupSchedule]>,
        opts: &RunOptions,
    ) -> Result<RunOutcome> {
        let groups: Vec<GroupRef<'_>> = workload.iter().map(GroupRef::from_group).collect();
        self.run_observed(&groups, schedules, opts, None, None)
    }

    /// [`Machine::run_scheduled`] with stage instrumentation (the
    /// scheduled analogue of [`Machine::run_instrumented`]).
    pub fn run_scheduled_instrumented(
        &self,
        workload: &[RunnerGroup],
        schedules: Option<&[GroupSchedule]>,
        opts: &RunOptions,
        profile: &mut StageProfile,
    ) -> Result<RunOutcome> {
        let groups: Vec<GroupRef<'_>> = workload.iter().map(GroupRef::from_group).collect();
        self.run_observed(&groups, schedules, opts, Some(profile), None)
    }

    /// [`Machine::run_scheduled`] with a bounded segment trace (the
    /// scheduled analogue of [`Machine::run_traced`]).
    pub fn run_scheduled_traced(
        &self,
        workload: &[RunnerGroup],
        schedules: Option<&[GroupSchedule]>,
        opts: &RunOptions,
        capacity: usize,
    ) -> Result<(RunOutcome, SegmentTrace)> {
        let mut trace = SegmentTrace::new(capacity);
        let groups: Vec<GroupRef<'_>> = workload.iter().map(GroupRef::from_group).collect();
        let outcome = self.run_observed(&groups, schedules, opts, None, Some(&mut trace))?;
        Ok((outcome, trace))
    }

    /// Like [`Machine::run`], timing every pipeline stage into `profile`.
    /// The outcome is bit-identical to the plain run; only observation is
    /// added.
    pub fn run_instrumented(
        &self,
        workload: &[RunnerGroup],
        opts: &RunOptions,
        profile: &mut StageProfile,
    ) -> Result<RunOutcome> {
        let groups: Vec<GroupRef<'_>> = workload.iter().map(GroupRef::from_group).collect();
        self.run_observed(&groups, None, opts, Some(profile), None)
    }

    /// Like [`Machine::run`], additionally recording the most recent
    /// `capacity` segments into a [`SegmentTrace`] ring buffer. The
    /// outcome is bit-identical to the plain run.
    pub fn run_traced(
        &self,
        workload: &[RunnerGroup],
        opts: &RunOptions,
        capacity: usize,
    ) -> Result<(RunOutcome, SegmentTrace)> {
        let mut trace = SegmentTrace::new(capacity);
        let groups: Vec<GroupRef<'_>> = workload.iter().map(GroupRef::from_group).collect();
        let outcome = self.run_observed(&groups, None, opts, None, Some(&mut trace))?;
        Ok((outcome, trace))
    }

    /// The discrete-event driver behind every run variant: validate, then
    /// advance the stage pipeline era by era. An *era* is a maximal
    /// interval of the simulated clock with a fixed resident set; within
    /// an era the unmodified segment pipeline runs over the resident
    /// groups, with segment lengths additionally capped by the next
    /// scheduled event tick. A default (or absent) schedule yields an
    /// empty event queue and a single full-residency era, which executes
    /// the lockstep pipeline's exact arithmetic in its exact order — the
    /// lockstep engine is the degenerate case, bit-for-bit (DESIGN.md
    /// §14). `profile` and `trace` attach observation without perturbing
    /// the simulation.
    fn run_observed(
        &self,
        workload: &[GroupRef<'_>],
        schedules: Option<&[GroupSchedule]>,
        opts: &RunOptions,
        mut profile: Option<&mut StageProfile>,
        mut trace: Option<&mut SegmentTrace>,
    ) -> Result<RunOutcome> {
        if workload.is_empty() {
            return Err(MachineError::EmptyWorkload);
        }
        if let Some(s) = schedules {
            event::validate_schedules(workload, s)?;
        }
        // Canonical form: a schedule set that adds nothing over lockstep
        // is treated as absent, matching the digest rules in `ir`.
        let sched: Option<&[GroupSchedule]> = match schedules {
            Some(s) if !event::schedules_are_default(Some(s)) => Some(s),
            _ => None,
        };
        // Core capacity: lockstep workloads need every group at once;
        // event schedules only need the peak *concurrent* residency, so
        // disjoint arrival/departure windows may oversubscribe the
        // static sum.
        let requested: usize = match sched {
            Some(s) => event::peak_cores(workload, s),
            None => workload.iter().map(|g| g.count).sum(),
        };
        if requested > self.spec.cores {
            return Err(MachineError::NotEnoughCores {
                requested,
                available: self.spec.cores,
            });
        }
        let freq_hz = self
            .spec
            .freq_hz(opts.pstate)
            .ok_or(MachineError::BadPState {
                index: opts.pstate,
                available: self.spec.num_pstates(),
            })?;
        for g in workload {
            if g.count == 0 {
                return Err(MachineError::BadProfile(format!(
                    "{}: group count is zero",
                    g.app.name
                )));
            }
            g.app.validate().map_err(MachineError::BadProfile)?;
        }

        // Per-group, per-phase MRCs, served from the machine's curve memo.
        let mrcs = self.mrcs_for(workload);
        let n_groups = workload.len();

        // Run-global state carried across eras, indexed by the original
        // workload group. For a lockstep run there is exactly one era and
        // these are folded in and out once with identical values.
        let mut progress: Vec<f64> = vec![0.0; n_groups];
        let mut cpi: Vec<f64> = workload.iter().map(|g| g.app.phases[0].cpi_base).collect();
        let mut counters: Vec<CounterBlock> = vec![CounterBlock::default(); n_groups];
        let mut share_time_acc: Vec<f64> = vec![0.0; n_groups];
        let mut wall = 0.0f64;
        let mut latency_time_acc = 0.0f64;
        let mut segments = 0usize;
        let mut fp_iterations = 0u64;
        let mut degraded = false;
        let mut worst_residual = 0.0f64;

        // Residency and the event queue. Initially-resident groups start
        // at their phase offset with the matching CPI warm start (offset
        // 0 reproduces the `phases[0].cpi_base` lockstep warm start).
        let mut resident: Vec<bool> = vec![true; n_groups];
        let mut queue = EventQueue::new();
        if let Some(s) = sched {
            queue = event::build_queue(s);
            for (g, gs) in s.iter().enumerate() {
                resident[g] = gs.arrival_tick == 0.0;
                if resident[g] {
                    let start = gs.phase_offset * workload[g].app.instructions;
                    progress[g] = start;
                    cpi[g] = workload[g].app.phases[workload[g].app.phase_at(start).0].cpi_base;
                }
            }
        }

        'run: loop {
            // ---- Era setup: compacted views over the resident groups,
            // in original group order. The full-residency era borrows the
            // run-level tables directly — the lockstep path allocates
            // nothing extra here.
            let active: Vec<usize> = (0..n_groups).filter(|&g| resident[g]).collect();
            let compact_wl: Vec<GroupRef<'_>>;
            let compact_mrcs: Vec<Vec<std::sync::Arc<MissRateCurve>>>;
            let (era_wl, era_mrcs): (&[GroupRef<'_>], &[Vec<std::sync::Arc<MissRateCurve>>]) =
                if active.len() == n_groups {
                    (workload, &mrcs)
                } else {
                    compact_wl = active.iter().map(|&g| workload[g]).collect();
                    compact_mrcs = active.iter().map(|&g| mrcs[g].clone()).collect();
                    (&compact_wl, &compact_mrcs)
                };
            let env = SegmentEnv {
                spec: &self.spec,
                mem: &self.mem,
                workload: era_wl,
                opts,
                mrcs: era_mrcs,
            };
            // All per-segment buffers live in the state; the segment loop
            // below is allocation free no matter how many segments the
            // era takes.
            let mut st = EpochState::new(era_wl, freq_hz);
            if let Some(s) = sched {
                for (i, &g) in active.iter().enumerate() {
                    st.clock[i] = s[g].clock_ratio;
                }
            }
            // Fold run-global state into the era state.
            for (i, &g) in active.iter().enumerate() {
                st.progress[i] = progress[g];
                st.cpi[i] = cpi[g];
                st.counters[i] = counters[g];
                st.share_time_acc[i] = share_time_acc[g];
            }
            st.wall = wall;
            st.latency_time_acc = latency_time_acc;
            st.segments = segments;
            st.fp_iterations = fp_iterations;
            st.degraded = degraded;
            st.worst_residual = worst_residual;

            // ---- Era segments ---------------------------------------
            let mut fired: Vec<Event> = Vec::new();
            let target_done = loop {
                st.segments += 1;
                if st.segments > opts.max_segments {
                    return Err(MachineError::SegmentOverflow {
                        segments: st.segments,
                        cap: opts.max_segments,
                    });
                }

                timed(&mut profile, StageId::PState, || {
                    PStateStage.run(&env, &mut st)
                })?;
                timed(&mut profile, StageId::PhaseSync, || {
                    PhaseSyncStage.run(&env, &mut st)
                })?;
                // Distance to the next scheduled event caps this segment.
                let pending = queue.peek_tick();
                st.dt_cap = match pending {
                    Some(t) => t - st.wall,
                    None => f64::INFINITY,
                };

                st.begin_solve(&env);
                loop {
                    st.seg_iters += 1;
                    timed(&mut profile, StageId::LlcShare, || {
                        LlcShareStage.run(&env, &mut st)
                    })?;
                    let flow = timed(&mut profile, StageId::DramFixedPoint, || {
                        DramFixedPointStage.run(&env, &mut st)
                    })?;
                    if flow == StageFlow::SolverDone {
                        break;
                    }
                }
                st.fp_iterations += st.seg_iters;
                if st.seg_residual >= FP_TOLERANCE {
                    st.degraded = true;
                    st.worst_residual = st.worst_residual.max(st.seg_residual);
                }

                let flow = timed(&mut profile, StageId::CounterAccrual, || {
                    CounterAccrualStage.run(&env, &mut st)
                })?;

                // Dispatch events once the clock reaches the next tick —
                // either because the segment was cut at the tick (snap
                // the clock exactly) or because a phase boundary landed
                // on or past it.
                let fire = match pending {
                    Some(t) => st.event_capped || st.wall >= t,
                    None => false,
                };
                if fire {
                    if st.event_capped {
                        st.wall = pending.expect("capped segment implies a pending event");
                    }
                    fired = timed(&mut profile, StageId::EventDispatch, || {
                        queue.pop_through(st.wall)
                    });
                }
                if let Some(t) = trace.as_deref_mut() {
                    t.push(SegmentRecord {
                        segment: st.segments,
                        dt: st.dt,
                        latency_ns: st.latency_ns,
                        fp_iters: st.seg_iters,
                        residual: st.seg_residual,
                        events: fired.len() as u32,
                        resident_groups: era_wl.len(),
                    });
                }
                if flow == StageFlow::TargetDone {
                    break true;
                }
                if fire {
                    break false;
                }
            };

            // ---- Era teardown: fold era state back into the run ------
            for (i, &g) in active.iter().enumerate() {
                progress[g] = st.progress[i];
                cpi[g] = st.cpi[i];
                counters[g] = st.counters[i];
                share_time_acc[g] = st.share_time_acc[i];
            }
            wall = st.wall;
            latency_time_acc = st.latency_time_acc;
            segments = st.segments;
            fp_iterations = st.fp_iterations;
            degraded = st.degraded;
            worst_residual = st.worst_residual;

            if target_done {
                break 'run;
            }
            // Apply residency changes in `(tick, seq)` pop order:
            // departures freeze a group where it stands; arrivals seed
            // the group at its phase offset with the matching warm start.
            for ev in &fired {
                match ev.kind {
                    EventKind::Departure(g) => resident[g] = false,
                    EventKind::Arrival(g) => {
                        resident[g] = true;
                        let s = &sched.expect("arrival events imply schedules")[g];
                        let start = s.phase_offset * workload[g].app.instructions;
                        progress[g] = start;
                        cpi[g] = workload[g].app.phases[workload[g].app.phase_at(start).0].cpi_base;
                    }
                }
            }
        }

        // Measurement noise: multiplicative lognormal on the observed time.
        // The scale applies uniformly to every group's cycle counter — a
        // slow (or fast) measured run is slow for everyone sharing the
        // machine, not just the target.
        let mut wall_measured = wall;
        if opts.noise_sigma > 0.0 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
            // Box–Muller from two uniforms (StdRng has no normal sampler
            // without rand_distr; this keeps dependencies lean).
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let scale = (opts.noise_sigma * z).exp();
            wall_measured *= scale;
            for c in counters.iter_mut() {
                c.cycles *= scale;
            }
        }

        Ok(RunOutcome {
            wall_time_s: wall_measured,
            counters,
            segments,
            fp_iterations,
            avg_llc_share_bytes: share_time_acc.iter().map(|&s| s / wall).collect(),
            avg_mem_latency_ns: latency_time_acc / wall,
            convergence: if degraded {
                Convergence::Degraded {
                    fp_iterations,
                    residual: worst_residual,
                }
            } else {
                Convergence::Converged
            },
            faults: Vec::new(),
        })
    }

    /// Convenience: run an app alone (the paper's baseline measurement).
    /// Borrows the profile directly — no per-query workload clone.
    pub fn run_solo(&self, app: &AppProfile, opts: &RunOptions) -> Result<RunOutcome> {
        self.run_observed(&[GroupRef::solo(app)], None, opts, None, None)
    }
}

/// Relative-CPI convergence tolerance of the segment fixed point.
pub const FP_TOLERANCE: f64 = 1e-9;
/// Per-segment iteration cap for a full (unbudgeted) solve.
const MAX_FP_ITERS: u64 = 250;
/// Per-segment floor once the run's fixed-point budget is exhausted: a
/// short damped solve that keeps the run terminating and the state sane.
const DEGRADED_FP_ITERS: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppPhase;
    use crate::presets;
    use coloc_cachesim::StackDistanceDist;

    /// A memory-hungry app: working set ≫ LLC, frequent accesses.
    fn hungry(name: &str, instructions: f64) -> AppProfile {
        AppProfile::single_phase(
            name,
            instructions,
            AppPhase {
                weight: 1.0,
                dist: StackDistanceDist::power_law(1_000_000, 0.35, 0.02),
                accesses_per_instr: 0.03,
                cpi_base: 0.9,
                mlp: 4.0,
            },
        )
    }

    /// A compute-bound app: tiny working set, almost no LLC traffic.
    fn compute(name: &str, instructions: f64) -> AppProfile {
        AppProfile::single_phase(
            name,
            instructions,
            AppPhase {
                weight: 1.0,
                dist: StackDistanceDist::power_law(2_000, 2.0, 1e-6),
                accesses_per_instr: 0.001,
                cpi_base: 0.7,
                mlp: 2.0,
            },
        )
    }

    fn m6() -> Machine {
        Machine::new(presets::xeon_e5649()).unwrap()
    }

    #[test]
    fn invalid_spec_is_a_typed_error_not_a_panic() {
        let mut spec = presets::xeon_e5649();
        spec.cores = 0;
        match Machine::new(spec) {
            Err(MachineError::InvalidSpec(msg)) => {
                assert!(msg.contains("core"), "unexpected message: {msg}")
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        let mut spec = presets::xeon_e5649();
        spec.pstates_ghz.clear();
        assert!(matches!(
            Machine::new(spec),
            Err(MachineError::InvalidSpec(_))
        ));
    }

    #[test]
    fn fp_budget_degrades_instead_of_spinning() {
        let m = m6();
        let wl = vec![
            RunnerGroup::solo(hungry("t", 100e9)),
            RunnerGroup {
                app: hungry("short", 10e9),
                count: 2,
            },
        ];
        let full = m.run(&wl, &RunOptions::default()).unwrap();
        assert_eq!(full.convergence, Convergence::Converged);

        let tight = RunOptions {
            fp_budget: 1,
            ..Default::default()
        };
        let out = m.run(&wl, &tight).unwrap();
        match out.convergence {
            Convergence::Degraded {
                fp_iterations,
                residual,
            } => {
                assert!(fp_iterations < full.fp_iterations);
                assert!(residual > 0.0 && residual.is_finite(), "{residual}");
            }
            Convergence::Converged => panic!("budget of 1 iteration cannot converge"),
        }
        // Degraded, not garbage: the run completed with a finite time in
        // the neighbourhood of the converged result.
        assert!(out.wall_time_s.is_finite() && out.wall_time_s > 0.0);
        let rel = (out.wall_time_s - full.wall_time_s).abs() / full.wall_time_s;
        assert!(rel < 0.5, "degraded run drifted {rel} from converged");
    }

    #[test]
    fn solo_run_produces_sane_counters() {
        let m = m6();
        let app = hungry("h", 200e9);
        let out = m.run_solo(&app, &RunOptions::default()).unwrap();
        assert!(out.wall_time_s > 10.0, "{}", out.wall_time_s);
        let c = &out.counters[0];
        assert!((c.instructions - 200e9).abs() < 1.0);
        assert_eq!(c.completed_runs, 1);
        assert!(c.llc_accesses > 0.0);
        assert!(c.llc_misses > 0.0);
        assert!(c.llc_misses <= c.llc_accesses);
        assert!(c.memory_intensity() > 1e-4);
    }

    #[test]
    fn lower_pstate_is_slower() {
        let m = m6();
        let app = compute("c", 100e9);
        let fast = m
            .run_solo(
                &app,
                &RunOptions {
                    pstate: 0,
                    ..Default::default()
                },
            )
            .unwrap();
        let slow = m
            .run_solo(
                &app,
                &RunOptions {
                    pstate: 5,
                    ..Default::default()
                },
            )
            .unwrap();
        // Compute-bound: time scales ≈ inversely with frequency.
        let ratio = slow.wall_time_s / fast.wall_time_s;
        let freq_ratio = 2.53 / 1.60;
        assert!((ratio - freq_ratio).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn memory_bound_app_scales_sublinearly_with_frequency() {
        let m = m6();
        let app = hungry("h", 100e9);
        let fast = m
            .run_solo(
                &app,
                &RunOptions {
                    pstate: 0,
                    ..Default::default()
                },
            )
            .unwrap();
        let slow = m
            .run_solo(
                &app,
                &RunOptions {
                    pstate: 5,
                    ..Default::default()
                },
            )
            .unwrap();
        let ratio = slow.wall_time_s / fast.wall_time_s;
        let freq_ratio = 2.53 / 1.60;
        assert!(
            ratio < freq_ratio - 0.05,
            "memory-bound ratio {ratio} should undercut frequency ratio {freq_ratio}"
        );
        assert!(ratio > 1.0);
    }

    #[test]
    fn co_location_slows_the_target_monotonically() {
        let m = m6();
        let target = hungry("t", 100e9);
        let mut prev = 0.0;
        for n in 0..=5usize {
            let mut wl = vec![RunnerGroup::solo(target.clone())];
            if n > 0 {
                wl.push(RunnerGroup {
                    app: hungry("agg", 120e9),
                    count: n,
                });
            }
            let out = m.run(&wl, &RunOptions::default()).unwrap();
            assert!(
                out.wall_time_s > prev,
                "n={n}: {} !> {prev}",
                out.wall_time_s
            );
            prev = out.wall_time_s;
        }
    }

    #[test]
    fn compute_bound_co_runners_barely_hurt() {
        let m = m6();
        let target = hungry("t", 100e9);
        let solo = m.run_solo(&target, &RunOptions::default()).unwrap();
        let wl = vec![
            RunnerGroup::solo(target.clone()),
            RunnerGroup {
                app: compute("ep-ish", 100e9),
                count: 5,
            },
        ];
        let with = m.run(&wl, &RunOptions::default()).unwrap();
        let slowdown = with.wall_time_s / solo.wall_time_s;
        assert!(slowdown < 1.05, "compute co-runners caused {slowdown}");
        assert!(slowdown >= 1.0 - 1e-9);
    }

    #[test]
    fn memory_hungry_co_runners_hurt_more_than_compute() {
        let m = m6();
        let target = hungry("t", 100e9);
        let with_compute = m
            .run(
                &[
                    RunnerGroup::solo(target.clone()),
                    RunnerGroup {
                        app: compute("c", 100e9),
                        count: 5,
                    },
                ],
                &RunOptions::default(),
            )
            .unwrap();
        let with_hungry = m
            .run(
                &[
                    RunnerGroup::solo(target.clone()),
                    RunnerGroup {
                        app: hungry("h", 100e9),
                        count: 5,
                    },
                ],
                &RunOptions::default(),
            )
            .unwrap();
        assert!(
            with_hungry.wall_time_s > with_compute.wall_time_s * 1.1,
            "{} vs {}",
            with_hungry.wall_time_s,
            with_compute.wall_time_s
        );
    }

    #[test]
    fn co_runners_restart_to_keep_pressure() {
        let m = m6();
        // Short co-runner, long target: co-runner must loop.
        let wl = vec![
            RunnerGroup::solo(hungry("t", 100e9)),
            RunnerGroup {
                app: hungry("short", 10e9),
                count: 2,
            },
        ];
        let out = m.run(&wl, &RunOptions::default()).unwrap();
        assert!(out.counters[1].completed_runs >= 5, "{:?}", out.counters[1]);
        assert_eq!(out.counters[0].completed_runs, 1);
    }

    #[test]
    fn noise_is_small_and_deterministic() {
        let m = m6();
        let app = hungry("t", 50e9);
        let clean = m.run_solo(&app, &RunOptions::default()).unwrap();
        let noisy_opts = RunOptions {
            noise_sigma: 0.008,
            seed: 7,
            ..Default::default()
        };
        let a = m.run_solo(&app, &noisy_opts).unwrap();
        let b = m.run_solo(&app, &noisy_opts).unwrap();
        assert_eq!(a.wall_time_s, b.wall_time_s);
        assert_ne!(a.wall_time_s, clean.wall_time_s);
        let rel = (a.wall_time_s - clean.wall_time_s).abs() / clean.wall_time_s;
        assert!(rel < 0.05, "noise moved time by {rel}");
    }

    #[test]
    fn rejects_bad_workloads() {
        let m = m6();
        assert!(matches!(
            m.run(&[], &RunOptions::default()),
            Err(MachineError::EmptyWorkload)
        ));
        let wl = vec![RunnerGroup {
            app: hungry("t", 1e9),
            count: 7,
        }];
        assert!(matches!(
            m.run(&wl, &RunOptions::default()),
            Err(MachineError::NotEnoughCores {
                requested: 7,
                available: 6
            })
        ));
        let wl = vec![RunnerGroup::solo(hungry("t", 1e9))];
        assert!(matches!(
            m.run(
                &wl,
                &RunOptions {
                    pstate: 6,
                    ..Default::default()
                }
            ),
            Err(MachineError::BadPState { .. })
        ));
        let wl = vec![RunnerGroup {
            app: hungry("t", 1e9),
            count: 0,
        }];
        assert!(matches!(
            m.run(&wl, &RunOptions::default()),
            Err(MachineError::BadProfile(_))
        ));
    }

    #[test]
    fn segment_overflow_is_a_typed_error() {
        let m = m6();
        // Short co-runner, long target: restarts force many segments.
        let wl = vec![
            RunnerGroup::solo(hungry("t", 100e9)),
            RunnerGroup {
                app: hungry("short", 10e9),
                count: 2,
            },
        ];
        let opts = RunOptions {
            max_segments: 3,
            ..Default::default()
        };
        match m.run(&wl, &opts) {
            Err(MachineError::SegmentOverflow { segments, cap }) => {
                assert_eq!(cap, 3);
                assert_eq!(segments, 4, "abandoned on the first segment past the cap");
            }
            other => panic!("expected SegmentOverflow, got {other:?}"),
        }
    }

    #[test]
    fn multi_phase_app_changes_behaviour_mid_run() {
        let m = m6();
        let app = AppProfile {
            name: "phased".into(),
            instructions: 100e9,
            phases: vec![
                AppPhase {
                    weight: 0.5,
                    dist: StackDistanceDist::power_law(1_000_000, 0.35, 0.02),
                    accesses_per_instr: 0.03,
                    cpi_base: 0.9,
                    mlp: 4.0,
                },
                AppPhase {
                    weight: 0.5,
                    dist: StackDistanceDist::power_law(2_000, 2.0, 1e-6),
                    accesses_per_instr: 0.001,
                    cpi_base: 0.7,
                    mlp: 2.0,
                },
            ],
        };
        let out = m.run_solo(&app, &RunOptions::default()).unwrap();
        assert!(
            out.segments >= 2,
            "expected a phase boundary, got {}",
            out.segments
        );
        // Time must be between the all-hungry and all-compute extremes.
        let hungry_t = m
            .run_solo(&hungry("h", 100e9), &RunOptions::default())
            .unwrap();
        let compute_t = m
            .run_solo(&compute("c", 100e9), &RunOptions::default())
            .unwrap();
        assert!(out.wall_time_s < hungry_t.wall_time_s);
        assert!(out.wall_time_s > compute_t.wall_time_s);
    }

    #[test]
    fn outcome_reports_contention_telemetry() {
        let m = m6();
        let solo = m
            .run_solo(&hungry("t", 50e9), &RunOptions::default())
            .unwrap();
        let shared = m
            .run(
                &[
                    RunnerGroup::solo(hungry("t", 50e9)),
                    RunnerGroup {
                        app: hungry("agg", 60e9),
                        count: 5,
                    },
                ],
                &RunOptions::default(),
            )
            .unwrap();
        // Under contention the target holds less cache and sees slower DRAM.
        assert!(shared.avg_llc_share_bytes[0] < solo.avg_llc_share_bytes[0]);
        assert!(shared.avg_mem_latency_ns > solo.avg_mem_latency_ns);
    }

    #[test]
    fn partitioned_llc_removes_cache_contention_only() {
        let m = m6();
        let target = hungry("t", 50e9);
        // Asymmetric mix: with identical apps the competitive equilibrium
        // *is* the equal split, so shared and partitioned would coincide.
        let aggressor = AppProfile::single_phase(
            "agg",
            60e9,
            AppPhase {
                weight: 1.0,
                dist: StackDistanceDist::power_law(2_000_000, 0.3, 0.04),
                accesses_per_instr: 0.05,
                cpi_base: 0.8,
                mlp: 5.0,
            },
        );
        let wl = vec![
            RunnerGroup::solo(target.clone()),
            RunnerGroup {
                app: aggressor,
                count: 5,
            },
        ];
        let shared = m.run(&wl, &RunOptions::default()).unwrap();
        let parts = m
            .run(
                &wl,
                &RunOptions {
                    llc_partitioned: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let solo = m.run_solo(&target, &RunOptions::default()).unwrap();

        // Partitioning pins every instance to an equal slice.
        let slice = m.spec().llc_bytes as f64 / 6.0;
        assert!((parts.avg_llc_share_bytes[0] - slice).abs() < 1.0);

        // For a memory-hungry target, an equal slice under partitioning is
        // *less* cache than it wins competitively, so cache-side behaviour
        // differs — but DRAM contention persists in both modes: neither
        // matches the solo run.
        assert!(parts.wall_time_s > solo.wall_time_s * 1.02);
        assert!(shared.wall_time_s > solo.wall_time_s * 1.02);
        // And the two contention modes disagree, proving the switch works.
        assert!((parts.wall_time_s - shared.wall_time_s).abs() > 1e-6);
    }

    #[test]
    fn twelve_core_machine_hosts_eleven_co_runners() {
        let m = Machine::new(presets::xeon_e5_2697v2()).unwrap();
        let wl = vec![
            RunnerGroup::solo(hungry("t", 50e9)),
            RunnerGroup {
                app: hungry("agg", 60e9),
                count: 11,
            },
        ];
        let out = m.run(&wl, &RunOptions::default()).unwrap();
        assert!(out.wall_time_s > 0.0);
        assert_eq!(out.counters.len(), 2);
    }

    #[test]
    fn instrumented_run_is_bit_identical_and_counts_stage_work() {
        let m = m6();
        let wl = vec![
            RunnerGroup::solo(hungry("t", 50e9)),
            RunnerGroup {
                app: hungry("short", 10e9),
                count: 2,
            },
        ];
        let opts = RunOptions {
            noise_sigma: 0.008,
            seed: 3,
            ..Default::default()
        };
        let plain = m.run(&wl, &opts).unwrap();
        let mut profile = StageProfile::new();
        let out = m.run_instrumented(&wl, &opts, &mut profile).unwrap();
        assert_eq!(out.wall_time_s.to_bits(), plain.wall_time_s.to_bits());
        assert_eq!(out.segments, plain.segments);
        assert_eq!(out.fp_iterations, plain.fp_iterations);
        for (a, b) in out.counters.iter().zip(&plain.counters) {
            assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
            assert_eq!(a.llc_misses.to_bits(), b.llc_misses.to_bits());
        }
        // Per-segment stages run once per segment; solver stages once per
        // fixed-point iteration.
        let segs = plain.segments as u64;
        assert_eq!(profile.get(StageId::PState).invocations, segs);
        assert_eq!(profile.get(StageId::PhaseSync).invocations, segs);
        assert_eq!(profile.get(StageId::CounterAccrual).invocations, segs);
        assert_eq!(
            profile.get(StageId::LlcShare).invocations,
            plain.fp_iterations
        );
        assert_eq!(
            profile.get(StageId::DramFixedPoint).invocations,
            plain.fp_iterations
        );
    }

    #[test]
    fn stage_nanos_never_exceed_total_run_time() {
        // The profile attributes only time spent *inside* stage closures;
        // driver overhead (loop control, trace pushes, validation, noise)
        // must not be billed to any stage. Hence the summed stage nanos are
        // bounded by the wall time of the whole instrumented run.
        let m = m6();
        let wl = vec![
            RunnerGroup::solo(hungry("t", 50e9)),
            RunnerGroup {
                app: hungry("short", 10e9),
                count: 2,
            },
        ];
        let mut profile = StageProfile::new();
        let t0 = std::time::Instant::now();
        m.run_instrumented(&wl, &RunOptions::default(), &mut profile)
            .unwrap();
        let total_run_nanos = t0.elapsed().as_nanos() as u64;
        let stage_sum: u64 = profile.nanos().iter().sum();
        assert!(stage_sum > 0, "instrumented run recorded no stage time");
        assert!(
            stage_sum <= total_run_nanos,
            "stage nanos {stage_sum} exceed the whole run's {total_run_nanos}"
        );
    }

    #[test]
    fn traced_run_records_recent_segments() {
        let m = m6();
        let wl = vec![
            RunnerGroup::solo(hungry("t", 50e9)),
            RunnerGroup {
                app: hungry("short", 5e9),
                count: 2,
            },
        ];
        let (out, trace) = m.run_traced(&wl, &RunOptions::default(), 4).unwrap();
        assert_eq!(trace.len() as u64 + trace.dropped(), out.segments as u64);
        assert!(trace.len() <= 4);
        let segs: Vec<usize> = trace.records().map(|r| r.segment).collect();
        assert_eq!(
            *segs.last().unwrap(),
            out.segments,
            "trace ends at the last segment"
        );
        assert!(
            segs.windows(2).all(|w| w[1] == w[0] + 1),
            "records are consecutive"
        );
        for r in trace.records() {
            assert!(r.dt > 0.0 && r.fp_iters > 0 && r.latency_ns > 0.0);
        }
        // Observation does not perturb the run.
        let plain = m.run(&wl, &RunOptions::default()).unwrap();
        assert_eq!(out.wall_time_s.to_bits(), plain.wall_time_s.to_bits());
    }
}
