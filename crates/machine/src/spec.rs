//! Static machine descriptions: cores, LLC, P-states, memory subsystem.

use coloc_memsys::DramSpec;

/// A multicore processor platform (paper Table IV plus the parameters the
/// simulator needs that the table summarizes).
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MachineSpec {
    /// Marketing name, e.g. `"Xeon E5649"`.
    pub name: String,
    /// Physical cores (hyperthreading is off throughout, as in the paper).
    pub cores: usize,
    /// Shared last-level cache capacity in bytes.
    pub llc_bytes: u64,
    /// LLC associativity.
    pub llc_ways: usize,
    /// Available P-state core frequencies in GHz, **descending** (index 0 =
    /// fastest). The paper samples six per machine.
    pub pstates_ghz: Vec<f64>,
    /// DRAM subsystem parameters.
    pub dram: DramSpec,
}

impl MachineSpec {
    /// Validate internal consistency; used by constructors and tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("machine needs at least one core".into());
        }
        if self.llc_bytes == 0 {
            return Err("LLC must be non-empty".into());
        }
        if self.pstates_ghz.is_empty() {
            return Err("need at least one P-state".into());
        }
        // `!(f > 0.0)` deliberately also rejects NaN.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if self.pstates_ghz.iter().any(|&f| !(f > 0.0)) {
            return Err("P-state frequencies must be positive".into());
        }
        if self.pstates_ghz.windows(2).any(|w| w[1] > w[0]) {
            return Err("P-states must be sorted descending".into());
        }
        Ok(())
    }

    /// Frequency of P-state `index` in Hz.
    pub fn freq_hz(&self, index: usize) -> Option<f64> {
        self.pstates_ghz.get(index).map(|&g| g * 1e9)
    }

    /// Number of P-states.
    pub fn num_pstates(&self) -> usize {
        self.pstates_ghz.len()
    }

    /// Maximum co-located applications alongside one target (`cores − 1`).
    pub fn max_co_located(&self) -> usize {
        self.cores - 1
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;

    #[test]
    fn presets_validate() {
        presets::xeon_e5649().validate().unwrap();
        presets::xeon_e5_2697v2().validate().unwrap();
    }

    #[test]
    fn presets_match_paper_table4() {
        let small = presets::xeon_e5649();
        assert_eq!(small.cores, 6);
        assert_eq!(small.llc_bytes, 12 << 20);
        assert_eq!(small.num_pstates(), 6);
        assert!((small.pstates_ghz[0] - 2.53).abs() < 1e-9);
        assert!((small.pstates_ghz[5] - 1.60).abs() < 1e-9);

        let big = presets::xeon_e5_2697v2();
        assert_eq!(big.cores, 12);
        assert_eq!(big.llc_bytes, 30 << 20);
        assert_eq!(big.num_pstates(), 6);
        assert!((big.pstates_ghz[0] - 2.70).abs() < 1e-9);
        assert!((big.pstates_ghz[5] - 1.20).abs() < 1e-9);
    }

    #[test]
    fn freq_lookup() {
        let m = presets::xeon_e5649();
        assert_eq!(m.freq_hz(0), Some(2.53e9));
        assert_eq!(m.freq_hz(99), None);
        assert_eq!(m.max_co_located(), 5);
    }

    #[test]
    fn validation_catches_errors() {
        let mut m = presets::xeon_e5649();
        m.pstates_ghz = vec![1.0, 2.0]; // ascending: invalid
        assert!(m.validate().is_err());
        m.pstates_ghz = vec![];
        assert!(m.validate().is_err());
        let mut m2 = presets::xeon_e5649();
        m2.cores = 0;
        assert!(m2.validate().is_err());
    }
}
