//! The co-execution engine.
//!
//! A run places a *target* application (group 0) and zero or more groups
//! of identical co-runners on the machine's cores and advances them
//! through piecewise-constant *segments*. Within a segment every
//! application's behaviour is stationary, so the coupled contention state —
//! LLC occupancy split, per-app miss rate, DRAM latency at the aggregate
//! miss bandwidth, and effective CPI — is a fixed point, found by damped
//! iteration (interleaving [`coloc_cachesim::occupancy_step`] with CPI/DRAM
//! updates). A segment ends when any application crosses a phase boundary,
//! a co-runner finishes (and restarts, keeping contention pressure constant
//! — the standard co-location measurement methodology), or the target
//! completes, which ends the run.
//!
//! The circular dependency the fixed point resolves is physical: an app's
//! access *rate* depends on its CPI, its CPI depends on memory latency and
//! its miss rate, its miss rate depends on its LLC share, and its LLC share
//! depends on everyone's access rates.

use crate::app::AppProfile;
use crate::faults::FaultEvent;
use crate::spec::MachineSpec;
use crate::{MachineError, Result};
use coloc_cachesim::{occupancy_step, MissRateCurve, SharedApp};
use coloc_memsys::{MemorySystem, MISS_BYTES};
use rand::Rng as _;
use rand::SeedableRng as _;

/// A group of `count` identical co-located application instances. Instances
/// in a group start together and advance in lockstep.
#[derive(Clone, Debug)]
pub struct RunnerGroup {
    /// Profile shared by every instance in the group.
    pub app: AppProfile,
    /// Number of instances (one core each).
    pub count: usize,
}

impl RunnerGroup {
    /// A single-instance group.
    pub fn solo(app: AppProfile) -> RunnerGroup {
        RunnerGroup { app, count: 1 }
    }
}

/// Per-instance hardware event counts accumulated over a run, as a
/// performance-counter reader would observe them. Values are `f64` because
/// segments advance in fractional quanta; round at the presentation layer.
#[derive(Clone, Copy, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CounterBlock {
    /// Instructions retired.
    pub instructions: f64,
    /// Core cycles elapsed.
    pub cycles: f64,
    /// LLC accesses issued.
    pub llc_accesses: f64,
    /// LLC misses suffered.
    pub llc_misses: f64,
    /// Completed runs (co-runners restart; the target completes exactly 1).
    pub completed_runs: u32,
}

impl CounterBlock {
    /// Memory intensity: LLC misses per instruction (paper §IV-A3).
    pub fn memory_intensity(&self) -> f64 {
        if self.instructions > 0.0 {
            self.llc_misses / self.instructions
        } else {
            0.0
        }
    }

    /// LLC misses per LLC access (the paper's CM/CA feature).
    pub fn miss_ratio(&self) -> f64 {
        if self.llc_accesses > 0.0 {
            self.llc_misses / self.llc_accesses
        } else {
            0.0
        }
    }

    /// LLC accesses per instruction (the paper's CA/INS feature).
    pub fn access_ratio(&self) -> f64 {
        if self.instructions > 0.0 {
            self.llc_accesses / self.instructions
        } else {
            0.0
        }
    }
}

/// Options for one run.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// P-state index into the machine's frequency table (0 = fastest).
    pub pstate: usize,
    /// Seed for measurement noise (ignored when `noise_sigma == 0`).
    pub seed: u64,
    /// Relative σ of multiplicative lognormal noise on the measured wall
    /// time, modeling run-to-run variation (≈ 0.008 matches the tight
    /// intervals the paper reports; 0 = noiseless).
    pub noise_sigma: f64,
    /// Safety cap on segments (guards against degenerate profiles).
    pub max_segments: usize,
    /// Statically way-partition the LLC: every application instance gets an
    /// equal private slice instead of competing for occupancy. Isolates the
    /// cache-contention component of slowdown from the memory-bandwidth
    /// component (DRAM stays shared) — an ablation over the paper's premise
    /// that the *shared* LLC drives interference.
    pub llc_partitioned: bool,
    /// Budget on total fixed-point iterations across the whole run
    /// (0 = unlimited). Once exceeded, remaining segments solve under a
    /// small per-segment iteration cap and the outcome is marked
    /// [`Convergence::Degraded`] instead of spinning — the run always
    /// terminates with its residual reported.
    pub fp_budget: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            pstate: 0,
            seed: 0,
            noise_sigma: 0.0,
            max_segments: 200_000,
            llc_partitioned: false,
            fp_budget: 0,
        }
    }
}

/// Whether the contention solver converged within its budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Convergence {
    /// Every segment's fixed point converged to tolerance.
    Converged,
    /// The run exhausted its fixed-point budget; later segments used a
    /// truncated solve. The result is usable but approximate.
    Degraded {
        /// Total fixed-point iterations actually spent.
        fp_iterations: u64,
        /// Worst relative CPI residual among truncated segments.
        residual: f64,
    },
}

impl Convergence {
    /// True when the solver hit its budget.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Convergence::Degraded { .. })
    }
}

/// Everything measured about one run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Wall-clock execution time of the target, seconds (noise applied).
    pub wall_time_s: f64,
    /// Per-group, per-instance counters (index matches the workload).
    pub counters: Vec<CounterBlock>,
    /// Segments simulated.
    pub segments: usize,
    /// Fixed-point solver iterations summed over all segments — the
    /// engine's unit of simulation work, surfaced for sweep telemetry.
    pub fp_iterations: u64,
    /// Average LLC share of each group's instances over the run, bytes
    /// (time-weighted).
    pub avg_llc_share_bytes: Vec<f64>,
    /// Time-average DRAM latency seen by the target's misses, ns.
    pub avg_mem_latency_ns: f64,
    /// Whether every segment's fixed point converged, or the run degraded
    /// after exhausting [`RunOptions::fp_budget`].
    pub convergence: Convergence,
    /// Measurement faults injected into this outcome (empty for a clean
    /// engine run; populated by [`crate::FaultPlan::apply`]).
    pub faults: Vec<FaultEvent>,
}

/// The simulator: a machine spec plus its memory system.
#[derive(Clone, Debug)]
pub struct Machine {
    spec: MachineSpec,
    mem: MemorySystem,
}

/// Reusable per-run buffers for the segment solver. Built once per run;
/// every per-segment quantity lives here so the hot loop allocates
/// nothing. `instances` holds one [`SharedApp`] per core-resident app
/// instance; its MRC is re-cloned only when that group's phase changes,
/// not every segment.
struct RunScratch {
    /// One entry per instance, grouped contiguously by workload group.
    instances: Vec<SharedApp>,
    /// Owning group of each instance.
    owner_group: Vec<usize>,
    /// Index of the first instance of each group (instances within a group
    /// are symmetric, so reading the first suffices — this replaces the
    /// O(groups × instances) `position()` scans).
    group_first: Vec<usize>,
    /// Phase currently loaded into each group's instance MRCs.
    loaded_phase: Vec<usize>,
    /// LLC occupancy per instance, bytes; refilled to the equal split at
    /// the start of each segment (same numerics as a fresh allocation).
    occ: Vec<f64>,
    /// Current phase index and end boundary per group.
    phase_info: Vec<(usize, f64)>,
    /// Per-group stationary rates for the segment being solved.
    ips: Vec<f64>,
    miss_rate: Vec<f64>,
    access_rate: Vec<f64>,
    occ_per_instance: Vec<f64>,
}

impl RunScratch {
    fn new(workload: &[RunnerGroup], mrcs: &[Vec<MissRateCurve>]) -> RunScratch {
        let n_groups = workload.len();
        let mut instances = Vec::new();
        let mut owner_group = Vec::new();
        let mut group_first = Vec::with_capacity(n_groups);
        for (gi, g) in workload.iter().enumerate() {
            group_first.push(instances.len());
            let mrc = &mrcs[gi][0];
            for _ in 0..g.count {
                instances.push(SharedApp {
                    access_rate: 0.0,
                    mrc: mrc.clone(),
                });
                owner_group.push(gi);
            }
        }
        let n_inst = instances.len();
        RunScratch {
            instances,
            owner_group,
            group_first,
            loaded_phase: vec![0; n_groups],
            occ: vec![0.0; n_inst],
            phase_info: vec![(0, 0.0); n_groups],
            ips: vec![0.0; n_groups],
            miss_rate: vec![0.0; n_groups],
            access_rate: vec![0.0; n_groups],
            occ_per_instance: vec![0.0; n_groups],
        }
    }

    /// Load each group's current-phase MRC into its instances, cloning
    /// only for groups whose phase actually changed.
    fn sync_phases(&mut self, mrcs: &[Vec<MissRateCurve>]) {
        for (gi, group_mrcs) in mrcs.iter().enumerate() {
            let phase = self.phase_info[gi].0;
            if self.loaded_phase[gi] != phase {
                self.loaded_phase[gi] = phase;
                let mrc = &group_mrcs[phase];
                let start = self.group_first[gi];
                let end = self
                    .group_first
                    .get(gi + 1)
                    .copied()
                    .unwrap_or(self.instances.len());
                for inst in &mut self.instances[start..end] {
                    inst.mrc = mrc.clone();
                }
            }
        }
    }
}

impl Machine {
    /// Build a machine from a spec, validating it first. Malformed specs —
    /// which reach this path from user-supplied configuration, not just
    /// presets — come back as [`MachineError::InvalidSpec`] instead of a
    /// panic.
    pub fn new(spec: MachineSpec) -> Result<Machine> {
        spec.validate().map_err(MachineError::InvalidSpec)?;
        let mem = MemorySystem::new(spec.dram);
        Ok(Machine { spec, mem })
    }

    /// The machine's spec.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Run `workload` (group 0 = target) at the given options until the
    /// target completes. Returns the measured outcome.
    pub fn run(&self, workload: &[RunnerGroup], opts: &RunOptions) -> Result<RunOutcome> {
        if workload.is_empty() {
            return Err(MachineError::EmptyWorkload);
        }
        let requested: usize = workload.iter().map(|g| g.count).sum();
        if requested > self.spec.cores {
            return Err(MachineError::NotEnoughCores {
                requested,
                available: self.spec.cores,
            });
        }
        let freq_hz = self
            .spec
            .freq_hz(opts.pstate)
            .ok_or(MachineError::BadPState {
                index: opts.pstate,
                available: self.spec.num_pstates(),
            })?;
        for g in workload {
            if g.count == 0 {
                return Err(MachineError::BadProfile(format!(
                    "{}: group count is zero",
                    g.app.name
                )));
            }
            g.app.validate().map_err(MachineError::BadProfile)?;
        }

        // Pre-compute per-group, per-phase MRCs once.
        let mrcs: Vec<Vec<MissRateCurve>> = workload
            .iter()
            .map(|g| g.app.phases.iter().map(|p| p.mrc()).collect())
            .collect();

        let n_groups = workload.len();
        let mut progress = vec![0.0f64; n_groups];
        let mut counters = vec![CounterBlock::default(); n_groups];
        let mut share_time_acc = vec![0.0f64; n_groups];
        let mut latency_time_acc = 0.0f64;
        let mut wall = 0.0f64;
        let mut segments = 0usize;
        let mut fp_iterations = 0u64;
        let mut degraded = false;
        let mut worst_residual = 0.0f64;
        // CPI warm start carried across segments for fast convergence.
        let mut cpi: Vec<f64> = workload.iter().map(|g| g.app.phases[0].cpi_base).collect();
        // All per-segment buffers live here; the loop below is allocation
        // free no matter how many segments the run takes.
        let mut scratch = RunScratch::new(workload, &mrcs);

        loop {
            segments += 1;
            if segments > opts.max_segments {
                return Err(MachineError::BadProfile(format!(
                    "run exceeded {} segments; co-runner far shorter than target?",
                    opts.max_segments
                )));
            }

            // Current phase and its end boundary for each group.
            for (gi, (g, &p)) in workload.iter().zip(&progress).enumerate() {
                scratch.phase_info[gi] = g.app.phase_at(p);
            }
            scratch.sync_phases(&mrcs);

            // Per-segment iteration cap. Under a budget, segments past the
            // budget get a short truncated solve instead of spinning; the
            // run still terminates, marked degraded below if any truncated
            // segment missed tolerance.
            let iter_cap = if opts.fp_budget == 0 {
                MAX_FP_ITERS
            } else {
                let remaining = opts.fp_budget.saturating_sub(fp_iterations);
                remaining.clamp(DEGRADED_FP_ITERS, MAX_FP_ITERS)
            };
            let (latency_ns, iters, residual) = self.solve_segment(
                workload,
                &mut scratch,
                freq_hz,
                opts.llc_partitioned,
                &mut cpi,
                iter_cap,
            );
            fp_iterations += iters;
            if residual >= FP_TOLERANCE {
                degraded = true;
                worst_residual = worst_residual.max(residual);
            }

            // Time until each group hits its next boundary.
            let mut dt = f64::INFINITY;
            for (gi, p) in progress.iter().enumerate() {
                let remaining = scratch.phase_info[gi].1 - p;
                let t = remaining / scratch.ips[gi];
                if t < dt {
                    dt = t;
                }
            }
            if !(dt.is_finite() && dt > 0.0) {
                return Err(MachineError::Numeric(format!(
                    "degenerate segment dt = {dt} at segment {segments}"
                )));
            }

            // Advance everyone by dt.
            for gi in 0..n_groups {
                let instr = scratch.ips[gi] * dt;
                progress[gi] += instr;
                let acc =
                    instr * workload[gi].app.phases[scratch.phase_info[gi].0].accesses_per_instr;
                counters[gi].instructions += instr;
                counters[gi].cycles += freq_hz * dt;
                counters[gi].llc_accesses += acc;
                counters[gi].llc_misses += acc * scratch.miss_rate[gi];
                share_time_acc[gi] += scratch.occ_per_instance[gi] * dt;
            }
            latency_time_acc += latency_ns * dt;
            wall += dt;

            // Snap boundary crossings and handle completions.
            let mut target_done = false;
            for gi in 0..n_groups {
                let boundary = scratch.phase_info[gi].1;
                if progress[gi] >= boundary - 1e-6 * workload[gi].app.instructions.max(1.0) {
                    progress[gi] = boundary;
                    if (boundary - workload[gi].app.instructions).abs()
                        < 1e-9 * workload[gi].app.instructions
                    {
                        counters[gi].completed_runs += 1;
                        if gi == 0 {
                            target_done = true;
                        } else {
                            progress[gi] = 0.0; // co-runner restarts
                        }
                    }
                }
            }
            if target_done {
                break;
            }
        }

        // Measurement noise: multiplicative lognormal on the observed time.
        // The scale applies uniformly to every group's cycle counter — a
        // slow (or fast) measured run is slow for everyone sharing the
        // machine, not just the target.
        let mut wall_measured = wall;
        if opts.noise_sigma > 0.0 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
            // Box–Muller from two uniforms (StdRng has no normal sampler
            // without rand_distr; this keeps dependencies lean).
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let scale = (opts.noise_sigma * z).exp();
            wall_measured *= scale;
            for c in counters.iter_mut() {
                c.cycles *= scale;
            }
        }

        Ok(RunOutcome {
            wall_time_s: wall_measured,
            counters,
            segments,
            fp_iterations,
            avg_llc_share_bytes: share_time_acc.iter().map(|&s| s / wall).collect(),
            avg_mem_latency_ns: latency_time_acc / wall,
            convergence: if degraded {
                Convergence::Degraded {
                    fp_iterations,
                    residual: worst_residual,
                }
            } else {
                Convergence::Converged
            },
            faults: Vec::new(),
        })
    }

    /// Convenience: run an app alone (the paper's baseline measurement).
    pub fn run_solo(&self, app: &AppProfile, opts: &RunOptions) -> Result<RunOutcome> {
        self.run(&[RunnerGroup::solo(app.clone())], opts)
    }

    /// Find the stationary contention state for the current phases.
    ///
    /// Reads the current phases from `scratch.phase_info` (MRCs must
    /// already be synced via [`RunScratch::sync_phases`]); writes the
    /// converged per-group `ips`, `miss_rate`, and `occ_per_instance` back
    /// into `scratch`. Returns the DRAM latency, the number of fixed-point
    /// iterations consumed, and the final relative CPI residual (0.0 when
    /// converged below [`FP_TOLERANCE`]).
    #[allow(clippy::needless_range_loop)]
    fn solve_segment(
        &self,
        workload: &[RunnerGroup],
        scratch: &mut RunScratch,
        freq_hz: f64,
        llc_partitioned: bool,
        cpi: &mut [f64],
        max_iters: u64,
    ) -> (f64, u64, f64) {
        let n_groups = workload.len();
        let cap = self.spec.llc_bytes;
        let n_inst = scratch.instances.len();

        // Fresh equal split every segment — same starting point a newly
        // allocated occupancy vector had, without the allocation.
        scratch
            .occ
            .iter_mut()
            .for_each(|o| *o = cap as f64 / n_inst as f64);

        let mut latency_ns = self.mem.spec().idle_latency_ns;
        let mut iters = 0u64;
        let mut residual = 0.0f64;

        for _iter in 0..max_iters {
            iters += 1;
            // Rates from current CPI.
            for gi in 0..n_groups {
                let ph = &workload[gi].app.phases[scratch.phase_info[gi].0];
                scratch.access_rate[gi] = freq_hz / cpi[gi] * ph.accesses_per_instr;
            }
            for ii in 0..n_inst {
                scratch.instances[ii].access_rate = scratch.access_rate[scratch.owner_group[ii]];
            }

            // One occupancy step at these rates (skipped when the LLC is
            // statically partitioned: shares are fixed equal slices).
            if !llc_partitioned {
                occupancy_step(cap, &scratch.instances, &mut scratch.occ);
            }
            for gi in 0..n_groups {
                // All instances of a group are symmetric; read the first.
                let ii = scratch.group_first[gi];
                scratch.miss_rate[gi] = scratch.instances[ii].mrc.miss_rate(scratch.occ[ii] as u64);
            }

            // DRAM latency at the aggregate miss bandwidth.
            let mut bw = 0.0;
            let mut streams = 0usize;
            for gi in 0..n_groups {
                let miss_per_sec = scratch.access_rate[gi] * scratch.miss_rate[gi];
                bw += workload[gi].count as f64 * miss_per_sec * MISS_BYTES;
                if miss_per_sec > 1e5 {
                    streams += workload[gi].count;
                }
            }
            latency_ns = self.mem.access_latency_ns(bw, streams);

            // CPI update with damping.
            let mut max_rel = 0.0f64;
            for gi in 0..n_groups {
                let ph = &workload[gi].app.phases[scratch.phase_info[gi].0];
                let stall_cycles_per_instr =
                    ph.accesses_per_instr * scratch.miss_rate[gi] * (latency_ns * 1e-9 * freq_hz)
                        / ph.mlp;
                let target = ph.cpi_base + stall_cycles_per_instr;
                let next = 0.5 * cpi[gi] + 0.5 * target;
                max_rel = max_rel.max(((next - cpi[gi]) / cpi[gi]).abs());
                cpi[gi] = next;
            }
            residual = max_rel;
            if max_rel < FP_TOLERANCE {
                residual = 0.0;
                break;
            }
        }

        for gi in 0..n_groups {
            scratch.ips[gi] = freq_hz / cpi[gi];
            scratch.occ_per_instance[gi] = scratch.occ[scratch.group_first[gi]];
        }
        (latency_ns, iters, residual)
    }
}

/// Relative-CPI convergence tolerance of the segment fixed point.
pub const FP_TOLERANCE: f64 = 1e-9;
/// Per-segment iteration cap for a full (unbudgeted) solve.
const MAX_FP_ITERS: u64 = 250;
/// Per-segment floor once the run's fixed-point budget is exhausted: a
/// short damped solve that keeps the run terminating and the state sane.
const DEGRADED_FP_ITERS: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppPhase;
    use crate::presets;
    use coloc_cachesim::StackDistanceDist;

    /// A memory-hungry app: working set ≫ LLC, frequent accesses.
    fn hungry(name: &str, instructions: f64) -> AppProfile {
        AppProfile::single_phase(
            name,
            instructions,
            AppPhase {
                weight: 1.0,
                dist: StackDistanceDist::power_law(1_000_000, 0.35, 0.02),
                accesses_per_instr: 0.03,
                cpi_base: 0.9,
                mlp: 4.0,
            },
        )
    }

    /// A compute-bound app: tiny working set, almost no LLC traffic.
    fn compute(name: &str, instructions: f64) -> AppProfile {
        AppProfile::single_phase(
            name,
            instructions,
            AppPhase {
                weight: 1.0,
                dist: StackDistanceDist::power_law(2_000, 2.0, 1e-6),
                accesses_per_instr: 0.001,
                cpi_base: 0.7,
                mlp: 2.0,
            },
        )
    }

    fn m6() -> Machine {
        Machine::new(presets::xeon_e5649()).unwrap()
    }

    #[test]
    fn invalid_spec_is_a_typed_error_not_a_panic() {
        let mut spec = presets::xeon_e5649();
        spec.cores = 0;
        match Machine::new(spec) {
            Err(MachineError::InvalidSpec(msg)) => {
                assert!(msg.contains("core"), "unexpected message: {msg}")
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        let mut spec = presets::xeon_e5649();
        spec.pstates_ghz.clear();
        assert!(matches!(
            Machine::new(spec),
            Err(MachineError::InvalidSpec(_))
        ));
    }

    #[test]
    fn fp_budget_degrades_instead_of_spinning() {
        let m = m6();
        let wl = vec![
            RunnerGroup::solo(hungry("t", 100e9)),
            RunnerGroup {
                app: hungry("short", 10e9),
                count: 2,
            },
        ];
        let full = m.run(&wl, &RunOptions::default()).unwrap();
        assert_eq!(full.convergence, Convergence::Converged);

        let tight = RunOptions {
            fp_budget: 1,
            ..Default::default()
        };
        let out = m.run(&wl, &tight).unwrap();
        match out.convergence {
            Convergence::Degraded {
                fp_iterations,
                residual,
            } => {
                assert!(fp_iterations < full.fp_iterations);
                assert!(residual > 0.0 && residual.is_finite(), "{residual}");
            }
            Convergence::Converged => panic!("budget of 1 iteration cannot converge"),
        }
        // Degraded, not garbage: the run completed with a finite time in
        // the neighbourhood of the converged result.
        assert!(out.wall_time_s.is_finite() && out.wall_time_s > 0.0);
        let rel = (out.wall_time_s - full.wall_time_s).abs() / full.wall_time_s;
        assert!(rel < 0.5, "degraded run drifted {rel} from converged");
    }

    #[test]
    fn solo_run_produces_sane_counters() {
        let m = m6();
        let app = hungry("h", 200e9);
        let out = m.run_solo(&app, &RunOptions::default()).unwrap();
        assert!(out.wall_time_s > 10.0, "{}", out.wall_time_s);
        let c = &out.counters[0];
        assert!((c.instructions - 200e9).abs() < 1.0);
        assert_eq!(c.completed_runs, 1);
        assert!(c.llc_accesses > 0.0);
        assert!(c.llc_misses > 0.0);
        assert!(c.llc_misses <= c.llc_accesses);
        assert!(c.memory_intensity() > 1e-4);
    }

    #[test]
    fn lower_pstate_is_slower() {
        let m = m6();
        let app = compute("c", 100e9);
        let fast = m
            .run_solo(
                &app,
                &RunOptions {
                    pstate: 0,
                    ..Default::default()
                },
            )
            .unwrap();
        let slow = m
            .run_solo(
                &app,
                &RunOptions {
                    pstate: 5,
                    ..Default::default()
                },
            )
            .unwrap();
        // Compute-bound: time scales ≈ inversely with frequency.
        let ratio = slow.wall_time_s / fast.wall_time_s;
        let freq_ratio = 2.53 / 1.60;
        assert!((ratio - freq_ratio).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn memory_bound_app_scales_sublinearly_with_frequency() {
        let m = m6();
        let app = hungry("h", 100e9);
        let fast = m
            .run_solo(
                &app,
                &RunOptions {
                    pstate: 0,
                    ..Default::default()
                },
            )
            .unwrap();
        let slow = m
            .run_solo(
                &app,
                &RunOptions {
                    pstate: 5,
                    ..Default::default()
                },
            )
            .unwrap();
        let ratio = slow.wall_time_s / fast.wall_time_s;
        let freq_ratio = 2.53 / 1.60;
        assert!(
            ratio < freq_ratio - 0.05,
            "memory-bound ratio {ratio} should undercut frequency ratio {freq_ratio}"
        );
        assert!(ratio > 1.0);
    }

    #[test]
    fn co_location_slows_the_target_monotonically() {
        let m = m6();
        let target = hungry("t", 100e9);
        let mut prev = 0.0;
        for n in 0..=5usize {
            let mut wl = vec![RunnerGroup::solo(target.clone())];
            if n > 0 {
                wl.push(RunnerGroup {
                    app: hungry("agg", 120e9),
                    count: n,
                });
            }
            let out = m.run(&wl, &RunOptions::default()).unwrap();
            assert!(
                out.wall_time_s > prev,
                "n={n}: {} !> {prev}",
                out.wall_time_s
            );
            prev = out.wall_time_s;
        }
    }

    #[test]
    fn compute_bound_co_runners_barely_hurt() {
        let m = m6();
        let target = hungry("t", 100e9);
        let solo = m.run_solo(&target, &RunOptions::default()).unwrap();
        let wl = vec![
            RunnerGroup::solo(target.clone()),
            RunnerGroup {
                app: compute("ep-ish", 100e9),
                count: 5,
            },
        ];
        let with = m.run(&wl, &RunOptions::default()).unwrap();
        let slowdown = with.wall_time_s / solo.wall_time_s;
        assert!(slowdown < 1.05, "compute co-runners caused {slowdown}");
        assert!(slowdown >= 1.0 - 1e-9);
    }

    #[test]
    fn memory_hungry_co_runners_hurt_more_than_compute() {
        let m = m6();
        let target = hungry("t", 100e9);
        let with_compute = m
            .run(
                &[
                    RunnerGroup::solo(target.clone()),
                    RunnerGroup {
                        app: compute("c", 100e9),
                        count: 5,
                    },
                ],
                &RunOptions::default(),
            )
            .unwrap();
        let with_hungry = m
            .run(
                &[
                    RunnerGroup::solo(target.clone()),
                    RunnerGroup {
                        app: hungry("h", 100e9),
                        count: 5,
                    },
                ],
                &RunOptions::default(),
            )
            .unwrap();
        assert!(
            with_hungry.wall_time_s > with_compute.wall_time_s * 1.1,
            "{} vs {}",
            with_hungry.wall_time_s,
            with_compute.wall_time_s
        );
    }

    #[test]
    fn co_runners_restart_to_keep_pressure() {
        let m = m6();
        // Short co-runner, long target: co-runner must loop.
        let wl = vec![
            RunnerGroup::solo(hungry("t", 100e9)),
            RunnerGroup {
                app: hungry("short", 10e9),
                count: 2,
            },
        ];
        let out = m.run(&wl, &RunOptions::default()).unwrap();
        assert!(out.counters[1].completed_runs >= 5, "{:?}", out.counters[1]);
        assert_eq!(out.counters[0].completed_runs, 1);
    }

    #[test]
    fn noise_is_small_and_deterministic() {
        let m = m6();
        let app = hungry("t", 50e9);
        let clean = m.run_solo(&app, &RunOptions::default()).unwrap();
        let noisy_opts = RunOptions {
            noise_sigma: 0.008,
            seed: 7,
            ..Default::default()
        };
        let a = m.run_solo(&app, &noisy_opts).unwrap();
        let b = m.run_solo(&app, &noisy_opts).unwrap();
        assert_eq!(a.wall_time_s, b.wall_time_s);
        assert_ne!(a.wall_time_s, clean.wall_time_s);
        let rel = (a.wall_time_s - clean.wall_time_s).abs() / clean.wall_time_s;
        assert!(rel < 0.05, "noise moved time by {rel}");
    }

    #[test]
    fn rejects_bad_workloads() {
        let m = m6();
        assert!(matches!(
            m.run(&[], &RunOptions::default()),
            Err(MachineError::EmptyWorkload)
        ));
        let wl = vec![RunnerGroup {
            app: hungry("t", 1e9),
            count: 7,
        }];
        assert!(matches!(
            m.run(&wl, &RunOptions::default()),
            Err(MachineError::NotEnoughCores {
                requested: 7,
                available: 6
            })
        ));
        let wl = vec![RunnerGroup::solo(hungry("t", 1e9))];
        assert!(matches!(
            m.run(
                &wl,
                &RunOptions {
                    pstate: 6,
                    ..Default::default()
                }
            ),
            Err(MachineError::BadPState { .. })
        ));
        let wl = vec![RunnerGroup {
            app: hungry("t", 1e9),
            count: 0,
        }];
        assert!(matches!(
            m.run(&wl, &RunOptions::default()),
            Err(MachineError::BadProfile(_))
        ));
    }

    #[test]
    fn multi_phase_app_changes_behaviour_mid_run() {
        let m = m6();
        let app = AppProfile {
            name: "phased".into(),
            instructions: 100e9,
            phases: vec![
                AppPhase {
                    weight: 0.5,
                    dist: StackDistanceDist::power_law(1_000_000, 0.35, 0.02),
                    accesses_per_instr: 0.03,
                    cpi_base: 0.9,
                    mlp: 4.0,
                },
                AppPhase {
                    weight: 0.5,
                    dist: StackDistanceDist::power_law(2_000, 2.0, 1e-6),
                    accesses_per_instr: 0.001,
                    cpi_base: 0.7,
                    mlp: 2.0,
                },
            ],
        };
        let out = m.run_solo(&app, &RunOptions::default()).unwrap();
        assert!(
            out.segments >= 2,
            "expected a phase boundary, got {}",
            out.segments
        );
        // Time must be between the all-hungry and all-compute extremes.
        let hungry_t = m
            .run_solo(&hungry("h", 100e9), &RunOptions::default())
            .unwrap();
        let compute_t = m
            .run_solo(&compute("c", 100e9), &RunOptions::default())
            .unwrap();
        assert!(out.wall_time_s < hungry_t.wall_time_s);
        assert!(out.wall_time_s > compute_t.wall_time_s);
    }

    #[test]
    fn outcome_reports_contention_telemetry() {
        let m = m6();
        let solo = m
            .run_solo(&hungry("t", 50e9), &RunOptions::default())
            .unwrap();
        let shared = m
            .run(
                &[
                    RunnerGroup::solo(hungry("t", 50e9)),
                    RunnerGroup {
                        app: hungry("agg", 60e9),
                        count: 5,
                    },
                ],
                &RunOptions::default(),
            )
            .unwrap();
        // Under contention the target holds less cache and sees slower DRAM.
        assert!(shared.avg_llc_share_bytes[0] < solo.avg_llc_share_bytes[0]);
        assert!(shared.avg_mem_latency_ns > solo.avg_mem_latency_ns);
    }

    #[test]
    fn partitioned_llc_removes_cache_contention_only() {
        let m = m6();
        let target = hungry("t", 50e9);
        // Asymmetric mix: with identical apps the competitive equilibrium
        // *is* the equal split, so shared and partitioned would coincide.
        let aggressor = AppProfile::single_phase(
            "agg",
            60e9,
            AppPhase {
                weight: 1.0,
                dist: StackDistanceDist::power_law(2_000_000, 0.3, 0.04),
                accesses_per_instr: 0.05,
                cpi_base: 0.8,
                mlp: 5.0,
            },
        );
        let wl = vec![
            RunnerGroup::solo(target.clone()),
            RunnerGroup {
                app: aggressor,
                count: 5,
            },
        ];
        let shared = m.run(&wl, &RunOptions::default()).unwrap();
        let parts = m
            .run(
                &wl,
                &RunOptions {
                    llc_partitioned: true,
                    ..Default::default()
                },
            )
            .unwrap();
        let solo = m.run_solo(&target, &RunOptions::default()).unwrap();

        // Partitioning pins every instance to an equal slice.
        let slice = m.spec().llc_bytes as f64 / 6.0;
        assert!((parts.avg_llc_share_bytes[0] - slice).abs() < 1.0);

        // For a memory-hungry target, an equal slice under partitioning is
        // *less* cache than it wins competitively, so cache-side behaviour
        // differs — but DRAM contention persists in both modes: neither
        // matches the solo run.
        assert!(parts.wall_time_s > solo.wall_time_s * 1.02);
        assert!(shared.wall_time_s > solo.wall_time_s * 1.02);
        // And the two contention modes disagree, proving the switch works.
        assert!((parts.wall_time_s - shared.wall_time_s).abs() > 1e-6);
    }

    #[test]
    fn twelve_core_machine_hosts_eleven_co_runners() {
        let m = Machine::new(presets::xeon_e5_2697v2()).unwrap();
        let wl = vec![
            RunnerGroup::solo(hungry("t", 50e9)),
            RunnerGroup {
                app: hungry("agg", 60e9),
                count: 11,
            },
        ];
        let out = m.run(&wl, &RunOptions::default()).unwrap();
        assert!(out.wall_time_s > 0.0);
        assert_eq!(out.counters.len(), 2);
    }
}
