//! Application profiles: how the simulator sees a running program.
//!
//! An [`AppProfile`] captures everything the engine needs to co-execute an
//! application: how many instructions it retires, and — per execution
//! phase — its compute intensity (base CPI), how often it reaches the LLC,
//! how much latency it can hide (memory-level parallelism), and its cache
//! locality as a stack-distance model. The paper notes applications move
//! through memory-use phases (§I, citing \[SaS13\]) but shows coarse
//! averages suffice for prediction; profiles here support both single- and
//! multi-phase structure so that claim can be tested.

use coloc_cachesim::{MissRateCurve, StackDistanceDist};

/// One execution phase of an application.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AppPhase {
    /// Fraction of the app's instructions spent in this phase (> 0; phases
    /// must sum to ≈ 1).
    pub weight: f64,
    /// Cache-locality model of the phase's LLC reference stream.
    pub dist: StackDistanceDist,
    /// LLC accesses per instruction (references that miss the private
    /// L1/L2 hierarchy and reach the shared cache).
    pub accesses_per_instr: f64,
    /// Cycles per instruction excluding LLC-miss stalls, at any frequency.
    pub cpi_base: f64,
    /// Memory-level parallelism: average overlapped misses; divides the
    /// effective per-miss stall.
    pub mlp: f64,
}

impl AppPhase {
    /// Miss-rate curve of this phase (delegates to the locality model).
    pub fn mrc(&self) -> MissRateCurve {
        self.dist.miss_rate_curve()
    }

    // Negated comparisons are deliberate: `!(x > 0.0)` also rejects NaN,
    // which `x <= 0.0` would let through.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn validate(&self, i: usize) -> Result<(), String> {
        if !(self.weight > 0.0) {
            return Err(format!("phase {i}: weight must be positive"));
        }
        if !(self.accesses_per_instr >= 0.0) {
            return Err(format!("phase {i}: negative access rate"));
        }
        if !(self.cpi_base > 0.0) {
            return Err(format!("phase {i}: cpi_base must be positive"));
        }
        if !(self.mlp >= 1.0) {
            return Err(format!("phase {i}: mlp must be >= 1"));
        }
        Ok(())
    }
}

/// A complete application profile.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AppProfile {
    /// Application name (e.g. `"canneal"`).
    pub name: String,
    /// Total instructions retired over one complete run.
    pub instructions: f64,
    /// Execution phases, in order.
    pub phases: Vec<AppPhase>,
}

impl AppProfile {
    /// Validate the profile; the engine calls this before running.
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN-rejecting guards
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err(format!("{}: no phases", self.name));
        }
        if !(self.instructions > 0.0) {
            return Err(format!("{}: instructions must be positive", self.name));
        }
        for (i, p) in self.phases.iter().enumerate() {
            p.validate(i).map_err(|e| format!("{}: {e}", self.name))?;
        }
        let total: f64 = self.phases.iter().map(|p| p.weight).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(format!(
                "{}: phase weights sum to {total}, expected 1",
                self.name
            ));
        }
        Ok(())
    }

    /// Phase index active at instruction-progress `done` (0..instructions),
    /// plus the instruction count at which that phase ends.
    pub fn phase_at(&self, done: f64) -> (usize, f64) {
        let mut boundary = 0.0;
        for (i, p) in self.phases.iter().enumerate() {
            boundary += p.weight * self.instructions;
            if i == self.phases.len() - 1 {
                // Pin the final boundary to the exact instruction count so
                // completion checks are immune to weight-sum rounding.
                return (i, self.instructions);
            }
            if done < boundary - 1e-9 {
                return (i, boundary);
            }
        }
        unreachable!("phases are non-empty")
    }

    /// Instruction-weighted average of a per-phase quantity.
    pub fn weighted<F: Fn(&AppPhase) -> f64>(&self, f: F) -> f64 {
        self.phases.iter().map(|p| p.weight * f(p)).sum()
    }

    /// A convenience single-phase profile.
    pub fn single_phase(name: impl Into<String>, instructions: f64, phase: AppPhase) -> AppProfile {
        AppProfile {
            name: name.into(),
            instructions,
            phases: vec![AppPhase {
                weight: 1.0,
                ..phase
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(weight: f64) -> AppPhase {
        AppPhase {
            weight,
            dist: StackDistanceDist::power_law(64, 1.0, 0.01),
            accesses_per_instr: 0.01,
            cpi_base: 1.0,
            mlp: 2.0,
        }
    }

    fn two_phase() -> AppProfile {
        AppProfile {
            name: "toy".into(),
            instructions: 1000.0,
            phases: vec![phase(0.25), phase(0.75)],
        }
    }

    #[test]
    fn valid_profile_passes() {
        two_phase().validate().unwrap();
    }

    #[test]
    fn weight_sum_checked() {
        let mut p = two_phase();
        p.phases[0].weight = 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn rejects_bad_fields() {
        let mut p = two_phase();
        p.phases[0].mlp = 0.5;
        assert!(p.validate().is_err());
        let mut p = two_phase();
        p.phases[1].cpi_base = 0.0;
        assert!(p.validate().is_err());
        let mut p = two_phase();
        p.instructions = -1.0;
        assert!(p.validate().is_err());
        let p = AppProfile {
            name: "x".into(),
            instructions: 1.0,
            phases: vec![],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn phase_lookup() {
        let p = two_phase();
        assert_eq!(p.phase_at(0.0), (0, 250.0));
        assert_eq!(p.phase_at(100.0), (0, 250.0));
        assert_eq!(p.phase_at(250.0), (1, 1000.0));
        assert_eq!(p.phase_at(999.0), (1, 1000.0));
        // At/after the end, the last phase remains active.
        assert_eq!(p.phase_at(1000.0).0, 1);
    }

    #[test]
    fn weighted_average() {
        let mut p = two_phase();
        p.phases[0].cpi_base = 2.0;
        p.phases[1].cpi_base = 1.0;
        assert!((p.weighted(|ph| ph.cpi_base) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn single_phase_normalizes_weight() {
        let p = AppProfile::single_phase("s", 10.0, phase(0.123));
        p.validate().unwrap();
        assert_eq!(p.phases[0].weight, 1.0);
    }
}
