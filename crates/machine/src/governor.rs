//! Thermal DVFS governor simulation.
//!
//! The paper motivates P-states partly as a thermal mechanism: "DVFS
//! techniques can reduce the dynamic operating power … or to temporarily
//! reduce the operating temperature due to the multicore processor having
//! exceeded a thermal cut-off" and "processor P-states are likely to change
//! in high performance computing systems based on the system's need to
//! reduce power or temperature" (§IV-A4). This module closes that loop: a
//! first-order thermal RC model drives a throttle-up/throttle-down
//! governor, producing the time-varying P-state trace a real machine would
//! exhibit — and therefore the workload-dependent effective execution
//! times that make per-P-state baselines (the `baseExTime` feature) worth
//! measuring.
//!
//! The simulation composes public machine APIs: per-P-state instruction
//! rates come from ordinary solo runs; the governor then integrates
//! progress and temperature in fixed control-interval steps.

use crate::app::AppProfile;
use crate::engine::{Machine, RunOptions};
use crate::Result;

/// First-order thermal model: `dT/dt = (P·θ + T_amb − T) / τ`.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThermalModel {
    /// Thermal resistance, °C per watt.
    pub theta_c_per_w: f64,
    /// Time constant, seconds.
    pub tau_s: f64,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        // Ballpark server-class package: ~0.35 °C/W, ~12 s time constant.
        ThermalModel {
            theta_c_per_w: 0.35,
            tau_s: 12.0,
            ambient_c: 35.0,
        }
    }
}

impl ThermalModel {
    /// Steady-state temperature at constant power.
    pub fn steady_state_c(&self, power_w: f64) -> f64 {
        self.ambient_c + self.theta_c_per_w * power_w
    }

    /// Advance temperature by `dt` seconds at constant power.
    pub fn step(&self, temp_c: f64, power_w: f64, dt: f64) -> f64 {
        let target = self.steady_state_c(power_w);
        target + (temp_c - target) * (-dt / self.tau_s).exp()
    }
}

/// Governor policy parameters.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GovernorConfig {
    /// Throttle down when temperature exceeds this, °C.
    pub throttle_at_c: f64,
    /// Allow stepping back up when below `throttle_at_c − hysteresis_c`.
    pub hysteresis_c: f64,
    /// Governor control interval, seconds.
    pub interval_s: f64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            throttle_at_c: 85.0,
            hysteresis_c: 6.0,
            interval_s: 0.5,
        }
    }
}

/// One P-state residency segment of a throttled run.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PStateResidency {
    /// P-state index.
    pub pstate: usize,
    /// Seconds spent in it (contiguous).
    pub seconds: f64,
}

/// Outcome of a thermally-governed run.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThrottledOutcome {
    /// Total execution time, seconds.
    pub wall_time_s: f64,
    /// Final package temperature, °C.
    pub final_temp_c: f64,
    /// Peak package temperature, °C.
    pub peak_temp_c: f64,
    /// Contiguous P-state residencies, in order.
    pub residencies: Vec<PStateResidency>,
    /// Per-P-state solo instruction rates used (instructions/second).
    pub ips_per_pstate: Vec<f64>,
}

impl ThrottledOutcome {
    /// Number of governor transitions.
    pub fn transitions(&self) -> usize {
        self.residencies.len().saturating_sub(1)
    }

    /// Total time spent at P-state `p`.
    pub fn time_at(&self, p: usize) -> f64 {
        self.residencies
            .iter()
            .filter(|r| r.pstate == p)
            .map(|r| r.seconds)
            .sum()
    }
}

/// Run `app` solo under a thermal governor.
///
/// `power_w(pstate)` supplies socket power at each P-state (the caller
/// owns the power model — e.g. `coloc-model`'s `PowerModel`). The app's
/// per-P-state instruction rate is measured with noiseless solo runs, then
/// progress and temperature are integrated at the governor interval.
pub fn run_throttled(
    machine: &Machine,
    app: &AppProfile,
    power_w: impl Fn(usize) -> f64,
    thermal: &ThermalModel,
    gov: &GovernorConfig,
) -> Result<ThrottledOutcome> {
    let num_pstates = machine.spec().num_pstates();
    // Per-P-state average instruction rates from clean solo runs.
    let mut ips = Vec::with_capacity(num_pstates);
    for p in 0..num_pstates {
        let out = machine.run_solo(
            app,
            &RunOptions {
                pstate: p,
                ..Default::default()
            },
        )?;
        ips.push(app.instructions / out.wall_time_s);
    }

    let mut temp = thermal.ambient_c;
    let mut peak = temp;
    let mut pstate = 0usize;
    let mut done = 0.0f64;
    let mut wall = 0.0f64;
    let mut residencies: Vec<PStateResidency> = Vec::new();

    while done < app.instructions {
        // Governor decision at the start of each interval.
        if temp > gov.throttle_at_c && pstate + 1 < num_pstates {
            pstate += 1;
        } else if temp < gov.throttle_at_c - gov.hysteresis_c && pstate > 0 {
            pstate -= 1;
        }

        // Advance one interval (or less, if the app finishes first).
        let remaining_t = (app.instructions - done) / ips[pstate];
        let dt = gov.interval_s.min(remaining_t);
        done += ips[pstate] * dt;
        wall += dt;
        temp = thermal.step(temp, power_w(pstate), dt);
        peak = peak.max(temp);

        match residencies.last_mut() {
            Some(r) if r.pstate == pstate => r.seconds += dt,
            _ => residencies.push(PStateResidency {
                pstate,
                seconds: dt,
            }),
        }
    }

    Ok(ThrottledOutcome {
        wall_time_s: wall,
        final_temp_c: temp,
        peak_temp_c: peak,
        residencies,
        ips_per_pstate: ips,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppPhase;
    use crate::presets;
    use coloc_cachesim::StackDistanceDist;

    fn compute_app(instructions: f64) -> AppProfile {
        AppProfile::single_phase(
            "hotloop",
            instructions,
            AppPhase {
                weight: 1.0,
                dist: StackDistanceDist::power_law(2_000, 2.0, 1e-6),
                accesses_per_instr: 0.001,
                cpi_base: 0.7,
                mlp: 2.0,
            },
        )
    }

    /// Power model: hot at P0, cool at lower P-states.
    fn hot_power(p: usize) -> f64 {
        [220.0, 180.0, 150.0, 120.0, 100.0, 85.0][p]
    }

    fn cool_power(_p: usize) -> f64 {
        60.0
    }

    #[test]
    fn thermal_model_converges_to_steady_state() {
        let tm = ThermalModel::default();
        let mut t = tm.ambient_c;
        for _ in 0..10_000 {
            t = tm.step(t, 100.0, 0.1);
        }
        assert!((t - tm.steady_state_c(100.0)).abs() < 0.01);
        // Monotone approach.
        let t1 = tm.step(tm.ambient_c, 100.0, 1.0);
        let t2 = tm.step(t1, 100.0, 1.0);
        assert!(t2 > t1 && t1 > tm.ambient_c);
    }

    #[test]
    fn cool_system_never_throttles() {
        let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let out = run_throttled(
            &m,
            &compute_app(200e9),
            cool_power,
            &ThermalModel::default(),
            &GovernorConfig::default(),
        )
        .unwrap();
        assert_eq!(out.residencies.len(), 1);
        assert_eq!(out.residencies[0].pstate, 0);
        assert!(out.peak_temp_c < 85.0);
        // Matches the untthrottled P0 time.
        let plain = m
            .run_solo(&compute_app(200e9), &RunOptions::default())
            .unwrap();
        assert!((out.wall_time_s - plain.wall_time_s).abs() / plain.wall_time_s < 0.01);
    }

    #[test]
    fn hot_system_throttles_and_respects_the_cap() {
        let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let gov = GovernorConfig::default();
        let thermal = ThermalModel::default();
        // Steady state at P0 is 35 + 0.35*220 = 112 °C > 85 °C: must throttle.
        let out = run_throttled(&m, &compute_app(400e9), hot_power, &thermal, &gov).unwrap();
        assert!(out.transitions() >= 1, "{:?}", out.residencies.len());
        assert!(out.time_at(0) > 0.0);
        // Some time must be spent below P0.
        let throttled_time: f64 = (1..6).map(|p| out.time_at(p)).sum();
        assert!(throttled_time > 0.0);
        // The cap can be overshot by at most one control interval's heating.
        assert!(
            out.peak_temp_c < gov.throttle_at_c + 3.0,
            "peak {}",
            out.peak_temp_c
        );
        // Throttling costs time vs an (impossible) uncapped P0 run…
        let p0 = m
            .run_solo(&compute_app(400e9), &RunOptions::default())
            .unwrap();
        assert!(out.wall_time_s > p0.wall_time_s);
        // …but beats pinning the lowest P-state throughout.
        let p5 = m
            .run_solo(
                &compute_app(400e9),
                &RunOptions {
                    pstate: 5,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(out.wall_time_s < p5.wall_time_s);
    }

    #[test]
    fn hysteresis_prevents_rapid_oscillation() {
        let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let thermal = ThermalModel::default();
        let tight = GovernorConfig {
            hysteresis_c: 6.0,
            ..Default::default()
        };
        let out = run_throttled(&m, &compute_app(300e9), hot_power, &thermal, &tight).unwrap();
        // Transitions happen, but far fewer than control intervals.
        let intervals = (out.wall_time_s / tight.interval_s).ceil() as usize;
        assert!(
            out.transitions() < intervals / 4,
            "{} transitions in {} intervals",
            out.transitions(),
            intervals
        );
    }

    #[test]
    fn residencies_sum_to_wall_time() {
        let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let out = run_throttled(
            &m,
            &compute_app(150e9),
            hot_power,
            &ThermalModel::default(),
            &GovernorConfig::default(),
        )
        .unwrap();
        let sum: f64 = out.residencies.iter().map(|r| r.seconds).sum();
        assert!((sum - out.wall_time_s).abs() < 1e-9);
        assert_eq!(out.ips_per_pstate.len(), 6);
        // IPS decreases with P-state for a compute-bound app.
        for w in out.ips_per_pstate.windows(2) {
            assert!(w[1] < w[0]);
        }
    }
}
