//! The canonical scenario intermediate representation.
//!
//! Before this module existed, "a scenario" was re-described independently
//! in four places: `coloc_core::Scenario` (suite names + counts), the
//! conformance corpus' `CorpusCase` (names + run axes), the `RunCache`
//! digest (a private byte encoding), and `Lab::plan_digest` (another
//! private byte encoding). [`ScenarioIr`] is the one representation they
//! all converge on: a serializable, digestable value holding everything
//! the engine reads — machine spec, workload groups, run options, and the
//! optional fault plan.
//!
//! ## Digest canonicalization rules
//!
//! Every digest in the workspace is produced by [`IrWriter`], a 128-bit
//! FNV-1a writer, over one canonical byte encoding:
//!
//! * integers are hashed as little-endian `u64` bytes (`usize` widens);
//! * floats are hashed by **bit pattern** (`f64::to_bits`), so `-0.0`,
//!   `0.0`, and every NaN payload key apart — exactly right for memo keys,
//!   where bit-identical inputs imply bit-identical outputs;
//! * strings are length-prefixed, then raw UTF-8 bytes;
//! * locality distributions hash their scalar parameters **and** their
//!   representative/CDF tables, so two distributions with equal parameters
//!   but different construction key apart;
//! * a fault plan contributes a `1` tag byte plus its digest only when it
//!   can actually fire; a no-op plan encodes as the `0` tag, identical to
//!   no plan at all (it cannot change any outcome, so clean sweeps and
//!   faultless chaos sweeps share cache entries).
//!
//! The encoding is append-only by convention: the digest-stability fixture
//! under `crates/machine/tests/` pins digests of known scenarios, so any
//! accidental change to this encoding — which would silently invalidate
//! run caches and sweep checkpoints — fails CI instead.

use crate::app::AppProfile;
use crate::engine::{Machine, RunOptions, RunnerGroup};
use crate::event::GroupSchedule;
use crate::faults::FaultPlan;
use crate::spec::MachineSpec;

const FNV128_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV128_PRIME: u128 = 0x0000000001000000000000000000013b;

/// 128-bit FNV-1a style digest writer: the single hashing primitive
/// behind every scenario digest (run-cache keys, checkpoint headers,
/// fault-plan digests). Not cryptographic — it only needs to make
/// accidental collisions between distinct inputs negligible.
#[derive(Clone, Debug)]
pub struct IrWriter {
    state: u128,
}

impl Default for IrWriter {
    fn default() -> IrWriter {
        IrWriter::new()
    }
}

impl IrWriter {
    /// A writer at the FNV-128 offset basis.
    pub fn new() -> IrWriter {
        IrWriter {
            state: FNV128_OFFSET,
        }
    }

    /// Absorb one byte.
    pub fn byte(&mut self, b: u8) {
        self.state ^= b as u128;
        self.state = self.state.wrapping_mul(FNV128_PRIME);
    }

    /// Absorb a `u64` as little-endian bytes.
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    /// Absorb a `usize`, widened to `u64` for a platform-stable encoding.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Absorb a float by bit pattern: distinguishes `-0.0` from `0.0` and
    /// every NaN payload, which is exactly right for a memo key
    /// (bit-identical inputs ⇒ bit-identical outputs).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Absorb a length-prefixed string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        for b in s.bytes() {
            self.byte(b);
        }
    }

    /// The 128-bit digest.
    pub fn finish(self) -> u128 {
        self.state
    }

    /// The current internal state (for memoized block transitions).
    fn state(&self) -> u128 {
        self.state
    }

    /// A writer resumed at an arbitrary internal state.
    fn resume(state: u128) -> IrWriter {
        IrWriter { state }
    }

    /// The digest folded to 64 bits (high half XOR low half) for callers
    /// that persist a `u64` — checkpoint headers, fault-plan digests.
    pub fn finish64(self) -> u64 {
        let d = self.finish();
        (d >> 64) as u64 ^ d as u64
    }
}

/// Canonical encoding of a locality distribution's tables: length-prefixed
/// representatives, then the CDF. This is the block [`DigestMemo`] caches
/// affine transitions for, so its byte count must be a pure function of the
/// table lengths (it is: every entry widens to 8 bytes).
fn absorb_dist_tables(d: &mut IrWriter, dist: &coloc_cachesim::StackDistanceDist) {
    d.usize(dist.representatives().len());
    for &r in dist.representatives() {
        d.usize(r);
    }
    for &c in dist.cdf() {
        d.f64(c);
    }
}

/// Canonical encoding of an application profile, down to its per-phase
/// locality tables.
fn encode_app(d: &mut IrWriter, app: &AppProfile, memo: Option<&DigestMemo>) {
    d.str(&app.name);
    d.f64(app.instructions);
    d.usize(app.phases.len());
    for ph in &app.phases {
        d.f64(ph.weight);
        d.f64(ph.accesses_per_instr);
        d.f64(ph.cpi_base);
        d.f64(ph.mlp);
        // The locality model: scalar parameters plus the actual
        // distribution tables, so two dists with equal parameters but
        // different construction (power-law vs uniform) key apart.
        d.f64(ph.dist.p_new);
        d.usize(ph.dist.reuse_span);
        d.f64(ph.dist.alpha);
        match memo {
            Some(m) => m.absorb(d, &ph.dist),
            None => absorb_dist_tables(d, &ph.dist),
        }
    }
}

/// `FNV128_PRIME` raised to `8 * n_u64s` (one multiply per absorbed byte),
/// by repeated squaring.
fn fnv_pow(n_bytes: usize) -> u128 {
    let mut acc: u128 = 1;
    let mut base = FNV128_PRIME;
    let mut n = n_bytes;
    while n > 0 {
        if n & 1 == 1 {
            acc = acc.wrapping_mul(base);
        }
        base = base.wrapping_mul(base);
        n >>= 1;
    }
    acc
}

/// Memoized affine transitions for one distribution's table block.
struct MemoEntry {
    /// Keeps the distribution's identity token alive so its address cannot
    /// be recycled by a different table set while this entry exists.
    _keepalive: std::sync::Arc<()>,
    /// `FNV128_PRIME ^ block_bytes` — the multiplicative part of the
    /// affine transition, shared by every input state.
    pow: u128,
    /// Additive part, keyed by the input state's low byte (the only part
    /// of the state the XOR-then-multiply chain actually reads).
    d: std::collections::HashMap<u8, u128>,
}

/// Cap on distinct distributions the memo tracks; reaching it clears the
/// map (a full reset is bit-transparent — entries are pure caches).
const DIGEST_MEMO_CAP: usize = 8192;

/// Shared memo of digest-state transitions across locality-table blocks.
///
/// FNV-1a is affine in its state: absorbing one byte `b` maps `s` to
/// `(s ^ b) * p`, and `s ^ b = s + ((l ^ b) - l)` where `l` is the low
/// byte of `s` (XOR with a one-byte value only touches the low byte, and
/// the carry-free difference is exact in wrapping arithmetic). Chaining
/// over a fixed byte block `B` therefore gives `s_out = s * p^|B| + D`,
/// where `D` depends only on `B` and the low byte of `s` — because the
/// low byte of the state after each step, `((l ^ b) * p) & 0xff`, is
/// itself a function of the previous low byte alone (`p`'s low byte is
/// `0x3b`). So for each distribution (identified by its table token) and
/// each input low byte, one reference absorption yields an affine rule
/// replayed forever after as a single multiply-add — bit-identical to
/// hashing the tables byte-by-byte.
#[derive(Default)]
pub struct DigestMemo {
    inner: std::sync::Mutex<std::collections::HashMap<usize, MemoEntry>>,
}

impl std::fmt::Debug for DigestMemo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.inner.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("DigestMemo").field("entries", &n).finish()
    }
}

impl DigestMemo {
    /// A fresh, empty memo.
    pub fn new() -> DigestMemo {
        DigestMemo::default()
    }

    /// Absorb `dist`'s tables into `w`, replaying a memoized affine
    /// transition when this distribution (by identity token) and input
    /// low byte have been absorbed before.
    fn absorb(&self, w: &mut IrWriter, dist: &coloc_cachesim::StackDistanceDist) {
        let Ok(mut memo) = self.inner.lock() else {
            // A poisoned memo degrades to the direct path.
            absorb_dist_tables(w, dist);
            return;
        };
        let key = std::sync::Arc::as_ptr(dist.table_token()) as usize;
        if memo.len() >= DIGEST_MEMO_CAP && !memo.contains_key(&key) {
            memo.clear();
        }
        let s_in = w.state();
        let l_in = s_in as u8;
        let entry = memo.entry(key).or_insert_with(|| MemoEntry {
            _keepalive: std::sync::Arc::clone(dist.table_token()),
            pow: fnv_pow((1 + dist.representatives().len() + dist.cdf().len()) * 8),
            d: std::collections::HashMap::new(),
        });
        let mul = s_in.wrapping_mul(entry.pow);
        let add = *entry.d.entry(l_in).or_insert_with(|| {
            let mut probe = IrWriter::resume(s_in);
            absorb_dist_tables(&mut probe, dist);
            probe.state().wrapping_sub(mul)
        });
        *w = IrWriter::resume(mul.wrapping_add(add));
    }
}

/// Canonical encoding of a complete scenario — machine spec, workload,
/// run options, optional fault plan — into `d`. This is **the** scenario
/// byte encoding: [`ScenarioIr::digest`], the run-cache key, and the
/// sweep-checkpoint digest all read these exact bytes.
pub fn encode_scenario(
    d: &mut IrWriter,
    spec: &MachineSpec,
    workload: &[RunnerGroup],
    opts: &RunOptions,
    faults: Option<&FaultPlan>,
) {
    encode_scenario_inner(d, spec, workload, opts, faults, None, None)
}

/// [`encode_scenario`] plus per-group event schedules. Schedules are
/// encoded *only when at least one group deviates from the lockstep
/// default* — the canonical byte stream of a default-scheduled scenario
/// is identical to the schedule-less stream, so every pre-event digest
/// (cache keys, checkpoints, the pinned fixture) is unchanged.
pub fn encode_scenario_scheduled(
    d: &mut IrWriter,
    spec: &MachineSpec,
    workload: &[RunnerGroup],
    opts: &RunOptions,
    faults: Option<&FaultPlan>,
    schedules: Option<&[GroupSchedule]>,
) {
    encode_scenario_inner(d, spec, workload, opts, faults, schedules, None)
}

fn encode_scenario_inner(
    d: &mut IrWriter,
    spec: &MachineSpec,
    workload: &[RunnerGroup],
    opts: &RunOptions,
    faults: Option<&FaultPlan>,
    schedules: Option<&[GroupSchedule]>,
    memo: Option<&DigestMemo>,
) {
    d.str(&spec.name);
    d.usize(spec.cores);
    d.u64(spec.llc_bytes);
    d.usize(spec.llc_ways);
    d.usize(spec.pstates_ghz.len());
    for &p in &spec.pstates_ghz {
        d.f64(p);
    }
    d.f64(spec.dram.peak_bw_bytes_per_sec);
    d.f64(spec.dram.idle_latency_ns);
    d.f64(spec.dram.queue_latency_ns);
    d.f64(spec.dram.max_queue_ns);
    d.f64(spec.dram.bank_penalty_ns);
    d.usize(spec.dram.banks);

    d.usize(workload.len());
    for g in workload {
        d.usize(g.count);
        encode_app(d, &g.app, memo);
    }

    d.usize(opts.pstate);
    d.u64(opts.seed);
    d.f64(opts.noise_sigma);
    d.usize(opts.max_segments);
    d.byte(opts.llc_partitioned as u8);
    d.u64(opts.fp_budget);
    match faults {
        // A no-op plan keys like no plan at all: it cannot change any
        // outcome, so clean sweeps and faultless "chaos" sweeps share
        // cache entries.
        Some(plan) if !plan.is_noop() => {
            d.byte(1);
            d.u64(plan.digest());
        }
        _ => d.byte(0),
    }
    // Event schedules append *after* the fault tag, and only when they
    // deviate from lockstep: an all-default (or absent) schedule adds no
    // bytes, so it digests — and therefore caches and checkpoints —
    // exactly like the scenarios that predate event scheduling. The tag
    // byte 2 opens the block (the fault tag above is always 0 or 1, so
    // the stream stays prefix-free).
    match schedules {
        Some(s) if !crate::event::schedules_are_default(Some(s)) => {
            d.byte(2);
            d.usize(s.len());
            for g in s {
                d.f64(g.phase_offset);
                d.f64(g.arrival_tick);
                match g.departure_tick {
                    Some(t) => {
                        d.byte(1);
                        d.f64(t);
                    }
                    None => d.byte(0),
                }
                d.f64(g.clock_ratio);
            }
        }
        _ => {}
    }
}

/// Digest of a complete scenario from borrowed parts (no [`ScenarioIr`]
/// allocation) — the run-cache key computation.
pub fn scenario_digest(
    spec: &MachineSpec,
    workload: &[RunnerGroup],
    opts: &RunOptions,
    faults: Option<&FaultPlan>,
) -> u128 {
    let mut d = IrWriter::new();
    encode_scenario(&mut d, spec, workload, opts, faults);
    d.finish()
}

/// [`scenario_digest`] with per-group event schedules included in the
/// encoded bytes (all-default schedules digest identically to `None`).
pub fn scenario_digest_scheduled(
    spec: &MachineSpec,
    workload: &[RunnerGroup],
    opts: &RunOptions,
    faults: Option<&FaultPlan>,
    schedules: Option<&[GroupSchedule]>,
) -> u128 {
    let mut d = IrWriter::new();
    encode_scenario_scheduled(&mut d, spec, workload, opts, faults, schedules);
    d.finish()
}

/// [`scenario_digest`] accelerated by a [`DigestMemo`]: bit-identical
/// output, with each previously seen locality-table block replayed as one
/// multiply-add instead of a byte-by-byte hash.
pub fn scenario_digest_memo(
    memo: &DigestMemo,
    spec: &MachineSpec,
    workload: &[RunnerGroup],
    opts: &RunOptions,
    faults: Option<&FaultPlan>,
) -> u128 {
    scenario_digest_memo_scheduled(memo, spec, workload, opts, faults, None)
}

/// [`scenario_digest_scheduled`] with memo acceleration.
pub fn scenario_digest_memo_scheduled(
    memo: &DigestMemo,
    spec: &MachineSpec,
    workload: &[RunnerGroup],
    opts: &RunOptions,
    faults: Option<&FaultPlan>,
    schedules: Option<&[GroupSchedule]>,
) -> u128 {
    let mut d = IrWriter::new();
    encode_scenario_inner(&mut d, spec, workload, opts, faults, schedules, Some(memo));
    d.finish()
}

/// One serializable, digestable description of everything a run reads:
/// machine preset, workload groups, run options, and fault plan.
///
/// Higher layers lower their own scenario notions onto this type —
/// `coloc_core::Scenario` through `Lab::scenario_ir`, the conformance
/// corpus through `CorpusCase::to_ir` — so one canonical encoding backs
/// every cache key and checkpoint digest in the workspace.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScenarioIr {
    /// The machine the workload runs on.
    pub machine: MachineSpec,
    /// Workload groups; group 0 is the target.
    pub workload: Vec<RunnerGroup>,
    /// Run options (P-state, seed, noise, caps).
    pub opts: RunOptions,
    /// Optional measurement-fault plan.
    pub faults: Option<FaultPlan>,
    /// Optional per-group event schedules (one per workload group).
    /// `None` — and the all-default schedule — mean lockstep, and add no
    /// bytes to the canonical encoding.
    pub schedules: Option<Vec<GroupSchedule>>,
}

impl ScenarioIr {
    /// Build an IR without faults.
    pub fn new(machine: MachineSpec, workload: Vec<RunnerGroup>, opts: RunOptions) -> ScenarioIr {
        ScenarioIr {
            machine,
            workload,
            opts,
            faults: None,
            schedules: None,
        }
    }

    /// Attach a fault plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> ScenarioIr {
        self.faults = Some(plan);
        self
    }

    /// Attach per-group event schedules (one entry per workload group).
    pub fn with_schedules(mut self, schedules: Vec<GroupSchedule>) -> ScenarioIr {
        self.schedules = Some(schedules);
        self
    }

    /// The canonical 128-bit digest of this scenario (see the module docs
    /// for the encoding rules). Equal to the run-cache key of the same
    /// `(machine, workload, opts, faults)`.
    pub fn digest(&self) -> u128 {
        scenario_digest_scheduled(
            &self.machine,
            &self.workload,
            &self.opts,
            self.faults.as_ref(),
            self.schedules.as_deref(),
        )
    }

    /// [`ScenarioIr::digest`] folded to 64 bits for persisted headers.
    pub fn digest64(&self) -> u64 {
        let mut d = IrWriter::new();
        encode_scenario_scheduled(
            &mut d,
            &self.machine,
            &self.workload,
            &self.opts,
            self.faults.as_ref(),
            self.schedules.as_deref(),
        );
        d.finish64()
    }

    /// Validate and instantiate the machine this IR describes.
    pub fn machine(&self) -> crate::Result<Machine> {
        Machine::new(self.machine.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppPhase;
    use crate::presets;
    use coloc_cachesim::StackDistanceDist;

    fn app(name: &str, span: usize) -> AppProfile {
        AppProfile::single_phase(
            name,
            30e9,
            AppPhase {
                weight: 1.0,
                dist: StackDistanceDist::power_law(span, 0.35, 0.02),
                accesses_per_instr: 0.03,
                cpi_base: 0.9,
                mlp: 4.0,
            },
        )
    }

    fn ir(span: usize) -> ScenarioIr {
        ScenarioIr::new(
            presets::xeon_e5649(),
            vec![
                RunnerGroup::solo(app("t", span)),
                RunnerGroup {
                    app: app("c", span / 2),
                    count: 2,
                },
            ],
            RunOptions::default(),
        )
    }

    #[test]
    fn digest_matches_the_run_cache_key() {
        let base = ir(800_000);
        let m = Machine::new(base.machine.clone()).unwrap();
        assert_eq!(
            base.digest(),
            crate::cache::run_digest(&m, &base.workload, &base.opts)
        );
        let faulted = ir(800_000).with_faults(FaultPlan::light(3));
        assert_eq!(
            faulted.digest(),
            crate::cache::run_digest_faulted(
                &m,
                &faulted.workload,
                &faulted.opts,
                faulted.faults.as_ref()
            )
        );
    }

    #[test]
    fn every_axis_moves_the_digest() {
        let d0 = ir(800_000).digest();
        assert_eq!(d0, ir(800_000).digest(), "digest is a pure function");
        assert_ne!(d0, ir(400_000).digest(), "workload matters");
        let mut other_machine = ir(800_000);
        other_machine.machine = presets::xeon_e5_2697v2();
        assert_ne!(d0, other_machine.digest(), "machine matters");
        let mut other_opts = ir(800_000);
        other_opts.opts.pstate = 2;
        assert_ne!(d0, other_opts.digest(), "options matter");
        let noop = ir(800_000).with_faults(FaultPlan::default());
        assert_eq!(d0, noop.digest(), "a no-op plan keys like no plan");
        let faulted = ir(800_000).with_faults(FaultPlan::heavy(1));
        assert_ne!(d0, faulted.digest(), "an active plan keys apart");
    }

    #[test]
    fn memoized_digest_is_bit_identical() {
        let memo = DigestMemo::new();
        // Vary spans (different tables), names/opts (different digest
        // state preceding the tables → different input low bytes), and
        // cloned vs fresh dists (shared vs distinct identity tokens).
        for span in [100_000usize, 800_000, 3_000_000] {
            for pstate in 0..3usize {
                let mut s = ir(span);
                s.opts.pstate = pstate;
                s.opts.seed = 0x5eed ^ span as u64;
                let plain = s.digest();
                for _ in 0..3 {
                    let got = scenario_digest_memo(
                        &memo,
                        &s.machine,
                        &s.workload,
                        &s.opts,
                        s.faults.as_ref(),
                    );
                    assert_eq!(got, plain, "span {span} pstate {pstate}");
                }
            }
        }
        // A clone shares its token; an equal-parameter rebuild does not.
        // Both must still digest identically to the memo-free path.
        let base = ir(800_000);
        let cloned = base.clone();
        assert_eq!(
            scenario_digest_memo(&memo, &cloned.machine, &cloned.workload, &cloned.opts, None),
            base.digest()
        );
        let rebuilt = ir(800_000);
        assert_eq!(
            scenario_digest_memo(
                &memo,
                &rebuilt.machine,
                &rebuilt.workload,
                &rebuilt.opts,
                None
            ),
            base.digest()
        );
    }

    #[test]
    fn digest64_folds_the_full_digest() {
        let a = ir(800_000);
        let d = a.digest();
        assert_eq!(a.digest64(), (d >> 64) as u64 ^ d as u64);
        assert_ne!(a.digest64(), ir(400_000).digest64());
    }
}
