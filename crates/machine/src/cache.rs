//! Memoizing run cache — sharded for concurrent sweeps and services.
//!
//! Sweeps re-run identical `(machine, workload, RunOptions)` triples
//! constantly: every scenario in a training plan re-measures the same
//! baselines, ablations re-execute the shared arm, and repeated
//! validation drives the same scenarios again. A run is a pure function
//! of its inputs, so [`RunCache`] memoizes [`Machine::run`] behind a
//! canonical 128-bit digest of everything the engine reads: the machine
//! spec (cores, LLC geometry, P-state table, DRAM parameters), the full
//! workload (group counts, per-phase locality distributions down to their
//! CDF tables, access rates, CPIs, MLP), and the run options (P-state,
//! noise seed and σ, segment cap, partitioning flag).
//!
//! A hit returns a shared [`Arc`] handle to the stored [`RunOutcome`] —
//! bit-identical to what the engine produced, including applied noise,
//! because the noise seed is part of the key. Sharing instead of deep
//! cloning matters on the hit path: an outcome owns per-group counter and
//! telemetry vectors, and memoized sweeps hit thousands of times.
//!
//! ## Sharding
//!
//! The map is split into `shards` independently locked segments, selected
//! by the low bits of the scenario digest (FNV-1a/128 mixes its inputs
//! thoroughly, so low bits spread well). A work-stealing sweep or a
//! high-concurrency prediction service therefore never serializes on one
//! global mutex: two lookups collide only when their keys land in the
//! same shard. Each shard is bounded at `capacity / shards` entries and
//! evicts least-recently-used (a hit refreshes recency; with no
//! intervening hits this degenerates to insertion order, the previous
//! FIFO behavior). Hit/miss/eviction counters are global atomics, so
//! [`RunCache::stats`] aggregates are exactly what the single-mutex cache
//! reported and `SweepStats`/`repro` artifacts are unchanged.

use crate::engine::{Machine, RunOptions, RunOutcome, RunnerGroup, StageProfile};
use crate::event::GroupSchedule;
use crate::faults::FaultPlan;
use crate::ir;
use crate::Result;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Canonical digest of one run's complete input set — the
/// [`crate::ScenarioIr`] encoding of `(machine, workload, opts)`.
pub fn run_digest(machine: &Machine, workload: &[RunnerGroup], opts: &RunOptions) -> u128 {
    run_digest_faulted(machine, workload, opts, None)
}

/// Like [`run_digest`], additionally keyed by an optional [`FaultPlan`]:
/// a faulted outcome must never be served for a clean request (or for a
/// request under a different plan), so the plan is part of the memo key.
/// Delegates to the one canonical scenario encoding in [`crate::ir`].
pub fn run_digest_faulted(
    machine: &Machine,
    workload: &[RunnerGroup],
    opts: &RunOptions,
    faults: Option<&FaultPlan>,
) -> u128 {
    ir::scenario_digest(machine.spec(), workload, opts, faults)
}

/// Counter snapshot for telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the engine.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Entries currently resident (summed across shards).
    pub len: usize,
}

/// One independently locked cache segment: a key→outcome map plus an
/// LRU index. Recency is a per-shard logical clock: every touch stamps
/// the entry, and eviction removes the minimum stamp. `BTreeMap` keeps
/// both touch and evict at `O(log n)` for the small per-shard n.
struct Shard {
    map: HashMap<u128, (Arc<RunOutcome>, u64)>,
    /// stamp → key, the eviction order. Stamps are unique per shard.
    lru: BTreeMap<u64, u128>,
    /// Next recency stamp.
    clock: u64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: HashMap::new(),
            lru: BTreeMap::new(),
            clock: 0,
        }
    }

    /// Look up `key`, refreshing its recency on a hit.
    fn get(&mut self, key: u128) -> Option<Arc<RunOutcome>> {
        let clock = &mut self.clock;
        let lru = &mut self.lru;
        self.map.get_mut(&key).map(|(outcome, stamp)| {
            lru.remove(stamp);
            *stamp = *clock;
            lru.insert(*clock, key);
            *clock += 1;
            Arc::clone(outcome)
        })
    }

    /// Insert `key` if vacant, then evict down to `capacity`. Returns the
    /// number of entries evicted.
    fn insert_bounded(&mut self, key: u128, outcome: Arc<RunOutcome>, capacity: usize) -> u64 {
        if let Entry::Vacant(slot) = self.map.entry(key) {
            slot.insert((outcome, self.clock));
            self.lru.insert(self.clock, key);
            self.clock += 1;
        }
        let mut evicted = 0;
        while self.map.len() > capacity {
            let Some((&stamp, &victim)) = self.lru.iter().next() else {
                break;
            };
            self.lru.remove(&stamp);
            self.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }
}

/// A bounded, thread-safe, sharded memo table over [`Machine::run`].
pub struct RunCache {
    /// Per-shard entry bound (total capacity / shard count).
    shard_capacity: usize,
    shards: Vec<Mutex<Shard>>,
    /// Bit mask selecting a shard from a digest (shard count is a power
    /// of two).
    shard_mask: usize,
    /// Accelerates key computation: locality-table blocks hash as one
    /// memoized multiply-add after first sight (bit-identical digests).
    digest_memo: ir::DigestMemo,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Default capacity: comfortably holds a full paper-shape sweep
/// (6 × 11 × 4 × 11 = 2904 scenarios) plus baselines.
pub const DEFAULT_RUN_CACHE_CAPACITY: usize = 8192;

/// Default shard count: enough that a machine-sized worker pool rarely
/// collides, cheap enough that a single-threaded sweep never notices.
pub const DEFAULT_RUN_CACHE_SHARDS: usize = 16;

impl Default for RunCache {
    fn default() -> RunCache {
        RunCache::new(DEFAULT_RUN_CACHE_CAPACITY)
    }
}

impl RunCache {
    /// Create a cache holding at most `capacity` outcomes across
    /// [`DEFAULT_RUN_CACHE_SHARDS`] shards.
    pub fn new(capacity: usize) -> RunCache {
        RunCache::with_shards(capacity, DEFAULT_RUN_CACHE_SHARDS)
    }

    /// Create a cache holding at most `capacity` outcomes across `shards`
    /// independently locked segments. The shard count is rounded up to a
    /// power of two (min 1); each shard is bounded at `capacity / shards`
    /// entries (min 1), so the aggregate bound is `capacity` rounded up
    /// to a multiple of the shard count. `with_shards(cap, 1)` reproduces
    /// the single-mutex cache exactly: one map, one lock, one LRU order.
    pub fn with_shards(capacity: usize, shards: usize) -> RunCache {
        let shards = shards.clamp(1, 1 << 16).next_power_of_two();
        let shard_capacity = capacity.max(1).div_ceil(shards).max(1);
        RunCache {
            shard_capacity,
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            shard_mask: shards - 1,
            digest_memo: ir::DigestMemo::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard entry bound.
    pub fn shard_capacity(&self) -> usize {
        self.shard_capacity
    }

    fn shard_for(&self, key: u128) -> &Mutex<Shard> {
        &self.shards[(key as usize) & self.shard_mask]
    }

    /// Whether `key` is resident, refreshing its recency (and counting a
    /// hit) when it is. Lets callers probe for memoized outcomes without
    /// triggering a simulation — the degraded path of an overloaded
    /// prediction service.
    pub fn peek(&self, key: u128) -> Option<Arc<RunOutcome>> {
        let hit = self
            .shard_for(key)
            .lock()
            .expect("run cache poisoned")
            .get(key);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// The memo key this cache would use for a scenario, computed through
    /// the cache's digest memo (bit-identical to [`run_digest_faulted`]).
    pub fn key_for(
        &self,
        machine: &Machine,
        workload: &[RunnerGroup],
        opts: &RunOptions,
        faults: Option<&FaultPlan>,
    ) -> u128 {
        ir::scenario_digest_memo(&self.digest_memo, machine.spec(), workload, opts, faults)
    }

    /// [`RunCache::key_for`] with event schedules folded into the key.
    /// All-default (or absent) schedules key identically to
    /// [`RunCache::key_for`], so pre-event cache entries stay addressable.
    pub fn key_for_scheduled(
        &self,
        machine: &Machine,
        workload: &[RunnerGroup],
        opts: &RunOptions,
        faults: Option<&FaultPlan>,
        schedules: Option<&[GroupSchedule]>,
    ) -> u128 {
        ir::scenario_digest_memo_scheduled(
            &self.digest_memo,
            machine.spec(),
            workload,
            opts,
            faults,
            schedules,
        )
    }

    /// Run `workload` on `machine`, returning the memoized outcome when
    /// this exact triple has run before. Errors are never cached (they are
    /// cheap to recompute and carry no simulation work).
    pub fn run(
        &self,
        machine: &Machine,
        workload: &[RunnerGroup],
        opts: &RunOptions,
    ) -> Result<Arc<RunOutcome>> {
        self.run_with_status(machine, workload, opts)
            .map(|(out, _)| out)
    }

    /// Like [`RunCache::run`], but also reports whether the outcome came
    /// from the cache (`true`) or a fresh simulation (`false`) — callers
    /// accounting for simulation work need to know which runs were real.
    pub fn run_with_status(
        &self,
        machine: &Machine,
        workload: &[RunnerGroup],
        opts: &RunOptions,
    ) -> Result<(Arc<RunOutcome>, bool)> {
        self.run_with_faults(machine, workload, opts, None)
    }

    /// Like [`RunCache::run_with_status`], with measurement faults from
    /// `faults` injected into the outcome before it is stored. Faults are
    /// applied exactly once, on the miss path, streamed by `opts.seed` —
    /// so a hit replays the identical faulted outcome, and the plan is
    /// part of the memo key (a clean request never sees a faulted entry).
    pub fn run_with_faults(
        &self,
        machine: &Machine,
        workload: &[RunnerGroup],
        opts: &RunOptions,
        faults: Option<&FaultPlan>,
    ) -> Result<(Arc<RunOutcome>, bool)> {
        self.run_observed(machine, workload, opts, faults, None)
    }

    /// Like [`RunCache::run_with_faults`], with per-group event schedules:
    /// the schedules are part of the memo key (an all-default schedule keys
    /// — and therefore hits — exactly like no schedule) and the miss path
    /// runs the event-mode engine.
    pub fn run_scheduled_with_faults(
        &self,
        machine: &Machine,
        workload: &[RunnerGroup],
        schedules: Option<&[GroupSchedule]>,
        opts: &RunOptions,
        faults: Option<&FaultPlan>,
    ) -> Result<(Arc<RunOutcome>, bool)> {
        self.run_scheduled_observed(machine, workload, schedules, opts, faults, None)
    }

    /// Like [`RunCache::run_with_faults`], timing pipeline stages into
    /// `profile` when one is attached. Stage costs accrue only on the miss
    /// path — a hit does no simulation work, so there is nothing to time.
    pub fn run_observed(
        &self,
        machine: &Machine,
        workload: &[RunnerGroup],
        opts: &RunOptions,
        faults: Option<&FaultPlan>,
        profile: Option<&mut StageProfile>,
    ) -> Result<(Arc<RunOutcome>, bool)> {
        self.run_scheduled_observed(machine, workload, None, opts, faults, profile)
    }

    /// The one memoized run path: schedules, faults, and optional stage
    /// profiling. Every other `run_*` method funnels here.
    pub fn run_scheduled_observed(
        &self,
        machine: &Machine,
        workload: &[RunnerGroup],
        schedules: Option<&[GroupSchedule]>,
        opts: &RunOptions,
        faults: Option<&FaultPlan>,
        profile: Option<&mut StageProfile>,
    ) -> Result<(Arc<RunOutcome>, bool)> {
        let key = self.key_for_scheduled(machine, workload, opts, faults, schedules);
        if let Some(hit) = self
            .shard_for(key)
            .lock()
            .expect("run cache poisoned")
            .get(key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hit, true));
        }
        // The engine runs outside the lock: concurrent misses on the same
        // key may both simulate, but they produce identical outcomes, so
        // the race is benign and the sweep never serializes on the cache.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut outcome = match profile {
            Some(p) => machine.run_scheduled_instrumented(workload, schedules, opts, p)?,
            None => machine.run_scheduled(workload, schedules, opts)?,
        };
        if let Some(plan) = faults {
            plan.apply(opts.seed, &mut outcome);
        }
        let outcome = Arc::new(outcome);
        let evicted = self
            .shard_for(key)
            .lock()
            .expect("run cache poisoned")
            .insert_bounded(key, Arc::clone(&outcome), self.shard_capacity);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        Ok((outcome, false))
    }

    /// Evaluate a batch of scenarios, deduplicating identical requests and
    /// fanning misses out across `threads` workers.
    ///
    /// This is the oracle path for placement scoring: a placement wave
    /// asks for thousands of `(machine, socket contents)` outcomes at
    /// once, most of them duplicates of each other or of earlier waves.
    /// The batch is keyed first (cheap — digests only), duplicates
    /// collapse onto one representative, resident keys are served from
    /// the cache, and only the distinct cold scenarios simulate — claimed
    /// by an atomic cursor so any worker count yields the same outcomes
    /// (each key's outcome is a pure function of its inputs, so schedule
    /// order cannot leak into results).
    ///
    /// Returns one outcome per request, in request order. The first
    /// engine error aborts the batch.
    pub fn run_batch(
        &self,
        machine: &Machine,
        batch: &[(&[RunnerGroup], RunOptions)],
        threads: usize,
    ) -> Result<Vec<Arc<RunOutcome>>> {
        let keys: Vec<u128> = batch
            .iter()
            .map(|(wl, opts)| self.key_for(machine, wl, opts, None))
            .collect();
        // One representative request index per distinct cold key.
        let mut seen: HashMap<u128, usize> = HashMap::new();
        let mut cold: Vec<usize> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            if let Entry::Vacant(slot) = seen.entry(key) {
                slot.insert(i);
                if self.peek(key).is_none() {
                    cold.push(i);
                }
            }
        }
        let threads = threads.clamp(1, cold.len().max(1));
        if threads <= 1 {
            for &i in &cold {
                let (wl, opts) = &batch[i];
                self.run(machine, wl, opts)?;
            }
        } else {
            let cursor = AtomicUsize::new(0);
            let errors: Mutex<Vec<crate::MachineError>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let slot = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = cold.get(slot) else { break };
                        let (wl, opts) = &batch[i];
                        if let Err(e) = self.run(machine, wl, opts) {
                            errors.lock().expect("batch errors poisoned").push(e);
                            break;
                        }
                    });
                }
            });
            if let Some(e) = errors.into_inner().expect("batch errors poisoned").pop() {
                return Err(e);
            }
        }
        // Every key is now resident (or was served concurrently); collect
        // in request order. An entry evicted mid-batch by capacity
        // pressure is recomputed inline — correctness never depends on
        // residency.
        keys.iter()
            .enumerate()
            .map(|(i, &key)| match self.peek(key) {
                Some(outcome) => Ok(outcome),
                None => {
                    let (wl, opts) = &batch[i];
                    self.run(machine, wl, opts)
                }
            })
            .collect()
    }

    /// Drop all entries; counters keep accumulating.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("run cache poisoned");
            s.map.clear();
            s.lru.clear();
        }
    }

    /// Snapshot the hit/miss/eviction counters and current size.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self
                .shards
                .iter()
                .map(|s| s.lock().expect("run cache poisoned").map.len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppPhase, AppProfile};
    use crate::presets;
    use coloc_cachesim::StackDistanceDist;

    fn app(name: &str, span: usize) -> AppProfile {
        AppProfile::single_phase(
            name,
            30e9,
            AppPhase {
                weight: 1.0,
                dist: StackDistanceDist::power_law(span, 0.35, 0.02),
                accesses_per_instr: 0.03,
                cpi_base: 0.9,
                mlp: 4.0,
            },
        )
    }

    fn wl(span: usize) -> Vec<RunnerGroup> {
        vec![
            RunnerGroup::solo(app("t", span)),
            RunnerGroup {
                app: app("c", span / 2),
                count: 2,
            },
        ]
    }

    #[test]
    fn hit_is_bit_identical_to_engine_output() {
        let m = Machine::new(presets::xeon_e5649()).unwrap();
        let cache = RunCache::new(64);
        let opts = RunOptions {
            noise_sigma: 0.008,
            seed: 3,
            ..Default::default()
        };
        let direct = m.run(&wl(800_000), &opts).unwrap();
        let miss = cache.run(&m, &wl(800_000), &opts).unwrap();
        let hit = cache.run(&m, &wl(800_000), &opts).unwrap();
        for out in [&miss, &hit] {
            assert_eq!(out.wall_time_s.to_bits(), direct.wall_time_s.to_bits());
            assert_eq!(out.segments, direct.segments);
            assert_eq!(out.fp_iterations, direct.fp_iterations);
            assert_eq!(
                out.avg_mem_latency_ns.to_bits(),
                direct.avg_mem_latency_ns.to_bits()
            );
            for (a, b) in out.counters.iter().zip(&direct.counters) {
                assert_eq!(a.instructions.to_bits(), b.instructions.to_bits());
                assert_eq!(a.cycles.to_bits(), b.cycles.to_bits());
                assert_eq!(a.llc_misses.to_bits(), b.llc_misses.to_bits());
                assert_eq!(a.completed_runs, b.completed_runs);
            }
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn scheduled_keys_compose_with_the_lockstep_key_space() {
        let m = Machine::new(presets::xeon_e5649()).unwrap();
        let cache = RunCache::new(64);
        let opts = RunOptions::default();
        let workload = wl(800_000);
        let plain = cache.key_for(&m, &workload, &opts, None);

        // Absent and all-default schedules key identically to lockstep:
        // pre-event cache entries stay addressable.
        let defaults = vec![GroupSchedule::default(); workload.len()];
        assert_eq!(
            plain,
            cache.key_for_scheduled(&m, &workload, &opts, None, None)
        );
        assert_eq!(
            plain,
            cache.key_for_scheduled(&m, &workload, &opts, None, Some(&defaults))
        );

        // Any non-default field keys apart — and each field is its own
        // axis of the key space.
        let mut offset = defaults.clone();
        offset[1].phase_offset = 0.25;
        let mut window = defaults.clone();
        window[1].departure_tick = Some(0.125);
        let mut clock = defaults.clone();
        clock[1].clock_ratio = 1.25;
        let keys: Vec<u128> = [&offset, &window, &clock]
            .iter()
            .map(|s| cache.key_for_scheduled(&m, &workload, &opts, None, Some(s)))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            assert_ne!(plain, k, "schedule variant {i} collides with lockstep");
            for &other in &keys[i + 1..] {
                assert_ne!(k, other, "schedule variants collide with each other");
            }
        }

        // And the cache actually serves a scheduled hit.
        let (cold, was_hit) = cache
            .run_scheduled_with_faults(&m, &workload, Some(&window), &opts, None)
            .unwrap();
        assert!(!was_hit);
        let (warm, was_hit) = cache
            .run_scheduled_with_faults(&m, &workload, Some(&window), &opts, None)
            .unwrap();
        assert!(was_hit);
        assert_eq!(cold.wall_time_s.to_bits(), warm.wall_time_s.to_bits());
    }

    #[test]
    fn distinct_inputs_key_apart() {
        let m = Machine::new(presets::xeon_e5649()).unwrap();
        let base = RunOptions::default();
        let k0 = run_digest(&m, &wl(800_000), &base);
        assert_eq!(k0, run_digest(&m, &wl(800_000), &base), "digest is stable");
        assert_ne!(k0, run_digest(&m, &wl(400_000), &base), "workload matters");
        assert_ne!(
            k0,
            run_digest(&m, &wl(800_000), &RunOptions { pstate: 2, ..base }),
            "pstate matters"
        );
        assert_ne!(
            k0,
            run_digest(&m, &wl(800_000), &RunOptions { seed: 1, ..base }),
            "noise seed matters"
        );
        assert_ne!(
            k0,
            run_digest(
                &m,
                &wl(800_000),
                &RunOptions {
                    noise_sigma: 0.01,
                    ..base
                }
            ),
            "noise sigma matters"
        );
        assert_ne!(
            k0,
            run_digest(
                &m,
                &wl(800_000),
                &RunOptions {
                    llc_partitioned: true,
                    ..base
                }
            ),
            "partitioning matters"
        );
        let m12 = Machine::new(presets::xeon_e5_2697v2()).unwrap();
        assert_ne!(k0, run_digest(&m12, &wl(800_000), &base), "machine matters");
    }

    #[test]
    fn fault_plan_changes_the_digest() {
        let m = Machine::new(presets::xeon_e5649()).unwrap();
        let opts = RunOptions::default();
        let clean = run_digest_faulted(&m, &wl(800_000), &opts, None);
        assert_eq!(
            clean,
            run_digest(&m, &wl(800_000), &opts),
            "no plan == plain digest"
        );
        assert_eq!(
            clean,
            run_digest_faulted(&m, &wl(800_000), &opts, Some(&FaultPlan::default())),
            "a no-op plan keys like no plan"
        );
        let light = FaultPlan::light(3);
        let keyed = run_digest_faulted(&m, &wl(800_000), &opts, Some(&light));
        assert_ne!(clean, keyed, "an active plan must key apart from clean");
        assert_ne!(
            keyed,
            run_digest_faulted(&m, &wl(800_000), &opts, Some(&FaultPlan::light(4))),
            "plan seed matters"
        );
        assert_ne!(
            keyed,
            run_digest_faulted(&m, &wl(800_000), &opts, Some(&FaultPlan::heavy(3))),
            "plan rates matter"
        );
        assert_ne!(
            clean,
            run_digest_faulted(
                &m,
                &wl(800_000),
                &RunOptions {
                    fp_budget: 100,
                    ..opts
                },
                None
            ),
            "fp budget matters"
        );
    }

    #[test]
    fn changing_the_plan_invalidates_memoized_outcomes() {
        let m = Machine::new(presets::xeon_e5649()).unwrap();
        let cache = RunCache::new(64);
        let opts = RunOptions {
            seed: 11,
            ..Default::default()
        };
        // Nail a plan whose nan fault always fires so the faulted outcome
        // is unmistakable.
        let plan = FaultPlan {
            seed: 5,
            nan_reading_rate: 1.0,
            ..Default::default()
        };
        let (clean, hit) = cache
            .run_with_faults(&m, &wl(800_000), &opts, None)
            .unwrap();
        assert!(!hit);
        assert!(clean.wall_time_s.is_finite());
        // Same scenario under the plan: a fresh miss, faulted outcome.
        let (faulted, hit) = cache
            .run_with_faults(&m, &wl(800_000), &opts, Some(&plan))
            .unwrap();
        assert!(!hit, "plan change must miss, not reuse the clean entry");
        assert!(faulted.wall_time_s.is_nan());
        assert_eq!(faulted.faults.len(), 1);
        // Replay under the plan: a hit, bit-identical faulted outcome.
        let (replay, hit) = cache
            .run_with_faults(&m, &wl(800_000), &opts, Some(&plan))
            .unwrap();
        assert!(hit);
        assert_eq!(replay.wall_time_s.to_bits(), faulted.wall_time_s.to_bits());
        assert_eq!(replay.faults, faulted.faults);
        // And the clean entry is still intact.
        let (clean2, hit) = cache
            .run_with_faults(&m, &wl(800_000), &opts, None)
            .unwrap();
        assert!(hit);
        assert_eq!(clean2.wall_time_s.to_bits(), clean.wall_time_s.to_bits());
        assert!(clean2.faults.is_empty());
    }

    #[test]
    fn capacity_bound_evicts_in_recency_order() {
        let m = Machine::new(presets::xeon_e5649()).unwrap();
        // One shard: globally ordered eviction, like the old FIFO cache.
        let cache = RunCache::with_shards(2, 1);
        let opts = RunOptions::default();
        for span in [100_000, 200_000, 300_000] {
            cache.run(&m, &wl(span), &opts).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.misses, 3);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.len, 2);
        // Oldest entry is gone: running it again is a miss...
        cache.run(&m, &wl(100_000), &opts).unwrap();
        assert_eq!(cache.stats().misses, 4);
        // ...while the newest survives as a hit until displaced.
        cache.run(&m, &wl(300_000), &opts).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn lru_hit_refreshes_recency() {
        let m = Machine::new(presets::xeon_e5649()).unwrap();
        let cache = RunCache::with_shards(2, 1);
        let opts = RunOptions::default();
        cache.run(&m, &wl(100_000), &opts).unwrap();
        cache.run(&m, &wl(200_000), &opts).unwrap();
        // Touch the older entry, then insert a third: the *untouched*
        // middle entry is now least recent and gets displaced.
        cache.run(&m, &wl(100_000), &opts).unwrap();
        cache.run(&m, &wl(300_000), &opts).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        let before = cache.stats().hits;
        cache.run(&m, &wl(100_000), &opts).unwrap();
        assert_eq!(cache.stats().hits, before + 1, "touched entry survived");
        cache.run(&m, &wl(200_000), &opts).unwrap();
        assert_eq!(cache.stats().misses, 4, "untouched entry was evicted");
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn sharded_cache_respects_aggregate_semantics() {
        let m = Machine::new(presets::xeon_e5649()).unwrap();
        let cache = RunCache::with_shards(64, 8);
        assert_eq!(cache.shard_count(), 8);
        assert_eq!(cache.shard_capacity(), 8);
        let opts = RunOptions::default();
        let spans = [100_000usize, 150_000, 200_000, 250_000, 300_000];
        for &span in &spans {
            cache.run(&m, &wl(span), &opts).unwrap();
        }
        for &span in &spans {
            cache.run(&m, &wl(span), &opts).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.misses, spans.len() as u64);
        assert_eq!(s.hits, spans.len() as u64);
        assert_eq!(s.len, spans.len());
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn peek_probes_without_running() {
        let m = Machine::new(presets::xeon_e5649()).unwrap();
        let cache = RunCache::new(64);
        let opts = RunOptions::default();
        let key = cache.key_for(&m, &wl(100_000), &opts, None);
        assert!(cache.peek(key).is_none());
        assert_eq!(cache.stats().misses, 0, "peek never simulates");
        let (direct, _) = cache.run_with_status(&m, &wl(100_000), &opts).unwrap();
        let peeked = cache.peek(key).expect("resident after run");
        assert_eq!(peeked.wall_time_s.to_bits(), direct.wall_time_s.to_bits());
        assert_eq!(cache.stats().hits, 1, "a successful peek counts as a hit");
    }

    #[test]
    fn run_batch_dedups_and_matches_sequential_runs() {
        let m = Machine::new(presets::xeon_e5649()).unwrap();
        let opts = RunOptions::default();
        // 9 requests over 3 distinct scenarios, shuffled, with duplicates.
        let spans = [
            100_000usize,
            200_000,
            300_000,
            200_000,
            100_000,
            300_000,
            300_000,
            100_000,
            200_000,
        ];
        let workloads: Vec<Vec<RunnerGroup>> = spans.iter().map(|&s| wl(s)).collect();
        let batch: Vec<(&[RunnerGroup], RunOptions)> =
            workloads.iter().map(|w| (w.as_slice(), opts)).collect();

        let reference = RunCache::new(64);
        let direct: Vec<_> = workloads
            .iter()
            .map(|w| reference.run(&m, w, &opts).unwrap())
            .collect();

        for threads in [1usize, 2, 8] {
            let cache = RunCache::new(64);
            let outcomes = cache.run_batch(&m, &batch, threads).unwrap();
            assert_eq!(outcomes.len(), batch.len());
            for (got, want) in outcomes.iter().zip(&direct) {
                assert_eq!(
                    got.wall_time_s.to_bits(),
                    want.wall_time_s.to_bits(),
                    "batch outcome drifted at {threads} threads"
                );
            }
            // Only the 3 distinct scenarios simulated, regardless of
            // request count or worker count.
            assert_eq!(cache.stats().misses, 3, "threads={threads}");
        }
    }

    #[test]
    fn run_batch_serves_warm_entries_without_simulating() {
        let m = Machine::new(presets::xeon_e5649()).unwrap();
        let cache = RunCache::new(64);
        let opts = RunOptions::default();
        let warm = wl(100_000);
        cache.run(&m, &warm, &opts).unwrap();
        let cold = wl(200_000);
        let batch: Vec<(&[RunnerGroup], RunOptions)> =
            vec![(warm.as_slice(), opts), (cold.as_slice(), opts)];
        cache.run_batch(&m, &batch, 4).unwrap();
        assert_eq!(cache.stats().misses, 2, "only the cold scenario ran");
    }

    #[test]
    fn run_batch_propagates_engine_errors() {
        let m = Machine::new(presets::xeon_e5649()).unwrap();
        let cache = RunCache::new(64);
        let opts = RunOptions::default();
        // 8 runners on a 6-core machine: NotEnoughCores from the engine.
        let oversub = vec![RunnerGroup {
            app: app("t", 100_000),
            count: 8,
        }];
        let batch: Vec<(&[RunnerGroup], RunOptions)> = vec![(oversub.as_slice(), opts)];
        assert!(cache.run_batch(&m, &batch, 2).is_err());
        assert!(cache.run_batch(&m, &batch, 1).is_err());
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let m = Machine::new(presets::xeon_e5649()).unwrap();
        let cache = RunCache::new(8);
        cache.run(&m, &wl(100_000), &RunOptions::default()).unwrap();
        cache.clear();
        let s = cache.stats();
        assert_eq!(s.len, 0);
        assert_eq!(s.misses, 1);
    }
}
