//! Deterministic measurement-fault injection.
//!
//! Real PMU-derived measurements are not clean: multiplexed counter events
//! get dropped, counters stick or saturate, timer reads come back NaN after
//! a failed `rdmsr`, and background daemons inject noise bursts far larger
//! than steady-state run-to-run variation. The paper's methodology assumes
//! clean solo baselines; a production pipeline has to survive inputs that
//! violate that assumption.
//!
//! A [`FaultPlan`] describes *how often* and *how hard* each fault kind
//! strikes. Faults are injected per run, seeded from the plan's own seed
//! mixed with the run's noise seed — the same scenario under the same plan
//! always faults identically, regardless of sweep order or thread count, so
//! chaos sweeps are exactly reproducible and memoizable. The plan is part
//! of the [`RunCache`](crate::RunCache) digest: changing any fault
//! parameter invalidates memoized outcomes.
//!
//! The roll order is fixed and documented (noise burst → stuck counter →
//! saturated counter → NaN reading → dropped sample) so a plan's behaviour
//! is stable across releases; later rolls may overwrite earlier ones (a
//! dropped sample zeroes a wall time the NaN fault just poisoned), exactly
//! like a real collector that discards a sample after the fact.

use crate::engine::RunOutcome;
use rand::rngs::StdRng;
use rand::Rng as _;
use rand::SeedableRng as _;

/// The kinds of measurement fault the injector can produce.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The whole sample was lost: wall time and the target's counters read
    /// zero, as when a collector times out and records nothing.
    DroppedSample,
    /// The wall-time reading came back NaN (failed timer read).
    NanReading,
    /// One group's cycle counter stuck near zero mid-run, deflating its
    /// cycle count by a large factor.
    StuckCounter,
    /// One group's LLC-miss counter saturated: it reports misses equal to
    /// accesses (a 100% miss ratio, physically implausible).
    SaturatedCounter,
    /// A multiplicative noise burst far beyond steady-state σ scaled the
    /// wall time and every group's cycles.
    NoiseBurst,
}

impl FaultKind {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DroppedSample => "dropped-sample",
            FaultKind::NanReading => "nan-reading",
            FaultKind::StuckCounter => "stuck-counter",
            FaultKind::SaturatedCounter => "saturated-counter",
            FaultKind::NoiseBurst => "noise-burst",
        }
    }
}

/// One fault that actually fired during a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// What struck.
    pub kind: FaultKind,
    /// Workload group whose counters were affected (0 = target; kinds that
    /// hit the whole sample report group 0).
    pub group: usize,
}

/// A seeded description of how often each measurement fault strikes.
///
/// All rates are per-run probabilities in `[0, 1]`. The default plan is a
/// no-op (all rates zero); [`FaultPlan::light`] and [`FaultPlan::heavy`]
/// are calibrated presets for chaos testing.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultPlan {
    /// Plan seed, mixed with each run's noise seed to draw that run's
    /// fault rolls. Two plans differing only in seed fault different runs.
    pub seed: u64,
    /// Probability the whole sample is dropped (zeroed).
    pub dropped_sample_rate: f64,
    /// Probability the wall-time reading is NaN.
    pub nan_reading_rate: f64,
    /// Probability one group's cycle counter sticks near zero.
    pub stuck_counter_rate: f64,
    /// Probability one group's LLC-miss counter saturates to its accesses.
    pub saturated_counter_rate: f64,
    /// Probability of a multiplicative noise burst on wall time + cycles.
    pub noise_burst_rate: f64,
    /// Lognormal σ of the burst (≫ steady-state noise; 0 disables bursts
    /// even when `noise_burst_rate > 0`).
    pub noise_burst_sigma: f64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            seed: 0,
            dropped_sample_rate: 0.0,
            nan_reading_rate: 0.0,
            stuck_counter_rate: 0.0,
            saturated_counter_rate: 0.0,
            noise_burst_rate: 0.0,
            noise_burst_sigma: 0.0,
        }
    }
}

impl FaultPlan {
    /// A mild chaos preset: a few percent of samples take a fault.
    pub fn light(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            dropped_sample_rate: 0.01,
            nan_reading_rate: 0.01,
            stuck_counter_rate: 0.01,
            saturated_counter_rate: 0.01,
            noise_burst_rate: 0.02,
            noise_burst_sigma: 0.25,
        }
    }

    /// An aggressive chaos preset: a large fraction of samples are damaged
    /// badly enough that training on the raw data diverges.
    pub fn heavy(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            dropped_sample_rate: 0.05,
            nan_reading_rate: 0.08,
            stuck_counter_rate: 0.08,
            saturated_counter_rate: 0.08,
            noise_burst_rate: 0.25,
            noise_burst_sigma: 0.8,
        }
    }

    /// Check every rate is a probability and the burst σ is sane.
    pub fn validate(&self) -> std::result::Result<(), String> {
        let rates = [
            ("dropped_sample_rate", self.dropped_sample_rate),
            ("nan_reading_rate", self.nan_reading_rate),
            ("stuck_counter_rate", self.stuck_counter_rate),
            ("saturated_counter_rate", self.saturated_counter_rate),
            ("noise_burst_rate", self.noise_burst_rate),
        ];
        for (name, r) in rates {
            if !r.is_finite() || !(0.0..=1.0).contains(&r) {
                return Err(format!("{name} must be in [0, 1], got {r}"));
            }
        }
        if !self.noise_burst_sigma.is_finite() || self.noise_burst_sigma < 0.0 {
            return Err(format!(
                "noise_burst_sigma must be finite and >= 0, got {}",
                self.noise_burst_sigma
            ));
        }
        Ok(())
    }

    /// True when no fault can ever fire under this plan.
    pub fn is_noop(&self) -> bool {
        self.dropped_sample_rate == 0.0
            && self.nan_reading_rate == 0.0
            && self.stuck_counter_rate == 0.0
            && self.saturated_counter_rate == 0.0
            && (self.noise_burst_rate == 0.0 || self.noise_burst_sigma == 0.0)
    }

    /// Stable 64-bit digest of the plan, folded into run digests and sweep
    /// checkpoint headers so a changed plan invalidates both. Uses the
    /// canonical [`crate::IrWriter`] encoding (fields in declaration
    /// order, floats by bit pattern).
    pub fn digest(&self) -> u64 {
        let mut d = crate::ir::IrWriter::new();
        d.u64(self.seed);
        d.f64(self.dropped_sample_rate);
        d.f64(self.nan_reading_rate);
        d.f64(self.stuck_counter_rate);
        d.f64(self.saturated_counter_rate);
        d.f64(self.noise_burst_rate);
        d.f64(self.noise_burst_sigma);
        d.finish64()
    }

    /// Inject this plan's faults into a run outcome, in place.
    ///
    /// `stream` identifies the run — callers pass the run's noise seed,
    /// which sweeps already derive per scenario, so injection is
    /// order- and thread-independent. Fired faults are appended to
    /// `outcome.faults` and mirrored in the return value.
    pub fn apply(&self, stream: u64, outcome: &mut RunOutcome) -> Vec<FaultEvent> {
        let mut fired = Vec::new();
        if self.is_noop() {
            return fired;
        }
        let mut rng = StdRng::seed_from_u64(splitmix(self.seed, stream));
        let n_groups = outcome.counters.len();

        // Fixed roll order; see the module docs. Each branch draws from the
        // shared stream, so which faults fire shifts later draws — still
        // fully determined by (plan, stream).
        if rng.gen::<f64>() < self.noise_burst_rate && self.noise_burst_sigma > 0.0 {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen::<f64>();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            let scale = (self.noise_burst_sigma * z).exp();
            outcome.wall_time_s *= scale;
            for c in outcome.counters.iter_mut() {
                c.cycles *= scale;
            }
            fired.push(FaultEvent {
                kind: FaultKind::NoiseBurst,
                group: 0,
            });
        }
        if rng.gen::<f64>() < self.stuck_counter_rate && n_groups > 0 {
            let group = rng.gen_range(0..n_groups);
            let deflate = rng.gen_range(0.01..0.1);
            outcome.counters[group].cycles *= deflate;
            fired.push(FaultEvent {
                kind: FaultKind::StuckCounter,
                group,
            });
        }
        if rng.gen::<f64>() < self.saturated_counter_rate && n_groups > 0 {
            let group = rng.gen_range(0..n_groups);
            outcome.counters[group].llc_misses = outcome.counters[group].llc_accesses;
            fired.push(FaultEvent {
                kind: FaultKind::SaturatedCounter,
                group,
            });
        }
        if rng.gen::<f64>() < self.nan_reading_rate {
            // Canonical NaN: serializes as JSON null and reloads as the
            // same canonical NaN, so checkpointed faulty samples survive a
            // crash/resume round trip bit-identically.
            outcome.wall_time_s = f64::NAN;
            fired.push(FaultEvent {
                kind: FaultKind::NanReading,
                group: 0,
            });
        }
        if rng.gen::<f64>() < self.dropped_sample_rate {
            outcome.wall_time_s = 0.0;
            if n_groups > 0 {
                outcome.counters[0] = Default::default();
            }
            fired.push(FaultEvent {
                kind: FaultKind::DroppedSample,
                group: 0,
            });
        }
        outcome.faults.extend_from_slice(&fired);
        fired
    }
}

/// SplitMix64-style mixer combining the plan seed with a run's stream id.
/// Lives here because this crate has no dependency on `coloc_ml::rng`.
fn splitmix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CounterBlock;

    fn outcome() -> RunOutcome {
        RunOutcome {
            wall_time_s: 100.0,
            counters: vec![
                CounterBlock {
                    instructions: 1e9,
                    cycles: 2e9,
                    llc_accesses: 1e7,
                    llc_misses: 1e6,
                    completed_runs: 1,
                },
                CounterBlock {
                    instructions: 2e9,
                    cycles: 3e9,
                    llc_accesses: 2e7,
                    llc_misses: 3e6,
                    completed_runs: 4,
                },
            ],
            segments: 3,
            fp_iterations: 50,
            avg_llc_share_bytes: vec![1e6, 1e6],
            avg_mem_latency_ns: 80.0,
            convergence: crate::engine::Convergence::Converged,
            faults: Vec::new(),
        }
    }

    #[test]
    fn noop_plan_changes_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_noop());
        let mut out = outcome();
        let fired = plan.apply(42, &mut out);
        assert!(fired.is_empty());
        assert_eq!(out.wall_time_s.to_bits(), 100.0f64.to_bits());
        assert!(out.faults.is_empty());
    }

    #[test]
    fn injection_is_deterministic_per_stream() {
        let plan = FaultPlan::heavy(7);
        let mut a = outcome();
        let mut b = outcome();
        let fa = plan.apply(1234, &mut a);
        let fb = plan.apply(1234, &mut b);
        assert_eq!(fa, fb);
        assert_eq!(a.wall_time_s.to_bits(), b.wall_time_s.to_bits());
        for (ca, cb) in a.counters.iter().zip(&b.counters) {
            assert_eq!(ca.cycles.to_bits(), cb.cycles.to_bits());
            assert_eq!(ca.llc_misses.to_bits(), cb.llc_misses.to_bits());
        }
    }

    #[test]
    fn different_streams_fault_differently() {
        let plan = FaultPlan::heavy(7);
        // Across many streams, outcomes must not all be identical and at
        // least one fault of each kind must fire at heavy rates.
        let mut kinds = std::collections::HashSet::new();
        let mut distinct_walls = std::collections::HashSet::new();
        for stream in 0..400u64 {
            let mut out = outcome();
            for ev in plan.apply(stream, &mut out) {
                kinds.insert(ev.kind.label());
            }
            distinct_walls.insert(out.wall_time_s.to_bits());
        }
        assert!(distinct_walls.len() > 10, "{}", distinct_walls.len());
        for kind in [
            "dropped-sample",
            "nan-reading",
            "stuck-counter",
            "saturated-counter",
            "noise-burst",
        ] {
            assert!(kinds.contains(kind), "kind {kind} never fired");
        }
    }

    #[test]
    fn saturated_counter_pins_miss_ratio_to_one() {
        let plan = FaultPlan {
            seed: 1,
            saturated_counter_rate: 1.0,
            ..Default::default()
        };
        let mut out = outcome();
        let fired = plan.apply(9, &mut out);
        let ev = fired
            .iter()
            .find(|e| e.kind == FaultKind::SaturatedCounter)
            .expect("saturation must fire at rate 1.0");
        let c = &out.counters[ev.group];
        assert_eq!(c.llc_misses.to_bits(), c.llc_accesses.to_bits());
    }

    #[test]
    fn nan_reading_uses_canonical_nan() {
        let plan = FaultPlan {
            seed: 1,
            nan_reading_rate: 1.0,
            ..Default::default()
        };
        let mut out = outcome();
        plan.apply(9, &mut out);
        assert_eq!(out.wall_time_s.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let mut plan = FaultPlan::light(0);
        assert!(plan.validate().is_ok());
        plan.nan_reading_rate = 1.5;
        assert!(plan.validate().is_err());
        plan.nan_reading_rate = f64::NAN;
        assert!(plan.validate().is_err());
        plan.nan_reading_rate = 0.0;
        plan.noise_burst_sigma = -1.0;
        assert!(plan.validate().is_err());
    }

    #[test]
    fn digest_tracks_every_field() {
        let base = FaultPlan::light(0);
        let d0 = base.digest();
        assert_eq!(d0, FaultPlan::light(0).digest(), "digest is stable");
        assert_ne!(d0, FaultPlan { seed: 1, ..base }.digest());
        assert_ne!(
            d0,
            FaultPlan {
                dropped_sample_rate: 0.5,
                ..base
            }
            .digest()
        );
        assert_ne!(
            d0,
            FaultPlan {
                noise_burst_sigma: 0.9,
                ..base
            }
            .digest()
        );
    }
}
