//! The two validation platforms from paper Table IV.

use crate::spec::MachineSpec;
use coloc_memsys::DramSpec;

/// Intel Xeon E5649 (Westmere-EP): 6 cores, 12 MB L3, 1.60–2.53 GHz.
///
/// The six P-state frequencies are evenly spread across the range the
/// paper reports, matching its "six selected P-states" (Table V).
pub fn xeon_e5649() -> MachineSpec {
    MachineSpec {
        name: "Xeon E5649".to_string(),
        cores: 6,
        llc_bytes: 12 << 20,
        llc_ways: 16,
        pstates_ghz: vec![2.53, 2.35, 2.16, 1.97, 1.78, 1.60],
        dram: DramSpec::ddr3_1333_triple_channel(),
    }
}

/// Intel Xeon E5-2697 v2 (Ivy Bridge-EP): 12 cores, 30 MB L3,
/// 1.20–2.70 GHz.
pub fn xeon_e5_2697v2() -> MachineSpec {
    MachineSpec {
        name: "Xeon E5-2697v2".to_string(),
        cores: 12,
        llc_bytes: 30 << 20,
        llc_ways: 20,
        pstates_ghz: vec![2.70, 2.40, 2.10, 1.80, 1.50, 1.20],
        dram: DramSpec::ddr3_1866_quad_channel(),
    }
}

/// All preset machines, in paper order.
pub fn all() -> Vec<MachineSpec> {
    vec![xeon_e5649(), xeon_e5_2697v2()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_returns_both_platforms() {
        let machines = all();
        assert_eq!(machines.len(), 2);
        assert_eq!(machines[0].name, "Xeon E5649");
        assert_eq!(machines[1].name, "Xeon E5-2697v2");
    }
}
