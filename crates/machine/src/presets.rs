//! Machine presets: the paper's two validation platforms (Table IV) plus
//! two fleet-expansion parts for datacenter-scale placement studies.

use crate::spec::MachineSpec;
use coloc_memsys::DramSpec;

/// Intel Xeon E5649 (Westmere-EP): 6 cores, 12 MB L3, 1.60–2.53 GHz.
///
/// The six P-state frequencies are evenly spread across the range the
/// paper reports, matching its "six selected P-states" (Table V).
pub fn xeon_e5649() -> MachineSpec {
    MachineSpec {
        name: "Xeon E5649".to_string(),
        cores: 6,
        llc_bytes: 12 << 20,
        llc_ways: 16,
        pstates_ghz: vec![2.53, 2.35, 2.16, 1.97, 1.78, 1.60],
        dram: DramSpec::ddr3_1333_triple_channel(),
    }
}

/// Intel Xeon E5-2697 v2 (Ivy Bridge-EP): 12 cores, 30 MB L3,
/// 1.20–2.70 GHz.
pub fn xeon_e5_2697v2() -> MachineSpec {
    MachineSpec {
        name: "Xeon E5-2697v2".to_string(),
        cores: 12,
        llc_bytes: 30 << 20,
        llc_ways: 20,
        pstates_ghz: vec![2.70, 2.40, 2.10, 1.80, 1.50, 1.20],
        dram: DramSpec::ddr3_1866_quad_channel(),
    }
}

/// Intel Xeon E5-2630 v3 (Haswell-EP): 8 cores, 20 MB L3, 1.20–2.40 GHz.
///
/// A fleet-expansion part for placement studies: quad-channel DDR4-1866
/// (peak = 4 × 14.933 GB/s) with Haswell-generation idle latency.
pub fn xeon_e5_2630v3() -> MachineSpec {
    MachineSpec {
        name: "Xeon E5-2630v3".to_string(),
        cores: 8,
        llc_bytes: 20 << 20,
        llc_ways: 20,
        pstates_ghz: vec![2.40, 2.16, 1.92, 1.68, 1.44, 1.20],
        dram: DramSpec {
            peak_bw_bytes_per_sec: 59.7e9,
            idle_latency_ns: 66.0,
            queue_latency_ns: 12.0,
            max_queue_ns: 300.0,
            bank_penalty_ns: 8.0,
            banks: 32,
        },
    }
}

/// Intel Xeon Platinum 8153 (Skylake-SP): 16 cores, 22 MB L3,
/// 1.00–2.00 GHz.
///
/// The high-core-count fleet part: hex-channel DDR4-2666
/// (peak = 6 × 21.333 GB/s), shallow non-inclusive L3 relative to its
/// core count, so co-location pressure per byte of LLC is the worst of
/// the four presets.
pub fn xeon_platinum_8153() -> MachineSpec {
    MachineSpec {
        name: "Xeon Platinum 8153".to_string(),
        cores: 16,
        llc_bytes: 22 << 20,
        llc_ways: 11,
        pstates_ghz: vec![2.00, 1.80, 1.60, 1.40, 1.20, 1.00],
        dram: DramSpec {
            peak_bw_bytes_per_sec: 128.0e9,
            idle_latency_ns: 70.0,
            queue_latency_ns: 11.0,
            max_queue_ns: 280.0,
            bank_penalty_ns: 7.0,
            banks: 48,
        },
    }
}

/// All preset machines: the two paper platforms first (paper order),
/// then the fleet-expansion parts in core-count order.
pub fn all() -> Vec<MachineSpec> {
    vec![
        xeon_e5649(),
        xeon_e5_2697v2(),
        xeon_e5_2630v3(),
        xeon_platinum_8153(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_returns_every_platform() {
        let machines = all();
        assert_eq!(machines.len(), 4);
        assert_eq!(machines[0].name, "Xeon E5649");
        assert_eq!(machines[1].name, "Xeon E5-2697v2");
        assert_eq!(machines[2].name, "Xeon E5-2630v3");
        assert_eq!(machines[3].name, "Xeon Platinum 8153");
    }

    #[test]
    fn every_preset_validates_and_is_distinct() {
        let machines = all();
        for m in &machines {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
        for (i, a) in machines.iter().enumerate() {
            for b in &machines[i + 1..] {
                assert_ne!(a.name, b.name);
                assert!(
                    a.cores != b.cores || a.llc_bytes != b.llc_bytes,
                    "{} and {} are indistinguishable",
                    a.name,
                    b.name
                );
            }
        }
    }
}
