//! # coloc-machine
//!
//! A multicore processor simulator: the hardware substrate the IPPS'15
//! methodology was measured on, rebuilt in software.
//!
//! The paper collected its data on two Intel Xeon machines (Table IV) by
//! running a target application co-located with up to `cores − 1` copies of
//! a co-runner at six DVFS P-states, reading execution time and LLC
//! performance counters. This crate reproduces that measurement apparatus:
//!
//! * [`spec::MachineSpec`] — core count, shared-LLC geometry, P-state
//!   frequency table, and DRAM subsystem; [`presets`] provides the two
//!   Xeons from Table IV.
//! * [`app::AppProfile`] — the simulator-facing description of an
//!   application: total instructions plus one or more execution *phases*,
//!   each with a base CPI, an LLC access rate, a memory-level-parallelism
//!   factor, and a cache-locality model ([`coloc_cachesim::StackDistanceDist`]).
//! * [`engine::Machine`] — the co-execution engine. Applications sharing
//!   the processor are advanced through piecewise-constant *segments*: in
//!   each segment a coupled fixed point determines every app's LLC share
//!   (via the occupancy model), miss rate, average memory latency (via the
//!   DRAM model), and effective CPI; segments end at phase boundaries,
//!   co-runner restarts, or target completion.
//!
//! The contention mechanics are entirely mechanistic — nothing in this
//! crate knows about the prediction models that will be trained on its
//! output, so the ML layer faces the same inference problem the paper did.

pub mod app;
pub mod cache;
pub mod engine;
pub mod event;
pub mod faults;
pub mod governor;
pub mod ir;
pub mod presets;
pub mod spec;

pub use app::{AppPhase, AppProfile};
pub use cache::{
    run_digest, run_digest_faulted, CacheStats, RunCache, DEFAULT_RUN_CACHE_CAPACITY,
    DEFAULT_RUN_CACHE_SHARDS,
};
pub use engine::{
    Convergence, CounterBlock, EpochStage, GroupRef, Machine, RunOptions, RunOutcome, RunnerGroup,
    SegmentRecord, SegmentTrace, StageFlow, StageId, StageProfile, StageStats,
};
pub use event::{Event, EventKind, EventQueue, GroupSchedule};
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use governor::{run_throttled, GovernorConfig, ThermalModel, ThrottledOutcome};
pub use ir::{DigestMemo, IrWriter, ScenarioIr};
pub use spec::MachineSpec;

// Re-export the cache substrate: app profiles embed locality models, so
// downstream crates need the types without a direct dependency.
pub use coloc_cachesim as cachesim;

/// Errors from the machine simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// The workload asks for more cores than the machine has.
    NotEnoughCores { requested: usize, available: usize },
    /// The requested P-state index is out of range.
    BadPState { index: usize, available: usize },
    /// An app profile is malformed (empty phases, non-positive counts…).
    BadProfile(String),
    /// The run crossed the [`engine::RunOptions::max_segments`] safety cap
    /// — typically a co-runner far shorter than the target, restarting so
    /// often the segment count explodes.
    SegmentOverflow {
        /// Segment count at which the run was abandoned.
        segments: usize,
        /// The configured cap it exceeded.
        cap: usize,
    },
    /// No workload was supplied.
    EmptyWorkload,
    /// A machine spec failed validation (zero cores, empty or
    /// non-descending P-state table…).
    InvalidSpec(String),
    /// The simulation hit a numerically degenerate state (non-finite or
    /// non-positive segment time).
    Numeric(String),
    /// A fault plan failed validation (rate outside [0, 1]…).
    InvalidFaultPlan(String),
    /// An event schedule failed validation (offset outside [0, 1),
    /// departure before arrival, an absent target…).
    BadSchedule(String),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::NotEnoughCores {
                requested,
                available,
            } => {
                write!(
                    f,
                    "workload needs {requested} cores, machine has {available}"
                )
            }
            MachineError::BadPState { index, available } => {
                write!(f, "P-state {index} out of range (machine has {available})")
            }
            MachineError::BadProfile(s) => write!(f, "bad app profile: {s}"),
            MachineError::SegmentOverflow { segments, cap } => write!(
                f,
                "run exceeded {cap} segments (abandoned at {segments}); \
                 co-runner far shorter than target?"
            ),
            MachineError::EmptyWorkload => write!(f, "workload is empty"),
            MachineError::InvalidSpec(s) => write!(f, "invalid machine spec: {s}"),
            MachineError::Numeric(s) => write!(f, "numeric degeneracy: {s}"),
            MachineError::InvalidFaultPlan(s) => write!(f, "invalid fault plan: {s}"),
            MachineError::BadSchedule(s) => write!(f, "invalid event schedule: {s}"),
        }
    }
}

impl std::error::Error for MachineError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, MachineError>;
