//! Deterministic discrete-event scheduling for the co-execution engine.
//!
//! The epoch pipeline of PR 4 advances every group in lockstep: all
//! groups share one clock, start together, and run until the target
//! completes. This module generalizes the driver into a discrete-event
//! simulation without giving up bit-reproducibility:
//!
//! * [`GroupSchedule`] — per-group event-mode fields: a starting
//!   `phase_offset`, an `arrival_tick` / `departure_tick` window on the
//!   simulated clock, and a per-core `clock_ratio` (DVFS per group, not
//!   per chip). The default schedule is exactly the lockstep contract,
//!   and a workload whose schedules are all default runs through the
//!   *same arithmetic, in the same order* as the lockstep pipeline —
//!   the degenerate case is bit-identical, not merely close.
//! * [`EventQueue`] — a binary min-heap of [`Event`]s ordered by
//!   `(tick, seq)`. `seq` is the queue's own monotone insertion counter,
//!   so the pop order is *total* (no two events compare equal) and
//!   *stable* (same-tick events pop in insertion order). Event order —
//!   and therefore the whole simulation — is a pure function of the
//!   scenario, independent of thread count or heap internals.
//!
//! The driver in [`crate::engine`] consumes the queue era by era: an
//! *era* is a maximal interval of the simulated clock with a fixed
//! resident set. Within an era the unmodified stage passes run over the
//! resident groups; segment lengths are additionally capped by the next
//! event tick (`dt_cap`), and when the clock reaches that tick the
//! resident set is rebuilt and the next era begins. See DESIGN.md §14
//! for the tie-break rule and the lockstep-equivalence argument.

use crate::{GroupRef, MachineError, Result};

/// Per-group event-mode schedule. The [`Default`] value encodes the
/// lockstep contract (present for the whole run, no phase offset, the
/// chip clock) and is *canonically absent*: scenario digests only
/// encode schedules when at least one group deviates from the default,
/// so every pre-event scenario digests identically to before.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GroupSchedule {
    /// Starting position within the app, as a fraction of its total
    /// instructions in `[0, 1)`. Applies to the group's first pass only;
    /// a restarting co-runner restarts from progress 0 like before.
    pub phase_offset: f64,
    /// Simulated time (seconds) at which the group arrives. Groups with
    /// a positive arrival tick are absent before it: they hold no LLC,
    /// add no bandwidth, and accrue no counters. The target (group 0)
    /// must arrive at 0.
    pub arrival_tick: f64,
    /// Simulated time (seconds) at which the group departs, or `None`
    /// to stay for the whole run. Must be strictly after the arrival
    /// tick. The target must not depart.
    pub departure_tick: Option<f64>,
    /// Per-group clock multiplier applied to the chip's P-state
    /// frequency (per-core DVFS). Must be finite and positive; 1.0 is
    /// the chip clock.
    pub clock_ratio: f64,
}

impl Default for GroupSchedule {
    fn default() -> GroupSchedule {
        GroupSchedule {
            phase_offset: 0.0,
            arrival_tick: 0.0,
            departure_tick: None,
            clock_ratio: 1.0,
        }
    }
}

impl GroupSchedule {
    /// True when this schedule is exactly the lockstep default — the
    /// canonical form under which it is omitted from scenario digests.
    pub fn is_default(&self) -> bool {
        self.phase_offset == 0.0
            && self.arrival_tick == 0.0
            && self.departure_tick.is_none()
            && self.clock_ratio == 1.0
    }
}

/// True when `schedules` adds nothing over the lockstep default —
/// either absent entirely or present with every entry default.
pub fn schedules_are_default(schedules: Option<&[GroupSchedule]>) -> bool {
    schedules.is_none_or(|s| s.iter().all(GroupSchedule::is_default))
}

/// What happens when an event fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The group with this (original workload) index leaves the machine.
    Departure(usize),
    /// The group with this (original workload) index arrives.
    Arrival(usize),
}

/// One scheduled residency change, ordered by `(tick, seq)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// Simulated time at which the event fires, seconds.
    pub tick: f64,
    /// Queue-assigned insertion sequence number: the total-order
    /// tie-break for same-tick events.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

/// A deterministic binary min-heap of [`Event`]s. Pop order is strictly
/// increasing in `(tick, seq)`: `seq` is assigned by [`EventQueue::push`]
/// in call order, so equal-tick events pop in insertion order and the
/// order is a pure function of the push sequence.
#[derive(Clone, Debug, Default)]
pub struct EventQueue {
    heap: std::collections::BinaryHeap<HeapEntry>,
    next_seq: u64,
    /// Largest tick popped so far — lets callers (and the property
    /// suite) assert that the schedule never moves backwards.
    last_tick: Option<f64>,
}

/// Max-heap entry with reversed ordering: the smallest `(tick, seq)`
/// surfaces first.
#[derive(Clone, Copy, Debug)]
struct HeapEntry(Event);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &HeapEntry) -> bool {
        self.0.tick.total_cmp(&other.0.tick).is_eq() && self.0.seq == other.0.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &HeapEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &HeapEntry) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want min-(tick, seq).
        other
            .0
            .tick
            .total_cmp(&self.0.tick)
            .then(other.0.seq.cmp(&self.0.seq))
    }
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> EventQueue {
        EventQueue::default()
    }

    /// Schedule `kind` at `tick`, assigning the next sequence number.
    /// Ticks must be finite (the engine validates schedules before
    /// building the queue; debug builds assert it).
    pub fn push(&mut self, tick: f64, kind: EventKind) {
        debug_assert!(tick.is_finite(), "event tick must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event { tick, seq, kind }));
    }

    /// The tick of the next event, if any.
    pub fn peek_tick(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.0.tick)
    }

    /// Pop the next event in `(tick, seq)` order. Panics in debug
    /// builds if the schedule would move backwards — the heap invariant
    /// the property suite pins.
    pub fn pop(&mut self) -> Option<Event> {
        let ev = self.heap.pop()?.0;
        if let Some(last) = self.last_tick {
            debug_assert!(
                ev.tick >= last,
                "event clock moved backwards: {} after {}",
                ev.tick,
                last
            );
        }
        self.last_tick = Some(ev.tick);
        Some(ev)
    }

    /// Pop every event with `tick <= horizon`, in `(tick, seq)` order.
    pub fn pop_through(&mut self, horizon: f64) -> Vec<Event> {
        let mut fired = Vec::new();
        while let Some(t) = self.peek_tick() {
            if t > horizon {
                break;
            }
            fired.push(self.pop().expect("peeked event must pop"));
        }
        fired
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Build the event queue for a validated schedule set: one departure
/// and/or arrival per non-default group. All departures are pushed
/// before all arrivals (each in group order), so at equal ticks a
/// departing group frees its cores before an arriving group claims
/// capacity — the same order [`validate_schedules`] uses for its peak
/// concurrency check.
pub fn build_queue(schedules: &[GroupSchedule]) -> EventQueue {
    let mut q = EventQueue::new();
    for (g, s) in schedules.iter().enumerate() {
        if let Some(t) = s.departure_tick {
            q.push(t, EventKind::Departure(g));
        }
    }
    for (g, s) in schedules.iter().enumerate() {
        if s.arrival_tick > 0.0 {
            q.push(s.arrival_tick, EventKind::Arrival(g));
        }
    }
    q
}

/// Peak number of cores simultaneously resident under `schedules`:
/// the capacity the machine must actually provide. Departures free
/// capacity before same-tick arrivals claim it, matching the queue's
/// pop order.
pub fn peak_cores(workload: &[GroupRef<'_>], schedules: &[GroupSchedule]) -> usize {
    // (tick, is_arrival, delta) — departures sort before arrivals at
    // the same tick via the bool.
    let mut deltas: Vec<(f64, bool, isize)> = Vec::with_capacity(2 * workload.len());
    for (g, s) in schedules.iter().enumerate() {
        let count = workload[g].count as isize;
        deltas.push((s.arrival_tick, true, count));
        if let Some(t) = s.departure_tick {
            deltas.push((t, false, -count));
        }
    }
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut now: isize = 0;
    let mut peak: isize = 0;
    for (_, _, d) in deltas {
        now += d;
        peak = peak.max(now);
    }
    peak.max(0) as usize
}

/// Validate `schedules` against `workload`: one schedule per group,
/// finite fields in range, target resident for the whole run, and a
/// well-ordered arrival/departure window per group. Shared verbatim by
/// the optimized engine and the conformance [`RefEngine`] so both
/// reject exactly the same inputs with exactly the same typed error.
///
/// [`RefEngine`]: ../../coloc_conformance/refengine/struct.RefEngine.html
pub fn validate_schedules(workload: &[GroupRef<'_>], schedules: &[GroupSchedule]) -> Result<()> {
    if schedules.len() != workload.len() {
        return Err(MachineError::BadSchedule(format!(
            "{} schedules for {} groups",
            schedules.len(),
            workload.len()
        )));
    }
    for (g, s) in schedules.iter().enumerate() {
        let name = &workload[g].app.name;
        if !(s.phase_offset.is_finite() && (0.0..1.0).contains(&s.phase_offset)) {
            return Err(MachineError::BadSchedule(format!(
                "{name}: phase_offset {} outside [0, 1)",
                s.phase_offset
            )));
        }
        if !(s.arrival_tick.is_finite() && s.arrival_tick >= 0.0) {
            return Err(MachineError::BadSchedule(format!(
                "{name}: arrival_tick {} is not a finite time ≥ 0",
                s.arrival_tick
            )));
        }
        if let Some(t) = s.departure_tick {
            if !(t.is_finite() && t > s.arrival_tick) {
                return Err(MachineError::BadSchedule(format!(
                    "{name}: departure_tick {t} must be finite and after arrival \
                     ({})",
                    s.arrival_tick
                )));
            }
        }
        if !(s.clock_ratio.is_finite() && s.clock_ratio > 0.0) {
            return Err(MachineError::BadSchedule(format!(
                "{name}: clock_ratio {} must be finite and positive",
                s.clock_ratio
            )));
        }
        if g == 0 && (s.arrival_tick != 0.0 || s.departure_tick.is_some()) {
            return Err(MachineError::BadSchedule(format!(
                "{name}: the target must be resident for the whole run \
                 (arrival 0, no departure)"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppPhase, AppProfile};
    use coloc_cachesim::StackDistanceDist;

    fn app(name: &str) -> AppProfile {
        AppProfile::single_phase(
            name,
            1e9,
            AppPhase {
                weight: 1.0,
                dist: StackDistanceDist::power_law(10_000, 1.0, 0.01),
                accesses_per_instr: 0.01,
                cpi_base: 1.0,
                mlp: 2.0,
            },
        )
    }

    fn sched(arrival: f64, departure: Option<f64>) -> GroupSchedule {
        GroupSchedule {
            arrival_tick: arrival,
            departure_tick: departure,
            ..Default::default()
        }
    }

    #[test]
    fn default_schedule_is_canonical_lockstep() {
        let d = GroupSchedule::default();
        assert!(d.is_default());
        assert!(schedules_are_default(None));
        assert!(schedules_are_default(Some(&[d, d])));
        assert!(!schedules_are_default(Some(&[
            d,
            GroupSchedule {
                clock_ratio: 0.5,
                ..Default::default()
            }
        ])));
    }

    #[test]
    fn queue_orders_by_tick_then_insertion_seq() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::Arrival(0));
        q.push(1.0, EventKind::Departure(1));
        q.push(1.0, EventKind::Arrival(2));
        q.push(0.5, EventKind::Arrival(3));
        let order: Vec<(f64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.tick, e.seq))
            .collect();
        assert_eq!(order, vec![(0.5, 3), (1.0, 1), (1.0, 2), (2.0, 0)]);
    }

    #[test]
    fn build_queue_fires_departures_before_same_tick_arrivals() {
        let schedules = [
            GroupSchedule::default(),
            sched(0.0, Some(1.0)),
            sched(1.0, None),
        ];
        let mut q = build_queue(&schedules);
        let fired = q.pop_through(1.0);
        assert_eq!(
            fired.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![EventKind::Departure(1), EventKind::Arrival(2)]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn peak_cores_tracks_concurrent_residency() {
        let a0 = app("t");
        let a1 = app("x");
        let a2 = app("y");
        let wl = [
            GroupRef { app: &a0, count: 1 },
            GroupRef { app: &a1, count: 3 },
            GroupRef { app: &a2, count: 3 },
        ];
        // Disjoint windows: 3 departs at 1.0 exactly when the other 3
        // arrive, so the peak is 4, not 7.
        let schedules = [
            GroupSchedule::default(),
            sched(0.0, Some(1.0)),
            sched(1.0, None),
        ];
        assert_eq!(peak_cores(&wl, &schedules), 4);
        // Overlapping windows count together.
        let schedules = [
            GroupSchedule::default(),
            sched(0.0, Some(2.0)),
            sched(1.0, None),
        ];
        assert_eq!(peak_cores(&wl, &schedules), 7);
    }

    #[test]
    fn validation_rejects_malformed_schedules() {
        let a0 = app("t");
        let a1 = app("x");
        let wl = [
            GroupRef { app: &a0, count: 1 },
            GroupRef { app: &a1, count: 1 },
        ];
        let ok = [GroupSchedule::default(), sched(0.5, Some(1.5))];
        assert!(validate_schedules(&wl, &ok).is_ok());

        let wrong_len = [GroupSchedule::default()];
        assert!(matches!(
            validate_schedules(&wl, &wrong_len),
            Err(MachineError::BadSchedule(_))
        ));
        let bad_offset = [
            GroupSchedule::default(),
            GroupSchedule {
                phase_offset: 1.0,
                ..Default::default()
            },
        ];
        assert!(validate_schedules(&wl, &bad_offset).is_err());
        let departs_before_arrival = [GroupSchedule::default(), sched(2.0, Some(1.0))];
        assert!(validate_schedules(&wl, &departs_before_arrival).is_err());
        let target_leaves = [sched(0.0, Some(1.0)), GroupSchedule::default()];
        assert!(validate_schedules(&wl, &target_leaves).is_err());
        let bad_clock = [
            GroupSchedule::default(),
            GroupSchedule {
                clock_ratio: 0.0,
                ..Default::default()
            },
        ];
        assert!(validate_schedules(&wl, &bad_clock).is_err());
    }
}
