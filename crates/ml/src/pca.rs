//! Principal component analysis for feature ranking.
//!
//! The paper (§III-B) chose its eight model features by running a PCA over
//! everything the performance counters could measure and ranking features
//! by how much output variance they carry. [`Pca`] reproduces that
//! workflow: fit on a (standardized) sample matrix, inspect explained
//! variance per component, and rank original features by their total
//! loading across the dominant components.

use crate::scaler::Standardizer;
use crate::{MlError, Result};
use coloc_linalg::stats::covariance;
use coloc_linalg::{Mat, SymmetricEigen};

/// A fitted PCA: principal directions of the standardized feature space.
pub struct Pca {
    scaler: Standardizer,
    /// Component loadings, one component per column, descending variance.
    components: Mat,
    /// Variance along each component, descending.
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit to the rows of `x` (samples × features). Features are z-scored
    /// internally so disparate scales don't dominate the decomposition.
    pub fn fit(x: &Mat) -> Result<Pca> {
        if x.rows() < 2 {
            return Err(MlError::BadDataset("PCA needs >= 2 samples".into()));
        }
        let scaler = Standardizer::fit(x);
        let z = scaler.transform(x);
        let cov = covariance(&z)?;
        let eig = SymmetricEigen::new(&cov)?;
        Ok(Pca {
            scaler,
            components: eig.vectors,
            explained_variance: eig.values.iter().map(|&v| v.max(0.0)).collect(),
        })
    }

    /// Number of components (= number of input features).
    pub fn num_components(&self) -> usize {
        self.explained_variance.len()
    }

    /// Variance captured by each component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by each component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.explained_variance.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.explained_variance.len()];
        }
        self.explained_variance.iter().map(|v| v / total).collect()
    }

    /// Loadings of original feature `f` on component `c`.
    pub fn loading(&self, feature: usize, component: usize) -> f64 {
        self.components[(feature, component)]
    }

    /// Project one raw sample onto the first `k` components.
    pub fn project(&self, sample: &[f64], k: usize) -> Vec<f64> {
        let mut z = sample.to_vec();
        self.scaler.transform_row(&mut z);
        (0..k.min(self.num_components()))
            .map(|c| (0..z.len()).map(|f| z[f] * self.components[(f, c)]).sum())
            .collect()
    }

    /// Rank original features by importance: each feature's score is its
    /// squared loading on the *dominant* components (the fewest needed to
    /// explain 90% of total variance), weighted by each component's
    /// explained variance. Restricting to the dominant subspace matters:
    /// over all components the weighted squared loadings of a standardized
    /// feature always sum to its unit variance, so the full sum cannot
    /// discriminate. Returns `(feature_index, score)` descending — the
    /// ranking the paper used to pick its eight features (§III-B).
    pub fn feature_ranking(&self) -> Vec<(usize, f64)> {
        self.feature_ranking_with_coverage(0.90)
    }

    /// [`Pca::feature_ranking`] with an explicit variance-coverage target
    /// in `(0, 1]` for selecting the dominant components.
    pub fn feature_ranking_with_coverage(&self, coverage: f64) -> Vec<(usize, f64)> {
        let n = self.num_components();
        let evr = self.explained_variance_ratio();
        let mut k = 0;
        let mut covered = 0.0;
        while k < n && covered < coverage.clamp(f64::MIN_POSITIVE, 1.0) {
            covered += evr[k];
            k += 1;
        }
        let k = k.max(1).min(n);
        let mut scores: Vec<(usize, f64)> = (0..n)
            .map(|f| {
                let s = (0..k)
                    .map(|c| self.components[(f, c)].powi(2) * self.explained_variance[c])
                    .sum();
                (f, s)
            })
            .collect();
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite PCA scores"));
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two informative (nearly collinear) dimensions + one constant
    /// dimension. Note the constant — not merely *small* — choice: PCA here
    /// standardizes its inputs, so any column with nonzero variance gets
    /// unit scale and carries a full component of its own; only a
    /// variance-free column is genuinely uninformative.
    fn structured_data(n: usize) -> Mat {
        Mat::from_fn(n, 3, |i, j| {
            let t = i as f64 / n as f64 * std::f64::consts::TAU;
            match j {
                0 => t.sin() * 10.0,
                1 => t.sin() * 10.0 + t.cos() * 0.5, // nearly collinear with 0
                _ => 42.0,                           // constant
            }
        })
    }

    #[test]
    fn first_component_dominates_collinear_data() {
        let pca = Pca::fit(&structured_data(200)).unwrap();
        let evr = pca.explained_variance_ratio();
        assert!(evr[0] > 0.6, "evr = {evr:?}");
        assert!((evr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Descending order.
        for w in evr.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn projection_dimensionality() {
        let pca = Pca::fit(&structured_data(50)).unwrap();
        assert_eq!(pca.project(&[1.0, 2.0, 3.0], 2).len(), 2);
        assert_eq!(pca.project(&[1.0, 2.0, 3.0], 99).len(), 3);
    }

    #[test]
    fn projections_onto_distinct_components_are_uncorrelated() {
        let x = structured_data(300);
        let pca = Pca::fit(&x).unwrap();
        let projs: Vec<Vec<f64>> = (0..x.rows()).map(|i| pca.project(x.row(i), 3)).collect();
        let c0: Vec<f64> = projs.iter().map(|p| p[0]).collect();
        let c1: Vec<f64> = projs.iter().map(|p| p[1]).collect();
        let m0 = coloc_linalg::vecops::mean(&c0);
        let m1 = coloc_linalg::vecops::mean(&c1);
        let cov: f64 = c0
            .iter()
            .zip(&c1)
            .map(|(a, b)| (a - m0) * (b - m1))
            .sum::<f64>()
            / (c0.len() - 1) as f64;
        assert!(cov.abs() < 1e-8, "cov = {cov}");
    }

    #[test]
    fn ranking_puts_informative_features_first() {
        let pca = Pca::fit(&structured_data(200)).unwrap();
        let ranking = pca.feature_ranking();
        // Noise feature (index 2) must rank last.
        assert_eq!(ranking.last().unwrap().0, 2, "{ranking:?}");
    }

    #[test]
    fn needs_two_samples() {
        assert!(Pca::fit(&Mat::zeros(1, 3)).is_err());
    }
}
