//! Z-score standardization for features and targets.
//!
//! The paper's eight features span wildly different scales — baseline
//! execution times are hundreds of seconds while memory intensities are
//! 1e-6..1e-2 (Table III). Both the neural network (whose tanh units
//! saturate on large inputs) and the conditioning of the linear system
//! benefit from mapping every column to zero mean and unit variance.

use coloc_linalg::stats::{column_means, column_stds};
use coloc_linalg::Mat;

/// A fitted per-column affine transform `x' = (x − mean) / std`.
///
/// Columns with zero variance are passed through centered but unscaled
/// (std treated as 1) so constant features cannot produce NaNs.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fit to the columns of `x` (rows = samples).
    ///
    /// A column is treated as constant (std replaced by 1) when its
    /// standard deviation is zero *or* negligible relative to its mean —
    /// accumulation rounding gives repeated constants a std around 1e-19
    /// of their magnitude, and dividing by that would blow the column up
    /// to ±1e16.
    pub fn fit(x: &Mat) -> Standardizer {
        let means = column_means(x);
        let stds = column_stds(x)
            .into_iter()
            .zip(&means)
            .map(|(s, m)| {
                let threshold = m.abs() * 1e-12;
                if s > threshold && s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Standardizer { means, stds }
    }

    /// Fit to a single column of values (for targets).
    pub fn fit_vec(y: &[f64]) -> Standardizer {
        Standardizer::fit(&Mat::column(y))
    }

    /// Number of columns this scaler was fitted on.
    pub fn num_features(&self) -> usize {
        self.means.len()
    }

    /// Column means captured at fit time.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Column standard deviations captured at fit time (zeros replaced by 1).
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Transform a matrix (must have the fitted number of columns).
    pub fn transform(&self, x: &Mat) -> Mat {
        assert_eq!(x.cols(), self.means.len(), "standardizer arity mismatch");
        Mat::from_fn(x.rows(), x.cols(), |i, j| {
            (x[(i, j)] - self.means[j]) / self.stds[j]
        })
    }

    /// Transform a single sample in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.means.len(), "standardizer arity mismatch");
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *v = (*v - m) / s;
        }
    }

    /// Transform a scalar using column 0 (for targets fitted with
    /// [`Standardizer::fit_vec`]).
    pub fn transform_scalar(&self, v: f64) -> f64 {
        (v - self.means[0]) / self.stds[0]
    }

    /// Invert the transform for a scalar from column 0.
    pub fn inverse_scalar(&self, v: f64) -> f64 {
        v * self.stds[0] + self.means[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardized_columns_have_zero_mean_unit_std() {
        let x = Mat::from_fn(50, 3, |i, j| {
            (i as f64) * (j as f64 + 1.0) + j as f64 * 100.0
        });
        let sc = Standardizer::fit(&x);
        let z = sc.transform(&x);
        let means = column_means(&z);
        let stds = column_stds(&z);
        for j in 0..3 {
            assert!(means[j].abs() < 1e-12, "mean {}", means[j]);
            assert!((stds[j] - 1.0).abs() < 1e-12, "std {}", stds[j]);
        }
    }

    #[test]
    fn constant_column_is_safe() {
        let x = Mat::from_fn(10, 2, |i, j| if j == 0 { 5.0 } else { i as f64 });
        let sc = Standardizer::fit(&x);
        let z = sc.transform(&x);
        assert!(z.is_finite());
        assert!(z.col(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn effectively_constant_column_is_safe() {
        // A constant 1e-3 column accumulates ~1e-19 of rounding "variance";
        // it must be treated as constant, not scaled by 1e-19.
        let x = Mat::from_fn(80, 2, |i, j| if j == 0 { 1e-3 } else { i as f64 });
        let sc = Standardizer::fit(&x);
        assert_eq!(sc.stds()[0], 1.0, "stds = {:?}", sc.stds());
        let z = sc.transform(&x);
        assert!(
            z.col(0).iter().all(|v| v.abs() < 1e-9),
            "{:?}",
            &z.col(0)[..3]
        );
    }

    #[test]
    fn genuinely_small_variance_is_preserved() {
        // Variance small in absolute terms but large relative to the mean
        // must still be scaled (memory intensities live at 1e-6).
        let x = Mat::from_fn(50, 1, |i, _| 1e-6 + 1e-7 * (i % 5) as f64);
        let sc = Standardizer::fit(&x);
        assert!(sc.stds()[0] < 1e-6 && sc.stds()[0] > 1e-8);
    }

    #[test]
    fn scalar_roundtrip() {
        let y = [10.0, 20.0, 30.0, 40.0];
        let sc = Standardizer::fit_vec(&y);
        for &v in &y {
            let z = sc.transform_scalar(v);
            assert!((sc.inverse_scalar(z) - v).abs() < 1e-12);
        }
    }

    #[test]
    fn transform_row_matches_matrix_transform() {
        let x = Mat::from_fn(20, 4, |i, j| (i * j) as f64 + 0.5);
        let sc = Standardizer::fit(&x);
        let z = sc.transform(&x);
        let mut row = x.row(7).to_vec();
        sc.transform_row(&mut row);
        assert_eq!(row, z.row(7));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let sc = Standardizer::fit(&Mat::zeros(3, 2));
        sc.transform(&Mat::zeros(3, 3));
    }
}
