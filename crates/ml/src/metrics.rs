//! Prediction-accuracy metrics.
//!
//! The paper evaluates all twelve models with two metrics (§III-E):
//!
//! * **Mean Percentage Error** (Eq. 2) — the mean of `|pred − actual| /
//!   actual`, as a percentage. Magnitude-independent, which matters because
//!   actual execution times range from ~150 s to over 1000 s.
//! * **Normalized Root Mean Squared Error** (Eq. 3) — RMSE as a percentage
//!   of the range of actual values, indicating prediction variance.
//!
//! `r_squared` and `mae` are provided as supplementary diagnostics.

/// Mean Percentage Error (paper Eq. 2), in percent.
///
/// `100/M × Σ |predᵢ − actualᵢ| / actualᵢ`. Panics in debug builds on
/// length mismatch; returns NaN on empty input or if any actual value is
/// zero (a percentage error against a zero actual is undefined).
pub fn mpe(predicted: &[f64], actual: &[f64]) -> f64 {
    debug_assert_eq!(predicted.len(), actual.len());
    if actual.is_empty() || actual.contains(&0.0) {
        return f64::NAN;
    }
    let sum: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| ((p - a) / a).abs())
        .sum();
    100.0 * sum / actual.len() as f64
}

/// Root Mean Squared Error.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    debug_assert_eq!(predicted.len(), actual.len());
    if actual.is_empty() {
        return f64::NAN;
    }
    let ss: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).powi(2))
        .sum();
    (ss / actual.len() as f64).sqrt()
}

/// Normalized Root Mean Squared Error (paper Eq. 3), in percent:
/// `100 × RMSE / (max(actual) − min(actual))`.
///
/// Returns NaN on empty input or when the actual values have zero range.
pub fn nrmse(predicted: &[f64], actual: &[f64]) -> f64 {
    if actual.is_empty() {
        return f64::NAN;
    }
    let range = coloc_linalg::vecops::max(actual) - coloc_linalg::vecops::min(actual);
    if range <= 0.0 {
        return f64::NAN;
    }
    100.0 * rmse(predicted, actual) / range
}

/// Mean Absolute Error.
pub fn mae(predicted: &[f64], actual: &[f64]) -> f64 {
    debug_assert_eq!(predicted.len(), actual.len());
    if actual.is_empty() {
        return f64::NAN;
    }
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / actual.len() as f64
}

/// Coefficient of determination R². 1 is perfect; 0 matches predicting the
/// mean; negative is worse than the mean.
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    debug_assert_eq!(predicted.len(), actual.len());
    let mean = coloc_linalg::vecops::mean(actual);
    let ss_tot: f64 = actual.iter().map(|a| (a - mean).powi(2)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).powi(2))
        .sum();
    if ss_tot == 0.0 {
        return f64::NAN;
    }
    1.0 - ss_res / ss_tot
}

/// Signed percent errors `100 × (pred − actual)/actual` per sample — the
/// quantity whose per-application distribution the paper plots in Fig. 5b.
pub fn percent_errors(predicted: &[f64], actual: &[f64]) -> Vec<f64> {
    debug_assert_eq!(predicted.len(), actual.len());
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| 100.0 * (p - a) / a)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let a = [100.0, 200.0, 300.0];
        assert_eq!(mpe(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(nrmse(&a, &a), 0.0);
        assert_eq!(mae(&a, &a), 0.0);
        assert_eq!(r_squared(&a, &a), 1.0);
    }

    #[test]
    fn mpe_known_value() {
        // 10% high and 10% low -> MPE 10%.
        let p = [110.0, 180.0];
        let a = [100.0, 200.0];
        assert!((mpe(&p, &a) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn mpe_is_magnitude_independent() {
        let p1 = [110.0];
        let a1 = [100.0];
        let p2 = [1100.0];
        let a2 = [1000.0];
        assert!((mpe(&p1, &a1) - mpe(&p2, &a2)).abs() < 1e-12);
    }

    #[test]
    fn rmse_known_value() {
        let p = [1.0, 2.0, 3.0];
        let a = [1.0, 2.0, 6.0];
        assert!((rmse(&p, &a) - 3.0 / 3f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn nrmse_normalizes_by_range() {
        let p = [10.0, 20.0];
        let a = [12.0, 22.0]; // rmse = 2, range = 10 -> 20%
        assert!((nrmse(&p, &a) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn nrmse_zero_range_is_nan() {
        assert!(nrmse(&[1.0, 1.0], &[5.0, 5.0]).is_nan());
    }

    #[test]
    fn r_squared_of_mean_prediction_is_zero() {
        let a = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r_squared(&p, &a).abs() < 1e-12);
    }

    #[test]
    fn percent_errors_signed() {
        let pe = percent_errors(&[110.0, 90.0], &[100.0, 100.0]);
        assert!((pe[0] - 10.0).abs() < 1e-12);
        assert!((pe[1] + 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_nan() {
        assert!(mpe(&[], &[]).is_nan());
        assert!(rmse(&[], &[]).is_nan());
        assert!(mae(&[], &[]).is_nan());
        assert!(nrmse(&[], &[]).is_nan());
    }

    #[test]
    fn mpe_with_zero_actual_is_nan() {
        assert!(mpe(&[1.0, 2.0], &[5.0, 0.0]).is_nan());
    }
}
