//! Degree-2 polynomial feature expansion.
//!
//! An ablation the paper invites but does not run: the gap between its
//! linear models and its neural networks could stem from *interactions*
//! (e.g. `baseExTime × coAppMem` — a memory-hungry neighbour hurts long
//! memory-bound runs superlinearly) rather than deep nonlinearity. A
//! quadratic expansion feeds those interactions to the same least-squares
//! machinery, quantifying how much of the NN's advantage cheap feature
//! engineering recovers (see `repro ablation-quad`).

use crate::linear::LinearRegression;
use crate::{Dataset, Result};
use coloc_linalg::Mat;

/// Expand `x` with all squares and pairwise products of its columns:
/// `[x₁..xₙ, x₁², x₁x₂, …, xₙ²]` (original features first).
pub fn expand_quadratic(x: &Mat) -> Mat {
    let (m, n) = x.shape();
    let extra = n * (n + 1) / 2;
    let mut out = Mat::zeros(m, n + extra);
    for i in 0..m {
        let row = x.row(i);
        let orow = out.row_mut(i);
        orow[..n].copy_from_slice(row);
        let mut k = n;
        for a in 0..n {
            for b in a..n {
                orow[k] = row[a] * row[b];
                k += 1;
            }
        }
    }
    out
}

/// Number of columns [`expand_quadratic`] produces for `n` input features.
pub fn quadratic_arity(n: usize) -> usize {
    n + n * (n + 1) / 2
}

/// A linear model over quadratically-expanded features.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct QuadraticRegression {
    inner: LinearRegression,
    inputs: usize,
}

impl QuadraticRegression {
    /// Fit with a small ridge penalty (the expanded columns are highly
    /// collinear by construction).
    pub fn fit(data: &Dataset) -> Result<QuadraticRegression> {
        let inputs = data.num_features();
        let expanded = expand_quadratic(data.x());
        let ds = Dataset::new(expanded, data.y().to_vec())?;
        let inner = LinearRegression::fit_ridge(&ds, 1e-6)?;
        Ok(QuadraticRegression { inner, inputs })
    }

    /// Predict from a raw (unexpanded) feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.inputs, "feature arity mismatch");
        let x = Mat::from_rows(&[features.to_vec()]).expect("row");
        let expanded = expand_quadratic(&x);
        self.inner.predict(expanded.row(0))
    }

    /// Predict for every sample of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict(data.sample(i).0))
            .collect()
    }
}

impl crate::validate::Regressor for QuadraticRegression {
    fn predict(&self, features: &[f64]) -> f64 {
        QuadraticRegression::predict(self, features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::rmse;

    #[test]
    fn expansion_shape_and_content() {
        let x = Mat::from_rows(&[vec![2.0, 3.0]]).unwrap();
        let e = expand_quadratic(&x);
        assert_eq!(e.cols(), quadratic_arity(2));
        // [x1, x2, x1², x1x2, x2²]
        assert_eq!(e.row(0), &[2.0, 3.0, 4.0, 6.0, 9.0]);
    }

    #[test]
    fn fits_exact_quadratic_relationship() {
        // y = 1 + 2a + 3b + 0.5a² − ab
        let x = Mat::from_fn(60, 2, |i, j| ((i * (j + 3)) as f64 * 0.21).sin() * 3.0);
        let y: Vec<f64> = (0..60)
            .map(|i| {
                let (a, b) = (x[(i, 0)], x[(i, 1)]);
                1.0 + 2.0 * a + 3.0 * b + 0.5 * a * a - a * b
            })
            .collect();
        let ds = Dataset::new(x, y).unwrap();
        let q = QuadraticRegression::fit(&ds).unwrap();
        let preds = q.predict_all(&ds);
        assert!(rmse(&preds, ds.y()) < 1e-4, "rmse {}", rmse(&preds, ds.y()));
        // A plain linear model cannot fit this.
        let lin = LinearRegression::fit(&ds).unwrap();
        assert!(rmse(&lin.predict_all(&ds), ds.y()) > 0.1);
    }

    #[test]
    fn single_feature_expansion() {
        let x = Mat::column(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let y: Vec<f64> = (1..=5).map(|v| (v * v) as f64).collect();
        let ds = Dataset::new(x, y).unwrap();
        let q = QuadraticRegression::fit(&ds).unwrap();
        assert!((q.predict(&[6.0]) - 36.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn predict_checks_arity() {
        let ds =
            Dataset::from_samples(&[(vec![1.0], 1.0), (vec![2.0], 4.0), (vec![3.0], 9.0)]).unwrap();
        let q = QuadraticRegression::fit(&ds).unwrap();
        q.predict(&[1.0, 2.0]);
    }
}
