//! Repeated random sub-sampling validation (paper §IV-B4).
//!
//! The paper evaluates each model by withholding a random 30% of the data,
//! training on the remaining 70%, measuring MPE/NRMSE on both sides, and
//! repeating with a fresh random partition one hundred times; the hundred
//! error values are averaged. [`validate`] reproduces that procedure
//! exactly, fanning the independent partitions out across a work-stealing
//! worker pool ([`crate::parallel::run_indexed`]); each partition is
//! embarrassingly parallel and results return in partition order.

use crate::metrics::{mpe, nrmse};
use crate::rng::derive_seed;
use crate::{Dataset, LinearRegression, Mlp, Result};

/// Anything that can predict a scalar target from a raw feature vector.
pub trait Regressor: Send + Sync {
    /// Predict the target for one raw feature vector.
    fn predict(&self, features: &[f64]) -> f64;

    /// Predict for every sample in a dataset.
    fn predict_dataset(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict(data.sample(i).0))
            .collect()
    }
}

impl Regressor for LinearRegression {
    fn predict(&self, features: &[f64]) -> f64 {
        LinearRegression::predict(self, features)
    }
}

impl Regressor for Mlp {
    fn predict(&self, features: &[f64]) -> f64 {
        Mlp::predict(self, features)
    }
}

/// Errors measured on one train/test partition.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PartitionResult {
    /// MPE on the 70% training split, percent.
    pub train_mpe: f64,
    /// MPE on the withheld 30%, percent.
    pub test_mpe: f64,
    /// NRMSE on the training split, percent of target range.
    pub train_nrmse: f64,
    /// NRMSE on the withheld split, percent of target range.
    pub test_nrmse: f64,
}

/// Aggregated validation outcome across all partitions.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ValidationReport {
    /// Mean training MPE across partitions, percent.
    pub train_mpe: f64,
    /// Mean testing MPE across partitions, percent.
    pub test_mpe: f64,
    /// Mean training NRMSE across partitions, percent.
    pub train_nrmse: f64,
    /// Mean testing NRMSE across partitions, percent.
    pub test_nrmse: f64,
    /// Per-partition detail (length = number of partitions).
    pub per_partition: Vec<PartitionResult>,
}

impl ValidationReport {
    /// Aggregate per-partition results into a report (means across
    /// partitions). Public so alternative protocols (e.g.
    /// [`crate::kfold::kfold`]) can produce the same report shape.
    pub fn from_partitions(per_partition: Vec<PartitionResult>) -> ValidationReport {
        let n = per_partition.len().max(1) as f64;
        let sum = |f: fn(&PartitionResult) -> f64| per_partition.iter().map(f).sum::<f64>() / n;
        ValidationReport {
            train_mpe: sum(|p| p.train_mpe),
            test_mpe: sum(|p| p.test_mpe),
            train_nrmse: sum(|p| p.train_nrmse),
            test_nrmse: sum(|p| p.test_nrmse),
            per_partition,
        }
    }

    /// Sample standard deviation of the per-partition test MPE — the paper
    /// observes this is at most a quarter of a percent ("tight confidence
    /// interval", §V-A).
    pub fn test_mpe_std(&self) -> f64 {
        let v: Vec<f64> = self.per_partition.iter().map(|p| p.test_mpe).collect();
        coloc_linalg::vecops::std_dev(&v)
    }
}

/// Validation hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct ValidationConfig {
    /// Number of random partitions (paper: 100).
    pub partitions: usize,
    /// Fraction withheld for testing (paper: 0.30).
    pub test_fraction: f64,
    /// Base seed; partition `i` uses a stream derived from `(seed, i)`.
    pub seed: u64,
    /// Worker threads; 0 = one per available CPU.
    pub threads: usize,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            partitions: 100,
            test_fraction: 0.30,
            seed: 0,
            threads: 0,
        }
    }
}

/// Run repeated random sub-sampling validation.
///
/// `train` receives the training split and a partition-specific seed and
/// returns a fitted regressor. Partitions run in parallel; results are
/// ordered by partition index, so the outcome is independent of thread
/// scheduling.
pub fn validate<R, F>(data: &Dataset, cfg: &ValidationConfig, train: F) -> Result<ValidationReport>
where
    R: Regressor,
    F: Fn(&Dataset, u64) -> Result<R> + Sync,
{
    // Work-stealing fan-out: partition cost varies with the split (and
    // with how fast each model converges), so workers pull the next index
    // from a shared cursor instead of owning a pre-cut chunk. Results come
    // back in partition order, so the report is independent of thread
    // count and scheduling.
    let per_partition = crate::parallel::run_indexed(cfg.partitions, cfg.threads, |i| {
        run_partition(data, cfg, i, &train)
    })
    .into_iter()
    .collect::<Result<Vec<_>>>()?;
    Ok(ValidationReport::from_partitions(per_partition))
}

fn run_partition<R, F>(
    data: &Dataset,
    cfg: &ValidationConfig,
    partition: usize,
    train: &F,
) -> Result<PartitionResult>
where
    R: Regressor,
    F: Fn(&Dataset, u64) -> Result<R> + Sync,
{
    let (train_set, test_set) = data.split(cfg.test_fraction, cfg.seed, partition as u64);
    let model = train(
        &train_set,
        derive_seed(cfg.seed, 1_000_000 + partition as u64),
    )?;
    let train_pred = model.predict_dataset(&train_set);
    let test_pred = model.predict_dataset(&test_set);
    Ok(PartitionResult {
        train_mpe: mpe(&train_pred, train_set.y()),
        test_mpe: mpe(&test_pred, test_set.y()),
        train_nrmse: nrmse(&train_pred, train_set.y()),
        test_nrmse: nrmse(&test_pred, test_set.y()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use coloc_linalg::Mat;

    fn linear_noisy_dataset(n: usize) -> Dataset {
        let x = Mat::from_fn(n, 2, |i, j| {
            ((i * (j + 2)) as f64 * 0.17).sin() * 5.0 + 10.0
        });
        let y = (0..n)
            .map(|i| {
                let noise = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
                100.0 + 3.0 * x[(i, 0)] + 2.0 * x[(i, 1)] + noise
            })
            .collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn linear_validation_has_low_error_on_linear_data() {
        let ds = linear_noisy_dataset(200);
        let cfg = ValidationConfig {
            partitions: 20,
            ..Default::default()
        };
        let report = validate(&ds, &cfg, |train, _| LinearRegression::fit(train)).unwrap();
        assert!(report.test_mpe < 1.0, "test MPE {}", report.test_mpe);
        assert!(report.train_mpe < 1.0);
        assert_eq!(report.per_partition.len(), 20);
    }

    #[test]
    fn deterministic_across_runs_and_thread_counts() {
        let ds = linear_noisy_dataset(120);
        let base = ValidationConfig {
            partitions: 12,
            seed: 9,
            threads: 1,
            ..Default::default()
        };
        let r1 = validate(&ds, &base, |t, _| LinearRegression::fit(t)).unwrap();
        for threads in [2, 4, 8] {
            let r2 = validate(&ds, &ValidationConfig { threads, ..base }, |t, _| {
                LinearRegression::fit(t)
            })
            .unwrap();
            assert_eq!(r1.test_mpe, r2.test_mpe, "threads = {threads}");
            assert_eq!(r1.train_nrmse, r2.train_nrmse, "threads = {threads}");
            for (a, b) in r1.per_partition.iter().zip(&r2.per_partition) {
                assert_eq!(a.test_mpe, b.test_mpe);
                assert_eq!(a.train_mpe, b.train_mpe);
            }
        }
    }

    #[test]
    fn partition_seeds_differ() {
        let ds = linear_noisy_dataset(100);
        let seen = std::sync::Mutex::new(Vec::new());
        let cfg = ValidationConfig {
            partitions: 5,
            threads: 1,
            ..Default::default()
        };
        validate(&ds, &cfg, |t, seed| {
            seen.lock().unwrap().push(seed);
            LinearRegression::fit(t)
        })
        .unwrap();
        let v = seen.into_inner().unwrap();
        let mut uniq = v.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), v.len(), "duplicate training seeds: {v:?}");
    }

    #[test]
    fn training_error_propagates() {
        let ds = linear_noisy_dataset(50);
        let cfg = ValidationConfig {
            partitions: 3,
            ..Default::default()
        };
        let out = validate(&ds, &cfg, |_, _| -> Result<LinearRegression> {
            Err(crate::MlError::BadDataset("boom".into()))
        });
        assert!(out.is_err());
    }

    #[test]
    fn report_std_is_small_for_stable_model() {
        let ds = linear_noisy_dataset(300);
        let cfg = ValidationConfig {
            partitions: 30,
            ..Default::default()
        };
        let report = validate(&ds, &cfg, |t, _| LinearRegression::fit(t)).unwrap();
        // The paper reports at most a quarter-percent spread across
        // partitions for its models; a clean linear fit is far tighter.
        assert!(
            report.test_mpe_std() < 0.25,
            "std {}",
            report.test_mpe_std()
        );
    }
}
