//! Scaled Conjugate Gradient optimization (Møller, 1993).
//!
//! The paper (§III-D) trains its neural networks with "a scaled conjugate
//! gradient numerical method". SCG is a batch second-order method that
//! combines conjugate-gradient search directions with a Levenberg–Marquardt
//! style scaling parameter λ, avoiding the expensive line search of classic
//! CG. This implementation follows Møller's algorithm 1:1, with a finite
//! Hessian-vector product approximated by a forward difference of
//! gradients.
//!
//! The optimizer is generic over any objective exposing value + gradient,
//! so it is tested here against analytic functions independently of the
//! neural network that uses it.

/// An objective function for [`minimize`]: smooth, bounded below.
pub trait Objective {
    /// Number of parameters.
    fn dim(&self) -> usize;
    /// Objective value at `w`.
    fn value(&self, w: &[f64]) -> f64;
    /// Gradient at `w`, written into `grad` (length `dim()`).
    fn gradient(&self, w: &[f64], grad: &mut [f64]);
}

/// Configuration for the SCG run.
#[derive(Clone, Debug)]
pub struct ScgConfig {
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Stop when the gradient ∞-norm falls below this.
    pub grad_tol: f64,
    /// Stop when the objective improves by less than this (relative) over
    /// `patience` consecutive successful steps.
    pub value_tol: f64,
    /// Consecutive small-improvement steps tolerated before stopping.
    pub patience: usize,
}

impl Default for ScgConfig {
    fn default() -> Self {
        ScgConfig {
            max_iters: 500,
            grad_tol: 1e-6,
            value_tol: 1e-9,
            patience: 12,
        }
    }
}

/// Outcome of an SCG run.
#[derive(Clone, Debug)]
pub struct ScgReport {
    /// Final objective value.
    pub value: f64,
    /// Final gradient ∞-norm.
    pub grad_norm: f64,
    /// Iterations consumed.
    pub iterations: usize,
    /// True if a tolerance (rather than the iteration cap) stopped the run.
    pub converged: bool,
    /// True if the run ended in a non-finite objective or gradient — the
    /// optimizer state is poisoned and the weights must not be used.
    pub diverged: bool,
}

/// Minimize `obj` starting from `w` (updated in place). Returns a report;
/// never fails — on pathological objectives it simply stops at the cap.
pub fn minimize(obj: &impl Objective, w: &mut [f64], cfg: &ScgConfig) -> ScgReport {
    let n = obj.dim();
    assert_eq!(w.len(), n, "parameter vector has wrong length");
    if n == 0 {
        let value = obj.value(w);
        return ScgReport {
            value,
            grad_norm: 0.0,
            iterations: 0,
            converged: value.is_finite(),
            diverged: !value.is_finite(),
        };
    }

    const SIGMA0: f64 = 1e-4;
    let mut lambda = 1e-6f64;
    let mut lambda_bar = 0.0f64;
    let mut success = true;

    let mut fw = obj.value(w);
    let mut grad = vec![0.0; n];
    obj.gradient(w, &mut grad);
    // A non-finite objective at the starting point cannot recover (every
    // comparison against it is false); bail out as diverged immediately.
    if !fw.is_finite() || grad.iter().any(|g| !g.is_finite()) {
        return ScgReport {
            value: fw,
            grad_norm: grad.iter().fold(0.0f64, |m, g| m.max(g.abs())),
            iterations: 0,
            converged: false,
            diverged: true,
        };
    }
    let mut r: Vec<f64> = grad.iter().map(|g| -g).collect();
    let mut p = r.clone();
    let mut delta = 0.0f64;

    let mut grad_plus = vec![0.0; n];
    let mut w_try = vec![0.0; n];
    let mut small_steps = 0usize;
    let mut iterations = 0usize;
    let mut converged = false;

    for k in 1..=cfg.max_iters {
        iterations = k;
        let p_norm2: f64 = p.iter().map(|x| x * x).sum();
        let p_norm = p_norm2.sqrt();
        if p_norm == 0.0 {
            converged = true;
            break;
        }

        if success {
            // Second-order information: s ≈ H p via forward difference.
            let sigma = SIGMA0 / p_norm;
            for i in 0..n {
                w_try[i] = w[i] + sigma * p[i];
            }
            obj.gradient(&w_try, &mut grad_plus);
            // delta = pᵀ H p approximated by pᵀ (g(w+σp) − g(w)) / σ
            delta = p
                .iter()
                .zip(grad_plus.iter().zip(&grad))
                .map(|(pi, (gp, g))| pi * (gp - g))
                .sum::<f64>()
                / sigma;
        }

        // Scale: delta += (λ − λ̄)·|p|²
        delta += (lambda - lambda_bar) * p_norm2;

        // Make the Hessian approximation positive definite.
        if delta <= 0.0 {
            lambda_bar = 2.0 * (lambda - delta / p_norm2);
            delta = -delta + lambda * p_norm2;
            lambda = lambda_bar;
        }

        // Step size.
        let mu: f64 = p.iter().zip(&r).map(|(pi, ri)| pi * ri).sum();
        let alpha = mu / delta;

        // Comparison parameter.
        for i in 0..n {
            w_try[i] = w[i] + alpha * p[i];
        }
        let f_try = obj.value(&w_try);
        let big_delta = 2.0 * delta * (fw - f_try) / (mu * mu);

        if big_delta >= 0.0 && f_try.is_finite() {
            // Successful step.
            let reduction = fw - f_try;
            w.copy_from_slice(&w_try);
            fw = f_try;
            obj.gradient(w, &mut grad);
            let r_new: Vec<f64> = grad.iter().map(|g| -g).collect();
            lambda_bar = 0.0;
            success = true;

            if k % n == 0 {
                // Restart with steepest descent.
                p.copy_from_slice(&r_new);
            } else {
                let r_new_norm2: f64 = r_new.iter().map(|x| x * x).sum();
                let r_dot: f64 = r_new.iter().zip(&r).map(|(a, b)| a * b).sum();
                let beta = (r_new_norm2 - r_dot) / mu;
                for i in 0..n {
                    p[i] = r_new[i] + beta * p[i];
                }
            }
            r = r_new;

            if big_delta >= 0.75 {
                lambda *= 0.25;
            }

            // Convergence bookkeeping.
            let gnorm = grad.iter().fold(0.0f64, |m, g| m.max(g.abs()));
            if gnorm < cfg.grad_tol {
                converged = true;
                break;
            }
            if reduction < cfg.value_tol * fw.abs().max(1.0) {
                small_steps += 1;
                if small_steps >= cfg.patience {
                    converged = true;
                    break;
                }
            } else {
                small_steps = 0;
            }
        } else {
            // Unsuccessful step: raise λ and retry the direction.
            lambda_bar = lambda;
            success = false;
        }

        if big_delta < 0.25 {
            lambda += delta * (1.0 - big_delta) / p_norm2;
        }
        // Guard λ from exploding into uselessness.
        lambda = lambda.min(1e12);
    }

    let grad_norm = grad.iter().fold(0.0f64, |m, g| m.max(g.abs()));
    ScgReport {
        value: fw,
        grad_norm,
        iterations,
        converged,
        diverged: !fw.is_finite() || !grad_norm.is_finite(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(w) = Σ cᵢ (wᵢ − tᵢ)², a strictly convex quadratic.
    struct Quadratic {
        target: Vec<f64>,
        curv: Vec<f64>,
    }

    impl Objective for Quadratic {
        fn dim(&self) -> usize {
            self.target.len()
        }
        fn value(&self, w: &[f64]) -> f64 {
            w.iter()
                .zip(self.target.iter().zip(&self.curv))
                .map(|(wi, (t, c))| c * (wi - t).powi(2))
                .sum()
        }
        fn gradient(&self, w: &[f64], grad: &mut [f64]) {
            for i in 0..w.len() {
                grad[i] = 2.0 * self.curv[i] * (w[i] - self.target[i]);
            }
        }
    }

    /// The Rosenbrock banana — the classic nonconvex optimizer stress test.
    struct Rosenbrock;

    impl Objective for Rosenbrock {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, w: &[f64]) -> f64 {
            (1.0 - w[0]).powi(2) + 100.0 * (w[1] - w[0] * w[0]).powi(2)
        }
        fn gradient(&self, w: &[f64], grad: &mut [f64]) {
            grad[0] = -2.0 * (1.0 - w[0]) - 400.0 * w[0] * (w[1] - w[0] * w[0]);
            grad[1] = 200.0 * (w[1] - w[0] * w[0]);
        }
    }

    #[test]
    fn solves_well_conditioned_quadratic() {
        let obj = Quadratic {
            target: vec![1.0, -2.0, 3.0],
            curv: vec![1.0, 2.0, 0.5],
        };
        let mut w = vec![0.0; 3];
        let report = minimize(&obj, &mut w, &ScgConfig::default());
        assert!(report.converged, "{report:?}");
        for (wi, ti) in w.iter().zip(&obj.target) {
            assert!((wi - ti).abs() < 1e-4, "w={w:?}");
        }
    }

    #[test]
    fn solves_badly_conditioned_quadratic() {
        // Condition number 1e6.
        let obj = Quadratic {
            target: vec![5.0, -5.0],
            curv: vec![1e-3, 1e3],
        };
        let mut w = vec![100.0, 100.0];
        let report = minimize(
            &obj,
            &mut w,
            &ScgConfig {
                max_iters: 2000,
                grad_tol: 1e-9,
                ..Default::default()
            },
        );
        assert!(report.value < 1e-6, "{report:?} w={w:?}");
    }

    #[test]
    fn makes_progress_on_rosenbrock() {
        let mut w = vec![-1.2, 1.0];
        let start = Rosenbrock.value(&w);
        let report = minimize(
            &Rosenbrock,
            &mut w,
            &ScgConfig {
                max_iters: 5000,
                value_tol: 1e-14,
                patience: 200,
                ..Default::default()
            },
        );
        assert!(report.value < start * 1e-3, "{report:?} w={w:?}");
    }

    #[test]
    fn already_optimal_start_converges_immediately() {
        let obj = Quadratic {
            target: vec![2.0],
            curv: vec![1.0],
        };
        let mut w = vec![2.0];
        let report = minimize(&obj, &mut w, &ScgConfig::default());
        assert!(report.converged);
        assert!(report.iterations <= 2);
    }

    #[test]
    fn zero_dim_is_trivial() {
        let obj = Quadratic {
            target: vec![],
            curv: vec![],
        };
        let mut w = vec![];
        let report = minimize(&obj, &mut w, &ScgConfig::default());
        assert!(report.converged);
    }

    /// An objective poisoned with NaN everywhere — a model trained on
    /// fault-injected data whose loss is non-finite from the start.
    struct Poisoned;

    impl Objective for Poisoned {
        fn dim(&self) -> usize {
            2
        }
        fn value(&self, _w: &[f64]) -> f64 {
            f64::NAN
        }
        fn gradient(&self, _w: &[f64], grad: &mut [f64]) {
            grad.fill(f64::NAN);
        }
    }

    #[test]
    fn non_finite_objective_reports_divergence_immediately() {
        let mut w = vec![0.5, -0.5];
        let report = minimize(&Poisoned, &mut w, &ScgConfig::default());
        assert!(report.diverged);
        assert!(!report.converged);
        assert_eq!(report.iterations, 0, "must not spin on a poisoned loss");
        // Weights are untouched, so a caller can restart from a new seed.
        assert_eq!(w, vec![0.5, -0.5]);
    }

    #[test]
    fn healthy_runs_never_report_divergence() {
        let obj = Quadratic {
            target: vec![1.0, -2.0],
            curv: vec![1.0, 2.0],
        };
        let mut w = vec![0.0; 2];
        let report = minimize(&obj, &mut w, &ScgConfig::default());
        assert!(!report.diverged);
    }

    #[test]
    fn respects_iteration_cap() {
        let mut w = vec![-1.2, 1.0];
        let report = minimize(
            &Rosenbrock,
            &mut w,
            &ScgConfig {
                max_iters: 3,
                value_tol: 0.0,
                patience: usize::MAX,
                grad_tol: 0.0,
            },
        );
        assert_eq!(report.iterations, 3);
        assert!(!report.converged);
    }
}
