//! Permutation feature importance.
//!
//! Complements the PCA ranking of paper §III-B with a *model-specific*
//! view: shuffle one feature column at a time and measure how much the
//! trained model's error grows. Unlike PCA (which ranks by variance before
//! any model exists), permutation importance reveals which features a
//! particular fitted model actually leans on — e.g. the paper's
//! observation that "the most important features are the features
//! measuring the cache use information of the applications that are
//! co-located with the target" becomes directly checkable.

use crate::metrics::mpe;
use crate::rng::derive_seed;
use crate::validate::Regressor;
use crate::Dataset;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Importance of one feature: the increase in MPE when it is destroyed.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FeatureImportance {
    /// Column index in the dataset.
    pub feature: usize,
    /// Model MPE with the column shuffled, percent (averaged over rounds).
    pub permuted_mpe: f64,
    /// Increase over the intact-data MPE, percent (≥ 0 up to noise).
    pub mpe_increase: f64,
}

/// Compute permutation importance of every feature on `data` for a fitted
/// model. `rounds` independent shuffles are averaged per feature.
///
/// Returns importances sorted descending by `mpe_increase`, plus the
/// intact-data baseline MPE.
pub fn permutation_importance<R: Regressor>(
    model: &R,
    data: &Dataset,
    rounds: usize,
    seed: u64,
) -> (f64, Vec<FeatureImportance>) {
    let baseline_preds = model.predict_dataset(data);
    let baseline = mpe(&baseline_preds, data.y());
    let n = data.len();
    let k = data.num_features();

    let mut out = Vec::with_capacity(k);
    for feature in 0..k {
        let mut acc = 0.0;
        for round in 0..rounds.max(1) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(
                seed,
                (feature * 1009 + round) as u64,
            ));
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let preds: Vec<f64> = (0..n)
                .map(|i| {
                    let mut row = data.sample(i).0.to_vec();
                    row[feature] = data.sample(perm[i]).0[feature];
                    model.predict(&row)
                })
                .collect();
            acc += mpe(&preds, data.y());
        }
        let permuted = acc / rounds.max(1) as f64;
        out.push(FeatureImportance {
            feature,
            permuted_mpe: permuted,
            mpe_increase: permuted - baseline,
        });
    }
    out.sort_by(|a, b| b.mpe_increase.partial_cmp(&a.mpe_increase).expect("finite"));
    (baseline, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearRegression;
    use coloc_linalg::Mat;

    /// y depends strongly on column 0, weakly on column 1, not at all on 2.
    fn dataset(n: usize) -> Dataset {
        let x = Mat::from_fn(n, 3, |i, j| ((i * (j + 2) * 7919) % 1000) as f64 / 100.0);
        let y = (0..n)
            .map(|i| 100.0 + 10.0 * x[(i, 0)] + 0.5 * x[(i, 1)])
            .collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn ranks_features_by_true_influence() {
        let ds = dataset(300);
        let model = LinearRegression::fit(&ds).unwrap();
        let (baseline, imps) = permutation_importance(&model, &ds, 3, 42);
        assert!(baseline < 1e-6, "exact fit expected, got {baseline}");
        assert_eq!(imps.len(), 3);
        assert_eq!(imps[0].feature, 0, "{imps:?}");
        assert_eq!(imps[1].feature, 1, "{imps:?}");
        assert_eq!(imps[2].feature, 2, "{imps:?}");
        assert!(imps[0].mpe_increase > imps[1].mpe_increase * 2.0);
        assert!(imps[2].mpe_increase.abs() < 1e-6);
    }

    #[test]
    fn deterministic() {
        let ds = dataset(100);
        let model = LinearRegression::fit(&ds).unwrap();
        let (_, a) = permutation_importance(&model, &ds, 2, 7);
        let (_, b) = permutation_importance(&model, &ds, 2, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.permuted_mpe, y.permuted_mpe);
        }
    }

    #[test]
    fn single_round_works() {
        let ds = dataset(50);
        let model = LinearRegression::fit(&ds).unwrap();
        let (_, imps) = permutation_importance(&model, &ds, 1, 0);
        assert_eq!(imps.len(), 3);
    }
}
