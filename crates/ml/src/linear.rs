//! Linear least-squares regression (paper Eq. 1).
//!
//! The paper's linear models are `time = Σ coeffᵢ·featureᵢ + constant`,
//! fitted by linear least squares (SciPy's `lstsq` in the original). Here
//! the fit runs over standardized features through a Householder QR; a
//! small ridge fallback handles the rank-deficient corner (e.g. model B's
//! `numCoApp` column is constant if the training plan only ever used one
//! co-location count).

use crate::scaler::Standardizer;
use crate::{Dataset, MlError, Result};
use coloc_linalg::{lstsq, Cholesky, LinalgError, Mat};

/// A fitted linear regression model with intercept.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinearRegression {
    scaler: Standardizer,
    /// Coefficients in *standardized* feature space.
    coeffs: Vec<f64>,
    intercept: f64,
}

impl LinearRegression {
    /// Fit by ordinary least squares on standardized features.
    ///
    /// Falls back to a tiny ridge (λ = 1e-8) when the design matrix is
    /// rank-deficient, which keeps constant feature columns harmless.
    pub fn fit(data: &Dataset) -> Result<LinearRegression> {
        Self::fit_ridge(data, 0.0)
    }

    /// Fit with explicit ridge penalty `lambda ≥ 0` on the (standardized)
    /// coefficients; the intercept is never penalized.
    pub fn fit_ridge(data: &Dataset, lambda: f64) -> Result<LinearRegression> {
        if data.len() <= data.num_features() {
            return Err(MlError::BadDataset(format!(
                "{} samples for {} features",
                data.len(),
                data.num_features()
            )));
        }
        let scaler = Standardizer::fit(data.x());
        let z = scaler.transform(data.x());
        let design = Mat::from_fn(z.rows(), z.cols() + 1, |i, j| {
            if j == 0 {
                1.0
            } else {
                z[(i, j - 1)]
            }
        });

        let solution = if lambda == 0.0 {
            match lstsq(&design, data.y()) {
                Ok(s) => s,
                // Collinear columns: retry with a whisper of ridge.
                Err(LinalgError::Singular) => Self::ridge_solve(&design, data.y(), 1e-8)?,
                Err(e) => return Err(e.into()),
            }
        } else {
            Self::ridge_solve(&design, data.y(), lambda)?
        };

        Ok(LinearRegression {
            scaler,
            intercept: solution[0],
            coeffs: solution[1..].to_vec(),
        })
    }

    fn ridge_solve(design: &Mat, y: &[f64], lambda: f64) -> Result<Vec<f64>> {
        let mut gram = design.gram();
        // Skip index 0: the intercept column is not penalized.
        for i in 1..gram.rows() {
            gram[(i, i)] += lambda;
        }
        // Guard the intercept against exact singularity too.
        gram[(0, 0)] += lambda * 1e-3;
        let rhs = design.tr_matvec(y)?;
        Ok(Cholesky::new(&gram)?.solve(&rhs)?)
    }

    /// Predict the target for one raw (unstandardized) feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.coeffs.len(),
            "feature arity mismatch: model has {}, got {}",
            self.coeffs.len(),
            features.len()
        );
        let mut z = features.to_vec();
        self.scaler.transform_row(&mut z);
        self.intercept + coloc_linalg::vecops::dot(&self.coeffs, &z)
    }

    /// Predict for every row of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict(data.sample(i).0))
            .collect()
    }

    /// Coefficients in standardized feature space (useful for inspecting
    /// relative feature importance).
    pub fn standardized_coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The fitted intercept (equals the training-target mean for OLS on
    /// standardized features).
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Coefficients mapped back to raw feature space, returned as
    /// `(raw_coeffs, raw_intercept)` so that
    /// `y = raw_intercept + Σ raw_coeffsᵢ·xᵢ` — the exact form of paper Eq. 1.
    pub fn raw_coefficients(&self) -> (Vec<f64>, f64) {
        let stds = self.scaler.stds();
        let means = self.scaler.means();
        let raw: Vec<f64> = self.coeffs.iter().zip(stds).map(|(c, s)| c / s).collect();
        let shift: f64 = raw.iter().zip(means).map(|(c, m)| c * m).sum();
        (raw, self.intercept - shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coloc_linalg::Mat;

    fn linear_dataset(n: usize) -> Dataset {
        // y = 5 + 2 x0 - 3 x1
        let x = Mat::from_fn(n, 2, |i, j| {
            let t = i as f64;
            if j == 0 {
                (t * 0.37).sin() * 10.0
            } else {
                (t * 0.11).cos() * 4.0 + t * 0.01
            }
        });
        let y = (0..n)
            .map(|i| 5.0 + 2.0 * x[(i, 0)] - 3.0 * x[(i, 1)])
            .collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn recovers_exact_linear_relationship() {
        let ds = linear_dataset(40);
        let model = LinearRegression::fit(&ds).unwrap();
        let preds = model.predict_all(&ds);
        for (p, a) in preds.iter().zip(ds.y()) {
            assert!((p - a).abs() < 1e-8, "{p} vs {a}");
        }
        let (raw, b0) = model.raw_coefficients();
        assert!((raw[0] - 2.0).abs() < 1e-8);
        assert!((raw[1] + 3.0).abs() < 1e-8);
        assert!((b0 - 5.0).abs() < 1e-7);
    }

    #[test]
    fn raw_coefficients_reproduce_predictions() {
        let ds = linear_dataset(25);
        let model = LinearRegression::fit(&ds).unwrap();
        let (raw, b0) = model.raw_coefficients();
        let x = ds.x();
        for i in 0..ds.len() {
            let manual = b0 + raw[0] * x[(i, 0)] + raw[1] * x[(i, 1)];
            assert!((manual - model.predict(x.row(i))).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_does_not_break_fit() {
        let x = Mat::from_fn(20, 2, |i, j| if j == 0 { 7.0 } else { i as f64 });
        let y = (0..20).map(|i| 1.0 + 2.0 * i as f64).collect();
        let ds = Dataset::new(x, y).unwrap();
        let model = LinearRegression::fit(&ds).unwrap();
        let preds = model.predict_all(&ds);
        for (p, a) in preds.iter().zip(ds.y()) {
            assert!((p - a).abs() < 1e-5, "{p} vs {a}");
        }
    }

    #[test]
    fn duplicate_columns_fall_back_to_ridge() {
        let x = Mat::from_fn(20, 2, |i, _| i as f64);
        let y = (0..20).map(|i| 3.0 * i as f64).collect();
        let ds = Dataset::new(x, y).unwrap();
        let model = LinearRegression::fit(&ds).unwrap();
        // Prediction still works even though coefficients are not unique.
        let preds = model.predict_all(&ds);
        for (p, a) in preds.iter().zip(ds.y()) {
            assert!((p - a).abs() < 1e-4, "{p} vs {a}");
        }
    }

    #[test]
    fn underdetermined_is_error() {
        let x = Mat::zeros(2, 3);
        let ds = Dataset::new(x, vec![1.0, 2.0]).unwrap();
        assert!(matches!(
            LinearRegression::fit(&ds),
            Err(MlError::BadDataset(_))
        ));
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let ds = linear_dataset(40);
        let ols = LinearRegression::fit(&ds).unwrap();
        let ridge = LinearRegression::fit_ridge(&ds, 100.0).unwrap();
        let n_ols: f64 = ols.standardized_coeffs().iter().map(|c| c * c).sum();
        let n_ridge: f64 = ridge.standardized_coeffs().iter().map(|c| c * c).sum();
        assert!(n_ridge < n_ols);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn predict_checks_arity() {
        let ds = linear_dataset(10);
        let model = LinearRegression::fit(&ds).unwrap();
        model.predict(&[1.0]);
    }
}
