//! # coloc-ml
//!
//! The machine-learning substrate for the IPPS'15 co-location performance
//! modeling methodology. The paper builds twelve predictive models: six
//! linear least-squares models (one per feature set A–F, paper Eq. 1) and
//! six single-hidden-layer neural networks trained with Møller's *scaled
//! conjugate gradient* method. This crate provides those learners plus the
//! surrounding apparatus:
//!
//! * [`dataset::Dataset`] — feature matrix + target vector with seeded
//!   splits.
//! * [`scaler::Standardizer`] — z-score feature/target scaling (the feature
//!   columns span orders of magnitude; see paper Table III).
//! * [`linear::LinearRegression`] — QR least squares with optional ridge.
//! * [`mlp::Mlp`] — multilayer perceptron with tanh hidden units.
//! * [`scg`] — the scaled conjugate gradient optimizer (Møller 1993), the
//!   method the paper names for determining network coefficients (§III-D).
//! * [`pca::Pca`] — principal component analysis used to rank the eight
//!   candidate features (§III-B).
//! * [`metrics`] — Mean Percentage Error (Eq. 2) and Normalized Root Mean
//!   Squared Error (Eq. 3).
//! * [`mod@validate`] — repeated random sub-sampling validation: 70/30 splits,
//!   100 partitions, averaged train/test error (§IV-B4).
//!
//! Every stochastic routine takes an explicit seed; results are
//! reproducible bit-for-bit.

pub mod dataset;
pub mod importance;
pub mod kfold;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod parallel;
pub mod pca;
pub mod poly;
pub mod rng;
pub mod scaler;
pub mod scg;
pub mod validate;

pub use dataset::Dataset;
pub use importance::{permutation_importance, FeatureImportance};
pub use kfold::kfold;
pub use linear::LinearRegression;
pub use metrics::{mae, mpe, nrmse, r_squared, rmse};
pub use mlp::{Mlp, MlpConfig};
pub use pca::Pca;
pub use poly::QuadraticRegression;
pub use scaler::Standardizer;
pub use validate::{validate, Regressor, ValidationReport};

/// Errors produced by learners and validators.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Dataset shapes disagree or the dataset is empty/too small.
    BadDataset(String),
    /// The underlying linear-algebra routine failed.
    Linalg(coloc_linalg::LinalgError),
    /// The optimizer did not reach the requested tolerance.
    NoConvergence { iterations: usize, grad_norm: f64 },
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::BadDataset(s) => write!(f, "bad dataset: {s}"),
            MlError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            MlError::NoConvergence {
                iterations,
                grad_norm,
            } => write!(
                f,
                "optimizer did not converge after {iterations} iterations (|g| = {grad_norm:.3e})"
            ),
        }
    }
}

impl std::error::Error for MlError {}

impl From<coloc_linalg::LinalgError> for MlError {
    fn from(e: coloc_linalg::LinalgError) -> Self {
        MlError::Linalg(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, MlError>;
