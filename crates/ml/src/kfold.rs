//! K-fold cross-validation.
//!
//! The paper uses repeated random sub-sampling ([`crate::validate::validate`]);
//! k-fold is the other standard protocol, provided so users can check the
//! conclusions are protocol-independent (they are — see the core crate's
//! integration tests). Folds partition the data exactly once, so every
//! sample is tested exactly once per run.

use crate::metrics::{mpe, nrmse};
use crate::rng::derive_seed;
use crate::validate::{PartitionResult, Regressor, ValidationReport};
use crate::{Dataset, MlError, Result};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Run k-fold cross-validation; returns the same report shape as
/// [`crate::validate::validate`] with one [`PartitionResult`] per fold.
pub fn kfold<R, F>(data: &Dataset, k: usize, seed: u64, train: F) -> Result<ValidationReport>
where
    R: Regressor,
    F: Fn(&Dataset, u64) -> Result<R>,
{
    if k < 2 {
        return Err(MlError::BadDataset("k-fold needs k >= 2".into()));
    }
    if data.len() < k {
        return Err(MlError::BadDataset(format!(
            "{} samples cannot form {k} folds",
            data.len()
        )));
    }
    let n = data.len();
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(seed, 0xF01D));
    idx.shuffle(&mut rng);

    let mut per_partition = Vec::with_capacity(k);
    for fold in 0..k {
        let lo = fold * n / k;
        let hi = (fold + 1) * n / k;
        let test_idx = &idx[lo..hi];
        let train_idx: Vec<usize> = idx[..lo].iter().chain(&idx[hi..]).copied().collect();
        let train_set = data.select(&train_idx);
        let test_set = data.select(test_idx);
        let model = train(&train_set, derive_seed(seed, 2_000_000 + fold as u64))?;
        let train_pred = model.predict_dataset(&train_set);
        let test_pred = model.predict_dataset(&test_set);
        per_partition.push(PartitionResult {
            train_mpe: mpe(&train_pred, train_set.y()),
            test_mpe: mpe(&test_pred, test_set.y()),
            train_nrmse: nrmse(&train_pred, train_set.y()),
            test_nrmse: nrmse(&test_pred, test_set.y()),
        });
    }
    Ok(ValidationReport::from_partitions(per_partition))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinearRegression;
    use coloc_linalg::Mat;

    fn ds(n: usize) -> Dataset {
        let x = Mat::from_fn(n, 2, |i, j| {
            ((i + 1) as f64 * (j + 1) as f64 * 0.37).sin() * 4.0
        });
        let y = (0..n)
            .map(|i| 50.0 + 2.0 * x[(i, 0)] - x[(i, 1)] + ((i % 7) as f64 - 3.0) * 0.01)
            .collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn folds_cover_all_samples_once() {
        let data = ds(103);
        let report = kfold(&data, 5, 1, |t, _| LinearRegression::fit(t)).unwrap();
        assert_eq!(report.per_partition.len(), 5);
        assert!(report.test_mpe < 1.0, "{}", report.test_mpe);
    }

    #[test]
    fn agrees_with_random_subsampling_on_stable_data() {
        let data = ds(200);
        let kf = kfold(&data, 10, 3, |t, _| LinearRegression::fit(t)).unwrap();
        let rs = crate::validate::validate(
            &data,
            &crate::validate::ValidationConfig {
                partitions: 10,
                ..Default::default()
            },
            |t, _| LinearRegression::fit(t),
        )
        .unwrap();
        assert!(
            (kf.test_mpe - rs.test_mpe).abs() < 0.5,
            "{} vs {}",
            kf.test_mpe,
            rs.test_mpe
        );
    }

    #[test]
    fn rejects_degenerate_k() {
        let data = ds(20);
        assert!(kfold(&data, 1, 0, |t, _| LinearRegression::fit(t)).is_err());
        assert!(kfold(&data, 21, 0, |t, _| LinearRegression::fit(t)).is_err());
    }

    #[test]
    fn deterministic() {
        let data = ds(60);
        let a = kfold(&data, 4, 9, |t, _| LinearRegression::fit(t)).unwrap();
        let b = kfold(&data, 4, 9, |t, _| LinearRegression::fit(t)).unwrap();
        assert_eq!(a.test_mpe, b.test_mpe);
    }
}
