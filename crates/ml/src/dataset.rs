//! Supervised regression datasets and seeded splitting.

use crate::rng::derive_seed;
use crate::{MlError, Result};
use coloc_linalg::Mat;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A supervised regression dataset: one row of `x` per sample, one target in
/// `y` per row.
#[derive(Clone, Debug)]
pub struct Dataset {
    x: Mat,
    y: Vec<f64>,
}

impl Dataset {
    /// Build a dataset; `x.rows()` must equal `y.len()` and both must be
    /// non-empty and finite.
    pub fn new(x: Mat, y: Vec<f64>) -> Result<Dataset> {
        if x.rows() != y.len() {
            return Err(MlError::BadDataset(format!(
                "{} feature rows but {} targets",
                x.rows(),
                y.len()
            )));
        }
        if x.rows() == 0 {
            return Err(MlError::BadDataset("empty dataset".into()));
        }
        if !x.is_finite() || y.iter().any(|v| !v.is_finite()) {
            return Err(MlError::BadDataset("non-finite values".into()));
        }
        Ok(Dataset { x, y })
    }

    /// Build from per-sample feature vectors.
    pub fn from_samples(samples: &[(Vec<f64>, f64)]) -> Result<Dataset> {
        let rows: Vec<Vec<f64>> = samples.iter().map(|(f, _)| f.clone()).collect();
        let y = samples.iter().map(|(_, t)| *t).collect();
        let x = Mat::from_rows(&rows).map_err(MlError::Linalg)?;
        Dataset::new(x, y)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when there are no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features per sample.
    pub fn num_features(&self) -> usize {
        self.x.cols()
    }

    /// The feature matrix.
    pub fn x(&self) -> &Mat {
        &self.x
    }

    /// The target vector.
    pub fn y(&self) -> &[f64] {
        &self.y
    }

    /// Feature row for sample `i`.
    pub fn sample(&self, i: usize) -> (&[f64], f64) {
        (self.x.row(i), self.y[i])
    }

    /// Restrict to a subset of samples by index (repeats allowed).
    pub fn select(&self, idx: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(idx),
            y: idx.iter().map(|&i| self.y[i]).collect(),
        }
    }

    /// Restrict to a subset of feature columns, in the given order.
    pub fn select_features(&self, cols: &[usize]) -> Dataset {
        let x = Mat::from_fn(self.x.rows(), cols.len(), |i, j| self.x[(i, cols[j])]);
        Dataset {
            x,
            y: self.y.clone(),
        }
    }

    /// Split into `(train, test)` with `test_fraction` of samples withheld,
    /// shuffled deterministically by `(seed, partition)`.
    ///
    /// This is the paper's repeated random sub-sampling scheme (§IV-B4):
    /// call with `partition = 0..100` to produce the hundred partitions.
    /// Guarantees at least one sample on each side.
    pub fn split(&self, test_fraction: f64, seed: u64, partition: u64) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&test_fraction),
            "test_fraction must be in [0, 1), got {test_fraction}"
        );
        let n = self.len();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(seed, partition));
        idx.shuffle(&mut rng);
        let n_test = ((n as f64 * test_fraction).round() as usize)
            .clamp(usize::from(n > 1), n.saturating_sub(1));
        let (test_idx, train_idx) = idx.split_at(n_test);
        (self.select(train_idx), self.select(test_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, k: usize) -> Dataset {
        let x = Mat::from_fn(n, k, |i, j| (i * k + j) as f64);
        let y = (0..n).map(|i| i as f64).collect();
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let x = Mat::zeros(3, 2);
        assert!(matches!(
            Dataset::new(x, vec![1.0; 4]),
            Err(MlError::BadDataset(_))
        ));
    }

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(Dataset::new(Mat::zeros(0, 2), vec![]).is_err());
        let x = Mat::zeros(1, 1);
        assert!(Dataset::new(x, vec![f64::NAN]).is_err());
    }

    #[test]
    fn from_samples_roundtrip() {
        let ds = Dataset::from_samples(&[(vec![1.0, 2.0], 3.0), (vec![4.0, 5.0], 6.0)]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.num_features(), 2);
        assert_eq!(ds.sample(1), (&[4.0, 5.0][..], 6.0));
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let ds = toy(100, 3);
        let (tr1, te1) = ds.split(0.3, 7, 0);
        let (tr2, te2) = ds.split(0.3, 7, 0);
        assert_eq!(tr1.y(), tr2.y());
        assert_eq!(te1.y(), te2.y());
        assert_eq!(tr1.len(), 70);
        assert_eq!(te1.len(), 30);
        // Disjoint: targets are unique sample ids here.
        let mut all: Vec<f64> = tr1.y().iter().chain(te1.y()).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn different_partitions_differ() {
        let ds = toy(50, 2);
        let (_, te_a) = ds.split(0.3, 7, 0);
        let (_, te_b) = ds.split(0.3, 7, 1);
        assert_ne!(te_a.y(), te_b.y());
    }

    #[test]
    fn split_never_empties_either_side() {
        let ds = toy(2, 1);
        let (tr, te) = ds.split(0.9, 1, 0);
        assert!(!tr.is_empty());
        assert!(!te.is_empty());
        let (tr, te) = ds.split(0.01, 1, 0);
        assert!(!tr.is_empty());
        assert!(!te.is_empty());
    }

    #[test]
    fn select_features_reorders() {
        let ds = toy(3, 3);
        let sub = ds.select_features(&[2, 0]);
        assert_eq!(sub.num_features(), 2);
        assert_eq!(sub.x().row(1), &[5.0, 3.0]);
    }
}
