//! Deterministic work-stealing fan-out.
//!
//! The validation and sweep layers both run many independent, *unevenly
//! priced* tasks: training partitions whose cost depends on the split, and
//! co-location scenarios whose segment count varies by an order of
//! magnitude with the workload mix. Static chunking (`chunks_mut` over a
//! pre-split range) strands whole chunks on one worker when costs skew;
//! here workers instead pull the next index from a shared atomic cursor,
//! so load balance is automatic and the idle tail is at most one task per
//! worker.
//!
//! Determinism: each task is keyed by its index, every worker tags results
//! with the index it pulled, and the merged output is sorted back into
//! index order. The values produced are whatever `f(i)` returns — bit-wise
//! independent of thread count or scheduling, provided `f` itself is a
//! pure function of `i`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a requested worker count: `0` means one per available CPU, and
/// the count is clamped to the task count (never below 1).
pub fn resolve_threads(requested: usize, tasks: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        requested
    };
    t.clamp(1, tasks.max(1))
}

/// Claim granularity for the shared cursor, sized so each worker makes
/// `O(chunks-per-worker)` atomic RMW operations instead of one per task.
///
/// On small plans (a few hundred tasks of tens of microseconds each) the
/// per-task `fetch_add` was measurable: every claim is a contended RMW
/// that bounces the cursor's cache line across workers, and on an
/// oversubscribed host each bounce can cost a context switch. Claiming a
/// small batch amortizes that while keeping the idle tail bounded at one
/// batch per worker. The batch is capped so skewed task costs still
/// balance: with `n / (threads * CHUNKS_PER_WORKER)` tasks per claim,
/// every worker gets ~`CHUNKS_PER_WORKER` steals' worth of re-balancing
/// opportunities.
const CHUNKS_PER_WORKER: usize = 8;

/// Run `f(0..n)` across `threads` workers with work stealing and return
/// the results in index order.
///
/// Workers claim contiguous index batches from a shared atomic cursor
/// (batch size `n / (threads * 8)`, min 1), which bounds cursor
/// contention on small plans without giving up dynamic load balance.
///
/// `threads == 0` uses one worker per available CPU. With one worker (or
/// `n <= 1`) the loop runs inline on the calling thread — no spawn cost,
/// same results.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads, n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    let batch = (n / (threads * CHUNKS_PER_WORKER)).max(1);
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    let mut acc: Vec<(usize, T)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(batch, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + batch).min(n) {
                            acc.push((i, f(i)));
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scope failed");

    debug_assert_eq!(tagged.len(), n, "every index must be executed exactly once");
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_index_order() {
        let out = run_indexed(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let baseline = run_indexed(64, 1, |i| (i as f64).sqrt().sin());
        for threads in [2, 3, 8] {
            let out = run_indexed(64, threads, |i| (i as f64).sqrt().sin());
            assert_eq!(out, baseline, "threads = {threads}");
        }
    }

    #[test]
    fn skewed_costs_fill_every_slot() {
        // Task 0 dwarfs the rest: under static chunking its whole chunk
        // would lag; stealing lets other workers drain the tail.
        let done = AtomicUsize::new(0);
        let out = run_indexed(33, 4, |i| {
            let spins = if i == 0 { 2_000_000 } else { 50 };
            let mut acc = 0u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            done.fetch_add(1, Ordering::Relaxed);
            (i, acc)
        });
        assert_eq!(done.load(Ordering::Relaxed), 33);
        assert_eq!(out.len(), 33);
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn zero_and_one_tasks() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
        assert_eq!(run_indexed(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(resolve_threads(0, 1000) >= 1);
        assert_eq!(resolve_threads(16, 3), 3);
        assert_eq!(resolve_threads(2, 1000), 2);
        let out = run_indexed(10, 0, |i| i);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }
}
