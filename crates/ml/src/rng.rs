//! Deterministic seed derivation.
//!
//! Every stochastic component in the workspace (noise injection, network
//! initialization, bootstrap partitions, workload streams) derives its RNG
//! from a single experiment seed through [`derive_seed`], so independent
//! components never share a stream and every experiment replays
//! bit-identically.

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Derive an independent stream seed from a base seed and a stream label.
///
/// Different `stream` values yield statistically independent seeds; the
/// same pair always yields the same seed.
#[inline]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    splitmix64(base ^ splitmix64(stream.wrapping_mul(0xA24BAED4963EE407)))
}

/// Derive a seed from a base seed and a string label (e.g. an application
/// name), for call sites where numeric stream ids would be error-prone.
pub fn derive_seed_str(base: u64, label: &str) -> u64 {
    // FNV-1a over the label, then mix with the base.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    derive_seed(base, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        assert_eq!(
            derive_seed_str(42, "canneal"),
            derive_seed_str(42, "canneal")
        );
    }

    #[test]
    fn streams_differ() {
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
        assert_ne!(derive_seed_str(42, "cg"), derive_seed_str(42, "ep"));
    }

    #[test]
    fn splitmix_avalanche() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = splitmix64(0x1234_5678);
        let b = splitmix64(0x1234_5679);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "only {flipped} bits flipped");
    }

    #[test]
    fn zero_label_not_degenerate() {
        assert_ne!(derive_seed(0, 0), 0);
        assert_ne!(derive_seed_str(0, ""), 0);
    }
}
