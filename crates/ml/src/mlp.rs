//! Single-hidden-layer perceptron trained with scaled conjugate gradient.
//!
//! The paper (§III-D) uses neural networks of 10–20 hidden nodes, with the
//! feature values as input neurons and the predicted co-located execution
//! time as output, trained with a scaled conjugate gradient method. This is
//! that network: `tanh` hidden units, a linear output unit, full-batch mean
//! squared error with a small L2 penalty, optimized by [`crate::scg`].
//!
//! Inputs and targets are z-score standardized internally (fit-time
//! statistics are stored in the model), so callers always work in raw
//! feature/target units.

use crate::rng::derive_seed;
use crate::scaler::Standardizer;
use crate::scg::{self, Objective, ScgConfig};
use crate::{Dataset, MlError, Result};
use coloc_linalg::Mat;
use rand::Rng as _;
use rand::SeedableRng;

/// Hyperparameters for [`Mlp::fit`].
#[derive(Clone, Debug)]
pub struct MlpConfig {
    /// Hidden-layer width. The paper varies this from 10 to 20 with the
    /// size of the feature set; [`MlpConfig::for_features`] reproduces that
    /// scaling.
    pub hidden: usize,
    /// L2 weight penalty (biases unpenalized).
    pub l2: f64,
    /// SCG iteration cap per restart.
    pub max_iters: usize,
    /// Independent random initializations; the best final training loss
    /// wins. Guards against poor local minima.
    pub restarts: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: 12,
            l2: 1e-4,
            max_iters: 400,
            restarts: 2,
            seed: 1,
        }
    }
}

impl MlpConfig {
    /// The paper's sizing rule: 10 hidden nodes for the smallest feature
    /// set, growing to 20 for the largest (8-feature) set.
    pub fn for_features(num_features: usize, seed: u64) -> MlpConfig {
        let hidden = (10 + num_features.saturating_sub(1) * 10 / 7).min(20);
        MlpConfig {
            hidden,
            seed,
            ..Default::default()
        }
    }
}

/// A trained network.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Mlp {
    inputs: usize,
    hidden: usize,
    /// Flat parameter vector: `[W1 (h×n) | b1 (h) | w2 (h) | b2 (1)]`.
    params: Vec<f64>,
    x_scaler: Standardizer,
    y_scaler: Standardizer,
    /// Final training loss (standardized units), for diagnostics.
    train_loss: f64,
}

fn param_count(inputs: usize, hidden: usize) -> usize {
    hidden * inputs + hidden + hidden + 1
}

/// Forward pass in standardized space; `act` receives hidden activations.
fn forward(params: &[f64], inputs: usize, hidden: usize, x: &[f64], act: &mut [f64]) -> f64 {
    let (w1, rest) = params.split_at(hidden * inputs);
    let (b1, rest) = rest.split_at(hidden);
    let (w2, b2) = rest.split_at(hidden);
    for j in 0..hidden {
        let row = &w1[j * inputs..(j + 1) * inputs];
        let z = coloc_linalg::vecops::dot(row, x) + b1[j];
        act[j] = z.tanh();
    }
    coloc_linalg::vecops::dot(w2, act) + b2[0]
}

/// Full-batch MSE + L2 objective over a standardized dataset.
struct MlpObjective<'a> {
    x: &'a Mat,
    y: &'a [f64],
    inputs: usize,
    hidden: usize,
    l2: f64,
}

impl Objective for MlpObjective<'_> {
    fn dim(&self) -> usize {
        param_count(self.inputs, self.hidden)
    }

    fn value(&self, w: &[f64]) -> f64 {
        let m = self.y.len() as f64;
        let mut act = vec![0.0; self.hidden];
        let mut sse = 0.0;
        for (row, &t) in self.x.rows_iter().zip(self.y) {
            let out = forward(w, self.inputs, self.hidden, row, &mut act);
            sse += (out - t).powi(2);
        }
        let weights_only = self.hidden * self.inputs + self.hidden + self.hidden;
        let mut l2 = 0.0;
        for (i, wi) in w.iter().enumerate() {
            // Penalize W1 and w2; skip the two bias blocks.
            let is_b1 =
                (self.hidden * self.inputs..self.hidden * self.inputs + self.hidden).contains(&i);
            if !is_b1 && i < weights_only {
                l2 += wi * wi;
            }
        }
        0.5 * sse / m + 0.5 * self.l2 * l2
    }

    fn gradient(&self, w: &[f64], grad: &mut [f64]) {
        let (inputs, hidden) = (self.inputs, self.hidden);
        let m = self.y.len() as f64;
        grad.fill(0.0);
        let (w1, rest) = w.split_at(hidden * inputs);
        let (_b1, rest) = rest.split_at(hidden);
        let (w2, _b2) = rest.split_at(hidden);

        let w1_off = 0;
        let b1_off = hidden * inputs;
        let w2_off = b1_off + hidden;
        let b2_off = w2_off + hidden;

        let mut act = vec![0.0; hidden];
        for (row, &t) in self.x.rows_iter().zip(self.y) {
            let out = forward(w, inputs, hidden, row, &mut act);
            let e = (out - t) / m;
            grad[b2_off] += e;
            for j in 0..hidden {
                grad[w2_off + j] += e * act[j];
                let dh = e * w2[j] * (1.0 - act[j] * act[j]);
                grad[b1_off + j] += dh;
                let grow = &mut grad[w1_off + j * inputs..w1_off + (j + 1) * inputs];
                for (g, &xi) in grow.iter_mut().zip(row) {
                    *g += dh * xi;
                }
            }
        }
        if self.l2 > 0.0 {
            for i in 0..hidden * inputs {
                grad[i] += self.l2 * w1[i];
            }
            for j in 0..hidden {
                grad[w2_off + j] += self.l2 * w2[j];
            }
        }
    }
}

impl Mlp {
    /// Train on `data` with the given configuration.
    pub fn fit(data: &Dataset, cfg: &MlpConfig) -> Result<Mlp> {
        if cfg.hidden == 0 {
            return Err(MlError::BadDataset("hidden layer must be non-empty".into()));
        }
        if data.len() < 2 {
            return Err(MlError::BadDataset("need at least 2 samples".into()));
        }
        let inputs = data.num_features();
        let x_scaler = Standardizer::fit(data.x());
        let y_scaler = Standardizer::fit_vec(data.y());
        let zx = x_scaler.transform(data.x());
        let zy: Vec<f64> = data
            .y()
            .iter()
            .map(|&v| y_scaler.transform_scalar(v))
            .collect();

        let obj = MlpObjective {
            x: &zx,
            y: &zy,
            inputs,
            hidden: cfg.hidden,
            l2: cfg.l2,
        };
        let scg_cfg = ScgConfig {
            max_iters: cfg.max_iters,
            ..Default::default()
        };

        let mut best: Option<(f64, Vec<f64>)> = None;
        for restart in 0..cfg.restarts.max(1) {
            let mut w = init_params(inputs, cfg.hidden, derive_seed(cfg.seed, restart as u64));
            let report = scg::minimize(&obj, &mut w, &scg_cfg);
            if report.diverged || !report.value.is_finite() {
                continue;
            }
            if best.as_ref().is_none_or(|(v, _)| report.value < *v) {
                best = Some((report.value, w));
            }
        }
        let (train_loss, params) = best.ok_or(MlError::NoConvergence {
            iterations: cfg.max_iters,
            grad_norm: f64::NAN,
        })?;

        Ok(Mlp {
            inputs,
            hidden: cfg.hidden,
            params,
            x_scaler,
            y_scaler,
            train_loss,
        })
    }

    /// Predict the target for one raw feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.inputs,
            "feature arity mismatch: model has {}, got {}",
            self.inputs,
            features.len()
        );
        let mut z = features.to_vec();
        self.x_scaler.transform_row(&mut z);
        let mut act = vec![0.0; self.hidden];
        let out = forward(&self.params, self.inputs, self.hidden, &z, &mut act);
        self.y_scaler.inverse_scalar(out)
    }

    /// Predict for every row of a dataset.
    pub fn predict_all(&self, data: &Dataset) -> Vec<f64> {
        (0..data.len())
            .map(|i| self.predict(data.sample(i).0))
            .collect()
    }

    /// Hidden-layer width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Final training loss in standardized units (½·MSE + L2 term).
    pub fn train_loss(&self) -> f64 {
        self.train_loss
    }
}

/// Xavier/Glorot-style uniform initialization.
fn init_params(inputs: usize, hidden: usize, seed: u64) -> Vec<f64> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = param_count(inputs, hidden);
    let mut w = vec![0.0; n];
    let limit1 = (6.0 / (inputs + hidden) as f64).sqrt();
    let limit2 = (6.0 / (hidden + 1) as f64).sqrt();
    let w2_off = hidden * inputs + hidden;
    for (i, wi) in w.iter_mut().enumerate() {
        if i < hidden * inputs {
            *wi = rng.gen_range(-limit1..limit1);
        } else if i < w2_off {
            *wi = 0.0; // b1
        } else if i < w2_off + hidden {
            *wi = rng.gen_range(-limit2..limit2);
        } else {
            *wi = 0.0; // b2
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    /// Numerical-vs-analytic gradient check — the canonical backprop test.
    #[test]
    fn gradient_matches_finite_differences() {
        let x = Mat::from_fn(7, 3, |i, j| ((i * 3 + j) as f64 * 0.7).sin());
        let y: Vec<f64> = (0..7).map(|i| (i as f64 * 0.3).cos()).collect();
        let obj = MlpObjective {
            x: &x,
            y: &y,
            inputs: 3,
            hidden: 4,
            l2: 1e-3,
        };
        let w = init_params(3, 4, 99);
        let mut analytic = vec![0.0; w.len()];
        obj.gradient(&w, &mut analytic);
        let eps = 1e-6;
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp[i] += eps;
            let mut wm = w.clone();
            wm[i] -= eps;
            let numeric = (obj.value(&wp) - obj.value(&wm)) / (2.0 * eps);
            assert!(
                (numeric - analytic[i]).abs() < 1e-5,
                "param {i}: numeric {numeric} vs analytic {}",
                analytic[i]
            );
        }
    }

    #[test]
    fn learns_linear_function() {
        let x = Mat::from_fn(60, 2, |i, j| ((i + 1) as f64 * (j + 1) as f64 * 0.13).sin());
        let y: Vec<f64> = (0..60).map(|i| 2.0 * x[(i, 0)] - x[(i, 1)] + 5.0).collect();
        let ds = Dataset::new(x, y).unwrap();
        let mlp = Mlp::fit(
            &ds,
            &MlpConfig {
                hidden: 6,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let preds = mlp.predict_all(&ds);
        assert!(
            metrics::rmse(&preds, ds.y()) < 0.05,
            "rmse {}",
            metrics::rmse(&preds, ds.y())
        );
    }

    #[test]
    fn learns_nonlinear_function_better_than_linear_model() {
        // y = x0² + saturating term — the shape contention curves take.
        let x = Mat::from_fn(120, 2, |i, j| {
            let t = i as f64 / 120.0;
            if j == 0 {
                t * 4.0 - 2.0
            } else {
                (t * 12.9898).sin() * 2.0
            }
        });
        let y: Vec<f64> = (0..120)
            .map(|i| x[(i, 0)].powi(2) + 1.0 / (1.0 + (-3.0 * x[(i, 1)]).exp()))
            .collect();
        let ds = Dataset::new(x, y).unwrap();

        let mlp = Mlp::fit(
            &ds,
            &MlpConfig {
                hidden: 12,
                seed: 5,
                ..Default::default()
            },
        )
        .unwrap();
        let lin = crate::LinearRegression::fit(&ds).unwrap();

        let mlp_rmse = metrics::rmse(&mlp.predict_all(&ds), ds.y());
        let lin_rmse = metrics::rmse(&lin.predict_all(&ds), ds.y());
        assert!(
            mlp_rmse < lin_rmse * 0.3,
            "mlp {mlp_rmse} should beat linear {lin_rmse} by >3x"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let x = Mat::from_fn(30, 2, |i, j| ((i * 2 + j) as f64).sin());
        let y: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ds = Dataset::new(x, y).unwrap();
        let cfg = MlpConfig {
            hidden: 8,
            seed: 42,
            ..Default::default()
        };
        let a = Mlp::fit(&ds, &cfg).unwrap();
        let b = Mlp::fit(&ds, &cfg).unwrap();
        assert_eq!(a.predict(&[0.5, -0.5]), b.predict(&[0.5, -0.5]));
    }

    #[test]
    fn config_sizing_matches_paper_range() {
        // 1 feature -> 10 nodes; 8 features -> 20 nodes; monotone between.
        assert_eq!(MlpConfig::for_features(1, 0).hidden, 10);
        assert_eq!(MlpConfig::for_features(8, 0).hidden, 20);
        let mut prev = 0;
        for n in 1..=8 {
            let h = MlpConfig::for_features(n, 0).hidden;
            assert!((10..=20).contains(&h));
            assert!(h >= prev);
            prev = h;
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        let ds = Dataset::from_samples(&[(vec![1.0], 1.0), (vec![2.0], 2.0)]).unwrap();
        assert!(Mlp::fit(
            &ds,
            &MlpConfig {
                hidden: 0,
                ..Default::default()
            }
        )
        .is_err());
        let tiny = Dataset::from_samples(&[(vec![1.0], 1.0)]).unwrap();
        assert!(Mlp::fit(&tiny, &MlpConfig::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn predict_checks_arity() {
        let ds = Dataset::from_samples(&[(vec![1.0, 2.0], 1.0), (vec![2.0, 1.0], 2.0)]).unwrap();
        let mlp = Mlp::fit(
            &ds,
            &MlpConfig {
                hidden: 2,
                max_iters: 5,
                ..Default::default()
            },
        )
        .unwrap();
        mlp.predict(&[1.0]);
    }
}
