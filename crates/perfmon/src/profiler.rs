//! The flat profiler: one low-overhead counter sample per run.
//!
//! Mirrors HPCToolkit's `hpcrun-flat` (paper §IV-A2): attach an event set,
//! run the application to completion (alone or co-located), read the
//! counters once. The paper stresses that (a) the profiler must be
//! low-overhead and (b) flat counts lose temporal information — they are
//! averages over the run (§IV-A3). Both properties hold here by
//! construction.

use crate::events::EventSet;
use crate::metrics::DerivedMetrics;
use crate::preset::Preset;
use crate::{PerfmonError, Result};
use coloc_machine::{CounterBlock, FaultPlan, Machine, RunOptions, RunnerGroup};
use std::collections::BTreeMap;

/// Anything that can execute a workload and report raw counter values for
/// the target. The simulator backend lives below; a PAPI/perf-event
/// backend on real hardware would implement the same trait.
pub trait CounterBackend {
    /// Execute the workload (index 0 = target) and return the target's raw
    /// value for each requested preset, plus the wall time in seconds.
    fn measure(
        &self,
        workload: &[RunnerGroup],
        events: &EventSet,
        opts: &RunOptions,
    ) -> Result<(BTreeMap<Preset, f64>, f64)>;
}

/// Map the target's counter block onto the requested presets.
fn read_presets(c: &CounterBlock, events: &EventSet) -> BTreeMap<Preset, f64> {
    let mut values = BTreeMap::new();
    for &p in events.presets() {
        let v = match p {
            Preset::TotIns => c.instructions,
            Preset::TotCyc => c.cycles,
            Preset::LlcTca => c.llc_accesses,
            Preset::LlcTcm => c.llc_misses,
        };
        values.insert(p, v);
    }
    values
}

impl CounterBackend for Machine {
    fn measure(
        &self,
        workload: &[RunnerGroup],
        events: &EventSet,
        opts: &RunOptions,
    ) -> Result<(BTreeMap<Preset, f64>, f64)> {
        let outcome = self
            .run(workload, opts)
            .map_err(|e| PerfmonError::Machine(e.to_string()))?;
        Ok((
            read_presets(&outcome.counters[0], events),
            outcome.wall_time_s,
        ))
    }
}

/// A [`CounterBackend`] that injects a [`FaultPlan`]'s measurement faults
/// into every sample before the profiler sees it — the same flaky PMU the
/// chaos sweeps model, exposed at the profiler layer so baseline-quality
/// code paths can be exercised under fault too. Injection is streamed by
/// `opts.seed`, so a given (plan, scenario) always faults identically.
pub struct FaultyBackend<'m> {
    machine: &'m Machine,
    plan: FaultPlan,
}

impl<'m> FaultyBackend<'m> {
    /// Wrap `machine` so every measurement passes through `plan`.
    pub fn new(machine: &'m Machine, plan: FaultPlan) -> FaultyBackend<'m> {
        FaultyBackend { machine, plan }
    }
}

impl CounterBackend for FaultyBackend<'_> {
    fn measure(
        &self,
        workload: &[RunnerGroup],
        events: &EventSet,
        opts: &RunOptions,
    ) -> Result<(BTreeMap<Preset, f64>, f64)> {
        let mut outcome = self
            .machine
            .run(workload, opts)
            .map_err(|e| PerfmonError::Machine(e.to_string()))?;
        self.plan.apply(opts.seed, &mut outcome);
        Ok((
            read_presets(&outcome.counters[0], events),
            outcome.wall_time_s,
        ))
    }
}

/// One completed flat measurement.
#[derive(Clone, Debug)]
pub struct FlatProfile {
    /// Raw counter values for the target application.
    pub counts: BTreeMap<Preset, f64>,
    /// Wall-clock time of the target, seconds.
    pub wall_time_s: f64,
}

impl FlatProfile {
    /// Raw value of one preset, if it was measured.
    pub fn value(&self, preset: Preset) -> Option<f64> {
        self.counts.get(&preset).copied()
    }

    /// Derived metrics; requires the methodology presets to be present
    /// (missing ones are treated as zero).
    pub fn derived(&self) -> DerivedMetrics {
        let get = |p| self.value(p).unwrap_or(0.0);
        DerivedMetrics::from_counts(
            get(Preset::TotIns),
            get(Preset::TotCyc),
            get(Preset::LlcTca),
            get(Preset::LlcTcm),
        )
    }
}

/// The `hpcrun-flat` equivalent: binds a backend and an event set, then
/// profiles workloads.
pub struct FlatProfiler<'a, B: CounterBackend> {
    backend: &'a B,
    events: EventSet,
}

impl<'a, B: CounterBackend> FlatProfiler<'a, B> {
    /// Create a profiler over `backend` measuring `events`.
    pub fn new(backend: &'a B, events: EventSet) -> FlatProfiler<'a, B> {
        FlatProfiler { backend, events }
    }

    /// Profile a full co-location workload; the profile describes the
    /// target (workload index 0).
    pub fn profile(&self, workload: &[RunnerGroup], opts: &RunOptions) -> Result<FlatProfile> {
        if self.events.is_empty() {
            return Err(PerfmonError::NothingMeasured);
        }
        let (counts, wall_time_s) = self.backend.measure(workload, &self.events, opts)?;
        Ok(FlatProfile {
            counts,
            wall_time_s,
        })
    }

    /// Profile an application running alone — the paper's single baseline
    /// measurement per application (§I: models "require only a single
    /// serial baseline measurement").
    pub fn profile_solo(
        &self,
        app: &coloc_machine::AppProfile,
        opts: &RunOptions,
    ) -> Result<FlatProfile> {
        self.profile(&[RunnerGroup::solo(app.clone())], opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coloc_machine::presets;

    fn test_app(name: &str) -> coloc_machine::AppProfile {
        use coloc_machine::cachesim::StackDistanceDist;
        coloc_machine::AppProfile::single_phase(
            name,
            20e9,
            coloc_machine::AppPhase {
                weight: 1.0,
                dist: StackDistanceDist::power_law(100_000, 0.6, 0.01),
                accesses_per_instr: 0.02,
                cpi_base: 0.9,
                mlp: 4.0,
            },
        )
    }

    #[test]
    fn solo_profile_reads_all_methodology_counters() {
        let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let profiler = FlatProfiler::new(&machine, EventSet::methodology());
        let p = profiler
            .profile_solo(&test_app("a"), &RunOptions::default())
            .unwrap();
        assert!(p.wall_time_s > 0.0);
        for preset in Preset::METHODOLOGY_SET {
            assert!(p.value(preset).unwrap() > 0.0, "{preset}");
        }
        let d = p.derived();
        assert!(d.memory_intensity > 0.0);
        assert!(d.ipc > 0.0);
    }

    #[test]
    fn partial_event_set_reads_only_requested() {
        let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let mut es = EventSet::new();
        es.add(Preset::TotIns).unwrap();
        let profiler = FlatProfiler::new(&machine, es);
        let p = profiler
            .profile_solo(&test_app("a"), &RunOptions::default())
            .unwrap();
        assert!(p.value(Preset::TotIns).is_some());
        assert!(p.value(Preset::LlcTcm).is_none());
    }

    #[test]
    fn empty_event_set_is_error() {
        let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let profiler = FlatProfiler::new(&machine, EventSet::new());
        let err = profiler.profile_solo(&test_app("a"), &RunOptions::default());
        assert_eq!(err.err(), Some(PerfmonError::NothingMeasured));
    }

    #[test]
    fn co_located_profile_shows_degradation() {
        let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let profiler = FlatProfiler::new(&machine, EventSet::methodology());
        let solo = profiler
            .profile_solo(&test_app("t"), &RunOptions::default())
            .unwrap();
        let wl = vec![
            RunnerGroup::solo(test_app("t")),
            RunnerGroup {
                app: test_app("agg"),
                count: 5,
            },
        ];
        let shared = profiler.profile(&wl, &RunOptions::default()).unwrap();
        assert!(shared.wall_time_s > solo.wall_time_s);
        // More misses under contention, same instruction count.
        assert!(shared.value(Preset::LlcTcm).unwrap() > solo.value(Preset::LlcTcm).unwrap());
        assert!(
            (shared.value(Preset::TotIns).unwrap() - solo.value(Preset::TotIns).unwrap()).abs()
                < 1.0
        );
    }

    #[test]
    fn faulty_backend_injects_deterministically() {
        let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let plan = FaultPlan {
            seed: 3,
            nan_reading_rate: 1.0,
            ..Default::default()
        };
        let faulty = FaultyBackend::new(&machine, plan);
        let profiler = FlatProfiler::new(&faulty, EventSet::methodology());
        let opts = RunOptions {
            seed: 17,
            ..Default::default()
        };
        let a = profiler.profile_solo(&test_app("t"), &opts).unwrap();
        let b = profiler.profile_solo(&test_app("t"), &opts).unwrap();
        assert!(a.wall_time_s.is_nan(), "nan fault at rate 1.0 must fire");
        assert_eq!(a.wall_time_s.to_bits(), b.wall_time_s.to_bits());
        // Counters themselves are untouched by the wall-time fault.
        let clean = FlatProfiler::new(&machine, EventSet::methodology())
            .profile_solo(&test_app("t"), &opts)
            .unwrap();
        assert_eq!(
            a.value(Preset::TotIns).unwrap().to_bits(),
            clean.value(Preset::TotIns).unwrap().to_bits()
        );
    }

    #[test]
    fn machine_errors_surface() {
        let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
        let profiler = FlatProfiler::new(&machine, EventSet::methodology());
        let wl = vec![RunnerGroup {
            app: test_app("t"),
            count: 99,
        }];
        assert!(matches!(
            profiler.profile(&wl, &RunOptions::default()),
            Err(PerfmonError::Machine(_))
        ));
    }
}
