//! Architecture-independent counter presets.
//!
//! PAPI defines >100 standard presets; the IPPS'15 methodology needs only
//! the four below (§IV-A3), but the enum is non-exhaustive by design so a
//! richer backend can extend it.

/// A portable hardware-event name, PAPI-style.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Preset {
    /// Instructions retired (PAPI_TOT_INS).
    TotIns,
    /// Core cycles (PAPI_TOT_CYC).
    TotCyc,
    /// Last-level cache accesses (PAPI_L3_TCA / PAPI_L2_TCA depending on
    /// architecture — "last-level" is resolved by the backend, paper
    /// §IV-A3).
    LlcTca,
    /// Last-level cache misses (PAPI_L3_TCM / PAPI_L2_TCM).
    LlcTcm,
}

impl Preset {
    /// The four presets the co-location methodology measures.
    pub const METHODOLOGY_SET: [Preset; 4] = [
        Preset::TotIns,
        Preset::TotCyc,
        Preset::LlcTca,
        Preset::LlcTcm,
    ];

    /// PAPI-style symbolic name.
    pub fn papi_name(&self) -> &'static str {
        match self {
            Preset::TotIns => "PAPI_TOT_INS",
            Preset::TotCyc => "PAPI_TOT_CYC",
            Preset::LlcTca => "PAPI_LLC_TCA",
            Preset::LlcTcm => "PAPI_LLC_TCM",
        }
    }

    /// Parse a PAPI-style name.
    pub fn from_papi_name(name: &str) -> Option<Preset> {
        match name {
            "PAPI_TOT_INS" => Some(Preset::TotIns),
            "PAPI_TOT_CYC" => Some(Preset::TotCyc),
            "PAPI_LLC_TCA" | "PAPI_L3_TCA" | "PAPI_L2_TCA" => Some(Preset::LlcTca),
            "PAPI_LLC_TCM" | "PAPI_L3_TCM" | "PAPI_L2_TCM" => Some(Preset::LlcTcm),
            _ => None,
        }
    }
}

impl std::fmt::Display for Preset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.papi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for p in Preset::METHODOLOGY_SET {
            assert_eq!(Preset::from_papi_name(p.papi_name()), Some(p));
        }
    }

    #[test]
    fn architecture_specific_aliases_resolve() {
        assert_eq!(Preset::from_papi_name("PAPI_L3_TCM"), Some(Preset::LlcTcm));
        assert_eq!(Preset::from_papi_name("PAPI_L2_TCM"), Some(Preset::LlcTcm));
        assert_eq!(Preset::from_papi_name("PAPI_L3_TCA"), Some(Preset::LlcTca));
    }

    #[test]
    fn unknown_name_is_none() {
        assert_eq!(Preset::from_papi_name("PAPI_FP_OPS"), None);
    }
}
