//! Derived metrics from raw counter values (paper §IV-A3).

/// The derived quantities the prediction models consume, computed from one
/// flat counter sample.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DerivedMetrics {
    /// Memory intensity: LLC misses per instruction. "Gives an idea of the
    /// rate at which an application needs to go to main memory" (§IV-A3).
    pub memory_intensity: f64,
    /// LLC misses per LLC access (the CM/CA feature of Table I).
    pub miss_ratio: f64,
    /// LLC accesses per instruction (the CA/INS feature of Table I).
    pub access_ratio: f64,
    /// Instructions per cycle, a general health indicator.
    pub ipc: f64,
}

impl DerivedMetrics {
    /// Compute from raw counts. Zero denominators yield zero (an app that
    /// never touches the LLC has zero intensity, not NaN).
    pub fn from_counts(instructions: f64, cycles: f64, tca: f64, tcm: f64) -> DerivedMetrics {
        let safe = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
        DerivedMetrics {
            memory_intensity: safe(tcm, instructions),
            miss_ratio: safe(tcm, tca),
            access_ratio: safe(tca, instructions),
            ipc: safe(instructions, cycles),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let m = DerivedMetrics::from_counts(1000.0, 2000.0, 100.0, 25.0);
        assert!((m.memory_intensity - 0.025).abs() < 1e-12);
        assert!((m.miss_ratio - 0.25).abs() < 1e-12);
        assert!((m.access_ratio - 0.1).abs() < 1e-12);
        assert!((m.ipc - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_are_zero() {
        let m = DerivedMetrics::from_counts(0.0, 0.0, 0.0, 0.0);
        assert_eq!(m.memory_intensity, 0.0);
        assert_eq!(m.miss_ratio, 0.0);
        assert_eq!(m.access_ratio, 0.0);
        assert_eq!(m.ipc, 0.0);
    }

    #[test]
    fn identity_consistency() {
        // memory_intensity == miss_ratio × access_ratio
        let m = DerivedMetrics::from_counts(1e9, 2e9, 3e7, 4e6);
        assert!((m.memory_intensity - m.miss_ratio * m.access_ratio).abs() < 1e-15);
    }
}
