//! Event sets: groups of presets measured together, PAPI-workflow style.

use crate::preset::Preset;
use crate::{PerfmonError, Result};

/// An ordered set of presets to measure in one profiling run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventSet {
    presets: Vec<Preset>,
}

impl EventSet {
    /// An empty event set.
    pub fn new() -> EventSet {
        EventSet {
            presets: Vec::new(),
        }
    }

    /// The standard four-counter set the methodology uses.
    pub fn methodology() -> EventSet {
        EventSet {
            presets: Preset::METHODOLOGY_SET.to_vec(),
        }
    }

    /// Add a preset; rejects duplicates (matching PAPI semantics).
    pub fn add(&mut self, preset: Preset) -> Result<()> {
        if self.presets.contains(&preset) {
            return Err(PerfmonError::DuplicatePreset(preset));
        }
        self.presets.push(preset);
        Ok(())
    }

    /// Remove a preset if present; returns whether it was there.
    pub fn remove(&mut self, preset: Preset) -> bool {
        let before = self.presets.len();
        self.presets.retain(|&p| p != preset);
        self.presets.len() != before
    }

    /// Presets in insertion order.
    pub fn presets(&self) -> &[Preset] {
        &self.presets
    }

    /// Number of presets.
    pub fn len(&self) -> usize {
        self.presets.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.presets.is_empty()
    }

    /// Whether the set contains a preset.
    pub fn contains(&self, preset: Preset) -> bool {
        self.presets.contains(&preset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_remove() {
        let mut es = EventSet::new();
        assert!(es.is_empty());
        es.add(Preset::TotIns).unwrap();
        es.add(Preset::LlcTcm).unwrap();
        assert_eq!(es.len(), 2);
        assert!(es.contains(Preset::TotIns));
        assert!(es.remove(Preset::TotIns));
        assert!(!es.remove(Preset::TotIns));
        assert_eq!(es.len(), 1);
    }

    #[test]
    fn duplicates_rejected() {
        let mut es = EventSet::new();
        es.add(Preset::TotCyc).unwrap();
        assert_eq!(
            es.add(Preset::TotCyc),
            Err(PerfmonError::DuplicatePreset(Preset::TotCyc))
        );
    }

    #[test]
    fn methodology_set_has_all_four() {
        let es = EventSet::methodology();
        assert_eq!(es.len(), 4);
        for p in Preset::METHODOLOGY_SET {
            assert!(es.contains(p));
        }
    }
}
