//! # coloc-perfmon
//!
//! A portable performance-counter layer in the spirit of PAPI + HPCToolkit
//! (paper §IV-A2): the methodology deliberately refuses to touch
//! architecture-specific counter registers, going through a preset-based
//! API instead so it ports across microarchitectures. This crate is that
//! API for the `coloc` workspace.
//!
//! * [`preset::Preset`] — architecture-independent event names (a subset of
//!   PAPI's preset list sufficient for the methodology: total instructions,
//!   total cycles, LLC accesses, LLC misses).
//! * [`events::EventSet`] — a set of presets to measure together, mirroring
//!   PAPI's `EventSet` workflow (create → add events → start → read).
//! * [`profiler::FlatProfiler`] — the `hpcrun-flat` equivalent: run an
//!   application (solo or co-located) and return one flat sample of every
//!   requested counter, plus derived metrics.
//! * [`metrics::DerivedMetrics`] — memory intensity (TCM/INS), miss ratio
//!   (TCM/TCA) and access ratio (TCA/INS) — the paper's Table I inputs.
//!
//! The backend here is the `coloc-machine` simulator; the trait boundary
//! ([`profiler::CounterBackend`]) is where a perf-event/PAPI backend would
//! slot in on real hardware.

pub mod events;
pub mod metrics;
pub mod preset;
pub mod profiler;

pub use events::EventSet;
pub use metrics::DerivedMetrics;
pub use preset::Preset;
pub use profiler::{CounterBackend, FaultyBackend, FlatProfile, FlatProfiler};

/// Errors from the counter layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PerfmonError {
    /// The preset is not supported by the active backend.
    UnsupportedPreset(Preset),
    /// The same preset was added to an event set twice.
    DuplicatePreset(Preset),
    /// Reading before any measurement completed.
    NothingMeasured,
    /// The underlying machine run failed.
    Machine(String),
}

impl std::fmt::Display for PerfmonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerfmonError::UnsupportedPreset(p) => write!(f, "unsupported preset {p}"),
            PerfmonError::DuplicatePreset(p) => write!(f, "preset {p} already in event set"),
            PerfmonError::NothingMeasured => write!(f, "no measurement has completed"),
            PerfmonError::Machine(s) => write!(f, "machine error: {s}"),
        }
    }
}

impl std::error::Error for PerfmonError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, PerfmonError>;
