//! `repro conformance` — the differential oracle and metamorphic law
//! suite, end to end.
//!
//! One seeded, deterministic demonstration of the conformance harness,
//! asserting its acceptance criteria as it goes: the checked-in corpus
//! replays clean, a generated-scenario sweep agrees with the naive
//! reference engine within 1e-9 relative on slowdown, and every
//! metamorphic law holds over a fresh batch of seeds.

use coloc_conformance::{all_laws, default_corpus_dir, differential_sweep, verify_dir};

/// Scenarios in the differential stage. Matches the test suite's floor.
const SWEEP_CASES: usize = 400;
const SWEEP_SEED: u64 = 0xC0_10C;

/// Run the whole conformance demonstration, printing each stage's
/// evidence.
pub fn run_conformance() {
    // ---- Stage 1: replay the checked-in corpus --------------------------
    let dir = default_corpus_dir();
    let report = verify_dir(&dir).expect("corpus directory must be readable");
    assert!(
        report.is_clean(),
        "corpus replay failures:\n{}",
        report.failures.join("\n")
    );
    assert!(
        report.total() >= 10,
        "corpus thinner than the seed set ({} cases)",
        report.total()
    );
    println!(
        "stage 1: corpus {} — {} cases replayed clean ({} differential, {} law)",
        dir.display(),
        report.total(),
        report.differential,
        report.law_checks
    );

    // ---- Stage 2: differential sweep against the naive reference --------
    match differential_sweep(SWEEP_SEED, SWEEP_CASES) {
        Ok(summary) => {
            assert!(summary.faulted > 0 && summary.budgeted > 0 && summary.solo > 0);
            assert!(summary.events > 0, "no event-schedule case generated");
            println!(
                "stage 2: {} generated scenarios agree with the reference engine \
                 ({} faulted, {} fp-budgeted, {} solo, {} event-scheduled; \
                 max slowdown gap {:.2e})",
                summary.cases,
                summary.faulted,
                summary.budgeted,
                summary.solo,
                summary.events,
                summary.max_slowdown_gap
            );
        }
        Err(failure) => panic!(
            "differential divergence:\n{}\n{}",
            failure.case.describe(),
            failure.detail
        ),
    }

    // ---- Stage 3: every metamorphic law over fresh seeds ----------------
    for law in all_laws() {
        for i in 0..law.cases_per_run() as u64 {
            if let Err(v) = law.check_seed(0x1A55 + i) {
                panic!("{v}");
            }
        }
        println!(
            "stage 3: law `{}` held over {} cases ({})",
            law.name(),
            law.cases_per_run(),
            law.provenance()
        );
    }

    println!("conformance: all stages passed");
}
