//! Ablation studies over the design choices DESIGN.md calls out.
//!
//! Each function returns printable rows; the `repro` binary exposes them
//! as `ablation-*` subcommands. They answer questions the paper raises but
//! does not quantify:
//!
//! * how much training data the models actually need (§IV-B3 claims the
//!   uniform sweep "minimizes the amount of training data"),
//! * how measurement noise limits attainable accuracy (§V-A's tight
//!   confidence intervals),
//! * how sensitive the network is to hidden-layer width (§III-D's
//!   "ten to twenty nodes"),
//! * whether homogeneous-only training generalizes to heterogeneous
//!   co-locations (§IV-B3's flexibility claim), and
//! * what accuracy the class-average mode (§IV-B1) retains.

use crate::cache;
use crate::figures::split_indices;
use coloc_ml::metrics::mpe;
use coloc_ml::rng::derive_seed;
use coloc_ml::validate::ValidationConfig;
use coloc_model::experiment::evaluate_model;
use coloc_model::{
    classavg::ClassAverager, FeatureSet, Lab, ModelKind, Predictor, Sample, Scenario, TrainingPlan,
};

fn quick_cfg() -> ValidationConfig {
    ValidationConfig {
        partitions: 10,
        test_fraction: 0.30,
        seed: crate::SEED,
        threads: 0,
    }
}

/// One `(x, linear MPE, NN MPE)` style row.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct AblationRow {
    /// Independent-variable label.
    pub x: String,
    /// Linear model (set C) test MPE, percent (NaN where not applicable).
    pub linear_mpe: f64,
    /// Neural-net (set F) test MPE, percent.
    pub nn_mpe: f64,
}

/// Training-set size: evaluate on progressively thinned 6-core sweeps.
pub fn train_size() -> Vec<AblationRow> {
    let lab = crate::lab_6core();
    let samples = cache::training_samples("e5649", &lab);
    [1usize, 2, 4, 8]
        .iter()
        .map(|&stride| {
            let sub: Vec<Sample> = samples.iter().step_by(stride).cloned().collect();
            let lin = evaluate_model(&sub, ModelKind::Linear, FeatureSet::C, &quick_cfg())
                .expect("linear eval");
            let nn = evaluate_model(&sub, ModelKind::NeuralNet, FeatureSet::F, &quick_cfg())
                .expect("nn eval");
            AblationRow {
                x: format!("{} samples", sub.len()),
                linear_mpe: lin.test_mpe,
                nn_mpe: nn.test_mpe,
            }
        })
        .collect()
}

/// Measurement-noise sensitivity: re-collect a small sweep at varying σ
/// and evaluate NN set F. The noise floor should show up directly in MPE.
pub fn noise() -> Vec<AblationRow> {
    [0.0, 0.004, 0.008, 0.016, 0.032]
        .iter()
        .map(|&sigma| {
            let lab = Lab::new(
                coloc_machine::presets::xeon_e5649(),
                coloc_workloads::standard(),
                crate::SEED,
            )
            .expect("valid preset")
            .with_noise(sigma);
            let plan = TrainingPlan {
                counts: vec![1, 3, 5],
                ..lab.paper_plan()
            }
            .thinned(2, 1);
            let samples = lab.collect(&plan).expect("sweep");
            let lin = evaluate_model(&samples, ModelKind::Linear, FeatureSet::C, &quick_cfg())
                .expect("linear eval");
            let nn = evaluate_model(&samples, ModelKind::NeuralNet, FeatureSet::F, &quick_cfg())
                .expect("nn eval");
            AblationRow {
                x: format!("sigma = {sigma:.3}"),
                linear_mpe: lin.test_mpe,
                nn_mpe: nn.test_mpe,
            }
        })
        .collect()
}

/// Hidden-layer width: fixed 70/30 splits, NN set F at various widths.
pub fn hidden_width() -> Vec<AblationRow> {
    let lab = crate::lab_6core();
    let samples = cache::training_samples("e5649", &lab);
    [5usize, 10, 15, 20, 30]
        .iter()
        .map(|&hidden| {
            let mut errs = Vec::new();
            for p in 0..5u64 {
                let (train_idx, test_idx) = split_indices(samples.len(), crate::SEED, 90 + p);
                let train: Vec<Sample> = train_idx.iter().map(|&i| samples[i].clone()).collect();
                let test: Vec<Sample> = test_idx.iter().map(|&i| samples[i].clone()).collect();
                let ds = coloc_model::samples_to_dataset(&train, FeatureSet::F).expect("ds");
                let cfg = coloc_ml::MlpConfig {
                    hidden,
                    seed: derive_seed(crate::SEED, 700 + p),
                    ..Default::default()
                };
                let mlp = coloc_ml::Mlp::fit(&ds, &cfg).expect("fit");
                let test_ds = coloc_model::samples_to_dataset(&test, FeatureSet::F).expect("ds");
                let preds = mlp.predict_all(&test_ds);
                errs.push(mpe(&preds, test_ds.y()));
            }
            AblationRow {
                x: format!("{hidden} hidden nodes"),
                linear_mpe: f64::NAN,
                nn_mpe: coloc_linalg::vecops::mean(&errs),
            }
        })
        .collect()
}

/// Heterogeneous generalization: models trained on the (homogeneous)
/// paper sweep, tested on mixed co-runner scenarios.
pub fn heterogeneous() -> Vec<AblationRow> {
    let lab = crate::lab_6core();
    let samples = cache::training_samples("e5649", &lab);
    let lin =
        Predictor::train(ModelKind::Linear, FeatureSet::C, &samples, crate::SEED).expect("linear");
    let nn =
        Predictor::train(ModelKind::NeuralNet, FeatureSet::F, &samples, crate::SEED).expect("nn");

    let mixes: Vec<(&str, Vec<(&str, usize)>)> = vec![
        ("canneal", vec![("cg", 2), ("ep", 2)]),
        ("canneal", vec![("cg", 1), ("sp", 2), ("ep", 2)]),
        ("ft", vec![("cg", 2), ("fluidanimate", 3)]),
        ("bodytrack", vec![("streamcluster", 2), ("sp", 2)]),
        ("mg", vec![("canneal", 2), ("ep", 3)]),
        ("ua", vec![("cg", 3), ("blackscholes", 2)]),
    ];
    let mut rows = Vec::new();
    let mut lin_pes = Vec::new();
    let mut nn_pes = Vec::new();
    for (target, co) in mixes {
        let sc = Scenario {
            target: target.into(),
            co_located: co.iter().map(|(n, c)| (n.to_string(), *c)).collect(),
            pstate: 0,
        };
        let actual = lab.run_scenario(&sc).expect("run");
        let f = lab.featurize(&sc).expect("featurize");
        let lp = 100.0 * ((lin.predict(&f) - actual) / actual).abs();
        let np = 100.0 * ((nn.predict(&f) - actual) / actual).abs();
        lin_pes.push(lp);
        nn_pes.push(np);
        rows.push(AblationRow {
            x: sc.label(),
            linear_mpe: lp,
            nn_mpe: np,
        });
    }
    rows.push(AblationRow {
        x: "MEAN over mixes".into(),
        linear_mpe: coloc_linalg::vecops::mean(&lin_pes),
        nn_mpe: coloc_linalg::vecops::mean(&nn_pes),
    });
    rows
}

/// Quadratic feature expansion: how much of the NN's advantage do cheap
/// interaction terms recover? Linear vs quadratic vs NN, all on set F.
pub fn quadratic() -> Vec<AblationRow> {
    let lab = crate::lab_6core();
    let samples = cache::training_samples("e5649", &lab);
    let cfg = quick_cfg();
    let mut rows = Vec::new();
    for kind in ModelKind::EXTENDED {
        let ev = evaluate_model(&samples, kind, FeatureSet::F, &cfg).expect("eval");
        rows.push(AblationRow {
            x: format!("{} (set F)", kind.label()),
            linear_mpe: f64::NAN,
            nn_mpe: ev.test_mpe,
        });
    }
    rows
}

/// Cache partitioning: re-measure the canneal-vs-cg ladder with the LLC
/// statically partitioned. The residual degradation is the pure
/// memory-bandwidth component — the paper's premise is that the *shared*
/// LLC accounts for a large share of interference.
pub fn partitioning() -> Vec<AblationRow> {
    use coloc_machine::{presets, Machine, RunOptions, RunnerGroup};
    let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
    let canneal = coloc_workloads::by_name("canneal").expect("canneal").app;
    let cg = coloc_workloads::by_name("cg").expect("cg").app;
    let solo = machine
        .run_solo(&canneal, &RunOptions::default())
        .expect("solo");
    [1usize, 3, 5]
        .iter()
        .map(|&n| {
            let wl = vec![
                RunnerGroup::solo(canneal.clone()),
                RunnerGroup {
                    app: cg.clone(),
                    count: n,
                },
            ];
            let shared = machine.run(&wl, &RunOptions::default()).expect("shared");
            let parts = machine
                .run(
                    &wl,
                    &RunOptions {
                        llc_partitioned: true,
                        ..Default::default()
                    },
                )
                .expect("partitioned");
            AblationRow {
                x: format!("{n}x cg: shared vs partitioned slowdown"),
                linear_mpe: shared.wall_time_s / solo.wall_time_s,
                nn_mpe: parts.wall_time_s / solo.wall_time_s,
            }
        })
        .collect()
}

/// Phase-detail claim (paper §I): applications have execution phases, but
/// "going into such a level of detail is not necessary to make accurate
/// predictions". The suite's `ft` and `bodytrack` are genuinely
/// multi-phase; if the claim holds in this reproduction, the NN-F model's
/// per-target error on them is comparable to single-phase applications
/// even though every feature is a whole-run average.
pub fn phases() -> Vec<AblationRow> {
    let lab = crate::lab_6core();
    let samples = cache::training_samples("e5649", &lab);
    let phase_count: std::collections::BTreeMap<&str, usize> = coloc_workloads::standard()
        .iter()
        .map(|b| (b.name, b.app.phases.len()))
        .collect();

    // Pool withheld percent errors per target over a few partitions.
    let mut by_app: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
    for p in 0..5u64 {
        let (train_idx, test_idx) = split_indices(samples.len(), crate::SEED, 300 + p);
        let train: Vec<Sample> = train_idx.iter().map(|&i| samples[i].clone()).collect();
        let nn = Predictor::train(
            ModelKind::NeuralNet,
            FeatureSet::F,
            &train,
            derive_seed(crate::SEED, 300 + p),
        )
        .expect("train");
        for &i in &test_idx {
            let s = &samples[i];
            let pe = 100.0 * ((nn.predict(&s.features) - s.actual_time_s) / s.actual_time_s).abs();
            by_app
                .entry(s.scenario.target.clone())
                .or_default()
                .push(pe);
        }
    }
    by_app
        .iter()
        .map(|(app, errs)| AblationRow {
            x: format!(
                "{app} ({} phase{})",
                phase_count[app.as_str()],
                if phase_count[app.as_str()] > 1 {
                    "s"
                } else {
                    ""
                }
            ),
            linear_mpe: f64::NAN,
            nn_mpe: coloc_linalg::vecops::mean(errs),
        })
        .collect()
}

/// Class-average featurization (paper §IV-B1) vs. exact features, NN set F
/// on withheld training scenarios.
pub fn class_average() -> Vec<AblationRow> {
    let lab = crate::lab_6core();
    let samples = cache::training_samples("e5649", &lab);
    let (train_idx, test_idx) = split_indices(samples.len(), crate::SEED, 41);
    let train: Vec<Sample> = train_idx.iter().map(|&i| samples[i].clone()).collect();
    let test: Vec<Sample> = test_idx.iter().map(|&i| samples[i].clone()).collect();
    let nn =
        Predictor::train(ModelKind::NeuralNet, FeatureSet::F, &train, crate::SEED).expect("nn");
    let averager = ClassAverager::from_lab(&lab);

    let actual: Vec<f64> = test.iter().map(|s| s.actual_time_s).collect();
    let exact_preds: Vec<f64> = test.iter().map(|s| nn.predict(&s.features)).collect();
    let avg_preds: Vec<f64> = test
        .iter()
        .map(|s| {
            let f = averager
                .featurize(&lab, &s.scenario)
                .expect("class featurize");
            nn.predict(&f)
        })
        .collect();
    vec![
        AblationRow {
            x: "exact features".into(),
            linear_mpe: f64::NAN,
            nn_mpe: mpe(&exact_preds, &actual),
        },
        AblationRow {
            x: "class-average features".into(),
            linear_mpe: f64::NAN,
            nn_mpe: mpe(&avg_preds, &actual),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cfg_matches_protocol_fractions() {
        let cfg = quick_cfg();
        assert_eq!(cfg.test_fraction, 0.30);
        assert!(cfg.partitions >= 5);
    }
}
