//! Generators for the paper's tables (I–VI).

use crate::cache;
use coloc_model::{Feature, FeatureSet, Lab, ModelKind, Predictor, Scenario};
use coloc_workloads::standard;

/// Table I: the eight model features (static content).
pub fn table1() -> Vec<(String, String)> {
    Feature::ALL
        .iter()
        .map(|f| (f.paper_name().to_string(), f.description().to_string()))
        .collect()
}

/// Table II: the six feature-set groups (static content).
pub fn table2() -> Vec<(String, String)> {
    FeatureSet::ALL
        .iter()
        .map(|s| {
            let names: Vec<&str> = s.features().iter().map(|f| f.paper_name()).collect();
            (s.label().to_string(), names.join(", "))
        })
        .collect()
}

/// One row of Table III.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Table3Row {
    /// Application name with suite tag, e.g. `cg (N)`.
    pub app: String,
    /// Measured baseline memory intensity on the 6-core machine.
    pub memory_intensity: f64,
    /// Documented memory-intensity class.
    pub class: String,
}

/// Table III: applications, measured baseline memory intensity, classes.
pub fn table3(lab: &Lab) -> Vec<Table3Row> {
    let db = lab.baselines();
    let mut rows: Vec<Table3Row> = standard()
        .iter()
        .map(|b| Table3Row {
            app: format!("{} ({})", b.name, b.suite.tag()),
            memory_intensity: db
                .get(b.name)
                .map(|x| x.memory_intensity)
                .unwrap_or(f64::NAN),
            class: b.class.label().to_string(),
        })
        .collect();
    rows.sort_by(|a, b| b.memory_intensity.partial_cmp(&a.memory_intensity).unwrap());
    rows
}

/// One row of Table IV.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Table4Row {
    /// Processor name.
    pub processor: String,
    /// Core count.
    pub cores: usize,
    /// L3 size in MiB.
    pub l3_mib: u64,
    /// Frequency range in GHz `(min, max)`.
    pub freq_range_ghz: (f64, f64),
}

/// Table IV: the multicore processors used for validation. The preset
/// registry also carries the fleet-only machines added for the placement
/// benchmark (DESIGN.md §15); the paper's table lists exactly the two
/// processors its accuracy results were validated on.
pub fn table4() -> Vec<Table4Row> {
    use coloc_machine::presets;
    [presets::xeon_e5649(), presets::xeon_e5_2697v2()]
        .into_iter()
        .map(|m| Table4Row {
            processor: m.name.clone(),
            cores: m.cores,
            l3_mib: m.llc_bytes >> 20,
            freq_range_ghz: (*m.pstates_ghz.last().expect("pstates"), m.pstates_ghz[0]),
        })
        .collect()
}

/// One row of Table V.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Table5Row {
    /// Processor name.
    pub processor: String,
    /// The six P-state frequencies swept, GHz.
    pub pstates_ghz: Vec<f64>,
    /// Number of target applications.
    pub num_targets: usize,
    /// The co-location applications.
    pub co_apps: Vec<String>,
    /// The homogeneous co-location counts swept.
    pub num_co_locations: Vec<usize>,
    /// Total training scenarios the plan produces.
    pub total_runs: usize,
}

/// Table V: the training-data collection setup per machine.
pub fn table5() -> Vec<Table5Row> {
    crate::labs()
        .into_iter()
        .map(|(_, lab)| {
            let plan = lab.paper_plan();
            Table5Row {
                processor: lab.machine().spec().name.clone(),
                pstates_ghz: lab.machine().spec().pstates_ghz.clone(),
                num_targets: plan.targets.len(),
                co_apps: plan.co_runners.clone(),
                num_co_locations: plan.counts.clone(),
                total_runs: plan.len(),
            }
        })
        .collect()
}

/// One row of Table VI.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Table6Row {
    /// Number of co-located `cg` instances.
    pub num_cg: usize,
    /// Measured canneal execution time, seconds.
    pub actual_s: f64,
    /// Execution time normalized to canneal's baseline.
    pub normalized: f64,
    /// Linear model (set F) percent error for this row.
    pub linear_f_pe: f64,
    /// Neural-network model (set F) percent error for this row.
    pub nn_f_pe: f64,
}

/// Table VI: canneal's degradation under 1..=11 co-located `cg` on the
/// 12-core machine, with set-F model prediction errors.
pub fn table6() -> (f64, Vec<Table6Row>) {
    let lab = crate::lab_12core();
    let samples = cache::training_samples("e5_2697v2", &lab);
    let linear = Predictor::train(ModelKind::Linear, FeatureSet::F, &samples, crate::SEED)
        .expect("train linear F");
    let nn = Predictor::train(ModelKind::NeuralNet, FeatureSet::F, &samples, crate::SEED)
        .expect("train NN F");

    let baseline = lab.baselines().get("canneal").expect("canneal").exec_time_s[0];
    let rows = (1..=11)
        .map(|n| {
            let sc = Scenario::homogeneous("canneal", "cg", n, 0);
            // The training sweep measured this exact scenario; reuse it.
            let actual = samples
                .iter()
                .find(|s| s.scenario == sc)
                .map(|s| s.actual_time_s)
                .unwrap_or_else(|| lab.run_scenario(&sc).expect("run"));
            let f = lab.featurize(&sc).expect("featurize");
            let pe = |pred: f64| 100.0 * ((pred - actual) / actual).abs();
            Table6Row {
                num_cg: n,
                actual_s: actual,
                normalized: actual / baseline,
                linear_f_pe: pe(linear.predict(&f)),
                nn_f_pe: pe(nn.predict(&f)),
            }
        })
        .collect();
    (baseline, rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_have_paper_shapes() {
        assert_eq!(table1().len(), 8);
        assert_eq!(table1()[0].0, "baseExTime");
        let t2 = table2();
        assert_eq!(t2.len(), 6);
        assert_eq!(t2[0], ("A".to_string(), "baseExTime".to_string()));
        let t4 = table4();
        assert_eq!(t4.len(), 2);
        assert_eq!(t4[0].cores, 6);
        assert_eq!(t4[1].l3_mib, 30);
        let t5 = table5();
        assert_eq!(t5[0].total_runs, 1320);
        assert_eq!(t5[1].total_runs, 2904);
        assert_eq!(t5[0].co_apps, vec!["cg", "sp", "fluidanimate", "ep"]);
    }

    #[test]
    fn table3_is_sorted_by_intensity() {
        let lab = crate::lab_6core();
        let rows = table3(&lab);
        assert_eq!(rows.len(), 11);
        for w in rows.windows(2) {
            assert!(w[0].memory_intensity >= w[1].memory_intensity);
        }
        assert!(rows[0].app.starts_with("cg"));
        assert_eq!(rows[0].class, "Class I");
        assert_eq!(rows[10].class, "Class IV");
    }
}
