//! `repro perf` — the tracked performance trajectory.
//!
//! Runs a pinned, seeded sweep on the 6-core lab and writes
//! `BENCH_<pr>.json` at the workspace root: scenarios/sec cold (engine)
//! and memoized (cache-served) at 1 and 8 worker threads, the per-stage
//! nanosecond breakdown from [`coloc_model::SweepStats`], and run-cache
//! traffic. The artifact is checked in, so every future PR regresses
//! against the committed `baseline_cold_1t_scen_per_sec` field: the CI
//! `perf` job fails when cold single-thread throughput drops more than
//! [`REGRESSION_TOLERANCE`] below it.
//!
//! The plan is fixed (same seed, same scenarios) so numbers are comparable
//! across commits on the same hardware; absolute values shift with the
//! host, which is why the gate is a *relative* bound against the committed
//! baseline rather than an absolute floor.

use crate::SEED;
use coloc_machine::StageId;
use coloc_model::{Lab, SweepStats, TrainingPlan};
use std::path::PathBuf;

/// PR number stamped into the artifact name (`BENCH_10.json`).
pub const PERF_PR: u32 = 10;

/// Relative regression the gate tolerates on cold 1-thread scenarios/sec
/// before failing (CI-runner jitter headroom).
pub const REGRESSION_TOLERANCE: f64 = 0.20;

/// Per-stage cost line in the artifact.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct StageLine {
    /// Stage label ([`StageId::label`]).
    pub stage: String,
    /// Invocations across the cold (engine) passes.
    pub invocations: u64,
    /// Wall nanoseconds across the cold (engine) passes.
    pub nanos: u64,
}

/// Throughput measurements at one worker-thread count.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct ThroughputLine {
    /// Worker threads used for the sweep.
    pub threads: usize,
    /// Scenarios/sec with an empty run cache (every run hits the engine).
    pub cold_scen_per_sec: f64,
    /// Scenarios/sec on the immediate re-sweep (fully memoized).
    pub memo_scen_per_sec: f64,
}

/// Service-level measurements from `repro serve-bench`: client-observed
/// latency quantiles and shed accounting against a live `coloc serve`.
/// Optional because `repro perf` writes the artifact first and
/// `repro serve-bench` fills this section in afterwards; regeneration
/// carries a committed section forward.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ServiceLine {
    /// Closed-loop client threads driving the load.
    pub clients: usize,
    /// Successful answers across the timed phase.
    pub queries: u64,
    /// Answers per second across the timed phase (all clients).
    pub qps: f64,
    /// Queries shed with `overloaded` during the timed phase.
    pub shed: u64,
    /// `shed / (queries + shed)`.
    pub shed_rate: f64,
    /// Client-observed median round-trip latency, milliseconds (exact,
    /// not histogram-bucketed: each client times every round trip).
    pub client_p50_ms: f64,
    /// Client-observed 95th-percentile latency, milliseconds.
    pub client_p95_ms: f64,
    /// Client-observed 99th-percentile latency, milliseconds.
    pub client_p99_ms: f64,
    /// Answers the server labeled degraded.
    pub degraded: u64,
}

/// Cross-interference matrix section from `repro matrix`: the full
/// pairwise (11×11) measured matrix scored against a registry-resolved
/// model. Optional for the same reason as [`ServiceLine`]: `repro perf`
/// writes the artifact first and `repro matrix` fills this section in;
/// regeneration carries a committed section forward.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct MatrixLine {
    /// Machine preset the matrix was measured on.
    pub machine: String,
    /// P-state of every run.
    pub pstate: usize,
    /// Apps per axis (the full suite: 11).
    pub apps: usize,
    /// Provenance digest (hex) of the scoring model artifact.
    pub model_digest: String,
    /// Mean percentage error of predicted vs measured pair times.
    pub mpe_pct: f64,
    /// Normalized RMSE of predicted vs measured pair times, percent.
    pub nrmse_pct: f64,
    /// Worst single-cell absolute percent error.
    pub max_abs_pct_err: f64,
    /// Whether every identical-app pair's counters mirrored bitwise.
    pub identical_pairs_symmetric: bool,
}

/// The `BENCH_<pr>.json` artifact.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PerfReport {
    /// Artifact schema version.
    pub schema_version: u32,
    /// PR that produced this artifact.
    pub pr: u32,
    /// Master seed of the pinned plan.
    pub seed: u64,
    /// Machine preset the plan runs on.
    pub machine: String,
    /// Scenarios per sweep pass.
    pub scenarios: usize,
    /// Regression-gate reference: cold 1-thread scenarios/sec committed
    /// with the artifact. Carried forward from the previous artifact on
    /// re-generation so the gate always compares against the committed
    /// trajectory, not the run that happens to regenerate the file.
    pub baseline_cold_1t_scen_per_sec: f64,
    /// Cold 1-thread scenarios/sec of the pre-SoA engine (PR 5), measured
    /// by this same harness — the denominator of this PR's speedup claim.
    pub pre_pr_cold_1t_scen_per_sec: f64,
    /// Throughput at each measured thread count.
    pub throughput: Vec<ThroughputLine>,
    /// Per-stage engine cost over the cold passes.
    pub stages: Vec<StageLine>,
    /// Run-cache hits across all passes.
    pub cache_hits: u64,
    /// Run-cache misses across all passes.
    pub cache_misses: u64,
    /// Hit fraction across all passes.
    pub cache_hit_rate: f64,
    /// Service-level section, written by `repro serve-bench` (absent
    /// until that harness has run against this artifact).
    pub service: Option<ServiceLine>,
    /// Cross-interference matrix section, written by `repro matrix`
    /// (absent until that harness has run against this artifact).
    pub matrix: Option<MatrixLine>,
}

/// The pinned perf plan: both machines' shared 6-core lab, two P-states,
/// every suite target, the four training co-runners, three counts —
/// 2 × 11 × 4 × 3 = 264 distinct scenarios, all engine work on a cold
/// cache.
pub fn perf_plan() -> TrainingPlan {
    TrainingPlan {
        pstates: vec![0, 3],
        targets: coloc_workloads::standard()
            .iter()
            .map(|b| b.name.to_string())
            .collect(),
        co_runners: coloc_workloads::suite::training_co_runners()
            .iter()
            .map(|b| b.name.to_string())
            .collect(),
        counts: vec![1, 3, 5],
    }
}

/// One cold + one memoized timed pass at `threads` workers, on a fresh
/// lab (empty run cache). Baselines are forced before timing so the
/// sweep numbers measure sweep work only. Returns the throughput line
/// and the lab's final sweep stats.
fn measure(threads: usize) -> (ThroughputLine, SweepStats) {
    let lab: Lab = crate::lab_6core()
        .with_threads(threads)
        .with_stage_stats(true);
    let plan = perf_plan();
    let n = plan.len();
    lab.baselines();

    let t0 = std::time::Instant::now();
    let cold = lab.collect(&plan).expect("cold perf sweep");
    let cold_s = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let warm = lab.collect(&plan).expect("memoized perf sweep");
    let warm_s = t0.elapsed().as_secs_f64();
    assert_eq!(cold.len(), n);
    assert_eq!(warm.len(), n);

    (
        ThroughputLine {
            threads,
            cold_scen_per_sec: n as f64 / cold_s,
            memo_scen_per_sec: n as f64 / warm_s,
        },
        lab.sweep_stats(),
    )
}

/// Where the committed artifact lives: the workspace root (override with
/// `COLOC_BENCH_DIR`).
pub fn artifact_path() -> PathBuf {
    artifact_dir().join(format!("BENCH_{PERF_PR}.json"))
}

fn artifact_dir() -> PathBuf {
    std::env::var_os("COLOC_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")))
}

/// The committed artifact to gate against: this PR's when present, else
/// the most recent earlier PR's that parses as a perf report — so the
/// first generation after a PR bump still regresses against the
/// committed trajectory instead of against itself. Earlier `BENCH_*`
/// files with other schemas (e.g. the placement artifact) fail to parse
/// and are skipped.
fn committed_report() -> Option<PerfReport> {
    let read = |path: PathBuf| -> Option<PerfReport> {
        std::fs::read(path)
            .ok()
            .and_then(|bytes| serde_json::from_slice(&bytes).ok())
    };
    read(artifact_path()).or_else(|| {
        (1..PERF_PR)
            .rev()
            .find_map(|pr| read(artifact_dir().join(format!("BENCH_{pr}.json"))))
    })
}

/// Run the pinned perf sweep, write `BENCH_<pr>.json`, and gate against
/// the committed baseline. Exits non-zero on regression.
pub fn run_perf() {
    let path = artifact_path();
    let committed = committed_report();

    println!("perf: pinned plan, {} scenarios/pass", perf_plan().len());
    let mut throughput = Vec::new();
    let mut stats_1t = None;
    let mut hits = 0u64;
    let mut misses = 0u64;
    for threads in [1usize, 8] {
        let (line, stats) = measure(threads);
        println!(
            "  {} thread(s): cold {:.1} scen/s, memoized {:.1} scen/s",
            threads, line.cold_scen_per_sec, line.memo_scen_per_sec
        );
        hits += stats.cache_hits;
        misses += stats.cache_misses;
        if threads == 1 {
            stats_1t = Some(stats);
        }
        throughput.push(line);
    }
    let stats = stats_1t.expect("1-thread pass ran");
    if let Some(summary) = stats.stage_summary() {
        println!("  1-thread stage breakdown (engine misses only):\n{summary}");
    }

    let cold_1t = throughput[0].cold_scen_per_sec;
    // The committed baseline is the gate reference; regenerating the
    // artifact carries it (and the pre-PR measurement) forward verbatim.
    let baseline = committed
        .as_ref()
        .map(|c| c.baseline_cold_1t_scen_per_sec)
        .filter(|&b| b > 0.0)
        .unwrap_or(cold_1t);
    let pre_pr = committed
        .as_ref()
        .map(|c| c.pre_pr_cold_1t_scen_per_sec)
        .filter(|&b| b > 0.0)
        .unwrap_or(0.0);

    let report = PerfReport {
        schema_version: 1,
        pr: PERF_PR,
        seed: SEED,
        machine: "xeon_e5649".to_string(),
        scenarios: perf_plan().len(),
        baseline_cold_1t_scen_per_sec: baseline,
        pre_pr_cold_1t_scen_per_sec: pre_pr,
        throughput,
        stages: StageId::ALL
            .iter()
            .map(|id| StageLine {
                stage: id.label().to_string(),
                invocations: stats.stage_invocations[id.index()],
                nanos: stats.stage_nanos[id.index()],
            })
            .collect(),
        cache_hits: hits,
        cache_misses: misses,
        cache_hit_rate: if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        },
        // The service and matrix sections belong to `repro serve-bench`
        // and `repro matrix`; committed sections survive perf
        // regeneration untouched.
        service: committed.as_ref().and_then(|c| c.service.clone()),
        matrix: committed.as_ref().and_then(|c| c.matrix.clone()),
    };

    let bytes = serde_json::to_vec_pretty(&report).expect("serialize perf report");
    std::fs::write(&path, bytes).expect("write perf artifact");
    println!("wrote {}", path.display());

    let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
    if cold_1t < floor {
        eprintln!(
            "PERF REGRESSION: cold 1-thread {cold_1t:.1} scen/s is below \
             {floor:.1} (committed baseline {baseline:.1} − {:.0}%)",
            REGRESSION_TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "perf gate: cold 1-thread {cold_1t:.1} scen/s vs committed baseline \
         {baseline:.1} (floor {floor:.1}) — ok"
    );
}
