//! `repro chaos` — the fault-injection chaos lab, end to end.
//!
//! One seeded, deterministic demonstration of every degradation path the
//! pipeline supports, asserting the tentpole acceptance criteria as it
//! goes: zero panics, faults quarantined and reported, a killed-and-resumed
//! collect bit-identical to the uninterrupted one, and forced training
//! divergence landing on the linear fallback with a full report.

use crate::cache;
use coloc_machine::{presets, Convergence, FaultPlan, Machine, RunOptions, RunnerGroup};
use coloc_model::lab::CheckpointConfig;
use coloc_model::{
    sanitize_samples, train_robust, ColocError, FeatureSet, Lab, ModelKind, SanitizePolicy,
    TrainPolicy, TrainingPlan,
};

fn chaos_plan() -> TrainingPlan {
    TrainingPlan {
        pstates: vec![0, 3],
        targets: coloc_workloads::standard()
            .iter()
            .map(|b| b.name.to_string())
            .collect(),
        co_runners: vec!["cg".into(), "ep".into()],
        counts: vec![1, 3, 5],
    }
}

fn chaotic_lab() -> Lab {
    crate::lab_6core()
        .with_faults(FaultPlan::heavy(crate::SEED))
        .expect("heavy preset is a valid plan")
}

/// Run the whole chaos-lab demonstration, printing each stage's evidence.
pub fn run_chaos() {
    let plan = chaos_plan();
    let scenarios = plan.scenarios();
    println!(
        "chaos lab: {} scenarios on the 6-core E5649, heavy fault plan (seed {})",
        scenarios.len(),
        crate::SEED
    );

    // ---- Stage 1: faulted sweep, then kill it and resume ----------------
    let reference = chaotic_lab()
        .collect_scenarios(&scenarios)
        .expect("faulted collect must degrade, not fail");

    let dir = cache::cache_dir().join("chaos");
    std::fs::create_dir_all(&dir).expect("create chaos checkpoint dir");
    let path = dir.join("checkpoint.json");
    let _ = std::fs::remove_file(&path);

    let crash_at = scenarios.len() / 3;
    let mut cfg = CheckpointConfig::new(&path, 16);
    cfg.crash_after = Some(crash_at);
    match chaotic_lab().collect_resumable(&scenarios, &cfg) {
        Err(ColocError::Interrupted { completed }) => {
            println!("stage 1: killed the sweep after {completed} samples (checkpointed)");
        }
        other => panic!("expected a simulated crash, got {:?}", other.err()),
    }
    cfg.crash_after = None;
    let resumed = chaotic_lab()
        .collect_resumable(&scenarios, &cfg)
        .expect("resume must complete the sweep");
    assert_eq!(resumed.len(), reference.len());
    let mut mismatches = 0usize;
    for (a, b) in resumed.iter().zip(&reference) {
        if a.actual_time_s.to_bits() != b.actual_time_s.to_bits() {
            mismatches += 1;
        }
    }
    assert_eq!(
        mismatches, 0,
        "resumed sweep must be bit-identical to the uninterrupted one"
    );
    println!(
        "stage 1: resumed and finished; {} samples bit-identical to the uninterrupted run",
        resumed.len()
    );
    let _ = std::fs::remove_file(&path);

    // ---- Stage 2: quarantine the damage ---------------------------------
    let (kept, report) = sanitize_samples(&reference, &SanitizePolicy::default());
    assert!(
        !report.is_clean(),
        "a heavy plan over {} runs must damage something",
        reference.len()
    );
    println!("stage 2: sanitizer: {report}");

    // ---- Stage 3: robust training on the damaged sweep ------------------
    let (model, treport) = train_robust(
        ModelKind::NeuralNet,
        FeatureSet::F,
        &reference,
        crate::SEED,
        &TrainPolicy::default(),
    )
    .expect("robust training must produce a model from a faulted sweep");
    assert!(kept.iter().all(|s| model.predict(&s.features).is_finite()));
    println!("stage 3: robust training: {treport}");

    // ---- Stage 4: forced divergence walks the ladder to linear ----------
    let policy = TrainPolicy {
        loss_ceiling: 0.0, // unreachable: every SCG attempt is rejected
        ..Default::default()
    };
    let (fallback, freport) = train_robust(
        ModelKind::NeuralNet,
        FeatureSet::F,
        &reference,
        crate::SEED,
        &policy,
    )
    .expect("the linear fallback must absorb total SCG failure");
    assert!(freport.fell_back && !freport.attempts.is_empty());
    assert_eq!(fallback.kind(), ModelKind::Linear);
    println!("stage 4: forced divergence: {freport}");

    // ---- Stage 5: iteration-budgeted solver degrades gracefully ---------
    let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
    let apps = coloc_workloads::standard();
    let cg = &apps.iter().find(|b| b.name == "cg").expect("cg").app;
    let workload = vec![
        RunnerGroup::solo(cg.clone()),
        RunnerGroup {
            app: cg.clone(),
            count: 5,
        },
    ];
    let full = machine
        .run(&workload, &RunOptions::default())
        .expect("unbudgeted run");
    let budget = (full.fp_iterations / 2).max(1);
    let budgeted = machine
        .run(
            &workload,
            &RunOptions {
                fp_budget: budget,
                ..RunOptions::default()
            },
        )
        .expect("budgeted run must terminate, not spin");
    match budgeted.convergence {
        Convergence::Degraded {
            fp_iterations,
            residual,
        } => {
            let err = 100.0 * (budgeted.wall_time_s - full.wall_time_s).abs() / full.wall_time_s;
            println!(
                "stage 5: fp budget {} vs {} full iters: degraded, residual {residual:.2e}, \
                 wall-time error {err:.2}% vs converged",
                fp_iterations, full.fp_iterations
            );
        }
        Convergence::Converged => {
            panic!("a half-iteration budget must degrade the solve")
        }
    }

    println!("chaos lab: all stages passed");
}
