//! Synthetic sample generation for benchmarks that should not pay for a
//! simulator sweep, plus a miniature *real* sweep helper for those that
//! should.

use coloc_model::{Lab, Sample, Scenario, TrainingPlan};

/// Paper-shaped synthetic samples: base times spread like the suite's,
/// slowdown nonlinear in co-app memory pressure, mild deterministic noise.
pub fn synthetic_samples(n: usize) -> Vec<Sample> {
    (0..n)
        .map(|i| {
            let base = 160.0 + (i % 11) as f64 * 45.0;
            let ncoapp = (i % 6) as f64;
            let co_mem = ncoapp * 0.006 * (1.0 + (i % 4) as f64);
            let target_mem = 10f64.powf(-2.0 - (i % 4) as f64);
            let slowdown =
                1.0 + 2.5 * co_mem + 9.0 * co_mem * co_mem / (0.02 + co_mem) * target_mem.sqrt();
            let jitter = 1.0 + 0.004 * (((i * 2654435761) % 997) as f64 / 997.0 - 0.5);
            Sample {
                scenario: Scenario::homogeneous("t", "c", ncoapp as usize, i % 6),
                features: [
                    base,
                    ncoapp,
                    co_mem,
                    target_mem,
                    ncoapp * 0.35,
                    ncoapp * 0.025,
                    0.12,
                    0.02,
                ],
                actual_time_s: base * slowdown * jitter,
            }
        })
        .collect()
}

/// A miniature real sweep on the 6-core lab (72 runs) — seconds in release
/// builds, cached across calls within a process.
pub fn tiny_real_samples() -> &'static [Sample] {
    use std::sync::OnceLock;
    static CELL: OnceLock<Vec<Sample>> = OnceLock::new();
    CELL.get_or_init(|| {
        let lab = crate::lab_6core();
        let plan = TrainingPlan {
            pstates: vec![0, 3],
            targets: vec![
                "cg".into(),
                "canneal".into(),
                "fluidanimate".into(),
                "ep".into(),
            ],
            co_runners: vec!["cg".into(), "sp".into(), "ep".into()],
            counts: vec![1, 3, 5],
        };
        lab.collect(&plan).expect("tiny sweep")
    })
}

/// The 6-core lab with baselines forced, for featurization/prediction
/// benches.
pub fn warm_lab() -> Lab {
    let lab = crate::lab_6core();
    lab.baselines();
    lab
}
