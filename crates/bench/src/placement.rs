//! `repro placement` — the million-job placement benchmark (PR 9).
//!
//! Streams synthetic jobs through a simulated fleet with every
//! [`coloc_placement::PlacePolicy`] and scores each against the
//! simulator-as-oracle,
//! writing `BENCH_9.json` at the workspace root. The artifact carries two
//! sections:
//!
//! * **smoke** — a pinned small run (10⁴ jobs, 32 sockets) whose scored
//!   outcome is *bit-deterministic across machines and thread counts*.
//!   CI regenerates it on every change and gates the regret-bounded
//!   policy's regret against the committed baseline (+10 % headroom) and
//!   its wall-clock throughput against a generous relative floor.
//! * **full** — the headline N=10⁶ run over a 1024-socket mixed fleet
//!   (regret per policy at a million jobs). Expensive, so CI's smoke-only
//!   mode (`COLOC_PLACEMENT_SMOKE_ONLY=1`) carries the committed section
//!   forward verbatim; regenerating it locally is one
//!   `cargo run --release -p coloc-bench --bin repro placement`.
//!
//! Like `repro perf`, committed baselines are carried forward on
//! regeneration so the gate always compares against the committed
//! trajectory, not against the run that happens to rewrite the file.

use crate::SEED;
use coloc_placement::{ClassMix, FleetSpec, PlacementReport, PlacementSim, SimConfig};
use std::path::PathBuf;

/// PR number stamped into the artifact name (`BENCH_9.json`).
pub const PLACEMENT_PR: u32 = 9;

/// Relative headroom the regret gate tolerates over the committed
/// smoke-scale baseline before failing.
pub const REGRET_TOLERANCE: f64 = 0.10;

/// Fraction of the committed smoke-scale jobs/sec below which the
/// wall-clock gate fails (CI runners are slow and noisy; the gate
/// catches order-of-magnitude collapses, not jitter).
pub const THROUGHPUT_FLOOR_FRACTION: f64 = 0.25;

/// Jobs in the pinned smoke run.
pub const SMOKE_JOBS: usize = 10_000;
/// Fleet scale of the smoke run (8 sockets per unit).
pub const SMOKE_SCALE: usize = 4;
/// Jobs in the full headline run.
pub const FULL_JOBS: usize = 1_000_000;
/// Fleet scale of the full run: 1024 sockets, 9472 cores.
pub const FULL_SCALE: usize = 128;

/// The `BENCH_9.json` artifact.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct PlacementBench {
    /// Artifact schema version.
    pub schema_version: u32,
    /// PR that produced this artifact.
    pub pr: u32,
    /// Master seed of both runs.
    pub seed: u64,
    /// Regret gate reference: the regret-bounded policy's smoke-scale
    /// mean regret committed with the artifact (carried forward on
    /// regeneration).
    pub baseline_smoke_regret_mean: f64,
    /// Wall-clock gate reference: the regret-bounded policy's smoke-scale
    /// jobs/sec committed with the artifact (carried forward).
    pub baseline_smoke_jobs_per_sec: f64,
    /// The pinned deterministic smoke run (10⁴ jobs).
    pub smoke: PlacementReport,
    /// The headline million-job run; `None` until first generated, and
    /// carried forward verbatim in smoke-only mode.
    pub full: Option<PlacementReport>,
}

/// The smoke configuration: pinned, small, bit-deterministic.
pub fn smoke_config() -> SimConfig {
    SimConfig {
        fleet: FleetSpec::standard(SMOKE_SCALE),
        jobs: SMOKE_JOBS,
        mix: ClassMix::memory_heavy(),
        seed: SEED,
        pstate: 0,
        qos_threshold: 1.5,
        noise_sigma: None,
        threads: 0,
    }
}

/// The full configuration (env-overridable: `COLOC_PLACEMENT_JOBS`,
/// `COLOC_PLACEMENT_SCALE`).
pub fn full_config() -> SimConfig {
    let jobs = env_usize("COLOC_PLACEMENT_JOBS", FULL_JOBS);
    let scale = env_usize("COLOC_PLACEMENT_SCALE", FULL_SCALE);
    SimConfig {
        fleet: FleetSpec::standard(scale),
        jobs,
        mix: ClassMix::memory_heavy(),
        seed: SEED,
        pstate: 0,
        qos_threshold: 1.5,
        noise_sigma: None,
        threads: 0,
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Where the committed artifact lives: the workspace root (override with
/// `COLOC_BENCH_DIR`, shared with `repro perf`).
pub fn artifact_path() -> PathBuf {
    std::env::var_os("COLOC_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")))
        .join(format!("BENCH_{PLACEMENT_PR}.json"))
}

fn committed_report() -> Option<PlacementBench> {
    std::fs::read(artifact_path())
        .ok()
        .and_then(|bytes| serde_json::from_slice(&bytes).ok())
}

fn print_report(label: &str, report: &PlacementReport) {
    println!(
        "{label}: {} jobs over {} sockets / {} cores ({} waves worth of capacity)",
        report.jobs,
        report.total_sockets,
        report.total_cores,
        report.jobs.div_ceil(report.total_cores.max(1)),
    );
    println!(
        "  {:<34} {:>10} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "policy", "regret", "oracle-sd", "unfair", "qos", "sockets", "jobs/s"
    );
    for p in &report.policies {
        println!(
            "  {:<34} {:>10.4} {:>10.4} {:>10.3} {:>8} {:>8} {:>10.0}",
            p.policy,
            p.regret_mean,
            p.oracle_mean_slowdown,
            p.unfairness,
            p.qos_violations,
            p.sockets_used,
            p.jobs_per_sec
        );
    }
}

fn relational_gates(label: &str, report: &PlacementReport) -> Vec<String> {
    let mut failures = Vec::new();
    let ff = report.policy("pack-first-fit");
    let li = report.policy("least-interference");
    let rb = report.policy("regret-batched");
    match (ff, li, rb) {
        (Some(ff), Some(li), Some(rb)) => {
            if li.oracle_mean_slowdown >= ff.oracle_mean_slowdown {
                failures.push(format!(
                    "{label}: least-interference ({:.4}) must beat pack-first-fit ({:.4}) \
                     on oracle mean slowdown",
                    li.oracle_mean_slowdown, ff.oracle_mean_slowdown
                ));
            }
            if rb.regret_mean > li.regret_mean {
                failures.push(format!(
                    "{label}: regret-batched regret ({:.4}) must not exceed \
                     least-interference regret ({:.4})",
                    rb.regret_mean, li.regret_mean
                ));
            }
        }
        _ => failures.push(format!("{label}: report is missing a benchmark policy")),
    }
    failures
}

/// Run the placement benchmark, write `BENCH_9.json`, and gate. In
/// smoke-only mode (`COLOC_PLACEMENT_SMOKE_ONLY=1`, what CI runs) the
/// committed full section is carried forward verbatim. Exits non-zero
/// when any gate fails.
pub fn run_placement() {
    let path = artifact_path();
    let committed = committed_report();
    let smoke_only = std::env::var("COLOC_PLACEMENT_SMOKE_ONLY").is_ok_and(|v| v == "1");

    println!(
        "placement: smoke run — {} jobs, fleet standard:{}",
        SMOKE_JOBS, SMOKE_SCALE
    );
    let mut sim = PlacementSim::new(smoke_config()).expect("smoke sim");
    let smoke = sim.run_benchmark().expect("smoke benchmark");
    print_report("smoke", &smoke);

    let full = if smoke_only {
        let carried = committed.as_ref().and_then(|c| c.full.clone());
        println!(
            "full: smoke-only mode — committed section {}",
            if carried.is_some() {
                "carried forward"
            } else {
                "absent"
            }
        );
        carried
    } else {
        let cfg = full_config();
        println!(
            "placement: full run — {} jobs, fleet standard:{} ({} sockets)",
            cfg.jobs,
            cfg.fleet.groups[0].sockets / 3,
            cfg.fleet.total_sockets()
        );
        let mut sim = PlacementSim::new(cfg).expect("full sim");
        let report = sim.run_benchmark().expect("full benchmark");
        print_report("full", &report);
        Some(report)
    };

    let smoke_rb = smoke
        .policy("regret-batched")
        .expect("smoke regret-batched outcome");
    let baseline_regret = committed
        .as_ref()
        .map(|c| c.baseline_smoke_regret_mean)
        .filter(|&b| b > 0.0)
        .unwrap_or(smoke_rb.regret_mean);
    let baseline_jps = committed
        .as_ref()
        .map(|c| c.baseline_smoke_jobs_per_sec)
        .filter(|&b| b > 0.0)
        .unwrap_or(smoke_rb.jobs_per_sec);

    let mut failures = relational_gates("smoke", &smoke);
    if let Some(full) = &full {
        failures.extend(relational_gates("full", full));
    }
    let regret_ceiling = baseline_regret * (1.0 + REGRET_TOLERANCE);
    if smoke_rb.regret_mean > regret_ceiling {
        failures.push(format!(
            "smoke: regret-batched regret {:.4} exceeds committed baseline {:.4} + {:.0}% \
             (ceiling {:.4})",
            smoke_rb.regret_mean,
            baseline_regret,
            REGRET_TOLERANCE * 100.0,
            regret_ceiling
        ));
    }
    let jps_floor = baseline_jps * THROUGHPUT_FLOOR_FRACTION;
    if smoke_rb.jobs_per_sec < jps_floor {
        failures.push(format!(
            "smoke: regret-batched throughput {:.0} jobs/s is below {:.0} \
             ({:.0}% of committed baseline {:.0})",
            smoke_rb.jobs_per_sec,
            jps_floor,
            THROUGHPUT_FLOOR_FRACTION * 100.0,
            baseline_jps
        ));
    }
    if let Some(committed_smoke) = committed.as_ref().map(|c| &c.smoke) {
        for (old, new) in committed_smoke.policies.iter().zip(&smoke.policies) {
            if old.determinism_digest != new.determinism_digest {
                println!(
                    "note: smoke `{}` placement digest changed \
                     ({:#x} -> {:#x}) — placement behavior moved; the committed \
                     artifact reflects the new behavior",
                    new.policy, old.determinism_digest, new.determinism_digest
                );
            }
        }
    }

    let report = PlacementBench {
        schema_version: 1,
        pr: PLACEMENT_PR,
        seed: SEED,
        baseline_smoke_regret_mean: baseline_regret,
        baseline_smoke_jobs_per_sec: baseline_jps,
        smoke,
        full,
    };
    let bytes = serde_json::to_vec_pretty(&report).expect("serialize placement report");
    std::fs::write(&path, bytes).expect("write placement artifact");
    println!("wrote {}", path.display());

    if failures.is_empty() {
        println!(
            "placement gate: regret {:.4} vs ceiling {regret_ceiling:.4}, \
             {:.0} jobs/s vs floor {jps_floor:.0} — ok",
            report
                .smoke
                .policy("regret-batched")
                .map(|p| p.regret_mean)
                .unwrap_or(f64::NAN),
            report
                .smoke
                .policy("regret-batched")
                .map(|p| p.jobs_per_sec)
                .unwrap_or(f64::NAN),
        );
    } else {
        for f in &failures {
            eprintln!("PLACEMENT GATE FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
