//! # coloc-bench
//!
//! The reproduction harness: one generator per table and figure in the
//! paper's evaluation, shared by the `repro` binary (which prints them)
//! and the Criterion benchmarks (which time the underlying components).
//!
//! Generated artifacts are cached as JSON under `repro-out/` (next to the
//! workspace root, override with `COLOC_REPRO_DIR`) because the full
//! 12-core sweep plus 100-partition neural-network validation is minutes of
//! compute; every table/figure can then be re-printed instantly.

pub mod ablations;
pub mod cache;
pub mod chaos;
pub mod conformance;
pub mod figures;
pub mod matrix_bench;
pub mod perf;
pub mod placement;
pub mod serve_bench;
pub mod synth;
pub mod tables;

use coloc_machine::presets;
use coloc_model::Lab;
use coloc_workloads::standard;

/// The experiment master seed. Everything derives from it; changing it
/// regenerates a statistically equivalent but bit-different data set.
pub const SEED: u64 = 2015;

/// The lab for the 6-core Xeon E5649.
pub fn lab_6core() -> Lab {
    Lab::new(presets::xeon_e5649(), standard(), SEED).expect("valid preset")
}

/// The lab for the 12-core Xeon E5-2697 v2.
pub fn lab_12core() -> Lab {
    Lab::new(presets::xeon_e5_2697v2(), standard(), SEED).expect("valid preset")
}

/// Both labs, in paper order, with short identifiers used in cache keys.
pub fn labs() -> Vec<(&'static str, Lab)> {
    vec![("e5649", lab_6core()), ("e5_2697v2", lab_12core())]
}
