//! Generators for the paper's figures (1–5).

use crate::cache;
use coloc_ml::metrics::percent_errors;
use coloc_ml::rng::derive_seed;
use coloc_model::{FeatureSet, ModelEvaluation, ModelKind, Predictor, Sample};
use std::collections::BTreeMap;

/// One series point in Figures 1–4: a `(technique, feature set)` model with
/// its train/test error at one machine.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct FigPoint {
    /// Technique label (`linear` / `neural-net`).
    pub kind: String,
    /// Feature set label (`A`…`F`).
    pub set: String,
    /// Error on training splits, percent.
    pub train: f64,
    /// Error on withheld splits, percent.
    pub test: f64,
}

fn grid_to_points(
    grid: &[ModelEvaluation],
    metric: impl Fn(&ModelEvaluation) -> (f64, f64),
) -> Vec<FigPoint> {
    grid.iter()
        .map(|e| {
            let (train, test) = metric(e);
            FigPoint {
                kind: e.kind.label().to_string(),
                set: e.set.label().to_string(),
                train,
                test,
            }
        })
        .collect()
}

/// Figure 1 (6-core) / Figure 2 (12-core): MPE for all twelve models.
pub fn fig_mpe(lab_key: &str) -> Vec<FigPoint> {
    let (_, lab) = crate::labs()
        .into_iter()
        .find(|(k, _)| *k == lab_key)
        .expect("lab key");
    let grid = cache::grid_evaluation(lab_key, &lab);
    grid_to_points(&grid, |e| (e.train_mpe, e.test_mpe))
}

/// Figure 3 (6-core) / Figure 4 (12-core): NRMSE for all twelve models.
pub fn fig_nrmse(lab_key: &str) -> Vec<FigPoint> {
    let (_, lab) = crate::labs()
        .into_iter()
        .find(|(k, _)| *k == lab_key)
        .expect("lab key");
    let grid = cache::grid_evaluation(lab_key, &lab);
    grid_to_points(&grid, |e| (e.train_nrmse, e.test_nrmse))
}

/// A five-number summary of a distribution (Fig. 5's box-style views).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Distribution {
    /// Group label (application name).
    pub app: String,
    /// Number of points.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// Lower quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Upper quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

fn summarize(app: &str, values: &[f64]) -> Distribution {
    use coloc_linalg::vecops::{max, min, percentile};
    Distribution {
        app: app.to_string(),
        n: values.len(),
        min: min(values),
        q1: percentile(values, 25.0),
        median: percentile(values, 50.0),
        q3: percentile(values, 75.0),
        max: max(values),
    }
}

/// Figure 5(a): per-application execution-time distributions across every
/// test run on the 6-core machine.
pub fn fig5a() -> Vec<Distribution> {
    let lab = crate::lab_6core();
    let samples = cache::training_samples("e5649", &lab);
    let mut by_app: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for s in &samples {
        by_app
            .entry(s.scenario.target.as_str())
            .or_default()
            .push(s.actual_time_s);
    }
    by_app.iter().map(|(app, v)| summarize(app, v)).collect()
}

/// Figure 5(b): per-application distributions of the NN set-F model's
/// signed percent errors on withheld data, pooled over `partitions`
/// random 70/30 splits.
pub fn fig5b(partitions: usize) -> Vec<Distribution> {
    let lab = crate::lab_6core();
    let samples = cache::training_samples("e5649", &lab);
    let mut by_app: BTreeMap<String, Vec<f64>> = BTreeMap::new();

    for p in 0..partitions {
        let (train_idx, test_idx) = split_indices(samples.len(), crate::SEED, p as u64);
        let train: Vec<Sample> = train_idx.iter().map(|&i| samples[i].clone()).collect();
        let test: Vec<Sample> = test_idx.iter().map(|&i| samples[i].clone()).collect();
        let nn = Predictor::train(
            ModelKind::NeuralNet,
            FeatureSet::F,
            &train,
            derive_seed(crate::SEED, 500 + p as u64),
        )
        .expect("train NN F");
        let preds = nn.predict_samples(&test);
        let actual: Vec<f64> = test.iter().map(|s| s.actual_time_s).collect();
        for (s, pe) in test.iter().zip(percent_errors(&preds, &actual)) {
            by_app
                .entry(s.scenario.target.clone())
                .or_default()
                .push(pe);
        }
    }
    by_app.iter().map(|(app, v)| summarize(app, v)).collect()
}

/// Deterministic 70/30 index split (same convention as
/// `coloc_ml::Dataset::split`, but keeping sample identity so errors can
/// be grouped by application).
pub fn split_indices(n: usize, seed: u64, partition: u64) -> (Vec<usize>, Vec<usize>) {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(seed, partition));
    idx.shuffle(&mut rng);
    let n_test = ((n as f64) * 0.30).round() as usize;
    let (test, train) = idx.split_at(n_test);
    (train.to_vec(), test.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_indices_partition_properties() {
        let (train, test) = split_indices(100, 1, 0);
        assert_eq!(train.len(), 70);
        assert_eq!(test.len(), 30);
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
        let (train2, _) = split_indices(100, 1, 0);
        assert_eq!(train, train2);
        let (train3, _) = split_indices(100, 1, 1);
        assert_ne!(train, train3);
    }

    #[test]
    fn summarize_orders_quartiles() {
        let d = summarize("x", &[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.max, 5.0);
        assert!(d.q1 <= d.median && d.median <= d.q3);
        assert_eq!(d.n, 5);
    }
}
