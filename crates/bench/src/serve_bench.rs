//! `repro serve-bench` — service-level smoke benchmark for `coloc serve`.
//!
//! Spawns an in-process server, drives it closed-loop from several
//! client threads over real TCP connections, and measures what a caller
//! actually experiences: exact per-round-trip latency quantiles (every
//! request is individually timed client-side — no histogram bucketing),
//! answers per second, and the shed rate. The run gates against the
//! committed thresholds below and folds a [`ServiceLine`] into the
//! `BENCH_<pr>.json` artifact next to the engine throughput numbers.
//!
//! Closed-loop clients apply backpressure naturally (each waits for its
//! answer before sending the next query), so a healthy server should
//! shed nothing and keep p99 in single-digit milliseconds once the
//! pinned scenario pool is cache-resident. The thresholds are therefore
//! loose: they catch collapse (lock convoys, queue leaks, a dispatcher
//! stall), not CI-runner jitter.

use crate::perf::{artifact_path, PerfReport, ServiceLine};
use coloc_model::Scenario;
use coloc_serve::proto::QueryMode;
use coloc_serve::server::{BindAddr, ServeConfig, Server};
use coloc_serve::{QueryClient, Reply};
use std::time::Instant;

/// Gate: client-observed p99 must stay below this, milliseconds.
pub const MAX_CLIENT_P99_MS: f64 = 250.0;

/// Gate: fraction of queries shed with `overloaded` under closed-loop
/// load must stay below this.
pub const MAX_SHED_RATE: f64 = 0.02;

/// Closed-loop client threads.
const CLIENTS: usize = 4;

/// Timed queries per client (override with `COLOC_SERVE_BENCH_QUERIES`;
/// CI uses a larger value for the 30-second smoke).
const QUERIES_PER_CLIENT: usize = 250;

/// The pinned query pool: every suite target against the four training
/// co-runners at two counts and two P-states — 11 × 4 × 2 × 2 = 176
/// distinct scenarios, small enough to go cache-resident in warmup.
fn query_pool() -> Vec<Scenario> {
    let mut pool = Vec::new();
    for target in coloc_workloads::standard() {
        for co in coloc_workloads::suite::training_co_runners() {
            for count in [1usize, 3] {
                for pstate in [0usize, 3] {
                    pool.push(Scenario {
                        target: target.name.to_string(),
                        co_located: vec![(co.name.to_string(), count)],
                        pstate,
                    });
                }
            }
        }
    }
    pool
}

fn quantile_exact(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted_ms.len() as f64).ceil() as usize).clamp(1, sorted_ms.len());
    sorted_ms[rank - 1]
}

/// One client's timed run: round-trips its share of the pool, recording
/// exact latencies and counting sheds (no retries — a shed is data here,
/// not something to paper over).
fn drive_client(
    addr: &str,
    pool: &[Scenario],
    offset: usize,
    queries: usize,
) -> Result<(Vec<f64>, u64), String> {
    let mut client = QueryClient::connect_tcp(addr).map_err(|e| e.to_string())?;
    let mut latencies_ms = Vec::with_capacity(queries);
    let mut shed = 0u64;
    for i in 0..queries {
        let scenario = &pool[(offset + i) % pool.len()];
        let t0 = Instant::now();
        let reply = client
            .query(scenario, QueryMode::Measure, None, None)
            .map_err(|e| e.to_string())?;
        match reply {
            Reply::Ok { .. } => latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3),
            Reply::Err { error, .. } => match error {
                coloc_model::ColocError::Overloaded { .. } => shed += 1,
                other => return Err(format!("unexpected service error: {other}")),
            },
            other => return Err(format!("unexpected reply: {other:?}")),
        }
    }
    Ok((latencies_ms, shed))
}

/// Run the closed-loop benchmark, print the service report, gate it, and
/// fold the section into `BENCH_<pr>.json` when that artifact exists.
pub fn run_serve_bench() {
    let queries_per_client: usize = std::env::var("COLOC_SERVE_BENCH_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(QUERIES_PER_CLIENT);
    let pool = query_pool();

    let handle = Server::spawn(ServeConfig {
        bind: BindAddr::Tcp("127.0.0.1:0".into()),
        seed: crate::SEED,
        quiet: true,
        ..ServeConfig::default()
    })
    .expect("spawn serve");
    let addr = handle
        .local_addr()
        .expect("tcp server has an address")
        .to_string();

    println!(
        "serve-bench: {CLIENTS} closed-loop clients × {queries_per_client} queries, \
         pool of {} pinned scenarios",
        pool.len()
    );

    // Warmup: one pass over the pool so the timed phase measures the
    // service, not first-touch engine runs.
    let (warm, warm_shed) = drive_client(&addr, &pool, 0, pool.len()).expect("warmup pass");
    assert_eq!(warm.len() as u64 + warm_shed, pool.len() as u64);

    let t0 = Instant::now();
    let per_client: Vec<(Vec<f64>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = &addr;
                let pool = &pool;
                // Stagger starting offsets so clients do not sweep the
                // pool in lockstep.
                scope.spawn(move || {
                    drive_client(addr, pool, c * pool.len() / CLIENTS, queries_per_client)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread").expect("client run"))
            .collect()
    });
    let elapsed_s = t0.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = per_client
        .iter()
        .flat_map(|(l, _)| l.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let shed: u64 = per_client.iter().map(|(_, s)| s).sum();
    let queries = latencies.len() as u64;
    let offered = queries + shed;

    let frame = handle.stats();
    handle.shutdown();
    let final_frame = handle.join();
    assert_eq!(final_frame.queue_depth, 0, "drain leaves nothing queued");

    let line = ServiceLine {
        clients: CLIENTS,
        queries,
        qps: queries as f64 / elapsed_s,
        shed,
        shed_rate: if offered > 0 {
            shed as f64 / offered as f64
        } else {
            0.0
        },
        client_p50_ms: quantile_exact(&latencies, 0.50),
        client_p95_ms: quantile_exact(&latencies, 0.95),
        client_p99_ms: quantile_exact(&latencies, 0.99),
        degraded: frame.degraded_cache + frame.degraded_fallback,
    };

    println!(
        "  {} answers in {elapsed_s:.2}s — {:.0} qps; latency p50 {:.2} ms, \
         p95 {:.2} ms, p99 {:.2} ms",
        line.queries, line.qps, line.client_p50_ms, line.client_p95_ms, line.client_p99_ms
    );
    println!(
        "  shed {} ({:.2}%), degraded {}, server cache {} hits / {} misses",
        line.shed,
        line.shed_rate * 100.0,
        line.degraded,
        final_frame.cache_hits,
        final_frame.cache_misses
    );

    // Fold the section into the committed artifact (run `repro perf`
    // first to create it).
    let path = artifact_path();
    match std::fs::read(&path)
        .ok()
        .and_then(|bytes| serde_json::from_slice::<PerfReport>(&bytes).ok())
    {
        Some(mut report) => {
            report.service = Some(line.clone());
            let bytes = serde_json::to_vec_pretty(&report).expect("serialize perf report");
            std::fs::write(&path, bytes).expect("write perf artifact");
            println!("  updated service section of {}", path.display());
        }
        None => println!(
            "  note: {} not found or unreadable — run `repro perf` first to \
             record the service section",
            path.display()
        ),
    }

    // The gates: catch collapse, not jitter.
    let mut failed = false;
    if line.client_p99_ms > MAX_CLIENT_P99_MS {
        eprintln!(
            "SERVE REGRESSION: client p99 {:.2} ms exceeds the committed \
             threshold {MAX_CLIENT_P99_MS} ms",
            line.client_p99_ms
        );
        failed = true;
    }
    if line.shed_rate > MAX_SHED_RATE {
        eprintln!(
            "SERVE REGRESSION: shed rate {:.4} exceeds the committed \
             threshold {MAX_SHED_RATE} under closed-loop load",
            line.shed_rate
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "serve gate: p99 {:.2} ms ≤ {MAX_CLIENT_P99_MS} ms, shed rate {:.4} ≤ \
         {MAX_SHED_RATE} — ok",
        line.client_p99_ms, line.shed_rate
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_pinned_and_distinct() {
        let pool = query_pool();
        assert_eq!(pool.len(), 11 * 4 * 2 * 2);
        let labels: std::collections::BTreeSet<String> = pool.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), pool.len(), "no duplicate scenarios");
    }

    #[test]
    fn exact_quantiles_use_ceil_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile_exact(&v, 0.50), 50.0);
        assert_eq!(quantile_exact(&v, 0.95), 95.0);
        assert_eq!(quantile_exact(&v, 0.99), 99.0);
        assert_eq!(quantile_exact(&v, 1.0), 100.0);
        assert_eq!(quantile_exact(&[], 0.5), 0.0);
    }
}
