//! JSON disk cache for expensive experiment artifacts.

use coloc_ml::validate::ValidationConfig;
use coloc_model::Lab;
use coloc_model::{ModelEvaluation, Sample};
use std::path::PathBuf;

/// Resolve the cache directory (`COLOC_REPRO_DIR` or `repro-out/`).
pub fn cache_dir() -> PathBuf {
    std::env::var_os("COLOC_REPRO_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("repro-out"))
}

fn path_for(key: &str) -> PathBuf {
    cache_dir().join(format!("{key}.json"))
}

/// Load a cached artifact if present and parseable.
pub fn load<T: serde::de::DeserializeOwned>(key: &str) -> Option<T> {
    let bytes = std::fs::read(path_for(key)).ok()?;
    serde_json::from_slice(&bytes).ok()
}

/// Store an artifact (best effort; cache failures are non-fatal).
pub fn store<T: serde::Serialize>(key: &str, value: &T) {
    let dir = cache_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    if let Ok(bytes) = serde_json::to_vec_pretty(value) {
        let _ = std::fs::write(path_for(key), bytes);
    }
}

/// The paper's full training sweep for a lab, cached.
pub fn training_samples(lab_key: &str, lab: &Lab) -> Vec<Sample> {
    let key = format!("samples_{lab_key}_seed{}", lab.seed());
    if let Some(s) = load::<Vec<Sample>>(&key) {
        let plan = lab.paper_plan();
        if s.len() == plan.len() {
            return s;
        }
    }
    let samples = lab
        .collect(&lab.paper_plan())
        .expect("paper sweep collects");
    eprintln!("[{lab_key}] sweep: {}", lab.sweep_stats());
    store(&key, &samples);
    samples
}

/// The paper's validation protocol: 100 partitions, 70/30.
pub fn paper_validation() -> ValidationConfig {
    ValidationConfig {
        partitions: 100,
        test_fraction: 0.30,
        seed: crate::SEED,
        threads: 0,
    }
}

/// Full 2×6 model-grid evaluation for a lab, cached. This is the data for
/// Figures 1–4 (MPE and NRMSE come from the same validation runs).
pub fn grid_evaluation(lab_key: &str, lab: &Lab) -> Vec<ModelEvaluation> {
    let key = format!("grid_{lab_key}_seed{}", lab.seed());
    if let Some(g) = load::<Vec<ModelEvaluation>>(&key) {
        if g.len() == 12 {
            return g;
        }
    }
    let samples = training_samples(lab_key, lab);
    let grid = coloc_model::experiment::evaluate_grid(&samples, &paper_validation())
        .expect("grid evaluation");
    store(&key, &grid);
    grid
}
