//! `repro` — regenerate every table and figure from the paper.
//!
//! Usage: `repro <artifact>` where artifact is one of
//! `table1..table6`, `fig1..fig5b`, `pca`, `sweep`, `chaos`, `conformance`,
//! `perf`, `placement`, `serve-bench`, `matrix`, or `all`.
//!
//! Expensive intermediates (training sweeps, model-grid validations) are
//! cached as JSON under `repro-out/`; delete that directory to force a full
//! regeneration.

use coloc_bench::{cache, figures, tables};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    match what {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "table4" => table4(),
        "table5" => table5(),
        "table6" => table6(),
        "fig1" => fig_mpe("e5649", "Figure 1: MPE, 6-core Xeon E5649"),
        "fig2" => fig_mpe("e5_2697v2", "Figure 2: MPE, 12-core Xeon E5-2697v2"),
        "fig3" => fig_nrmse("e5649", "Figure 3: NRMSE, 6-core Xeon E5649"),
        "fig4" => fig_nrmse("e5_2697v2", "Figure 4: NRMSE, 12-core Xeon E5-2697v2"),
        "fig5a" => fig5a(),
        "fig5b" => fig5b(),
        "pca" => pca(),
        "ablation-size" => ablation("Training-set size", coloc_bench::ablations::train_size()),
        "ablation-noise" => ablation("Measurement noise", coloc_bench::ablations::noise()),
        "ablation-hidden" => ablation("Hidden-layer width", coloc_bench::ablations::hidden_width()),
        "ablation-hetero" => ablation(
            "Heterogeneous co-location",
            coloc_bench::ablations::heterogeneous(),
        ),
        "ablation-classavg" => ablation(
            "Class-average features",
            coloc_bench::ablations::class_average(),
        ),
        "ablation-quad" => ablation(
            "Quadratic feature expansion",
            coloc_bench::ablations::quadratic(),
        ),
        "ablation-partition" => ablation(
            "LLC partitioning (values are slowdowns: shared | partitioned)",
            coloc_bench::ablations::partitioning(),
        ),
        "ablation-phases" => ablation(
            "Phase detail (paper SI claim)",
            coloc_bench::ablations::phases(),
        ),
        "importance" => importance(),
        "sweep" => sweep(),
        "chaos" => coloc_bench::chaos::run_chaos(),
        "conformance" => coloc_bench::conformance::run_conformance(),
        "perf" => coloc_bench::perf::run_perf(),
        "placement" => coloc_bench::placement::run_placement(),
        "serve-bench" => coloc_bench::serve_bench::run_serve_bench(),
        "matrix" => coloc_bench::matrix_bench::run_matrix(),
        "ablations" => {
            ablation("Training-set size", coloc_bench::ablations::train_size());
            ablation("Measurement noise", coloc_bench::ablations::noise());
            ablation("Hidden-layer width", coloc_bench::ablations::hidden_width());
            ablation(
                "Heterogeneous co-location",
                coloc_bench::ablations::heterogeneous(),
            );
            ablation(
                "Class-average features",
                coloc_bench::ablations::class_average(),
            );
            ablation(
                "Quadratic feature expansion",
                coloc_bench::ablations::quadratic(),
            );
            ablation(
                "LLC partitioning (values are slowdowns: shared | partitioned)",
                coloc_bench::ablations::partitioning(),
            );
            ablation(
                "Phase detail (paper SI claim)",
                coloc_bench::ablations::phases(),
            );
            importance();
        }
        "all" => {
            table1();
            table2();
            table3();
            table4();
            table5();
            table6();
            fig_mpe("e5649", "Figure 1: MPE, 6-core Xeon E5649");
            fig_mpe("e5_2697v2", "Figure 2: MPE, 12-core Xeon E5-2697v2");
            fig_nrmse("e5649", "Figure 3: NRMSE, 6-core Xeon E5649");
            fig_nrmse("e5_2697v2", "Figure 4: NRMSE, 12-core Xeon E5-2697v2");
            fig5a();
            fig5b();
            pca();
        }
        other => {
            eprintln!("unknown artifact `{other}`");
            eprintln!(
                "expected: table1..table6, fig1..fig5b, pca, importance, sweep, chaos, \
                 conformance, perf, placement, serve-bench, matrix, all, \
                 ablations, \
                 ablation-{{size,noise,hidden,hetero,classavg,quad,partition,phases}}"
            );
            std::process::exit(2);
        }
    }
}

fn hr(title: &str) {
    println!("\n=== {title} ===");
}

fn table1() {
    hr("Table I: Model Features");
    println!("{:<14} | aspect of execution measured", "feature");
    println!("{}", "-".repeat(76));
    for (name, desc) in tables::table1() {
        println!("{name:<14} | {desc}");
    }
}

fn table2() {
    hr("Table II: Sets of Model Feature Groups");
    for (set, features) in tables::table2() {
        println!("{set}  =  {features}");
    }
}

fn table3() {
    hr("Table III: Benchmark Applications (measured on 6-core E5649)");
    println!("{:<20} {:>14}   class", "application", "mem. intensity");
    println!("{}", "-".repeat(50));
    let lab = coloc_bench::lab_6core();
    for row in tables::table3(&lab) {
        println!(
            "{:<20} {:>14.3e}   {}",
            row.app, row.memory_intensity, row.class
        );
    }
}

fn table4() {
    hr("Table IV: Multicore Processors Used for Validation");
    println!(
        "{:<16} {:>10} {:>9}   frequency range",
        "Intel processor", "num cores", "L3 cache"
    );
    println!("{}", "-".repeat(58));
    for r in tables::table4() {
        println!(
            "{:<16} {:>10} {:>7}MB   {:.2}-{:.2} GHz",
            r.processor, r.cores, r.l3_mib, r.freq_range_ghz.0, r.freq_range_ghz.1
        );
    }
}

fn table5() {
    hr("Table V: Training Data Setup");
    for r in tables::table5() {
        println!("{}:", r.processor);
        println!("  P-state frequencies (GHz): {:?}", r.pstates_ghz);
        println!("  target applications:       {}", r.num_targets);
        println!("  co-located applications:   {:?}", r.co_apps);
        println!(
            "  num. of co-locations:      {}..={}",
            r.num_co_locations.first().unwrap_or(&0),
            r.num_co_locations.last().unwrap_or(&0)
        );
        println!("  total training runs:       {}", r.total_runs);
    }
}

fn table6() {
    hr("Table VI: canneal vs. N x cg on the 12-core E5-2697v2 (set F models)");
    let (baseline, rows) = tables::table6();
    println!("canneal baseline execution time: {baseline:.0} s");
    println!(
        "{:>6} {:>12} {:>12} {:>14} {:>11}",
        "num cg", "actual (s)", "normalized", "linear MPE (%)", "NN MPE (%)"
    );
    println!("{}", "-".repeat(60));
    for r in rows {
        println!(
            "{:>6} {:>12.1} {:>12.3} {:>14.2} {:>11.2}",
            r.num_cg, r.actual_s, r.normalized, r.linear_f_pe, r.nn_f_pe
        );
    }
}

fn print_fig(points: &[figures::FigPoint]) {
    println!(
        "{:<12} {:>4} {:>10} {:>10}",
        "model", "set", "train (%)", "test (%)"
    );
    println!("{}", "-".repeat(40));
    for p in points {
        println!(
            "{:<12} {:>4} {:>10.2} {:>10.2}",
            p.kind, p.set, p.train, p.test
        );
    }
}

fn fig_mpe(lab_key: &str, title: &str) {
    hr(title);
    print_fig(&figures::fig_mpe(lab_key));
}

fn fig_nrmse(lab_key: &str, title: &str) {
    hr(title);
    print_fig(&figures::fig_nrmse(lab_key));
}

fn fig5a() {
    hr("Figure 5(a): execution-time distributions per application (6-core)");
    println!(
        "{:<14} {:>5} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "app", "n", "min", "q1", "median", "q3", "max"
    );
    println!("{}", "-".repeat(64));
    for d in figures::fig5a() {
        println!(
            "{:<14} {:>5} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
            d.app, d.n, d.min, d.q1, d.median, d.q3, d.max
        );
    }
}

fn fig5b() {
    hr("Figure 5(b): NN set-F percent-error distributions per application (6-core)");
    println!(
        "{:<14} {:>5} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "app", "n", "min", "q1", "median", "q3", "max"
    );
    println!("{}", "-".repeat(64));
    for d in figures::fig5b(20) {
        println!(
            "{:<14} {:>5} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            d.app, d.n, d.min, d.q1, d.median, d.q3, d.max
        );
    }
}

fn ablation(title: &str, rows: Vec<coloc_bench::ablations::AblationRow>) {
    hr(&format!("Ablation: {title}"));
    println!("{:<34} {:>14} {:>12}", "", "linear MPE (%)", "NN MPE (%)");
    println!("{}", "-".repeat(62));
    for r in rows {
        let lin = if r.linear_mpe.is_nan() {
            "-".to_string()
        } else {
            format!("{:.2}", r.linear_mpe)
        };
        println!("{:<34} {:>14} {:>12.2}", r.x, lin, r.nn_mpe);
    }
}

fn sweep() {
    hr("Sweep runtime: paper plan on the 6-core E5649, by worker count");
    let plan_len = coloc_bench::lab_6core().paper_plan().len();
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "{plan_len} scenarios per pass; each thread count gets a fresh lab; \
         host exposes {cpus} CPU(s) — thread speedup is bounded by that"
    );
    let mut cold_1t = None;
    for threads in [1usize, 4, 8] {
        let lab = coloc_bench::lab_6core()
            .with_threads(threads)
            .with_stage_stats(true);
        let plan = lab.paper_plan();
        let start = std::time::Instant::now();
        let cold = lab.collect(&plan).expect("cold sweep");
        let cold_s = start.elapsed().as_secs_f64();
        let start = std::time::Instant::now();
        let warm = lab.collect(&plan).expect("warm sweep");
        let warm_s = start.elapsed().as_secs_f64();
        assert_eq!(cold.len(), warm.len());
        let speedup = cold_1t.get_or_insert(cold_s);
        println!(
            "\n{threads} thread(s): cold {cold_s:.3} s ({:.2}x vs 1-thread cold), \
             warm (memoized) {warm_s:.3} s",
            *speedup / cold_s
        );
        let stats = lab.sweep_stats();
        println!("  {stats}");
        if let Some(stages) = stats.stage_summary() {
            println!("  stage breakdown (engine misses only):\n{stages}");
        }
    }
}

fn importance() {
    use coloc_model::{samples_to_dataset, FeatureSet, ModelKind, Predictor};
    hr("Permutation feature importance of the NN set-F model (6-core)");
    let lab = coloc_bench::lab_6core();
    let samples = cache::training_samples("e5649", &lab);
    let nn = Predictor::train(
        ModelKind::NeuralNet,
        FeatureSet::F,
        &samples,
        coloc_bench::SEED,
    )
    .expect("train");
    let ds = samples_to_dataset(&samples, FeatureSet::F).expect("dataset");
    // Predictor over set F consumes the full 8-vector, so wrap it.
    struct Wrap<'a>(&'a Predictor);
    impl coloc_ml::Regressor for Wrap<'_> {
        fn predict(&self, features: &[f64]) -> f64 {
            let mut full = [0.0; 8];
            full.copy_from_slice(features);
            self.0.predict(&full)
        }
    }
    let (baseline, imps) = coloc_ml::permutation_importance(&Wrap(&nn), &ds, 3, coloc_bench::SEED);
    println!("intact-data MPE: {baseline:.2}%");
    println!("{:<14} {:>18}", "feature", "MPE increase (%)");
    println!("{}", "-".repeat(34));
    for imp in imps {
        let name = coloc_model::Feature::ALL[imp.feature].paper_name();
        println!("{:<14} {:>18.2}", name, imp.mpe_increase);
    }
}

fn pca() {
    hr("PCA feature ranking (paper SIII-B) on the 6-core training data");
    let lab = coloc_bench::lab_6core();
    let samples = cache::training_samples("e5649", &lab);
    let ranking = coloc_model::experiment::rank_features(&samples).expect("rank");
    println!("{:<14} {:>12}", "feature", "score");
    println!("{}", "-".repeat(28));
    for (f, score) in ranking {
        println!("{:<14} {:>12.4}", f.paper_name(), score);
    }
}
