//! `repro matrix` — the full pairwise cross-interference matrix.
//!
//! Measures every (target, co-runner) pair of the 11-app suite on the
//! 6-core lab — 11 solos + 121 pairs, one engine sweep — and scores a
//! registry-resolved linear model against the measured slowdowns. The
//! matrix is the paper's cross-interference picture at full resolution:
//! the diagonal is self-interference (whose two groups must produce
//! bit-identical counters — the `matrix-identical-pair-symmetry` law,
//! checked here against live engine output), the off-diagonal cells are
//! the heterogeneous pairs the [`coloc_model::MixFeatures`] encoding
//! exists for.
//!
//! The run gates on exact identical-pair symmetry and folds a
//! [`MatrixLine`] into `BENCH_<pr>.json` next to the engine and service
//! sections.

use crate::perf::{artifact_path, MatrixLine, PerfReport};
use coloc_model::{CrossMatrix, FeatureSet, ModelKind, ModelRegistry, TrainRequest, TrainingPlan};

/// P-state every matrix run uses (the fastest clock, as in Table VI).
pub const MATRIX_PSTATE: usize = 0;

/// The pinned training request behind the scoring model: linear, full
/// feature set, over the exact plan `coloc matrix` trains with when no
/// `--model` is given — same provenance, so the digest printed here
/// matches the CLI's for the same machine/pstate/seed.
pub fn matrix_request(lab: &coloc_model::Lab) -> TrainRequest {
    let spec = lab.machine().spec();
    let half = (spec.cores / 2).max(1);
    let mut counts = vec![1, half, spec.cores - 1];
    counts.dedup();
    counts.retain(|&c| c >= 1);
    TrainRequest {
        kind: ModelKind::Linear,
        set: FeatureSet::F,
        plan: TrainingPlan {
            pstates: vec![MATRIX_PSTATE],
            targets: lab.suite().iter().map(|b| b.name.to_string()).collect(),
            co_runners: coloc_workloads::suite::training_co_runners()
                .iter()
                .map(|b| b.name.to_string())
                .collect(),
            counts,
        },
        seed: crate::SEED,
        policy: None,
    }
}

/// Measure the matrix, print it, gate on identical-pair symmetry, and
/// fold the section into `BENCH_<pr>.json` when that artifact exists.
pub fn run_matrix() {
    let lab = crate::lab_6core();
    let registry = ModelRegistry::new();
    let request = matrix_request(&lab);
    println!(
        "matrix: resolving scoring model ({} training scenarios)…",
        request.plan.len()
    );
    let artifact = registry
        .resolve(&lab, &request)
        .expect("matrix model resolves");

    let n = lab.suite().len();
    println!(
        "matrix: measuring {n}×{n} pairwise cross-interference at P{MATRIX_PSTATE} \
         ({} runs)…",
        n + n * n
    );
    let matrix = CrossMatrix::compute(&lab, &artifact, MATRIX_PSTATE).expect("matrix computes");

    println!("{}", matrix.render_measured());
    println!(
        "  model {}: MPE {:+.2}%, NRMSE {:.2}%, worst cell {:.2}%",
        matrix.model_digest,
        matrix.summary.mpe_pct,
        matrix.summary.nrmse_pct,
        matrix.summary.max_abs_pct_err
    );

    let line = MatrixLine {
        machine: matrix.machine.clone(),
        pstate: matrix.pstate,
        apps: matrix.apps.len(),
        model_digest: matrix.model_digest.clone(),
        mpe_pct: matrix.summary.mpe_pct,
        nrmse_pct: matrix.summary.nrmse_pct,
        max_abs_pct_err: matrix.summary.max_abs_pct_err,
        identical_pairs_symmetric: matrix.summary.identical_pairs_symmetric,
    };

    // Fold the section into the committed artifact (run `repro perf`
    // first to create it).
    let path = artifact_path();
    match std::fs::read(&path)
        .ok()
        .and_then(|bytes| serde_json::from_slice::<PerfReport>(&bytes).ok())
    {
        Some(mut report) => {
            report.matrix = Some(line);
            let bytes = serde_json::to_vec_pretty(&report).expect("serialize perf report");
            std::fs::write(&path, bytes).expect("write perf artifact");
            println!("  updated matrix section of {}", path.display());
        }
        None => println!(
            "  note: {} not found or unreadable — run `repro perf` first to \
             record the matrix section",
            path.display()
        ),
    }

    // The gate: identical-app pairs are relabelings; their counters must
    // mirror bit for bit, every time, on live engine output.
    if !matrix.summary.identical_pairs_symmetric {
        let broken: Vec<&str> = matrix
            .apps
            .iter()
            .zip(&matrix.identical_pair_counter_symmetry)
            .filter(|(_, &ok)| !ok)
            .map(|(app, _)| app.as_str())
            .collect();
        eprintln!(
            "MATRIX REGRESSION: identical-pair counter symmetry violated for {}",
            broken.join(", ")
        );
        std::process::exit(1);
    }
    println!(
        "matrix gate: {} identical-app pairs bitwise symmetric — ok",
        matrix.apps.len()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_request_matches_the_cli_default_provenance() {
        // The bench harness and `coloc matrix` must resolve the *same*
        // registry artifact, or BENCH digests will not match CLI output.
        let lab = crate::lab_6core();
        let registry = ModelRegistry::new();
        let req = matrix_request(&lab);
        // The CLI default (commands::matrix with no --model): linear,
        // full features, single measured P-state, no robust ladder.
        assert_eq!(req.plan.pstates, vec![MATRIX_PSTATE]);
        assert!(req.policy.is_none());
        assert_eq!(req.seed, crate::SEED);
        let a = registry.request_digest(&lab, &req);
        let b = registry.request_digest(&lab, &matrix_request(&lab));
        assert_eq!(a, b, "request digest is deterministic");
    }
}
