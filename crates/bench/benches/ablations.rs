//! Ablation benchmarks: how the pipeline's cost scales with the design
//! parameters DESIGN.md calls out (training-set size, hidden width,
//! co-location width, phase count). Accuracy ablations live in
//! `repro ablations`.

use coloc_bench::synth::synthetic_samples;
use coloc_machine::{presets, Machine, RunOptions, RunnerGroup};
use coloc_ml::{Mlp, MlpConfig};
use coloc_model::{samples_to_dataset, FeatureSet};
use coloc_workloads::{by_name, WorkloadBuilder};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Tight measurement budget: single-CPU CI boxes should finish the whole
/// suite in minutes, and second-scale NN fits need no long sampling.
fn tighten(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
}

fn nn_cost_vs_hidden_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("nn_width");
    tighten(&mut g);
    let ds = samples_to_dataset(&synthetic_samples(400), FeatureSet::F).unwrap();
    for hidden in [10usize, 15, 20] {
        g.bench_function(format!("{hidden}_nodes"), |b| {
            b.iter(|| {
                let cfg = MlpConfig {
                    hidden,
                    seed: 1,
                    ..Default::default()
                };
                black_box(Mlp::fit(&ds, &cfg).unwrap())
            })
        });
    }
    g.finish();
}

fn nn_cost_vs_training_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("nn_train_size");
    tighten(&mut g);
    for n in [165usize, 330, 660] {
        let ds = samples_to_dataset(&synthetic_samples(n), FeatureSet::F).unwrap();
        g.bench_function(format!("{n}_samples"), |b| {
            b.iter(|| {
                let cfg = MlpConfig {
                    hidden: 20,
                    seed: 1,
                    ..Default::default()
                };
                black_box(Mlp::fit(&ds, &cfg).unwrap())
            })
        });
    }
    g.finish();
}

fn engine_cost_vs_co_runner_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_width");
    tighten(&mut g);
    let m = Machine::new(presets::xeon_e5_2697v2()).expect("valid preset");
    let canneal = by_name("canneal").unwrap().app;
    let cg = by_name("cg").unwrap().app;
    for n in [1usize, 5, 11] {
        let wl = vec![
            RunnerGroup::solo(canneal.clone()),
            RunnerGroup {
                app: cg.clone(),
                count: n,
            },
        ];
        g.bench_function(format!("{n}_co_runners"), |b| {
            b.iter(|| m.run(black_box(&wl), &RunOptions::default()).unwrap())
        });
    }
    g.finish();
}

fn engine_cost_vs_phases(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_phases");
    tighten(&mut g);
    let m = Machine::new(presets::xeon_e5649()).expect("valid preset");
    for phases in [1usize, 4, 16] {
        let mut b = WorkloadBuilder::new(format!("phased{phases}"), 100e9)
            .working_set_bytes(64 << 20)
            .accesses_per_kilo_instr(20.0);
        for k in 1..phases {
            b = b
                .then_phase(1.0 / phases as f64)
                .working_set_bytes(((k % 4) as u64 + 1) << 22);
        }
        let app = b.build();
        g.bench_function(format!("{phases}_phases"), |bch| {
            bch.iter(|| m.run_solo(black_box(&app), &RunOptions::default()).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    nn_cost_vs_hidden_width,
    nn_cost_vs_training_size,
    engine_cost_vs_co_runner_count,
    engine_cost_vs_phases
);
criterion_main!(benches);
