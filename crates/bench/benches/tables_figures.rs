//! One benchmark per paper table/figure: times the computation that
//! regenerates each artifact (at reduced scale where the full artifact
//! takes minutes — the `repro` binary produces the full versions).

use coloc_bench::synth::{synthetic_samples, tiny_real_samples};
use coloc_bench::{figures, tables};
use coloc_ml::validate::ValidationConfig;
use coloc_model::experiment::evaluate_model;
use coloc_model::{FeatureSet, ModelKind, Predictor, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Tight budget for single-CPU boxes.
fn tighten(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
}

fn static_tables(c: &mut Criterion) {
    c.bench_function("table1_features", |b| {
        b.iter(|| black_box(tables::table1()))
    });
    c.bench_function("table2_feature_sets", |b| {
        b.iter(|| black_box(tables::table2()))
    });
    c.bench_function("table4_processors", |b| {
        b.iter(|| black_box(tables::table4()))
    });
    c.bench_function("table5_training_setup", |b| {
        b.iter(|| black_box(tables::table5()))
    });
}

fn table3_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3");
    tighten(&mut g);
    let lab = coloc_bench::synth::warm_lab();
    g.bench_function("rows_from_warm_baselines", |b| {
        b.iter(|| black_box(tables::table3(&lab)))
    });
    g.finish();
}

fn table6_degradation(c: &mut Criterion) {
    // Reduced-scale Table VI: set-F models trained on the tiny real sweep,
    // predicting the canneal-vs-cg ladder on the 6-core machine.
    let mut g = c.benchmark_group("table6");
    tighten(&mut g);
    let lab = coloc_bench::synth::warm_lab();
    let samples = tiny_real_samples();
    let lin = Predictor::train(ModelKind::Linear, FeatureSet::F, samples, 1).unwrap();
    let nn = Predictor::train(ModelKind::NeuralNet, FeatureSet::F, samples, 1).unwrap();
    g.bench_function("ladder_rows_reduced", |b| {
        b.iter(|| {
            let mut rows = Vec::new();
            for n in 1..=5usize {
                let sc = Scenario::homogeneous("canneal", "cg", n, 0);
                let f = lab.featurize(&sc).unwrap();
                rows.push((n, lin.predict(&f), nn.predict(&f)));
            }
            black_box(rows)
        })
    });
    g.finish();
}

fn figs_1_to_4_grid_cell(c: &mut Criterion) {
    // One cell of the Figures 1–4 grid (one model, reduced partitions) on
    // paper-sized synthetic data.
    let mut g = c.benchmark_group("figs1_4");
    tighten(&mut g);
    let samples = synthetic_samples(400);
    let cfg = ValidationConfig {
        partitions: 2,
        ..Default::default()
    };
    g.bench_function("linear_setC_2_partitions", |b| {
        b.iter(|| evaluate_model(&samples, ModelKind::Linear, FeatureSet::C, &cfg).unwrap())
    });
    g.bench_function("nn_setF_2_partitions", |b| {
        b.iter(|| evaluate_model(&samples, ModelKind::NeuralNet, FeatureSet::F, &cfg).unwrap())
    });
    g.finish();
}

fn fig5_distributions(c: &mut Criterion) {
    // The summarization step of Figure 5 on the tiny real sweep.
    let mut g = c.benchmark_group("fig5");
    tighten(&mut g);
    let samples = tiny_real_samples();
    let nn = Predictor::train(ModelKind::NeuralNet, FeatureSet::F, samples, 2).unwrap();
    g.bench_function("percent_error_distributions", |b| {
        b.iter(|| {
            let preds = nn.predict_samples(samples);
            let actual: Vec<f64> = samples.iter().map(|s| s.actual_time_s).collect();
            black_box(coloc_ml::metrics::percent_errors(&preds, &actual))
        })
    });
    g.bench_function("split_indices_2904", |b| {
        b.iter(|| black_box(figures::split_indices(2904, 1, 7)))
    });
    g.finish();
}

criterion_group!(
    benches,
    static_tables,
    table3_baselines,
    table6_degradation,
    figs_1_to_4_grid_cell,
    fig5_distributions
);
criterion_main!(benches);
