//! Benchmarks of the prediction path — the operations a resource manager
//! would run online, so their latency matters most.

use coloc_bench::synth::{synthetic_samples, warm_lab};
use coloc_model::{FeatureSet, ModelKind, Predictor, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Tight budget for single-CPU boxes.
fn tighten(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
}

fn featurize(c: &mut Criterion) {
    let lab = warm_lab();
    let sc = Scenario::homogeneous("canneal", "cg", 4, 2);
    let hetero = Scenario {
        target: "ft".into(),
        co_located: vec![("cg".into(), 2), ("sp".into(), 1), ("ep".into(), 2)],
        pstate: 3,
    };
    c.bench_function("featurize_homogeneous", |b| {
        b.iter(|| lab.featurize(black_box(&sc)).unwrap())
    });
    c.bench_function("featurize_heterogeneous", |b| {
        b.iter(|| lab.featurize(black_box(&hetero)).unwrap())
    });
}

fn predict_latency(c: &mut Criterion) {
    let samples = synthetic_samples(400);
    let lin = Predictor::train(ModelKind::Linear, FeatureSet::F, &samples, 1).unwrap();
    let nn = Predictor::train(ModelKind::NeuralNet, FeatureSet::F, &samples, 1).unwrap();
    let f = samples[37].features;

    c.bench_function("predict_linear_setF", |b| {
        b.iter(|| lin.predict(black_box(&f)))
    });
    c.bench_function("predict_nn_setF", |b| b.iter(|| nn.predict(black_box(&f))));
}

fn scheduler_decision(c: &mut Criterion) {
    use coloc_model::scheduler::{Policy, Scheduler};
    let lab = warm_lab();
    let samples = coloc_bench::synth::tiny_real_samples();
    let nn = Predictor::train(ModelKind::NeuralNet, FeatureSet::E, samples, 1).unwrap();
    let sched = Scheduler::new(&lab, &nn, 0);
    let jobs: Vec<String> = ["cg", "cg", "canneal", "sp", "ep", "ep", "ft", "ua"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut g = c.benchmark_group("scheduler");
    tighten(&mut g);
    g.bench_function("place_8_jobs_2_sockets", |b| {
        b.iter(|| {
            sched
                .place(black_box(&jobs), 2, Policy::LeastInterference)
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, featurize, predict_latency, scheduler_decision);
criterion_main!(benches);
