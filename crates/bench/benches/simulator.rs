//! Benchmarks of the simulation substrate: the co-execution engine, the
//! shared-cache occupancy solver, and the exact cache analyzers.

use coloc_cachesim::{
    shared_occupancy, SetAssocCache, SharedApp, StackAnalyzer, StackDistanceDist, StreamGen,
};
use coloc_machine::{presets, Machine, RunOptions, RunnerGroup};
use coloc_workloads::by_name;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Tight budget for single-CPU boxes.
fn tighten(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
}

fn engine_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    tighten(&mut g);
    let m6 = Machine::new(presets::xeon_e5649()).expect("valid preset");
    let m12 = Machine::new(presets::xeon_e5_2697v2()).expect("valid preset");
    let canneal = by_name("canneal").unwrap().app;
    let cg = by_name("cg").unwrap().app;

    g.bench_function("solo_canneal_6core", |b| {
        b.iter(|| {
            m6.run_solo(black_box(&canneal), &RunOptions::default())
                .unwrap()
        })
    });
    let wl5 = vec![
        RunnerGroup::solo(canneal.clone()),
        RunnerGroup {
            app: cg.clone(),
            count: 5,
        },
    ];
    g.bench_function("canneal_5cg_6core", |b| {
        b.iter(|| m6.run(black_box(&wl5), &RunOptions::default()).unwrap())
    });
    let wl11 = vec![
        RunnerGroup::solo(canneal.clone()),
        RunnerGroup {
            app: cg.clone(),
            count: 11,
        },
    ];
    g.bench_function("canneal_11cg_12core", |b| {
        b.iter(|| m12.run(black_box(&wl11), &RunOptions::default()).unwrap())
    });
    g.finish();
}

fn occupancy_solver(c: &mut Criterion) {
    let mut g = c.benchmark_group("occupancy");
    tighten(&mut g);
    for n in [2usize, 6, 12] {
        let apps: Vec<SharedApp> = (0..n)
            .map(|i| SharedApp {
                access_rate: 1.0 + i as f64,
                mrc: StackDistanceDist::power_law(100_000 * (i + 1), 0.7, 0.01).miss_rate_curve(),
            })
            .collect();
        g.bench_function(format!("fixed_point_{n}_apps"), |b| {
            b.iter(|| shared_occupancy(black_box(30 << 20), black_box(&apps)))
        });
    }
    g.finish();
}

fn exact_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_cache");
    tighten(&mut g);
    let dist = StackDistanceDist::power_law(2000, 0.9, 0.01);
    let trace = StreamGen::new(dist, 7, 0).take_trace(100_000);

    g.bench_function("mattson_100k_accesses", |b| {
        b.iter_batched(
            StackAnalyzer::new,
            |mut an| {
                an.access_all(trace.iter().copied());
                black_box(an.misses_at(1024))
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("set_assoc_16way_100k_accesses", |b| {
        b.iter_batched(
            || {
                SetAssocCache::new(
                    coloc_cachesim::CacheConfig {
                        capacity_bytes: 1024 * 64,
                        line_bytes: 64,
                        ways: 16,
                    },
                    1,
                )
            },
            |mut cache| {
                for &l in &trace {
                    cache.access(0, l);
                }
                black_box(cache.stats(0).misses)
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn stream_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream");
    tighten(&mut g);
    g.bench_function("generate_10k_accesses_span1k", |b| {
        b.iter_batched(
            || StreamGen::new(StackDistanceDist::power_law(1000, 0.8, 0.01), 3, 0),
            |mut gen| black_box(gen.take_trace(10_000)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("mrc_from_8M_line_span", |b| {
        b.iter(|| {
            let d = StackDistanceDist::power_law(black_box(8_000_000), 0.4, 0.02);
            black_box(d.miss_rate_curve())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    engine_runs,
    occupancy_solver,
    exact_cache,
    stream_generation
);
criterion_main!(benches);
