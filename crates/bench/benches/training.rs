//! Benchmarks of model training: linear least squares, the SCG-trained
//! neural network, the per-partition validation step, and PCA ranking.

use coloc_bench::synth::synthetic_samples;
use coloc_model::experiment::rank_features;
use coloc_model::{samples_to_dataset, FeatureSet, ModelKind, Predictor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// Tight budget for second-scale NN fits on single-CPU boxes.
fn tighten(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
}

fn linear_training(c: &mut Criterion) {
    let mut g = c.benchmark_group("train_linear");
    for n in [330usize, 1320, 2904] {
        let samples = synthetic_samples(n);
        g.bench_function(format!("setF_{n}_samples"), |b| {
            b.iter(|| {
                Predictor::train(ModelKind::Linear, FeatureSet::F, black_box(&samples), 1).unwrap()
            })
        });
    }
    g.finish();
}

fn nn_training(c: &mut Criterion) {
    let mut g = c.benchmark_group("train_nn");
    tighten(&mut g);
    let samples = synthetic_samples(400);
    for set in [FeatureSet::A, FeatureSet::D, FeatureSet::F] {
        g.bench_function(format!("set{set}_400_samples"), |b| {
            b.iter(|| Predictor::train(ModelKind::NeuralNet, set, black_box(&samples), 1).unwrap())
        });
    }
    g.finish();
}

fn validation_partition(c: &mut Criterion) {
    // One partition of the Figures 1–4 protocol: split, fit, score.
    let mut g = c.benchmark_group("validation_partition");
    tighten(&mut g);
    let samples = synthetic_samples(400);
    let ds = samples_to_dataset(&samples, FeatureSet::F).unwrap();
    g.bench_function("linear_setF", |b| {
        b.iter(|| {
            let (train, test) = ds.split(0.30, 1, 0);
            let m = coloc_ml::LinearRegression::fit(&train).unwrap();
            let preds = m.predict_all(&test);
            black_box(coloc_ml::metrics::mpe(&preds, test.y()))
        })
    });
    g.bench_function("nn_setF", |b| {
        b.iter(|| {
            let (train, test) = ds.split(0.30, 1, 0);
            let cfg = coloc_ml::MlpConfig::for_features(8, 1);
            let m = coloc_ml::Mlp::fit(&train, &cfg).unwrap();
            let preds = m.predict_all(&test);
            black_box(coloc_ml::metrics::mpe(&preds, test.y()))
        })
    });
    g.finish();
}

fn pca_ranking(c: &mut Criterion) {
    let samples = synthetic_samples(1320);
    c.bench_function("pca_rank_8_features_1320_samples", |b| {
        b.iter(|| rank_features(black_box(&samples)).unwrap())
    });
}

criterion_group!(
    benches,
    linear_training,
    nn_training,
    validation_partition,
    pca_ranking
);
criterion_main!(benches);
