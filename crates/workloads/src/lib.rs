//! # coloc-workloads
//!
//! The benchmark suite: eleven synthetic scientific applications standing
//! in for the PARSEC and NAS programs of paper Table III.
//!
//! The original study characterizes each benchmark by one number — its
//! baseline *memory intensity* (LLC misses per instruction measured solo) —
//! and groups the eleven into four classes whose intensities differ by
//! orders of magnitude:
//!
//! * **Class I** (most memory-bound, MI ~ 10⁻²): `cg`, `streamcluster`, `mg`
//! * **Class II** (MI ~ 10⁻³): `sp`, `canneal`, `ft`
//! * **Class III** (MI ~ 10⁻⁴): `fluidanimate`, `bodytrack`, `ua`
//! * **Class IV** (CPU-bound, MI ~ 10⁻⁶): `blackscholes`, `ep`
//!
//! The training co-runners (`cg`, `sp`, `fluidanimate`, `ep`) represent one
//! class each, exactly as in §IV-B3. Each synthetic application is an
//! [`coloc_machine::AppProfile`] whose working-set size, locality exponent,
//! LLC access rate, base CPI and memory-level parallelism were chosen so
//! its *measured* solo behaviour on the simulated Xeon E5649 falls in the
//! right class band (verified by this crate's tests — the numbers are
//! calibrated against the simulator, not asserted into it).
//!
//! [`builder::WorkloadBuilder`] constructs custom applications for users
//! bringing their own workloads to the methodology.

pub mod builder;
pub mod classes;
pub mod suite;

pub use builder::WorkloadBuilder;
pub use classes::MemoryClass;
pub use suite::{by_name, standard, training_co_runners, Benchmark, Suite};
