//! A fluent builder for custom synthetic workloads.
//!
//! The methodology is "general enough to be applicable to any set of
//! applications" (paper §I); this builder is how a user brings their own.
//! Specify the working set and access behaviour in natural units (bytes,
//! accesses per kilo-instruction, seconds of intended solo runtime) and get
//! an [`AppProfile`] the simulator and the modeling pipeline accept.

use coloc_machine::cachesim::{StackDistanceDist, LINE_BYTES};
use coloc_machine::{AppPhase, AppProfile};

/// Builder for a single-phase (or staged multi-phase) synthetic workload.
#[derive(Clone, Debug)]
pub struct WorkloadBuilder {
    name: String,
    instructions: f64,
    phases: Vec<(f64, PhaseSpec)>,
}

#[derive(Clone, Debug)]
struct PhaseSpec {
    working_set_bytes: u64,
    locality_alpha: f64,
    churn: f64,
    apki: f64,
    cpi_base: f64,
    mlp: f64,
}

impl Default for PhaseSpec {
    fn default() -> Self {
        PhaseSpec {
            working_set_bytes: 8 << 20,
            locality_alpha: 1.0,
            churn: 0.01,
            apki: 10.0,
            cpi_base: 0.9,
            mlp: 4.0,
        }
    }
}

impl WorkloadBuilder {
    /// Start a builder for an app named `name` retiring `instructions`
    /// total instructions.
    pub fn new(name: impl Into<String>, instructions: f64) -> WorkloadBuilder {
        WorkloadBuilder {
            name: name.into(),
            instructions,
            phases: vec![(1.0, PhaseSpec::default())],
        }
    }

    fn current(&mut self) -> &mut PhaseSpec {
        &mut self.phases.last_mut().expect("at least one phase").1
    }

    /// Working-set size in bytes (translated to a reuse span in lines).
    pub fn working_set_bytes(mut self, bytes: u64) -> Self {
        self.current().working_set_bytes = bytes.max(LINE_BYTES);
        self
    }

    /// Locality exponent: higher = tighter reuse (default 1.0).
    pub fn locality_alpha(mut self, alpha: f64) -> Self {
        self.current().locality_alpha = alpha;
        self
    }

    /// Fraction of accesses touching brand-new data (streaming churn,
    /// default 0.01).
    pub fn churn(mut self, p_new: f64) -> Self {
        self.current().churn = p_new;
        self
    }

    /// LLC accesses per **kilo**-instruction (default 10).
    pub fn accesses_per_kilo_instr(mut self, apki: f64) -> Self {
        self.current().apki = apki;
        self
    }

    /// Base CPI excluding LLC-miss stalls (default 0.9).
    pub fn cpi_base(mut self, cpi: f64) -> Self {
        self.current().cpi_base = cpi;
        self
    }

    /// Memory-level parallelism (default 4).
    pub fn mlp(mut self, mlp: f64) -> Self {
        self.current().mlp = mlp;
        self
    }

    /// Close the current phase at `weight` fraction of instructions and
    /// open a new one (inheriting the previous phase's settings).
    pub fn then_phase(mut self, weight_so_far: f64) -> Self {
        let spec = self.phases.last().expect("phase").1.clone();
        self.phases.last_mut().expect("phase").0 = weight_so_far;
        self.phases.push((0.0, spec));
        self
    }

    /// Build the profile. Phase weights are normalized; the final phase
    /// absorbs the remainder.
    ///
    /// # Panics
    /// Panics if the resulting profile fails validation (zero instructions,
    /// non-positive weights…).
    pub fn build(mut self) -> AppProfile {
        // Final phase weight = remainder.
        let assigned: f64 = self.phases[..self.phases.len() - 1]
            .iter()
            .map(|(w, _)| w)
            .sum();
        self.phases.last_mut().expect("phase").0 = (1.0 - assigned).max(0.0);
        let phases = self
            .phases
            .iter()
            .filter(|(w, _)| *w > 0.0)
            .map(|(w, s)| AppPhase {
                weight: *w,
                dist: StackDistanceDist::power_law(
                    (s.working_set_bytes / LINE_BYTES).max(1) as usize,
                    s.locality_alpha,
                    s.churn,
                ),
                accesses_per_instr: s.apki / 1000.0,
                cpi_base: s.cpi_base,
                mlp: s.mlp,
            })
            .collect();
        let app = AppProfile {
            name: self.name,
            instructions: self.instructions,
            phases,
        };
        app.validate()
            .unwrap_or_else(|e| panic!("WorkloadBuilder produced invalid profile: {e}"));
        app
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_build_is_valid() {
        let app = WorkloadBuilder::new("custom", 1e9).build();
        app.validate().unwrap();
        assert_eq!(app.phases.len(), 1);
        assert_eq!(app.phases[0].weight, 1.0);
        assert!((app.phases[0].accesses_per_instr - 0.01).abs() < 1e-12);
    }

    #[test]
    fn settings_are_applied() {
        let app = WorkloadBuilder::new("w", 5e9)
            .working_set_bytes(64 << 20)
            .locality_alpha(0.5)
            .churn(0.05)
            .accesses_per_kilo_instr(25.0)
            .cpi_base(1.2)
            .mlp(6.0)
            .build();
        let p = &app.phases[0];
        assert_eq!(p.dist.reuse_span, (64 << 20) / 64);
        assert_eq!(p.dist.alpha, 0.5);
        assert_eq!(p.dist.p_new, 0.05);
        assert!((p.accesses_per_instr - 0.025).abs() < 1e-12);
        assert_eq!(p.cpi_base, 1.2);
        assert_eq!(p.mlp, 6.0);
    }

    #[test]
    fn multi_phase_weights_normalize() {
        let app = WorkloadBuilder::new("w", 1e9)
            .working_set_bytes(1 << 20)
            .then_phase(0.3)
            .working_set_bytes(100 << 20)
            .build();
        assert_eq!(app.phases.len(), 2);
        assert!((app.phases[0].weight - 0.3).abs() < 1e-12);
        assert!((app.phases[1].weight - 0.7).abs() < 1e-12);
        assert!(app.phases[1].dist.reuse_span > app.phases[0].dist.reuse_span);
        app.validate().unwrap();
    }

    #[test]
    fn tiny_working_set_clamps_to_one_line() {
        let app = WorkloadBuilder::new("w", 1e9).working_set_bytes(1).build();
        assert_eq!(app.phases[0].dist.reuse_span, 1);
    }

    #[test]
    #[should_panic(expected = "invalid profile")]
    fn zero_instructions_panics() {
        WorkloadBuilder::new("w", 0.0).build();
    }
}
