//! Memory-intensity classes (paper Table III).
//!
//! Classes let a resource manager that only roughly knows how
//! memory-intensive an application is still use the prediction models, by
//! substituting class-average feature values (paper §IV-B1).

/// The four memory-intensity classes. Class I is the most memory-bound
//  (highest LLC misses per instruction); Class IV the most CPU-bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum MemoryClass {
    /// Most memory intensive (MI ≳ 5·10⁻³).
    I,
    /// MI in [5·10⁻⁴, 5·10⁻³).
    II,
    /// MI in [2·10⁻⁵, 5·10⁻⁴).
    III,
    /// Least memory intensive (MI < 2·10⁻⁵).
    IV,
}

impl MemoryClass {
    /// All classes, most to least intensive.
    pub const ALL: [MemoryClass; 4] = [
        MemoryClass::I,
        MemoryClass::II,
        MemoryClass::III,
        MemoryClass::IV,
    ];

    /// Memory-intensity band `[lo, hi)` for this class. Bands tile the
    /// full range with order-of-magnitude separation between class centers,
    /// matching the paper's observation that "memory intensity values
    /// between application classes tend to differ by orders of magnitude".
    pub fn band(&self) -> (f64, f64) {
        match self {
            MemoryClass::I => (5e-3, 1.0),
            MemoryClass::II => (5e-4, 5e-3),
            MemoryClass::III => (2e-5, 5e-4),
            MemoryClass::IV => (0.0, 2e-5),
        }
    }

    /// Classify a measured memory intensity.
    pub fn classify(memory_intensity: f64) -> MemoryClass {
        for c in MemoryClass::ALL {
            let (lo, hi) = c.band();
            if memory_intensity >= lo && memory_intensity < hi {
                return c;
            }
        }
        // >= 1.0 is impossible for MI but classify defensively as Class I.
        MemoryClass::I
    }

    /// Geometric center of the class band — the "average value for that
    /// application's class" a developer would plug into the models when
    /// exact measurements are unavailable (§IV-B1).
    pub fn representative_intensity(&self) -> f64 {
        match self {
            // Class I's band is open-ended upward; use the suite's region.
            MemoryClass::I => 1.2e-2,
            MemoryClass::II => (5e-4f64 * 5e-3).sqrt(),
            MemoryClass::III => (2e-5f64 * 5e-4).sqrt(),
            MemoryClass::IV => 2e-6,
        }
    }

    /// Roman-numeral label as in the paper ("Class I" … "Class IV").
    pub fn label(&self) -> &'static str {
        match self {
            MemoryClass::I => "Class I",
            MemoryClass::II => "Class II",
            MemoryClass::III => "Class III",
            MemoryClass::IV => "Class IV",
        }
    }
}

impl std::fmt::Display for MemoryClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_tile_without_gaps() {
        for w in MemoryClass::ALL.windows(2) {
            let (lo_hi, _) = w[0].band();
            let (_, hi_lo) = w[1].band();
            assert_eq!(lo_hi, hi_lo, "{:?}/{:?}", w[0], w[1]);
        }
    }

    #[test]
    fn classification_round_trips_representatives() {
        for c in MemoryClass::ALL {
            assert_eq!(MemoryClass::classify(c.representative_intensity()), c);
        }
    }

    #[test]
    fn classify_known_values() {
        assert_eq!(MemoryClass::classify(2e-2), MemoryClass::I);
        assert_eq!(MemoryClass::classify(1e-3), MemoryClass::II);
        assert_eq!(MemoryClass::classify(1e-4), MemoryClass::III);
        assert_eq!(MemoryClass::classify(1e-6), MemoryClass::IV);
        assert_eq!(MemoryClass::classify(0.0), MemoryClass::IV);
    }

    #[test]
    fn ordering_matches_intensity() {
        assert!(MemoryClass::I < MemoryClass::IV);
        let mut prev = f64::INFINITY;
        for c in MemoryClass::ALL {
            let r = c.representative_intensity();
            assert!(r < prev);
            prev = r;
        }
    }
}
