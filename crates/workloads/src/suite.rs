//! The eleven-application benchmark suite (paper Table III).

use crate::classes::MemoryClass;
use coloc_machine::cachesim::StackDistanceDist;
use coloc_machine::{AppPhase, AppProfile};

/// Which benchmark suite an application was drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Suite {
    /// PARSEC (denoted "(P)" in Table III).
    Parsec,
    /// NAS Parallel Benchmarks (denoted "(N)").
    Nas,
}

impl Suite {
    /// The paper's one-letter tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Suite::Parsec => "P",
            Suite::Nas => "N",
        }
    }
}

/// One suite application: identity plus its simulator profile.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Application name as in Table III.
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Memory-intensity class the app is documented to fall in (verified
    /// against measurement by this crate's tests).
    pub class: MemoryClass,
    /// The simulator profile.
    pub app: AppProfile,
}

fn phase(
    span_lines: usize,
    alpha: f64,
    p_new: f64,
    apki: f64,
    cpi: f64,
    mlp: f64,
    weight: f64,
) -> AppPhase {
    AppPhase {
        weight,
        dist: StackDistanceDist::power_law(span_lines, alpha, p_new),
        accesses_per_instr: apki,
        cpi_base: cpi,
        mlp,
    }
}

fn single(
    name: &'static str,
    suite: Suite,
    class: MemoryClass,
    instructions: f64,
    ph: AppPhase,
) -> Benchmark {
    Benchmark {
        name,
        suite,
        class,
        app: AppProfile::single_phase(name, instructions, ph),
    }
}

/// The full eleven-application suite.
///
/// Working-set spans are in cache lines (64 B each); e.g. 3,000,000 lines ≈
/// 192 MiB, far beyond either machine's LLC, while 120,000 lines ≈ 7.3 MiB
/// fits the 12 MiB E5649 LLC with room to spare. Parameters are calibrated
/// so measured solo memory intensity on the simulated E5649 lands in each
/// app's documented class band and baseline execution times at the top
/// P-state span roughly 150–700 s, mirroring the paper's "150 seconds to
/// over 1000" across P-states.
pub fn standard() -> Vec<Benchmark> {
    vec![
        // ---- Class I: memory-bound streamers -------------------------
        // NAS CG: sparse conjugate gradient — huge irregular working set.
        single(
            "cg",
            Suite::Nas,
            MemoryClass::I,
            620e9,
            phase(3_000_000, 0.75, 0.020, 0.036, 0.85, 5.0, 1.0),
        ),
        // PARSEC streamcluster: streaming k-median clustering.
        single(
            "streamcluster",
            Suite::Parsec,
            MemoryClass::I,
            520e9,
            phase(2_000_000, 0.75, 0.015, 0.028, 0.80, 4.5, 1.0),
        ),
        // NAS MG: multigrid — large strided sweeps.
        single(
            "mg",
            Suite::Nas,
            MemoryClass::I,
            700e9,
            phase(1_500_000, 0.70, 0.012, 0.020, 0.90, 5.5, 1.0),
        ),
        // ---- Class II: working sets a few × the LLC ------------------
        // NAS SP: scalar pentadiagonal solver.
        single(
            "sp",
            Suite::Nas,
            MemoryClass::II,
            800e9,
            phase(600_000, 0.90, 0.010, 0.022, 0.95, 4.0, 1.0),
        ),
        // PARSEC canneal: simulated annealing over a netlist —
        // pointer-chasing, low MLP.
        single(
            "canneal",
            Suite::Parsec,
            MemoryClass::II,
            480e9,
            phase(1_000_000, 1.00, 0.010, 0.012, 1.05, 2.0, 1.0),
        ),
        // NAS FT: 3-D FFT — alternating compute and all-to-all transpose
        // phases (the suite's showcase multi-phase profile).
        Benchmark {
            name: "ft",
            suite: Suite::Nas,
            class: MemoryClass::II,
            app: AppProfile {
                name: "ft".into(),
                instructions: 750e9,
                phases: vec![
                    // compute-heavy butterfly phase
                    phase(200_000, 1.10, 0.004, 0.010, 0.80, 4.0, 0.6),
                    // transpose phase: streams the full volume
                    phase(900_000, 0.85, 0.015, 0.024, 0.95, 5.0, 0.4),
                ],
            },
        },
        // ---- Class III: LLC-resident working sets --------------------
        // PARSEC fluidanimate: SPH fluid dynamics — grid mostly fits.
        single(
            "fluidanimate",
            Suite::Parsec,
            MemoryClass::III,
            900e9,
            phase(150_000, 1.20, 0.004, 0.050, 0.75, 3.0, 1.0),
        ),
        // PARSEC bodytrack: computer-vision pipeline, two stages.
        Benchmark {
            name: "bodytrack",
            suite: Suite::Parsec,
            class: MemoryClass::III,
            app: AppProfile {
                name: "bodytrack".into(),
                instructions: 650e9,
                phases: vec![
                    phase(100_000, 1.25, 0.003, 0.045, 0.72, 3.0, 0.7),
                    phase(160_000, 1.10, 0.004, 0.050, 0.78, 3.0, 0.3),
                ],
            },
        },
        // NAS UA: unstructured adaptive mesh — irregular but cached.
        single(
            "ua",
            Suite::Nas,
            MemoryClass::III,
            780e9,
            phase(120_000, 1.20, 0.002, 0.040, 0.80, 3.5, 1.0),
        ),
        // ---- Class IV: CPU-bound ------------------------------------
        // PARSEC blackscholes: option pricing — tiny hot data.
        single(
            "blackscholes",
            Suite::Parsec,
            MemoryClass::IV,
            1_000e9,
            phase(5_000, 1.50, 0.0075, 4e-4, 0.65, 2.0, 1.0),
        ),
        // NAS EP: embarrassingly parallel random-number kernel.
        single(
            "ep",
            Suite::Nas,
            MemoryClass::IV,
            1_100e9,
            phase(2_000, 1.50, 0.0050, 2e-4, 0.60, 2.0, 1.0),
        ),
    ]
}

/// Look up a benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    standard().into_iter().find(|b| b.name == name)
}

/// The four training co-runners of §IV-B3, one per memory-intensity class:
/// `cg` (I), `sp` (II), `fluidanimate` (III), `ep` (IV).
pub fn training_co_runners() -> Vec<Benchmark> {
    ["cg", "sp", "fluidanimate", "ep"]
        .iter()
        .map(|n| by_name(n).expect("training co-runner in suite"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_valid_apps() {
        let suite = standard();
        assert_eq!(suite.len(), 11);
        for b in &suite {
            b.app.validate().unwrap();
            assert_eq!(b.app.name, b.name);
        }
    }

    #[test]
    fn names_are_unique() {
        let suite = standard();
        let mut names: Vec<_> = suite.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn class_representation() {
        let suite = standard();
        for class in MemoryClass::ALL {
            let n = suite.iter().filter(|b| b.class == class).count();
            assert!(n >= 2 || class == MemoryClass::IV, "{class} has {n}");
        }
        // Both source suites are represented (paper Table III mixes P and N).
        assert!(suite.iter().any(|b| b.suite == Suite::Parsec));
        assert!(suite.iter().any(|b| b.suite == Suite::Nas));
    }

    #[test]
    fn training_co_runners_cover_all_classes() {
        let co = training_co_runners();
        assert_eq!(co.len(), 4);
        let classes: Vec<_> = co.iter().map(|b| b.class).collect();
        assert_eq!(
            classes,
            vec![
                MemoryClass::I,
                MemoryClass::II,
                MemoryClass::III,
                MemoryClass::IV
            ]
        );
    }

    #[test]
    fn by_name_works() {
        assert!(by_name("canneal").is_some());
        assert!(by_name("doom").is_none());
    }

    #[test]
    fn suite_tags() {
        assert_eq!(Suite::Parsec.tag(), "P");
        assert_eq!(Suite::Nas.tag(), "N");
    }
}
