//! Calibration tests: the suite's *measured* solo behaviour on the
//! simulated Xeon E5649 must match what Table III documents. These tests
//! are the contract between the workload parameters and the paper's
//! experimental setup — if a profile drifts out of its class band, the
//! downstream experiments stop resembling the paper's.

use coloc_machine::{presets, Machine, RunOptions};
use coloc_workloads::{standard, MemoryClass};

#[test]
fn each_app_lands_in_its_documented_class_band() {
    let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
    for b in standard() {
        let out = machine.run_solo(&b.app, &RunOptions::default()).unwrap();
        let mi = out.counters[0].memory_intensity();
        let measured_class = MemoryClass::classify(mi);
        assert_eq!(
            measured_class, b.class,
            "{}: measured MI {:.3e} classifies as {measured_class}, documented {}",
            b.name, mi, b.class
        );
    }
}

#[test]
fn baseline_times_span_the_papers_range() {
    // Paper §III-E: actual values range from ~150 s to over 1000 s across
    // apps and P-states. Check the suite spreads over that kind of range.
    let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
    let mut fastest = f64::INFINITY;
    let mut slowest = 0.0f64;
    for b in standard() {
        let top = machine
            .run_solo(&b.app, &RunOptions::default())
            .unwrap()
            .wall_time_s;
        let low = machine
            .run_solo(
                &b.app,
                &RunOptions {
                    pstate: 5,
                    ..Default::default()
                },
            )
            .unwrap()
            .wall_time_s;
        assert!(low > top, "{}: P5 should be slower", b.name);
        fastest = fastest.min(top);
        slowest = slowest.max(low);
        assert!(
            (100.0..2000.0).contains(&top),
            "{}: baseline {top:.0}s out of plausible range",
            b.name
        );
    }
    assert!(fastest < 400.0, "fastest baseline {fastest:.0}s");
    assert!(slowest > 500.0, "slowest baseline {slowest:.0}s");
}

#[test]
fn classes_are_ordered_by_measured_intensity() {
    let machine = Machine::new(presets::xeon_e5649()).expect("valid preset");
    let mut by_class: Vec<(MemoryClass, f64)> = standard()
        .iter()
        .map(|b| {
            let mi = machine
                .run_solo(&b.app, &RunOptions::default())
                .unwrap()
                .counters[0]
                .memory_intensity();
            (b.class, mi)
        })
        .collect();
    by_class.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    // Sorted by measured MI descending, the class sequence must be
    // non-decreasing (I, I, …, II, …, III, …, IV).
    for w in by_class.windows(2) {
        assert!(
            w[0].0 <= w[1].0,
            "intensity ordering violates class ordering: {by_class:?}"
        );
    }
}

#[test]
fn memory_intensity_is_portable_across_machines() {
    // Paper §IV-B1: "memory intensity values do not vary widely between
    // the machines we tested" — class membership must be machine-invariant.
    let small = Machine::new(presets::xeon_e5649()).expect("valid preset");
    let big = Machine::new(presets::xeon_e5_2697v2()).expect("valid preset");
    for b in standard() {
        let mi_small = small
            .run_solo(&b.app, &RunOptions::default())
            .unwrap()
            .counters[0]
            .memory_intensity();
        let mi_big = big
            .run_solo(&b.app, &RunOptions::default())
            .unwrap()
            .counters[0]
            .memory_intensity();
        assert_eq!(
            MemoryClass::classify(mi_big),
            b.class,
            "{}: MI {mi_big:.3e} on 12-core leaves band ({} on 6-core: {mi_small:.3e})",
            b.name,
            b.class
        );
    }
}
