//! Print the suite's measured solo characteristics on both machines —
//! handy when recalibrating workload parameters.

use coloc_machine::{presets, Machine, RunOptions};
use coloc_workloads::standard;

fn main() {
    for spec in [presets::xeon_e5649(), presets::xeon_e5_2697v2()] {
        let machine = Machine::new(spec).expect("valid preset");
        println!("== {} ==", machine.spec().name);
        println!(
            "{:<14} {:>6} {:>10} {:>10} {:>10} {:>9} {:>9}",
            "app", "class", "MI", "CM/CA", "CA/INS", "t@P0 (s)", "t@P5 (s)"
        );
        for b in standard() {
            let top = machine.run_solo(&b.app, &RunOptions::default()).unwrap();
            let low = machine
                .run_solo(
                    &b.app,
                    &RunOptions {
                        pstate: 5,
                        ..Default::default()
                    },
                )
                .unwrap();
            let c = &top.counters[0];
            println!(
                "{:<14} {:>6} {:>10.3e} {:>10.4} {:>10.5} {:>9.0} {:>9.0}",
                b.name,
                b.class.label().trim_start_matches("Class "),
                c.memory_intensity(),
                c.miss_ratio(),
                c.access_ratio(),
                top.wall_time_s,
                low.wall_time_s
            );
        }
    }
}
