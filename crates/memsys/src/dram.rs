//! DRAM latency under load.
//!
//! The model: a miss's average service time is
//!
//! ```text
//! L(ρ, s) = L_idle + L_queue · ρ/(1 − ρ)  (capped at L_max)
//!           + L_bank · bank_conflict(s)
//! ```
//!
//! where `ρ` is channel utilization (offered bandwidth / peak bandwidth,
//! clamped below 1) and `s` is the number of concurrently active access
//! streams. The `ρ/(1−ρ)` term is the M/M/1 waiting-time factor — the
//! simplest queueing form with the right qualitative shape (flat at low
//! load, explosive near saturation); the cap models the finite queue of a
//! real memory controller. The bank term models row-buffer interference:
//! each additional independent stream makes row hits rarer, saturating once
//! streams outnumber banks.

/// Static description of a platform's memory subsystem.
#[derive(Clone, Copy, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DramSpec {
    /// Peak sustainable bandwidth, bytes/second.
    pub peak_bw_bytes_per_sec: f64,
    /// Unloaded (idle) access latency, nanoseconds.
    pub idle_latency_ns: f64,
    /// Scale of the queueing term, nanoseconds.
    pub queue_latency_ns: f64,
    /// Hard cap on total queueing delay, nanoseconds (finite MC queue).
    pub max_queue_ns: f64,
    /// Row-buffer interference penalty scale, nanoseconds.
    pub bank_penalty_ns: f64,
    /// Number of independent banks (streams beyond this saturate the
    /// bank-conflict term).
    pub banks: usize,
}

impl DramSpec {
    /// Triple-channel DDR3-1333 — the Westmere-EP Xeon E5649 platform.
    /// Peak = 3 channels × 10.667 GB/s.
    pub fn ddr3_1333_triple_channel() -> DramSpec {
        DramSpec {
            peak_bw_bytes_per_sec: 32.0e9,
            idle_latency_ns: 65.0,
            queue_latency_ns: 14.0,
            max_queue_ns: 320.0,
            bank_penalty_ns: 9.0,
            banks: 24,
        }
    }

    /// Quad-channel DDR3-1866 — the Ivy Bridge-EP Xeon E5-2697 v2 platform.
    /// Peak = 4 channels × 14.933 GB/s.
    pub fn ddr3_1866_quad_channel() -> DramSpec {
        DramSpec {
            peak_bw_bytes_per_sec: 59.7e9,
            idle_latency_ns: 62.0,
            queue_latency_ns: 12.0,
            max_queue_ns: 300.0,
            bank_penalty_ns: 8.0,
            banks: 32,
        }
    }
}

/// A memory system evaluating latency under offered load.
#[derive(Clone, Copy, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemorySystem {
    spec: DramSpec,
}

impl MemorySystem {
    /// Wrap a spec.
    pub fn new(spec: DramSpec) -> MemorySystem {
        assert!(
            spec.peak_bw_bytes_per_sec > 0.0,
            "peak bandwidth must be positive"
        );
        assert!(spec.idle_latency_ns > 0.0, "idle latency must be positive");
        MemorySystem { spec }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &DramSpec {
        &self.spec
    }

    /// Channel utilization for an offered bandwidth, clamped to `[0, 0.99]`
    /// (demand beyond peak queues up; effective ρ saturates).
    pub fn utilization(&self, offered_bytes_per_sec: f64) -> f64 {
        (offered_bytes_per_sec.max(0.0) / self.spec.peak_bw_bytes_per_sec).clamp(0.0, 0.99)
    }

    /// Average access latency (ns) at an offered aggregate bandwidth with
    /// `streams` concurrently active miss streams.
    pub fn access_latency_ns(&self, offered_bytes_per_sec: f64, streams: usize) -> f64 {
        let rho = self.utilization(offered_bytes_per_sec);
        let queue = (self.spec.queue_latency_ns * rho / (1.0 - rho)).min(self.spec.max_queue_ns);
        self.spec.idle_latency_ns + queue + self.bank_conflict_ns(streams)
    }

    /// Row-buffer interference penalty: zero for a single stream, growing
    /// and saturating as streams approach the bank count.
    pub fn bank_conflict_ns(&self, streams: usize) -> f64 {
        if streams <= 1 {
            return 0.0;
        }
        let x = (streams - 1) as f64 / self.spec.banks as f64;
        // Saturating exponential: ≈ linear at first, flat beyond ~2×banks.
        self.spec.bank_penalty_ns * self.spec.banks as f64 * 0.5 * (1.0 - (-2.0 * x).exp())
    }

    /// Effective per-stream service bandwidth (bytes/sec) when the channel
    /// is saturated — demand above peak is shared proportionally.
    pub fn granted_bandwidth(&self, demand_bytes_per_sec: f64) -> f64 {
        demand_bytes_per_sec.min(self.spec.peak_bw_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(DramSpec::ddr3_1333_triple_channel())
    }

    #[test]
    fn idle_latency_at_zero_load() {
        let m = sys();
        assert_eq!(m.access_latency_ns(0.0, 1), m.spec().idle_latency_ns);
    }

    #[test]
    fn latency_monotone_in_load() {
        let m = sys();
        let mut prev = 0.0;
        for i in 0..100 {
            let bw = i as f64 * 0.5e9;
            let l = m.access_latency_ns(bw, 1);
            assert!(l >= prev, "at {bw}");
            prev = l;
        }
    }

    #[test]
    fn latency_convex_near_saturation() {
        // The increase from 80%→90% must exceed the increase from 10%→20%.
        let m = sys();
        let peak = m.spec().peak_bw_bytes_per_sec;
        let low_rise = m.access_latency_ns(0.2 * peak, 1) - m.access_latency_ns(0.1 * peak, 1);
        let high_rise = m.access_latency_ns(0.9 * peak, 1) - m.access_latency_ns(0.8 * peak, 1);
        assert!(high_rise > 3.0 * low_rise, "{high_rise} vs {low_rise}");
    }

    #[test]
    fn latency_bounded_even_beyond_peak() {
        let m = sys();
        let l = m.access_latency_ns(1e15, 200);
        let s = m.spec();
        let bound = s.idle_latency_ns + s.max_queue_ns + s.bank_penalty_ns * s.banks as f64;
        assert!(l <= bound, "{l} > {bound}");
        assert!(l.is_finite());
    }

    #[test]
    fn bank_conflicts_grow_then_saturate() {
        let m = sys();
        assert_eq!(m.bank_conflict_ns(0), 0.0);
        assert_eq!(m.bank_conflict_ns(1), 0.0);
        let few = m.bank_conflict_ns(4);
        let some = m.bank_conflict_ns(12);
        let many = m.bank_conflict_ns(48);
        let lots = m.bank_conflict_ns(96);
        assert!(few > 0.0);
        assert!(some > few);
        assert!(many > some);
        // Saturation: doubling streams far past the bank count changes little.
        assert!((lots - many) < (some - few));
    }

    #[test]
    fn utilization_clamped() {
        let m = sys();
        assert_eq!(m.utilization(-5.0), 0.0);
        assert!(m.utilization(1e18) <= 0.99);
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        // The 12-core platform has more bandwidth and more banks.
        let small = DramSpec::ddr3_1333_triple_channel();
        let big = DramSpec::ddr3_1866_quad_channel();
        assert!(big.peak_bw_bytes_per_sec > small.peak_bw_bytes_per_sec);
        assert!(big.banks > small.banks);
    }

    #[test]
    fn granted_bandwidth_caps_at_peak() {
        let m = sys();
        let peak = m.spec().peak_bw_bytes_per_sec;
        assert_eq!(m.granted_bandwidth(peak * 2.0), peak);
        assert_eq!(m.granted_bandwidth(peak * 0.3), peak * 0.3);
    }

    #[test]
    #[should_panic(expected = "peak bandwidth")]
    fn rejects_zero_bandwidth() {
        MemorySystem::new(DramSpec {
            peak_bw_bytes_per_sec: 0.0,
            ..DramSpec::ddr3_1333_triple_channel()
        });
    }
}
