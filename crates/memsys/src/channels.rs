//! Explicit multi-channel DRAM modeling.
//!
//! The aggregate model in [`crate::dram`] treats the memory system as one
//! queue at the summed channel bandwidth — valid when the address
//! interleaving spreads traffic evenly. This module models the channels
//! individually so that assumption can be checked and *imbalance* studied:
//! each channel is a scaled-down [`MemorySystem`], traffic splits according
//! to an imbalance parameter, and the observed latency is the
//! request-weighted mean across channels. Balanced traffic reproduces the
//! aggregate model; skewed traffic shows the hot channel saturating early.

use crate::dram::{DramSpec, MemorySystem};

/// A bank of identical DRAM channels.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelArray {
    channel: MemorySystem,
    channels: usize,
}

impl ChannelArray {
    /// Split an aggregate spec into `channels` identical channels (each
    /// gets `1/channels` of the bandwidth and banks; latencies unchanged).
    ///
    /// # Panics
    /// Panics if `channels` is zero or exceeds the spec's bank count.
    pub fn from_spec(spec: DramSpec, channels: usize) -> ChannelArray {
        assert!(channels > 0, "need at least one channel");
        assert!(
            channels <= spec.banks,
            "{channels} channels cannot split {} banks",
            spec.banks
        );
        let per = DramSpec {
            peak_bw_bytes_per_sec: spec.peak_bw_bytes_per_sec / channels as f64,
            banks: (spec.banks / channels).max(1),
            ..spec
        };
        ChannelArray {
            channel: MemorySystem::new(per),
            channels,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Per-channel subsystem.
    pub fn channel(&self) -> &MemorySystem {
        &self.channel
    }

    /// Fraction of traffic hitting the hottest channel for an imbalance
    /// `s ∈ [0, 1]`: `s = 0` is perfect interleaving (`1/n` each), `s = 1`
    /// sends everything to one channel.
    pub fn hot_share(&self, imbalance: f64) -> f64 {
        let n = self.channels as f64;
        let s = imbalance.clamp(0.0, 1.0);
        (1.0 / n) + s * (1.0 - 1.0 / n)
    }

    /// Request-weighted average access latency (ns) at an offered total
    /// bandwidth, with `streams` active miss streams and traffic imbalance
    /// `imbalance ∈ [0, 1]`.
    pub fn access_latency_ns(
        &self,
        total_bw_bytes_per_sec: f64,
        streams: usize,
        imbalance: f64,
    ) -> f64 {
        let n = self.channels as f64;
        let hot = self.hot_share(imbalance);
        let cold = if self.channels > 1 {
            (1.0 - hot) / (n - 1.0)
        } else {
            0.0
        };
        // Streams spread the same way traffic does.
        let hot_streams = ((streams as f64 * hot).ceil() as usize).min(streams);
        let cold_streams = if self.channels > 1 {
            ((streams as f64 * cold).ceil() as usize).min(streams)
        } else {
            0
        };
        let hot_lat = self
            .channel
            .access_latency_ns(total_bw_bytes_per_sec * hot, hot_streams.max(1));
        if self.channels == 1 {
            return hot_lat;
        }
        let cold_lat = self
            .channel
            .access_latency_ns(total_bw_bytes_per_sec * cold, cold_streams.max(1));
        hot * hot_lat + (1.0 - hot) * cold_lat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DramSpec {
        DramSpec::ddr3_1333_triple_channel()
    }

    #[test]
    fn balanced_traffic_matches_aggregate_queueing_exactly() {
        // With the bank-conflict term zeroed, each balanced channel sees
        // 1/3 the traffic at 1/3 the capacity — identical utilization — so
        // the queue term must match the aggregate model exactly. (The bank
        // term legitimately differs: streams split across channels.)
        let no_banks = DramSpec {
            bank_penalty_ns: 0.0,
            ..spec()
        };
        let agg = MemorySystem::new(no_banks);
        let arr = ChannelArray::from_spec(no_banks, 3);
        for frac in [0.1, 0.4, 0.7, 0.95] {
            let bw = frac * no_banks.peak_bw_bytes_per_sec;
            let a = agg.access_latency_ns(bw, 6);
            let c = arr.access_latency_ns(bw, 6, 0.0);
            assert!(
                (a - c).abs() < 1e-9,
                "at {frac}: aggregate {a} vs channels {c}"
            );
        }
    }

    #[test]
    fn imbalance_raises_latency_monotonically() {
        let arr = ChannelArray::from_spec(spec(), 3);
        let bw = 0.5 * spec().peak_bw_bytes_per_sec;
        let mut prev = 0.0;
        for s in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let l = arr.access_latency_ns(bw, 6, s);
            assert!(l >= prev - 1e-9, "imbalance {s}: {l} < {prev}");
            prev = l;
        }
        // Full skew at 50% aggregate load saturates the hot channel badly.
        let balanced = arr.access_latency_ns(bw, 6, 0.0);
        let skewed = arr.access_latency_ns(bw, 6, 1.0);
        assert!(
            skewed > balanced * 1.5,
            "skewed {skewed} vs balanced {balanced}"
        );
    }

    #[test]
    fn hot_share_endpoints() {
        let arr = ChannelArray::from_spec(spec(), 4);
        assert!((arr.hot_share(0.0) - 0.25).abs() < 1e-12);
        assert!((arr.hot_share(1.0) - 1.0).abs() < 1e-12);
        assert!((arr.hot_share(-3.0) - 0.25).abs() < 1e-12); // clamped
    }

    #[test]
    fn single_channel_degenerates_to_plain_memory_system() {
        let arr = ChannelArray::from_spec(spec(), 1);
        let agg = MemorySystem::new(spec());
        for bw in [0.0, 1e9, 20e9] {
            assert_eq!(
                arr.access_latency_ns(bw, 4, 0.7),
                agg.access_latency_ns(bw, 4)
            );
        }
    }

    #[test]
    fn more_channels_help_at_fixed_load() {
        let bw = 0.6 * spec().peak_bw_bytes_per_sec;
        // Compare 1 vs 3 channels carved from the SAME total capacity: the
        // single "channel" is the whole system, so latencies match at
        // balance; the benefit of channels appears under partial skew
        // because only part of the traffic saturates.
        let one = ChannelArray::from_spec(spec(), 1);
        let three = ChannelArray::from_spec(spec(), 3);
        let l1 = one.access_latency_ns(bw * 1.2, 6, 0.0);
        let l3 = three.access_latency_ns(bw * 1.2, 6, 0.0);
        assert!(l3 <= l1 * 1.3, "{l3} vs {l1}");
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        ChannelArray::from_spec(spec(), 0);
    }
}
