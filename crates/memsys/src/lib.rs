//! # coloc-memsys
//!
//! Main-memory (DRAM) model for the `coloc` multicore simulator.
//!
//! The paper attributes co-location slowdown to contention in the shared
//! last-level cache *and* in main memory (§I): as co-located applications
//! raise the aggregate miss traffic, each miss waits longer, so every
//! application's average memory access time rises. This crate supplies that
//! mechanism:
//!
//! * [`DramSpec`] — channel/bandwidth/latency parameters of a memory
//!   subsystem, with presets matching the two Xeon platforms the paper
//!   tests (triple-channel DDR3-1333 for the E5649, quad-channel DDR3-1866
//!   for the E5-2697 v2).
//! * [`MemorySystem::access_latency_ns`] — average per-miss latency as a
//!   function of offered bandwidth, combining an M/M/1-style queueing term
//!   with a bank-conflict penalty that grows with the number of competing
//!   access streams. This is the *nonlinear, saturating* curve that makes
//!   co-location slowdown fundamentally non-linear in the co-runner
//!   features — the reason the paper's neural networks beat its linear
//!   models.
//!
//! The model is analytic but grounded: latency is bounded, monotone in
//! load, convex near saturation, and validated by unit tests for each of
//! those properties.

pub mod channels;
pub mod dram;

pub use channels::ChannelArray;
pub use dram::{DramSpec, MemorySystem};

/// Bytes transferred per LLC miss (one cache line).
pub const MISS_BYTES: f64 = 64.0;
