//! Placement property suite (ISSUE 9, satellite 1).
//!
//! Seeded-sweep properties over every policy:
//! - every stream job is placed exactly once,
//! - no socket ever exceeds its core capacity within a wave,
//! - `PackFirstFit` never uses more sockets than `LeastInterference`,
//! - placement is bit-identical across 1/2/8 oracle threads and across
//!   seeded re-runs.

use coloc_placement::{Assignment, ClassMix, FleetSpec, PlacePolicy, PlacementSim, SimConfig};

fn config(seed: u64, jobs: usize, mix: ClassMix) -> SimConfig {
    SimConfig {
        fleet: FleetSpec::standard(1),
        jobs,
        mix,
        seed,
        pstate: 0,
        qos_threshold: 1.5,
        noise_sigma: None,
        threads: 0,
    }
}

fn mixes() -> Vec<ClassMix> {
    vec![
        ClassMix::uniform(),
        ClassMix::memory_heavy(),
        ClassMix::compute_heavy(),
    ]
}

/// Per-socket core capacities of a fleet, indexed by global socket id.
fn capacities(fleet: &FleetSpec) -> Vec<usize> {
    fleet
        .groups
        .iter()
        .flat_map(|g| std::iter::repeat_n(g.machine.cores, g.sockets))
        .collect()
}

#[test]
fn every_job_is_placed_exactly_once() {
    for (seed, mix) in mixes().into_iter().enumerate() {
        let jobs = 150 + 7 * seed; // not a multiple of wave capacity
        let mut sim = PlacementSim::new(config(seed as u64 + 1, jobs, mix)).unwrap();
        for policy in PlacePolicy::benchmark_set() {
            let (outcome, trace) = sim.run_policy_traced(policy).unwrap();
            assert_eq!(outcome.jobs, jobs, "{policy}");
            assert_eq!(trace.len(), jobs, "{policy}: one assignment per job");
            for (i, a) in trace.iter().enumerate() {
                assert_eq!(a.job, i, "{policy}: stream indices exactly once, in order");
            }
        }
    }
}

#[test]
fn no_socket_exceeds_its_core_capacity() {
    let fleet = FleetSpec::standard(1);
    let caps = capacities(&fleet);
    for policy in PlacePolicy::benchmark_set() {
        let mut sim = PlacementSim::new(config(7, 200, ClassMix::memory_heavy())).unwrap();
        let (_, trace) = sim.run_policy_traced(policy).unwrap();
        let waves = trace.iter().map(|a| a.wave).max().unwrap() + 1;
        let mut load = vec![vec![0usize; caps.len()]; waves];
        for a in &trace {
            load[a.wave][a.socket as usize] += 1;
        }
        for (wave, sockets) in load.iter().enumerate() {
            for (socket, &jobs) in sockets.iter().enumerate() {
                assert!(
                    jobs <= caps[socket],
                    "{policy}: wave {wave} socket {socket} holds {jobs} > {} cores",
                    caps[socket]
                );
            }
        }
        // Sanity: every wave except possibly the last fills to capacity.
        let capacity: usize = caps.iter().sum();
        for (wave, sockets) in load.iter().enumerate().take(waves - 1) {
            assert_eq!(
                sockets.iter().sum::<usize>(),
                capacity,
                "{policy}: wave {wave}"
            );
        }
    }
}

#[test]
fn pack_never_uses_more_sockets_than_greedy() {
    for (i, mix) in mixes().into_iter().enumerate() {
        let mut sim = PlacementSim::new(config(100 + i as u64, 120, mix)).unwrap();
        let pack = sim.run_policy(PlacePolicy::PackFirstFit).unwrap();
        let greedy = sim.run_policy(PlacePolicy::LeastInterference).unwrap();
        assert!(
            pack.sockets_used <= greedy.sockets_used,
            "mix {i}: pack {} vs greedy {}",
            pack.sockets_used,
            greedy.sockets_used
        );
    }
}

#[test]
fn placement_is_bit_identical_across_threads_and_reruns() {
    for policy in PlacePolicy::benchmark_set() {
        let mut runs: Vec<(u64, u64, Vec<Assignment>)> = Vec::new();
        // 1, 2, and 8 oracle threads, plus a re-run at 2 threads.
        for threads in [1usize, 2, 8, 2] {
            let mut cfg = config(5, 90, ClassMix::uniform());
            cfg.threads = threads;
            let mut sim = PlacementSim::new(cfg).unwrap();
            let (outcome, trace) = sim.run_policy_traced(policy).unwrap();
            runs.push((outcome.digest(), outcome.determinism_digest, trace));
        }
        for other in &runs[1..] {
            assert_eq!(runs[0].0, other.0, "{policy}: outcome digest");
            assert_eq!(runs[0].1, other.1, "{policy}: per-job digest");
            assert_eq!(runs[0].2, other.2, "{policy}: full assignment trace");
        }
    }
}

#[test]
fn least_interference_beats_pack_on_oracle_slowdown() {
    // The acceptance-criterion relation at test scale: with the fleet
    // under memory-heavy load, interference-aware spreading must beat
    // blind consolidation on oracle mean slowdown.
    let mut sim = PlacementSim::new(config(11, 222, ClassMix::memory_heavy())).unwrap();
    let pack = sim.run_policy(PlacePolicy::PackFirstFit).unwrap();
    let greedy = sim.run_policy(PlacePolicy::LeastInterference).unwrap();
    assert!(
        greedy.oracle_mean_slowdown < pack.oracle_mean_slowdown,
        "greedy {} vs pack {}",
        greedy.oracle_mean_slowdown,
        pack.oracle_mean_slowdown
    );
}
