//! Fleet description and interned socket state.
//!
//! The key scaling idea: sockets of the same machine spec holding the
//! same job multiset are interchangeable, so fleet state is a set of
//! *buckets* — `(group, contents)` — each owning a set of socket ids.
//! Policies reason over buckets (dozens to hundreds), not sockets
//! (thousands), and every predictor/oracle evaluation memoizes on the
//! bucket's [`ContentsKey`]. Socket ids only matter for assignment
//! records; the lowest id in a bucket is always picked, keeping
//! assignments deterministic.

use coloc_machine::MachineSpec;
use std::collections::{BTreeMap, BTreeSet};

/// Maximum suite size the 5-bit-per-app packing supports.
pub const MAX_APPS: usize = 12;
/// Bits per app count in a [`ContentsKey`].
pub const APP_BITS: u32 = 5;
/// Maximum per-socket instances of one app (5-bit field).
pub const MAX_COUNT: usize = (1 << APP_BITS) - 1;

/// A socket's contents as a packed per-app instance histogram: 5 bits per
/// suite app, app 0 in the low bits. `0` is the empty socket. Keys are
/// canonical — two sockets hold the same job multiset iff their keys are
/// equal — which makes them perfect memo keys and `BTreeMap` orderings
/// deterministic.
pub type ContentsKey = u64;

/// Instances of `app` in `key`.
pub fn key_count(key: ContentsKey, app: u8) -> usize {
    ((key >> (app as u32 * APP_BITS)) & MAX_COUNT as u64) as usize
}

/// `key` with one more instance of `app`. Panics on field overflow
/// (cores per socket are far below [`MAX_COUNT`]).
pub fn key_add(key: ContentsKey, app: u8) -> ContentsKey {
    assert!(key_count(key, app) < MAX_COUNT, "contents field overflow");
    key + (1u64 << (app as u32 * APP_BITS))
}

/// `key` with one instance of `app` removed. Panics if absent.
pub fn key_remove(key: ContentsKey, app: u8) -> ContentsKey {
    assert!(key_count(key, app) > 0, "removing an absent app");
    key - (1u64 << (app as u32 * APP_BITS))
}

/// Total job count in `key`.
pub fn key_total(key: ContentsKey) -> usize {
    (0..MAX_APPS as u8).map(|a| key_count(key, a)).sum()
}

/// The distinct apps present in `key`, ascending.
pub fn key_apps(key: ContentsKey) -> Vec<u8> {
    (0..MAX_APPS as u8)
        .filter(|&a| key_count(key, a) > 0)
        .collect()
}

/// `key` as `(app name, count)` co-runner groups for scenario building,
/// in app-index order (canonical).
pub fn key_co_groups(key: ContentsKey, names: &[String]) -> Vec<(String, usize)> {
    key_apps(key)
        .into_iter()
        .map(|a| (names[a as usize].clone(), key_count(key, a)))
        .collect()
}

/// One homogeneous slice of the fleet: `sockets` sockets of `machine`.
#[derive(Clone, Debug)]
pub struct FleetGroup {
    /// The socket's machine spec (one socket = one processor).
    pub machine: MachineSpec,
    /// Number of identical sockets in this group.
    pub sockets: usize,
}

/// A whole fleet: an ordered list of socket groups. Socket ids are
/// global and assigned group by group, lowest first.
#[derive(Clone, Debug)]
pub struct FleetSpec {
    /// The socket groups, in id order.
    pub groups: Vec<FleetGroup>,
}

impl FleetSpec {
    /// The standard benchmark fleet at a given scale: `scale` copies of a
    /// mixed rack — 3× Xeon E5649, 2× E5-2697v2, 2× E5-2630v3,
    /// 1× Platinum 8153 — i.e. `8 × scale` sockets, `74 × scale` cores.
    pub fn standard(scale: usize) -> FleetSpec {
        use coloc_machine::presets;
        FleetSpec {
            groups: vec![
                FleetGroup {
                    machine: presets::xeon_e5649(),
                    sockets: 3 * scale,
                },
                FleetGroup {
                    machine: presets::xeon_e5_2697v2(),
                    sockets: 2 * scale,
                },
                FleetGroup {
                    machine: presets::xeon_e5_2630v3(),
                    sockets: 2 * scale,
                },
                FleetGroup {
                    machine: presets::xeon_platinum_8153(),
                    sockets: scale,
                },
            ],
        }
    }

    /// A single-group fleet.
    pub fn single(machine: MachineSpec, sockets: usize) -> FleetSpec {
        FleetSpec {
            groups: vec![FleetGroup { machine, sockets }],
        }
    }

    /// Total sockets across groups.
    pub fn total_sockets(&self) -> usize {
        self.groups.iter().map(|g| g.sockets).sum()
    }

    /// Total cores across groups — the wave capacity.
    pub fn total_cores(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.sockets * g.machine.cores)
            .sum()
    }

    /// Specs must validate, groups must hold sockets, and core counts
    /// must fit the [`ContentsKey`] packing.
    pub fn validate(&self) -> Result<(), String> {
        if self.groups.is_empty() || self.total_sockets() == 0 {
            return Err("fleet needs at least one socket".into());
        }
        for g in &self.groups {
            g.machine.validate()?;
            if g.machine.cores > MAX_COUNT {
                return Err(format!(
                    "{}: {} cores exceed the {MAX_COUNT}-per-app contents packing",
                    g.machine.name, g.machine.cores
                ));
            }
        }
        Ok(())
    }
}

/// Mutable fleet state for one placement wave.
pub struct Fleet<'a> {
    spec: &'a FleetSpec,
    /// Global id of each group's first socket.
    base: Vec<u32>,
    /// Current contents per socket, indexed by global id.
    socket_keys: Vec<ContentsKey>,
    /// Per group: contents key → socket ids currently holding it.
    buckets: Vec<BTreeMap<ContentsKey, BTreeSet<u32>>>,
}

impl<'a> Fleet<'a> {
    /// An empty fleet over `spec`.
    pub fn new(spec: &'a FleetSpec) -> Fleet<'a> {
        let mut base = Vec::with_capacity(spec.groups.len());
        let mut next = 0u32;
        for g in &spec.groups {
            base.push(next);
            next += g.sockets as u32;
        }
        let mut fleet = Fleet {
            spec,
            base,
            socket_keys: vec![0; next as usize],
            buckets: vec![BTreeMap::new(); spec.groups.len()],
        };
        fleet.reset();
        fleet
    }

    /// Flush every socket back to empty (wave boundary).
    pub fn reset(&mut self) {
        self.socket_keys.iter_mut().for_each(|k| *k = 0);
        for (gi, g) in self.spec.groups.iter().enumerate() {
            let ids: BTreeSet<u32> = (self.base[gi]..self.base[gi] + g.sockets as u32).collect();
            self.buckets[gi] = BTreeMap::from([(0u64, ids)]);
        }
    }

    /// The fleet spec.
    pub fn spec(&self) -> &FleetSpec {
        self.spec
    }

    /// Group of a global socket id.
    pub fn group_of(&self, socket: u32) -> usize {
        match self.base.binary_search(&socket) {
            Ok(g) => g,
            Err(ins) => ins - 1,
        }
    }

    /// Current contents of a socket.
    pub fn socket_key(&self, socket: u32) -> ContentsKey {
        self.socket_keys[socket as usize]
    }

    /// Occupied (non-empty) sockets.
    pub fn sockets_used(&self) -> usize {
        self.socket_keys.iter().filter(|&&k| k != 0).count()
    }

    /// Iterate placement candidates: every `(group, contents)` bucket
    /// that still has free cores, in deterministic (group, key) order.
    pub fn candidates(&self) -> impl Iterator<Item = (usize, ContentsKey)> + '_ {
        self.buckets.iter().enumerate().flat_map(move |(gi, b)| {
            let cores = self.spec.groups[gi].machine.cores;
            b.iter()
                .filter(move |(&key, ids)| !ids.is_empty() && key_total(key) < cores)
                .map(move |(&key, _)| (gi, key))
        })
    }

    /// Whether bucket `(group, key)` still holds a socket with a free
    /// core — i.e. is a valid [`Fleet::place`] destination right now.
    pub fn has_free(&self, group: usize, key: ContentsKey) -> bool {
        key_total(key) < self.spec.groups[group].machine.cores
            && self.buckets[group]
                .get(&key)
                .is_some_and(|ids| !ids.is_empty())
    }

    /// Place one instance of `app` on the lowest-id socket of bucket
    /// `(group, key)`. Returns the socket id. Panics if the bucket is
    /// empty or full — candidates come from [`Fleet::candidates`].
    pub fn place(&mut self, group: usize, key: ContentsKey, app: u8) -> u32 {
        let cores = self.spec.groups[group].machine.cores;
        assert!(key_total(key) < cores, "placing on a full socket");
        let bucket = self.buckets[group]
            .get_mut(&key)
            .expect("placing into a vacant bucket");
        let id = *bucket.iter().next().expect("placing into an empty bucket");
        bucket.remove(&id);
        if bucket.is_empty() {
            self.buckets[group].remove(&key);
        }
        let new_key = key_add(key, app);
        self.socket_keys[id as usize] = new_key;
        self.buckets[group].entry(new_key).or_default().insert(id);
        id
    }

    /// Iterate the occupied buckets: `(group, key, socket count)`.
    pub fn occupied(&self) -> impl Iterator<Item = (usize, ContentsKey, usize)> + '_ {
        self.buckets.iter().enumerate().flat_map(|(gi, b)| {
            b.iter()
                .filter(|(&key, ids)| key != 0 && !ids.is_empty())
                .map(move |(&key, ids)| (gi, key, ids.len()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coloc_machine::presets;

    #[test]
    fn key_packing_round_trips() {
        let mut key = 0u64;
        for app in [0u8, 0, 3, 10, 3, 7] {
            key = key_add(key, app);
        }
        assert_eq!(key_count(key, 0), 2);
        assert_eq!(key_count(key, 3), 2);
        assert_eq!(key_count(key, 10), 1);
        assert_eq!(key_count(key, 7), 1);
        assert_eq!(key_total(key), 6);
        assert_eq!(key_apps(key), vec![0, 3, 7, 10]);
        let removed = key_remove(key, 3);
        assert_eq!(key_count(removed, 3), 1);
        assert_eq!(key_total(removed), 5);
        // Keys are canonical: insertion order does not matter.
        let mut other = 0u64;
        for app in [10u8, 7, 3, 0, 3, 0] {
            other = key_add(other, app);
        }
        assert_eq!(key, other);
    }

    #[test]
    fn key_co_groups_are_canonical() {
        let names: Vec<String> = coloc_workloads::standard()
            .iter()
            .map(|b| b.name.to_string())
            .collect();
        let mut key = 0u64;
        for app in [4u8, 1, 4, 9] {
            key = key_add(key, app);
        }
        let groups = key_co_groups(key, &names);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], (names[1].clone(), 1));
        assert_eq!(groups[1], (names[4].clone(), 2));
        assert_eq!(groups[2], (names[9].clone(), 1));
    }

    #[test]
    fn standard_fleet_validates_and_counts() {
        let fleet = FleetSpec::standard(4);
        fleet.validate().unwrap();
        assert_eq!(fleet.total_sockets(), 32);
        assert_eq!(fleet.total_cores(), 4 * (3 * 6 + 2 * 12 + 2 * 8 + 16));
        assert!(FleetSpec { groups: vec![] }.validate().is_err());
        assert!(
            FleetSpec::single(presets::xeon_e5649(), 0)
                .validate()
                .is_err(),
            "zero sockets is degenerate"
        );
    }

    #[test]
    fn fleet_place_moves_buckets_deterministically() {
        let spec = FleetSpec::standard(1);
        let mut fleet = Fleet::new(&spec);
        assert_eq!(fleet.sockets_used(), 0);
        // First placement lands on the lowest socket id of the empty
        // bucket of group 0.
        let s0 = fleet.place(0, 0, 2);
        assert_eq!(s0, 0);
        assert_eq!(fleet.socket_key(0), key_add(0, 2));
        // Same bucket again: next lowest id.
        let s1 = fleet.place(0, 0, 2);
        assert_eq!(s1, 1);
        // Stacking onto socket 0's bucket.
        let s2 = fleet.place(0, key_add(0, 2), 5);
        assert_eq!(s2, 0);
        assert_eq!(fleet.socket_key(0), key_add(key_add(0, 2), 5));
        assert_eq!(fleet.sockets_used(), 2);
        // Group ids partition the socket space.
        assert_eq!(fleet.group_of(0), 0);
        assert_eq!(fleet.group_of(2), 0);
        assert_eq!(fleet.group_of(3), 1);
        assert_eq!(fleet.group_of(7), 3);
        // Reset flushes everything.
        fleet.reset();
        assert_eq!(fleet.sockets_used(), 0);
        assert_eq!(fleet.candidates().count(), 4, "one empty bucket per group");
    }

    #[test]
    fn full_sockets_leave_the_candidate_set() {
        let spec = FleetSpec::single(presets::xeon_e5649(), 1);
        let mut fleet = Fleet::new(&spec);
        let mut key = 0u64;
        for _ in 0..6 {
            assert_eq!(fleet.candidates().count(), 1);
            fleet.place(0, key, 0);
            key = key_add(key, 0);
        }
        assert_eq!(fleet.candidates().count(), 0, "socket is full");
        assert_eq!(fleet.occupied().count(), 1);
    }
}
