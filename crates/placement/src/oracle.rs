//! The simulator-as-oracle: ground-truth slowdowns for final placements.
//!
//! Because workloads are simulated, the "deployed" outcome of a placement
//! is measurable exactly: run each socket's final contents through the
//! engine and compare every job's wall time to its solo wall time on the
//! same machine. Distinct `(contents, target)` pairs memoize in the
//! oracle's own map — independent of the lab's bounded run cache, so
//! eviction can never change a score — and cold batches fan out through
//! [`coloc_model::Lab::run_scenarios_batch`], the machine crate's batched
//! oracle path.
//!
//! Slowdowns are ratios of two measured times. A solo job's slowdown is
//! `measured(a|∅) / measured(a|∅)` — the *same* memoized number in
//! numerator and denominator — so it is exactly 1.0, noise or no noise.

use crate::fleet::{key_co_groups, ContentsKey};
use crate::Result;
use coloc_model::{Lab, Scenario};
use std::collections::HashMap;

/// Memoized ground-truth measurements for one machine spec.
pub struct SpecOracle {
    pstate: usize,
    app_names: Vec<String>,
    /// `(others key, target app)` → measured target wall time.
    time_memo: HashMap<(ContentsKey, u8), f64>,
    /// Engine-backed scenario evaluations (memo fills).
    evaluations: u64,
}

impl SpecOracle {
    /// An empty oracle for `lab`'s machine at `pstate`.
    pub fn new(lab: &Lab, pstate: usize) -> SpecOracle {
        SpecOracle {
            pstate,
            app_names: lab.suite().iter().map(|b| b.name.to_string()).collect(),
            time_memo: HashMap::new(),
            evaluations: 0,
        }
    }

    fn scenario(&self, app: u8, others: ContentsKey) -> Scenario {
        Scenario {
            target: self.app_names[app as usize].clone(),
            co_located: key_co_groups(others, &self.app_names),
            pstate: self.pstate,
        }
    }

    /// Pre-measure a batch of `(others, target)` wants through the lab's
    /// batched run path. Duplicates and already-memoized pairs are free.
    pub fn warm(&mut self, lab: &Lab, wants: &[(ContentsKey, u8)]) -> Result<()> {
        let mut cold: Vec<(ContentsKey, u8)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &(others, app) in wants {
            if !self.time_memo.contains_key(&(others, app)) && seen.insert((others, app)) {
                cold.push((others, app));
            }
        }
        if cold.is_empty() {
            return Ok(());
        }
        let scenarios: Vec<Scenario> = cold
            .iter()
            .map(|&(others, app)| self.scenario(app, others))
            .collect();
        let times = lab.run_scenarios_batch(&scenarios)?;
        for (&(others, app), t) in cold.iter().zip(times) {
            self.time_memo.insert((others, app), t);
            self.evaluations += 1;
        }
        Ok(())
    }

    /// Measured wall time of `app` co-located with `others`.
    pub fn time(&mut self, lab: &Lab, app: u8, others: ContentsKey) -> Result<f64> {
        if let Some(&t) = self.time_memo.get(&(others, app)) {
            return Ok(t);
        }
        let t = lab.run_scenario(&self.scenario(app, others))?;
        self.time_memo.insert((others, app), t);
        self.evaluations += 1;
        Ok(t)
    }

    /// Ground-truth slowdown of `app` co-located with `others`:
    /// `time(app | others) / time(app | ∅)`. Exactly 1.0 when `others`
    /// is empty.
    pub fn slowdown(&mut self, lab: &Lab, app: u8, others: ContentsKey) -> Result<f64> {
        let solo = self.time(lab, app, 0)?;
        let loaded = self.time(lab, app, others)?;
        Ok(loaded / solo)
    }

    /// Engine-backed evaluations so far (distinct memo entries).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::key_add;
    use coloc_machine::presets;

    fn lab() -> Lab {
        Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 23).unwrap()
    }

    #[test]
    fn solo_slowdown_is_exactly_one() {
        let lab = lab();
        let mut oracle = SpecOracle::new(&lab, 0);
        for app in 0..11u8 {
            let sd = oracle.slowdown(&lab, app, 0).unwrap();
            assert_eq!(sd.to_bits(), 1f64.to_bits(), "app {app}");
        }
    }

    #[test]
    fn crowded_slowdown_exceeds_one_and_memoizes() {
        let lab = lab();
        let mut oracle = SpecOracle::new(&lab, 0);
        let cg = lab.suite().iter().position(|b| b.name == "cg").unwrap() as u8;
        let canneal = lab
            .suite()
            .iter()
            .position(|b| b.name == "canneal")
            .unwrap() as u8;
        let mut crowd = 0u64;
        for _ in 0..4 {
            crowd = key_add(crowd, cg);
        }
        let sd = oracle.slowdown(&lab, canneal, crowd).unwrap();
        assert!(sd > 1.02, "canneal under 4×cg: {sd}");
        let evals = oracle.evaluations();
        let again = oracle.slowdown(&lab, canneal, crowd).unwrap();
        assert_eq!(sd.to_bits(), again.to_bits());
        assert_eq!(oracle.evaluations(), evals, "memoized");
    }

    #[test]
    fn warm_matches_cold_and_dedups() {
        let lab_a = lab();
        let lab_b = lab();
        let cg = lab_a.suite().iter().position(|b| b.name == "cg").unwrap() as u8;
        let ep = lab_a.suite().iter().position(|b| b.name == "ep").unwrap() as u8;
        let crowd = key_add(key_add(0, cg), ep);

        let mut cold = SpecOracle::new(&lab_a, 0);
        let direct = cold.slowdown(&lab_a, cg, crowd).unwrap();

        let mut warmed = SpecOracle::new(&lab_b, 0);
        warmed
            .warm(&lab_b, &[(crowd, cg), (crowd, cg), (0, cg), (crowd, cg)])
            .unwrap();
        let evals = warmed.evaluations();
        assert_eq!(evals, 2, "dedup: crowd+solo only");
        let sd = warmed.slowdown(&lab_b, cg, crowd).unwrap();
        assert_eq!(sd.to_bits(), direct.to_bits());
        assert_eq!(warmed.evaluations(), evals, "warm covered everything");
    }
}
