//! Serializable placement-benchmark results.

use serde::{Deserialize, Serialize};

/// Scored outcome of one policy over the full job stream.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Policy display name (includes parameters).
    pub policy: String,
    /// Jobs placed.
    pub jobs: usize,
    /// Placement waves (fleet fills) the stream needed.
    pub waves: usize,
    /// Headline: mean |decision-time expected slowdown − final oracle
    /// slowdown| per job.
    pub regret_mean: f64,
    /// Worst single-job regret.
    pub regret_max: f64,
    /// Mean oracle (ground-truth) slowdown across jobs.
    pub oracle_mean_slowdown: f64,
    /// Worst oracle slowdown across jobs.
    pub oracle_max_slowdown: f64,
    /// Mean decision-time expected slowdown (what the policy believed).
    pub expected_mean_slowdown: f64,
    /// MISE-style unfairness: max oracle slowdown / min oracle slowdown.
    pub unfairness: f64,
    /// Soft-QoS threshold the violation count was taken at.
    pub qos_threshold: f64,
    /// Jobs whose oracle slowdown exceeds the threshold.
    pub qos_violations: u64,
    /// Peak sockets in use in any wave.
    pub sockets_used: usize,
    /// Engine-backed oracle evaluations (distinct scenarios measured).
    pub oracle_evaluations: u64,
    /// Placement throughput, jobs per wall-clock second. The only
    /// non-deterministic field; excluded from [`PolicyOutcome::digest`].
    pub jobs_per_sec: f64,
    /// FNV-1a digest of every assignment and score bit — two runs agree
    /// on placement iff their digests match.
    pub determinism_digest: u64,
}

impl PolicyOutcome {
    /// The deterministic fields as stable-order bits, for cross-run and
    /// cross-thread-count identity checks.
    pub fn digest(&self) -> u64 {
        let mut w = coloc_machine::IrWriter::new();
        w.str(&self.policy);
        w.usize(self.jobs);
        w.usize(self.waves);
        w.f64(self.regret_mean);
        w.f64(self.regret_max);
        w.f64(self.oracle_mean_slowdown);
        w.f64(self.oracle_max_slowdown);
        w.f64(self.expected_mean_slowdown);
        w.f64(self.unfairness);
        w.f64(self.qos_threshold);
        w.u64(self.qos_violations);
        w.usize(self.sockets_used);
        w.u64(self.determinism_digest);
        w.finish64()
    }
}

/// The full benchmark artifact: configuration plus per-policy outcomes.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlacementReport {
    /// Total jobs in the stream.
    pub jobs: usize,
    /// Fleet description, as `name × sockets` strings.
    pub fleet: Vec<String>,
    /// Total sockets.
    pub total_sockets: usize,
    /// Total cores (wave capacity).
    pub total_cores: usize,
    /// Stream seed.
    pub seed: u64,
    /// Class-mix weights.
    pub mix: [f64; 4],
    /// Operating P-state.
    pub pstate: usize,
    /// Per-policy scores, in benchmark order.
    pub policies: Vec<PolicyOutcome>,
}

impl PlacementReport {
    /// Look up a policy outcome by display name prefix (e.g.
    /// `"least-interference"`).
    pub fn policy(&self, name: &str) -> Option<&PolicyOutcome> {
        self.policies.iter().find(|p| p.policy.starts_with(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome() -> PolicyOutcome {
        PolicyOutcome {
            policy: "least-interference".into(),
            jobs: 100,
            waves: 2,
            regret_mean: 0.05,
            regret_max: 0.4,
            oracle_mean_slowdown: 1.2,
            oracle_max_slowdown: 2.1,
            expected_mean_slowdown: 1.18,
            unfairness: 2.1,
            qos_threshold: 1.5,
            qos_violations: 7,
            sockets_used: 8,
            oracle_evaluations: 42,
            jobs_per_sec: 1e4,
            determinism_digest: 0xdead,
        }
    }

    #[test]
    fn digest_ignores_timing_but_tracks_scores() {
        let a = outcome();
        let mut b = outcome();
        b.jobs_per_sec = 5e9; // timing noise must not move the digest
        assert_eq!(a.digest(), b.digest());
        let mut c = outcome();
        c.regret_mean += 1e-15;
        assert_ne!(a.digest(), c.digest());
        let mut d = outcome();
        d.determinism_digest ^= 1;
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn report_round_trips_and_finds_policies() {
        let report = PlacementReport {
            jobs: 100,
            fleet: vec!["Xeon E5649 × 3".into()],
            total_sockets: 3,
            total_cores: 18,
            seed: 9,
            mix: [1.0; 4],
            pstate: 0,
            policies: vec![outcome()],
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: PlacementReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.policies[0].digest(), report.policies[0].digest());
        assert!(report.policy("least-interference").is_some());
        assert!(report.policy("pack-first-fit").is_none());
    }
}
