//! Per-spec slowdown estimator: a trained predictor with interned,
//! ratio-normalized evaluations.
//!
//! Policies query predicted slowdowns millions of times; distinct
//! `(contents, target)` pairs number only in the thousands. Every
//! evaluation memoizes on the socket's [`ContentsKey`], and raw model
//! outputs are normalized by the model's own solo prediction —
//! `sd(a | C) = predict(a | C) / predict(a | ∅)`, clamped at 1.0 — so a
//! solo job's predicted slowdown is *exactly* 1.0 (bitwise), interference
//! can only hurt, and an empty socket's greedy delta is exactly 1.0.
//! Both properties make the conformance placement laws exact relations
//! instead of tolerance checks.

use crate::fleet::{key_add, key_co_groups, key_count, ContentsKey, MAX_APPS};
use crate::Result;
use coloc_model::{
    FeatureSet, Lab, ModelArtifact, ModelKind, ModelRegistry, Scenario, TrainRequest, TrainingPlan,
};
use std::collections::HashMap;
use std::sync::Arc;

/// A trained estimator for one machine spec.
pub struct SpecEstimator {
    artifact: Arc<ModelArtifact>,
    pstate: usize,
    app_names: Vec<String>,
    /// Raw (un-normalized) solo prediction per app.
    solo: Vec<f64>,
    /// `(others key, target app)` → normalized slowdown.
    sd_memo: HashMap<(ContentsKey, u8), f64>,
    /// contents key → total predicted socket cost.
    cost_memo: HashMap<ContentsKey, f64>,
}

impl SpecEstimator {
    /// The registry request this estimator trains: a linear full-feature
    /// model over a small deterministic plan — every suite app as target,
    /// the paper's four class representatives as co-runners, three
    /// occupancy levels. Exposed so callers can address the same artifact
    /// by digest.
    pub fn request(lab: &Lab, pstate: usize) -> TrainRequest {
        let cores = lab.machine().spec().cores;
        let mut counts = vec![1usize, (cores / 2).max(1), cores - 1];
        counts.dedup();
        counts.retain(|&c| c >= 1);
        TrainRequest {
            kind: ModelKind::Linear,
            set: FeatureSet::F,
            plan: TrainingPlan {
                pstates: vec![pstate],
                targets: lab.suite().iter().map(|b| b.name.to_string()).collect(),
                co_runners: coloc_workloads::training_co_runners()
                    .iter()
                    .map(|b| b.name.to_string())
                    .collect(),
                counts,
            },
            seed: 1,
            policy: None,
        }
    }

    /// Resolve this spec's estimator model through `registry` (memoized:
    /// a fleet simulation training many sockets on the same spec shares
    /// one artifact). The linear fit is closed-form, so training is
    /// deterministic and cheap; the sharded run cache memoizes the plan's
    /// scenarios.
    pub fn train_with(registry: &ModelRegistry, lab: &Lab, pstate: usize) -> Result<SpecEstimator> {
        let app_names: Vec<String> = lab.suite().iter().map(|b| b.name.to_string()).collect();
        assert!(app_names.len() <= MAX_APPS, "suite exceeds key packing");
        let artifact = registry.resolve(lab, &Self::request(lab, pstate))?;
        let solo = app_names
            .iter()
            .map(|name| {
                let f = lab.featurize(&Scenario::solo(name, pstate))?;
                Ok(artifact.predictor.predict_slowdown(&f))
            })
            .collect::<Result<Vec<f64>>>()?;
        Ok(SpecEstimator {
            artifact,
            pstate,
            app_names,
            solo,
            sd_memo: HashMap::new(),
            cost_memo: HashMap::new(),
        })
    }

    /// [`SpecEstimator::train_with`] on a throwaway registry, for callers
    /// that need exactly one estimator.
    pub fn train(lab: &Lab, pstate: usize) -> Result<SpecEstimator> {
        Self::train_with(&ModelRegistry::new(), lab, pstate)
    }

    /// The digest-addressed artifact backing this estimator.
    pub fn artifact(&self) -> &Arc<ModelArtifact> {
        &self.artifact
    }

    /// Normalized predicted slowdown of `app` co-located with `others`
    /// (a contents key NOT including the app itself). Exactly 1.0 when
    /// `others` is empty; never below 1.0.
    pub fn slowdown(&mut self, lab: &Lab, app: u8, others: ContentsKey) -> Result<f64> {
        if others == 0 {
            return Ok(1.0);
        }
        if let Some(&sd) = self.sd_memo.get(&(others, app)) {
            return Ok(sd);
        }
        let sc = Scenario {
            target: self.app_names[app as usize].clone(),
            co_located: key_co_groups(others, &self.app_names),
            pstate: self.pstate,
        };
        let f = lab.featurize(&sc)?;
        let sd = (self.artifact.predictor.predict_slowdown(&f) / self.solo[app as usize]).max(1.0);
        self.sd_memo.insert((others, app), sd);
        Ok(sd)
    }

    /// Total predicted slowdown of every job on a socket with contents
    /// `key`: `Σ count(a) · sd(a | key − a)`. Zero for an empty socket.
    pub fn socket_cost(&mut self, lab: &Lab, key: ContentsKey) -> Result<f64> {
        if key == 0 {
            return Ok(0.0);
        }
        if let Some(&c) = self.cost_memo.get(&key) {
            return Ok(c);
        }
        let mut cost = 0.0;
        for a in 0..MAX_APPS as u8 {
            let n = key_count(key, a);
            if n == 0 {
                continue;
            }
            let others = crate::fleet::key_remove(key, a);
            cost += n as f64 * self.slowdown(lab, a, others)?;
        }
        self.cost_memo.insert(key, cost);
        Ok(cost)
    }

    /// Marginal predicted cost of adding `app` to a socket with contents
    /// `key`: `cost(key + app) − cost(key)`. Exactly 1.0 for an empty
    /// socket; at least 1.0 everywhere (slowdowns are clamped).
    pub fn delta(&mut self, lab: &Lab, app: u8, key: ContentsKey) -> Result<f64> {
        if key == 0 {
            return Ok(1.0);
        }
        let with = self.socket_cost(lab, key_add(key, app))?;
        let without = self.socket_cost(lab, key)?;
        Ok(with - without)
    }

    /// Number of distinct `(contents, target)` predictor evaluations
    /// performed so far.
    pub fn distinct_evaluations(&self) -> usize {
        self.sd_memo.len()
    }

    /// The P-state this estimator was trained at.
    pub fn trained_pstate(&self) -> usize {
        self.pstate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::key_add;
    use coloc_machine::presets;

    fn lab() -> Lab {
        Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 17).unwrap()
    }

    #[test]
    fn solo_slowdown_is_exactly_one() {
        let lab = lab();
        let mut est = SpecEstimator::train(&lab, 0).unwrap();
        for app in 0..11u8 {
            assert_eq!(
                est.slowdown(&lab, app, 0).unwrap().to_bits(),
                1f64.to_bits()
            );
        }
    }

    #[test]
    fn interference_never_predicts_below_one() {
        let lab = lab();
        let mut est = SpecEstimator::train(&lab, 0).unwrap();
        // cg index in suite order.
        let cg = lab.suite().iter().position(|b| b.name == "cg").unwrap() as u8;
        let ep = lab.suite().iter().position(|b| b.name == "ep").unwrap() as u8;
        let mut crowd = 0u64;
        for _ in 0..4 {
            crowd = key_add(crowd, cg);
        }
        for target in [cg, ep] {
            let sd = est.slowdown(&lab, target, crowd).unwrap();
            assert!(sd >= 1.0, "target {target}: {sd}");
        }
        // A memory-bound crowd hurts strictly, and more crowd hurts more.
        let light = key_add(0, cg);
        let sd_light = est.slowdown(&lab, cg, light).unwrap();
        let sd_heavy = est.slowdown(&lab, cg, crowd).unwrap();
        assert!(sd_heavy > 1.0, "4×cg crowd must bite: {sd_heavy}");
        assert!(
            sd_heavy > sd_light,
            "crowd monotonicity: {sd_light} vs {sd_heavy}"
        );
    }

    #[test]
    fn empty_socket_delta_is_exactly_one() {
        let lab = lab();
        let mut est = SpecEstimator::train(&lab, 0).unwrap();
        for app in 0..11u8 {
            assert_eq!(est.delta(&lab, app, 0).unwrap().to_bits(), 1f64.to_bits());
        }
    }

    #[test]
    fn delta_decomposes_socket_cost_and_memoizes() {
        let lab = lab();
        let mut est = SpecEstimator::train(&lab, 0).unwrap();
        let cg = lab.suite().iter().position(|b| b.name == "cg").unwrap() as u8;
        let ep = lab.suite().iter().position(|b| b.name == "ep").unwrap() as u8;
        let key = key_add(key_add(0, cg), ep);
        let delta = est.delta(&lab, cg, key).unwrap();
        let direct =
            est.socket_cost(&lab, key_add(key, cg)).unwrap() - est.socket_cost(&lab, key).unwrap();
        assert_eq!(delta.to_bits(), direct.to_bits());
        assert!(delta >= 1.0, "clamped slowdowns keep deltas >= 1: {delta}");
        let before = est.distinct_evaluations();
        est.delta(&lab, cg, key).unwrap();
        assert_eq!(est.distinct_evaluations(), before, "fully memoized");
    }
}
