//! The placement simulation: stream jobs through a fleet in waves, place
//! them with a policy, and score every decision against the oracle.
//!
//! # Determinism
//!
//! Everything is seeded and ordered: the job stream is a seeded RNG, each
//! wave's jobs are placed in canonical (app, stream-index) order, bucket
//! iteration follows `BTreeMap` order, float accumulation follows job
//! order, and oracle measurements are bit-identical across thread counts
//! (the batched run path guarantees it). Two runs with the same
//! [`SimConfig`] — at any `threads` — produce bit-identical
//! [`PolicyOutcome`]s; the `determinism_digest` field proves it.
//!
//! # Waves
//!
//! The fleet is far smaller than the stream, so jobs arrive in *waves*:
//! each wave takes up to `total_cores` jobs, places them, scores the
//! resulting co-location against the oracle, and flushes the fleet.
//! Scored outcomes are a pure function of each wave's job multiset, so
//! memoization carries across waves and engine work scales with distinct
//! `(spec, contents, target)` triples, not with the stream length.

use crate::estimator::SpecEstimator;
use crate::fleet::{key_remove, ContentsKey, Fleet, FleetSpec};
use crate::jobs::{ClassMix, JobStream};
use crate::oracle::SpecOracle;
use crate::policy::PlacePolicy;
use crate::report::{PlacementReport, PolicyOutcome};
use crate::Result;
use coloc_machine::IrWriter;
use coloc_ml::rng::derive_seed_str;
use coloc_model::{ColocError, Lab};

/// Candidate ranking: the sort key (predicted-delta bits, occupants,
/// group, contents — a deterministic total order) plus the candidate
/// bucket it ranks.
type RankedCandidate = ((u64, usize, usize, ContentsKey), (usize, ContentsKey));

/// Full description of one benchmark run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The fleet to place onto.
    pub fleet: FleetSpec,
    /// Jobs in the stream.
    pub jobs: usize,
    /// Class mix the stream draws from.
    pub mix: ClassMix,
    /// Stream / lab seed.
    pub seed: u64,
    /// Operating P-state for every socket.
    pub pstate: usize,
    /// Oracle slowdown above which a job counts as a QoS violation.
    pub qos_threshold: f64,
    /// Measurement noise for the oracle labs (`None` = noiseless).
    pub noise_sigma: Option<f64>,
    /// Worker threads for batched oracle evaluation (0 = one per CPU).
    pub threads: usize,
}

impl SimConfig {
    /// A small deterministic default: standard rack, uniform mix.
    pub fn smoke(jobs: usize) -> SimConfig {
        SimConfig {
            fleet: FleetSpec::standard(1),
            jobs,
            mix: ClassMix::uniform(),
            seed: 42,
            pstate: 0,
            qos_threshold: 1.5,
            noise_sigma: None,
            threads: 0,
        }
    }
}

/// One job's placement record within a wave.
struct Placed {
    /// Stream index of the job.
    job: usize,
    app: u8,
    socket: u32,
    /// Spec index of the socket's group.
    spec: usize,
    /// Decision-time expected slowdown of this job on its socket.
    expected: f64,
}

/// One job's final assignment, for inspection and property checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Assignment {
    /// Stream index of the job.
    pub job: usize,
    /// Suite app index.
    pub app: u8,
    /// Global socket id the job landed on.
    pub socket: u32,
    /// Wave the job was placed in.
    pub wave: usize,
}

/// The placement simulator: per-spec labs, trained estimators, and
/// oracles, shared across policies so memoization compounds.
pub struct PlacementSim {
    cfg: SimConfig,
    /// One lab per *distinct* machine spec (by name).
    labs: Vec<Lab>,
    estimators: Vec<SpecEstimator>,
    oracles: Vec<SpecOracle>,
    /// Fleet group index → distinct-spec index.
    group_spec: Vec<usize>,
}

impl PlacementSim {
    /// Validate the fleet, build one lab per distinct spec (seeded from
    /// the config seed and the spec name), and train each estimator.
    pub fn new(cfg: SimConfig) -> Result<PlacementSim> {
        cfg.fleet.validate().map_err(ColocError::InvalidSpec)?;
        if cfg.jobs == 0 {
            return Err(ColocError::DegenerateDataset(
                "placement stream has no jobs".into(),
            ));
        }
        let mut names: Vec<String> = Vec::new();
        let mut group_spec = Vec::with_capacity(cfg.fleet.groups.len());
        let mut labs = Vec::new();
        for g in &cfg.fleet.groups {
            let idx = match names.iter().position(|n| *n == g.machine.name) {
                Some(i) => i,
                None => {
                    let mut lab = Lab::new(
                        g.machine.clone(),
                        coloc_workloads::standard(),
                        derive_seed_str(cfg.seed, &g.machine.name),
                    )?
                    .with_threads(cfg.threads);
                    if let Some(sigma) = cfg.noise_sigma {
                        lab = lab.with_noise(sigma);
                    }
                    names.push(g.machine.name.clone());
                    labs.push(lab);
                    names.len() - 1
                }
            };
            group_spec.push(idx);
        }
        // One registry across the fleet: specs sharing a machine resolve
        // the same digest-addressed artifact instead of retraining.
        let registry = coloc_model::ModelRegistry::new();
        let estimators = labs
            .iter()
            .map(|lab| SpecEstimator::train_with(&registry, lab, cfg.pstate))
            .collect::<Result<Vec<_>>>()?;
        let oracles = labs
            .iter()
            .map(|lab| SpecOracle::new(lab, cfg.pstate))
            .collect();
        Ok(PlacementSim {
            cfg,
            labs,
            estimators,
            oracles,
            group_spec,
        })
    }

    /// The configuration this simulator was built from.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Run every benchmark policy and assemble the full report.
    pub fn run_benchmark(&mut self) -> Result<PlacementReport> {
        let policies = PlacePolicy::benchmark_set()
            .into_iter()
            .map(|p| self.run_policy(p))
            .collect::<Result<Vec<_>>>()?;
        let mut report = self.report_shell();
        report.policies = policies;
        Ok(report)
    }

    /// A report skeleton for this config with no policy outcomes yet —
    /// callers running a policy subset fill `policies` themselves.
    pub fn report_shell(&self) -> PlacementReport {
        PlacementReport {
            jobs: self.cfg.jobs,
            fleet: self
                .cfg
                .fleet
                .groups
                .iter()
                .map(|g| format!("{} × {}", g.machine.name, g.sockets))
                .collect(),
            total_sockets: self.cfg.fleet.total_sockets(),
            total_cores: self.cfg.fleet.total_cores(),
            seed: self.cfg.seed,
            mix: self.cfg.mix.weights,
            pstate: self.cfg.pstate,
            policies: Vec::new(),
        }
    }

    /// Place the whole stream with `policy` and score it against the
    /// oracle. Deterministic: bit-identical across runs and thread
    /// counts for a fixed config.
    pub fn run_policy(&mut self, policy: PlacePolicy) -> Result<PolicyOutcome> {
        let jobs = self.stream_jobs()?;
        self.run_policy_inner(policy, jobs, None).map(|(o, _)| o)
    }

    /// Like [`PlacementSim::run_policy`], additionally returning every
    /// job's final [`Assignment`] in stream order.
    pub fn run_policy_traced(
        &mut self,
        policy: PlacePolicy,
    ) -> Result<(PolicyOutcome, Vec<Assignment>)> {
        let jobs = self.stream_jobs()?;
        let (outcome, trace) = self.run_policy_inner(policy, jobs, Some(Vec::new()))?;
        Ok((outcome, trace.expect("trace requested")))
    }

    /// Place an *explicit* job list (suite app indices) instead of the
    /// seeded stream — the conformance permutation law reorders jobs and
    /// requires the scored outcome to stay bit-identical.
    pub fn run_policy_on_jobs(
        &mut self,
        policy: PlacePolicy,
        jobs: Vec<u8>,
    ) -> Result<PolicyOutcome> {
        let apps = self.labs[0].suite().len() as u8;
        if let Some(&bad) = jobs.iter().find(|&&a| a >= apps) {
            return Err(ColocError::UnknownApp(format!("job app index {bad}")));
        }
        self.run_policy_inner(policy, jobs, None).map(|(o, _)| o)
    }

    /// The seeded job stream this config generates.
    pub fn stream_jobs(&self) -> Result<Vec<u8>> {
        let suite = coloc_workloads::standard();
        Ok(JobStream::new(self.cfg.seed, self.cfg.mix, &suite)
            .map_err(ColocError::InvalidSpec)?
            .take_jobs(self.cfg.jobs))
    }

    fn run_policy_inner(
        &mut self,
        policy: PlacePolicy,
        jobs: Vec<u8>,
        mut trace: Option<Vec<Assignment>>,
    ) -> Result<(PolicyOutcome, Option<Vec<Assignment>>)> {
        if jobs.is_empty() {
            return Err(ColocError::DegenerateDataset(
                "placement stream has no jobs".into(),
            ));
        }
        let started = std::time::Instant::now();
        let spec = self.cfg.fleet.clone();
        let total_cores = spec.total_cores();
        let mut fleet = Fleet::new(&spec);

        let mut regret_sum = 0.0f64;
        let mut regret_max = 0.0f64;
        let mut oracle_sum = 0.0f64;
        let mut oracle_max = f64::MIN;
        let mut oracle_min = f64::MAX;
        let mut expected_sum = 0.0f64;
        let mut qos_violations = 0u64;
        let mut sockets_used = 0usize;
        let mut waves = 0usize;
        let mut digest = IrWriter::new();
        digest.str(&policy.to_string());

        let mut pos = 0usize;
        while pos < jobs.len() {
            let wave_end = (pos + total_cores).min(jobs.len());
            // Canonical order: app id, then stream index. Scored outcomes
            // become a pure function of the wave's job *multiset*.
            let mut order: Vec<usize> = (pos..wave_end).collect();
            order.sort_by_key(|&i| (jobs[i], i));

            let placed = match policy {
                PlacePolicy::PackFirstFit => self.place_pack(&jobs, &order, &mut fleet)?,
                PlacePolicy::LeastInterference => self.place_greedy(&jobs, &order, &mut fleet)?,
                PlacePolicy::RegretBatched { batch, top_k } => {
                    self.place_regret_batched(&jobs, &order, &mut fleet, batch, top_k)?
                }
            };

            // Score the wave: warm every final-contents measurement in one
            // batched oracle pass per spec, then read back in job order.
            let mut wants: Vec<Vec<(ContentsKey, u8)>> = vec![Vec::new(); self.labs.len()];
            for p in &placed {
                let others = key_remove(fleet.socket_key(p.socket), p.app);
                wants[p.spec].push((others, p.app));
                wants[p.spec].push((0, p.app));
            }
            for (si, w) in wants.iter().enumerate() {
                self.oracles[si].warm(&self.labs[si], w)?;
            }
            for p in &placed {
                let others = key_remove(fleet.socket_key(p.socket), p.app);
                let oracle_sd = self.oracles[p.spec].slowdown(&self.labs[p.spec], p.app, others)?;
                let regret = (p.expected - oracle_sd).abs();
                regret_sum += regret;
                regret_max = regret_max.max(regret);
                oracle_sum += oracle_sd;
                oracle_max = oracle_max.max(oracle_sd);
                oracle_min = oracle_min.min(oracle_sd);
                expected_sum += p.expected;
                if oracle_sd > self.cfg.qos_threshold {
                    qos_violations += 1;
                }
                digest.u64(p.socket as u64);
                digest.f64(p.expected);
                digest.f64(oracle_sd);
            }

            if let Some(t) = trace.as_mut() {
                t.extend(placed.iter().map(|p| Assignment {
                    job: p.job,
                    app: p.app,
                    socket: p.socket,
                    wave: waves,
                }));
            }
            sockets_used = sockets_used.max(fleet.sockets_used());
            waves += 1;
            fleet.reset();
            pos = wave_end;
        }
        if let Some(t) = trace.as_mut() {
            t.sort_by_key(|a| a.job);
        }

        let n = jobs.len() as f64;
        let elapsed = started.elapsed().as_secs_f64();
        let oracle_evaluations = self.oracles.iter().map(|o| o.evaluations()).sum();
        let outcome = PolicyOutcome {
            policy: policy.to_string(),
            jobs: jobs.len(),
            waves,
            regret_mean: regret_sum / n,
            regret_max,
            oracle_mean_slowdown: oracle_sum / n,
            oracle_max_slowdown: oracle_max,
            expected_mean_slowdown: expected_sum / n,
            unfairness: oracle_max / oracle_min,
            qos_threshold: self.cfg.qos_threshold,
            qos_violations,
            sockets_used,
            oracle_evaluations,
            jobs_per_sec: if elapsed > 0.0 {
                n / elapsed
            } else {
                f64::INFINITY
            },
            determinism_digest: digest.finish64(),
        };
        Ok((outcome, trace))
    }

    /// Interference-blind consolidation: fill socket 0 to capacity, then
    /// socket 1, and so on. The expected slowdown recorded for regret is
    /// still the predictor's decision-time estimate — first-fit's regret
    /// therefore measures how much the *final* crowding differs from what
    /// was known when each job landed.
    fn place_pack(
        &mut self,
        jobs: &[u8],
        order: &[usize],
        fleet: &mut Fleet<'_>,
    ) -> Result<Vec<Placed>> {
        let mut placed = Vec::with_capacity(order.len());
        let mut cur = 0u32;
        for &ji in order {
            let app = jobs[ji];
            let mut group = fleet.group_of(cur);
            while !fleet.has_free(group, fleet.socket_key(cur)) {
                cur += 1;
                group = fleet.group_of(cur);
            }
            let key = fleet.socket_key(cur);
            let spec = self.group_spec[group];
            let expected = self.estimators[spec].slowdown(&self.labs[spec], app, key)?;
            let socket = fleet.place(group, key, app);
            debug_assert_eq!(socket, cur, "first-fit fills in id order");
            placed.push(Placed {
                job: ji,
                app,
                socket,
                spec,
                expected,
            });
        }
        Ok(placed)
    }

    /// Predictor-greedy: each job takes the candidate bucket with the
    /// smallest predicted marginal slowdown. Empty sockets have a delta
    /// of exactly 1.0, so the tie-break (fewer occupants, lower group,
    /// lower key) spreads jobs across idle sockets before stacking.
    fn place_greedy(
        &mut self,
        jobs: &[u8],
        order: &[usize],
        fleet: &mut Fleet<'_>,
    ) -> Result<Vec<Placed>> {
        let mut placed = Vec::with_capacity(order.len());
        for &ji in order {
            let app = jobs[ji];
            let (group, key) = self.best_candidate(app, fleet)?;
            let spec = self.group_spec[group];
            let expected = self.estimators[spec].slowdown(&self.labs[spec], app, key)?;
            let socket = fleet.place(group, key, app);
            placed.push(Placed {
                job: ji,
                app,
                socket,
                spec,
                expected,
            });
        }
        Ok(placed)
    }

    /// The candidate bucket minimizing predicted marginal slowdown, with
    /// a deterministic tie-break.
    fn best_candidate(&mut self, app: u8, fleet: &Fleet<'_>) -> Result<(usize, ContentsKey)> {
        let candidates: Vec<(usize, ContentsKey)> = fleet.candidates().collect();
        let mut best: Option<RankedCandidate> = None;
        for (group, key) in candidates {
            let spec = self.group_spec[group];
            let delta = self.estimators[spec].delta(&self.labs[spec], app, key)?;
            // Sort key: delta (total order over bits — deltas are ≥ 1.0,
            // so the bit pattern orders like the value), occupants,
            // group, contents.
            let rank = (delta.to_bits(), crate::fleet::key_total(key), group, key);
            if best.as_ref().is_none_or(|(b, _)| rank < *b) {
                best = Some((rank, (group, key)));
            }
        }
        best.map(|(_, c)| c)
            .ok_or_else(|| ColocError::InsufficientData("no free socket in fleet".into()))
    }

    /// Regret-bounded batched greedy: the predictor screens `top_k`
    /// candidates per job against a chunk-start snapshot, the oracle
    /// measures the survivors in one batched pass, and each job takes the
    /// measured-best candidate still valid in the live fleet (falling
    /// back to live predictor-greedy when the chunk consumed them all).
    fn place_regret_batched(
        &mut self,
        jobs: &[u8],
        order: &[usize],
        fleet: &mut Fleet<'_>,
        batch: usize,
        top_k: usize,
    ) -> Result<Vec<Placed>> {
        let batch = batch.max(1);
        let top_k = top_k.max(1);
        let mut placed = Vec::with_capacity(order.len());
        for chunk in order.chunks(batch) {
            // Snapshot the candidate set once per chunk; screen each
            // job's candidates with the predictor.
            let snapshot: Vec<(usize, ContentsKey)> = fleet.candidates().collect();
            let mut screened: Vec<Vec<(usize, ContentsKey)>> = Vec::with_capacity(chunk.len());
            let mut wants: Vec<Vec<(ContentsKey, u8)>> = vec![Vec::new(); self.labs.len()];
            for &ji in chunk {
                let app = jobs[ji];
                let mut ranked: Vec<RankedCandidate> = Vec::with_capacity(snapshot.len());
                for &(group, key) in &snapshot {
                    let spec = self.group_spec[group];
                    let delta = self.estimators[spec].delta(&self.labs[spec], app, key)?;
                    ranked.push((
                        (delta.to_bits(), crate::fleet::key_total(key), group, key),
                        (group, key),
                    ));
                }
                ranked.sort_by_key(|(rank, _)| *rank);
                ranked.truncate(top_k);
                for &(_, (group, key)) in &ranked {
                    wants[self.group_spec[group]].push((key, app));
                }
                screened.push(ranked.into_iter().map(|(_, c)| c).collect());
            }
            // One batched oracle pass per spec warms every screened
            // measurement; placement below then reads memoized values.
            for (si, w) in wants.iter().enumerate() {
                self.oracles[si].warm(&self.labs[si], w)?;
            }
            for (&ji, cands) in chunk.iter().zip(&screened) {
                let app = jobs[ji];
                let mut best: Option<(RankedCandidate, f64)> = None;
                for &(group, key) in cands {
                    if !fleet.has_free(group, key) {
                        continue;
                    }
                    let spec = self.group_spec[group];
                    let sd = self.oracles[spec].slowdown(&self.labs[spec], app, key)?;
                    let rank = (sd.to_bits(), crate::fleet::key_total(key), group, key);
                    if best.as_ref().is_none_or(|((b, _), _)| rank < *b) {
                        best = Some(((rank, (group, key)), sd));
                    }
                }
                let (group, key, expected) = match best {
                    Some(((_, (group, key)), sd)) => (group, key, sd),
                    None => {
                        // Every screened bucket was consumed by earlier
                        // chunk jobs — fall back to live greedy.
                        let (group, key) = self.best_candidate(app, fleet)?;
                        let spec = self.group_spec[group];
                        let sd = self.oracles[spec].slowdown(&self.labs[spec], app, key)?;
                        (group, key, sd)
                    }
                };
                let spec = self.group_spec[group];
                let socket = fleet.place(group, key, app);
                placed.push(Placed {
                    job: ji,
                    app,
                    socket,
                    spec,
                    expected,
                });
            }
        }
        Ok(placed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coloc_machine::presets;

    fn sim(jobs: usize) -> PlacementSim {
        PlacementSim::new(SimConfig::smoke(jobs)).unwrap()
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(PlacementSim::new(SimConfig {
            jobs: 0,
            ..SimConfig::smoke(1)
        })
        .is_err());
        let mut cfg = SimConfig::smoke(10);
        cfg.fleet = FleetSpec { groups: vec![] };
        assert!(PlacementSim::new(cfg).is_err());
    }

    #[test]
    fn solo_wave_has_zero_regret_under_greedy() {
        // Fewer jobs than sockets: least-interference spreads them all
        // solo, expected and oracle slowdowns are both exactly 1.0, so
        // regret is exactly zero and fairness is perfect.
        let mut sim = sim(6);
        let out = sim.run_policy(PlacePolicy::LeastInterference).unwrap();
        assert_eq!(out.jobs, 6);
        assert_eq!(out.waves, 1);
        assert_eq!(out.regret_mean.to_bits(), 0f64.to_bits());
        assert_eq!(out.regret_max.to_bits(), 0f64.to_bits());
        assert_eq!(out.oracle_mean_slowdown.to_bits(), 1f64.to_bits());
        assert_eq!(out.unfairness.to_bits(), 1f64.to_bits());
        assert_eq!(out.qos_violations, 0);
        assert_eq!(out.sockets_used, 6, "one socket per job");
    }

    #[test]
    fn pack_consolidates_and_greedy_spreads() {
        let mut sim = sim(12);
        let pack = sim.run_policy(PlacePolicy::PackFirstFit).unwrap();
        let greedy = sim.run_policy(PlacePolicy::LeastInterference).unwrap();
        assert!(
            pack.sockets_used <= greedy.sockets_used,
            "pack {} vs greedy {}",
            pack.sockets_used,
            greedy.sockets_used
        );
        // 12 jobs fit on the first two sockets of group 0 (6 cores each).
        assert_eq!(pack.sockets_used, 2);
        // Greedy goes solo-first: 8 sockets, then stacks the remainder.
        assert_eq!(greedy.sockets_used, 8);
        assert!(
            greedy.oracle_mean_slowdown <= pack.oracle_mean_slowdown,
            "interference-aware placement beats packing: {} vs {}",
            greedy.oracle_mean_slowdown,
            pack.oracle_mean_slowdown
        );
    }

    #[test]
    fn reruns_are_bit_identical_across_thread_counts() {
        let outcomes: Vec<PolicyOutcome> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                let mut cfg = SimConfig::smoke(100);
                cfg.threads = threads;
                let mut sim = PlacementSim::new(cfg).unwrap();
                sim.run_policy(PlacePolicy::RegretBatched {
                    batch: 16,
                    top_k: 3,
                })
                .unwrap()
            })
            .collect();
        for other in &outcomes[1..] {
            assert_eq!(outcomes[0].digest(), other.digest());
            assert_eq!(outcomes[0].determinism_digest, other.determinism_digest);
        }
    }

    #[test]
    fn single_spec_fleet_runs_every_policy() {
        let mut cfg = SimConfig::smoke(30);
        cfg.fleet = FleetSpec::single(presets::xeon_e5649(), 3);
        let mut sim = PlacementSim::new(cfg).unwrap();
        let report = sim.run_benchmark().unwrap();
        assert_eq!(report.policies.len(), 3);
        assert_eq!(report.total_cores, 18);
        for p in &report.policies {
            assert_eq!(p.jobs, 30);
            assert_eq!(p.waves, 2, "30 jobs over 18 cores");
            assert!(p.oracle_mean_slowdown >= 1.0);
            assert!(p.unfairness >= 1.0);
            assert!(p.regret_mean >= 0.0);
        }
        // The oracle-assisted policy should not lose to blind packing.
        let rb = report.policy("regret-batched").unwrap();
        let pack = report.policy("pack-first-fit").unwrap();
        assert!(rb.oracle_mean_slowdown <= pack.oracle_mean_slowdown);
    }
}
