//! Fleet-scale placement policies.

/// How the simulation places each wave of jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PlacePolicy {
    /// Fill sockets in id order, each to capacity, interference-blind —
    /// maximum consolidation, the fleet analogue of
    /// `coloc_model::scheduler::Policy::PackFirstFit`.
    PackFirstFit,
    /// Greedy: each job goes to the candidate socket with the smallest
    /// predicted marginal slowdown (ties: fewer occupants, lower group,
    /// lower contents key). Pure predictor, no oracle at decision time.
    LeastInterference,
    /// Regret-bounded batched greedy: the predictor screens each job's
    /// candidates down to `top_k`, the oracle (through the batched
    /// `RunCache` path, warmed `batch` jobs at a time) measures the
    /// survivors, and the job takes the measured-best socket. Decision
    /// regret is bounded by the predictor's ranking quality over the
    /// screened set rather than its absolute accuracy.
    RegretBatched {
        /// Jobs per oracle warm-up batch.
        batch: usize,
        /// Predictor-screened candidates measured per job.
        top_k: usize,
    },
}

impl PlacePolicy {
    /// The three benchmark policies at their standard parameters.
    pub fn benchmark_set() -> Vec<PlacePolicy> {
        vec![
            PlacePolicy::PackFirstFit,
            PlacePolicy::LeastInterference,
            PlacePolicy::RegretBatched {
                batch: 256,
                top_k: 3,
            },
        ]
    }

    /// Stable identifier for reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            PlacePolicy::PackFirstFit => "pack-first-fit",
            PlacePolicy::LeastInterference => "least-interference",
            PlacePolicy::RegretBatched { .. } => "regret-batched",
        }
    }

    /// Parse a CLI policy name (standard parameters for `regret-batched`).
    pub fn by_name(name: &str) -> Result<PlacePolicy, String> {
        match name {
            "pack-first-fit" | "pack" | "first-fit" => Ok(PlacePolicy::PackFirstFit),
            "least-interference" | "li" | "greedy" => Ok(PlacePolicy::LeastInterference),
            "regret-batched" | "rb" => Ok(PlacePolicy::RegretBatched {
                batch: 256,
                top_k: 3,
            }),
            other => Err(format!(
                "unknown policy {other:?} (pack-first-fit|least-interference|regret-batched)"
            )),
        }
    }
}

impl std::fmt::Display for PlacePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacePolicy::RegretBatched { batch, top_k } => {
                write!(f, "regret-batched(batch={batch},top_k={top_k})")
            }
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in PlacePolicy::benchmark_set() {
            assert_eq!(PlacePolicy::by_name(p.name()).unwrap().name(), p.name());
        }
        assert!(PlacePolicy::by_name("random").is_err());
        assert_eq!(
            format!(
                "{}",
                PlacePolicy::RegretBatched {
                    batch: 64,
                    top_k: 2
                }
            ),
            "regret-batched(batch=64,top_k=2)"
        );
    }
}
