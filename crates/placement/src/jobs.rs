//! Seeded synthetic job streams with class-mix knobs.
//!
//! A job is one instance of a suite application. The stream draws a
//! memory-intensity class (paper Table III) from configurable weights,
//! then an application uniformly within that class — so "80% compute,
//! 20% streamers" datacenters and "all memory hogs" stress mixes are both
//! one knob away, and every draw is a pure function of the seed.

use coloc_workloads::{Benchmark, MemoryClass};
use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Relative weights over the four memory-intensity classes (I..IV, most
/// to least memory-bound). Weights need not sum to 1; they are
/// normalized at stream construction.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClassMix {
    /// Weight per class, indexed like [`MemoryClass::ALL`].
    pub weights: [f64; 4],
}

impl ClassMix {
    /// Every class equally likely.
    pub fn uniform() -> ClassMix {
        ClassMix { weights: [1.0; 4] }
    }

    /// Memory-bound heavy: the interference-rich regime where placement
    /// quality matters most.
    pub fn memory_heavy() -> ClassMix {
        ClassMix {
            weights: [4.0, 3.0, 2.0, 1.0],
        }
    }

    /// Compute-bound heavy: a consolidation-friendly fleet where most
    /// jobs barely touch memory.
    pub fn compute_heavy() -> ClassMix {
        ClassMix {
            weights: [1.0, 2.0, 3.0, 4.0],
        }
    }

    /// Parse a named preset.
    pub fn by_name(name: &str) -> Result<ClassMix, String> {
        match name {
            "uniform" => Ok(ClassMix::uniform()),
            "memory-heavy" | "memory_heavy" => Ok(ClassMix::memory_heavy()),
            "compute-heavy" | "compute_heavy" => Ok(ClassMix::compute_heavy()),
            other => Err(format!(
                "unknown class mix {other:?} (uniform|memory-heavy|compute-heavy)"
            )),
        }
    }

    /// Weights must be finite, non-negative, and not all zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err("class-mix weights must be finite and non-negative".into());
        }
        if self.weights.iter().sum::<f64>() <= 0.0 {
            return Err("class-mix weights must not all be zero".into());
        }
        Ok(())
    }
}

/// A deterministic stream of jobs (suite app indices) over a benchmark
/// suite. Two streams with the same seed, mix, and suite produce the
/// same sequence on any platform and at any consumption granularity.
pub struct JobStream {
    rng: StdRng,
    /// Cumulative class weights, normalized to end at 1.0.
    cum: [f64; 4],
    /// Suite app indices per class, in suite order.
    class_apps: [Vec<u8>; 4],
}

impl JobStream {
    /// Build a stream over `suite` (app indices refer to suite order).
    /// Classes with no suite member fall through to the nearest
    /// less-intensive populated class (wrapping to the most intensive).
    pub fn new(seed: u64, mix: ClassMix, suite: &[Benchmark]) -> Result<JobStream, String> {
        mix.validate()?;
        if suite.is_empty() {
            return Err("job stream needs a non-empty suite".into());
        }
        let mut class_apps: [Vec<u8>; 4] = Default::default();
        for (i, b) in suite.iter().enumerate() {
            let c = MemoryClass::ALL
                .iter()
                .position(|&x| x == b.class)
                .expect("MemoryClass::ALL is total");
            class_apps[c].push(i as u8);
        }
        // Zero out weights of empty classes, then normalize what's left.
        let mut w = mix.weights;
        for (c, apps) in class_apps.iter().enumerate() {
            if apps.is_empty() {
                w[c] = 0.0;
            }
        }
        let total: f64 = w.iter().sum();
        if total <= 0.0 {
            return Err("class mix puts all weight on classes absent from the suite".into());
        }
        let mut cum = [0.0; 4];
        let mut acc = 0.0;
        for (c, weight) in w.iter().enumerate() {
            acc += weight / total;
            cum[c] = acc;
        }
        cum[3] = 1.0; // close the interval against rounding
        Ok(JobStream {
            rng: StdRng::seed_from_u64(seed),
            cum,
            class_apps,
        })
    }

    /// Draw the next job (suite app index).
    pub fn next_job(&mut self) -> u8 {
        let r: f64 = self.rng.gen_range(0.0..1.0);
        let class = self.cum.iter().position(|&c| r < c).unwrap_or(3);
        let apps = &self.class_apps[class];
        apps[self.rng.gen_range(0..apps.len())]
    }

    /// Draw `n` jobs.
    pub fn take_jobs(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_job()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let suite = coloc_workloads::standard();
        let a = JobStream::new(7, ClassMix::uniform(), &suite)
            .unwrap()
            .take_jobs(1000);
        let b = JobStream::new(7, ClassMix::uniform(), &suite)
            .unwrap()
            .take_jobs(1000);
        assert_eq!(a, b);
        // Consumption granularity does not matter.
        let mut s = JobStream::new(7, ClassMix::uniform(), &suite).unwrap();
        let mut c = s.take_jobs(400);
        c.extend(s.take_jobs(600));
        assert_eq!(a, c);
        // A different seed gives a different stream.
        let d = JobStream::new(8, ClassMix::uniform(), &suite)
            .unwrap()
            .take_jobs(1000);
        assert_ne!(a, d);
    }

    #[test]
    fn mix_knobs_shift_the_class_distribution() {
        let suite = coloc_workloads::standard();
        let count_class_i = |mix: ClassMix| {
            let jobs = JobStream::new(3, mix, &suite).unwrap().take_jobs(4000);
            jobs.iter()
                .filter(|&&j| suite[j as usize].class == MemoryClass::I)
                .count()
        };
        let heavy = count_class_i(ClassMix::memory_heavy());
        let light = count_class_i(ClassMix::compute_heavy());
        assert!(
            heavy > light * 2,
            "memory-heavy {heavy} vs compute-heavy {light}"
        );
    }

    #[test]
    fn invalid_mixes_are_rejected() {
        assert!(ClassMix { weights: [0.0; 4] }.validate().is_err());
        assert!(ClassMix {
            weights: [1.0, -0.5, 1.0, 1.0]
        }
        .validate()
        .is_err());
        assert!(ClassMix {
            weights: [f64::NAN, 1.0, 1.0, 1.0]
        }
        .validate()
        .is_err());
        assert!(ClassMix::by_name("uniform").is_ok());
        assert!(ClassMix::by_name("bogus").is_err());
    }

    #[test]
    fn all_draws_are_valid_suite_indices() {
        let suite = coloc_workloads::standard();
        for mix in [
            ClassMix::uniform(),
            ClassMix::memory_heavy(),
            ClassMix::compute_heavy(),
        ] {
            let jobs = JobStream::new(11, mix, &suite).unwrap().take_jobs(2000);
            assert!(jobs.iter().all(|&j| (j as usize) < suite.len()));
            // Every class with weight shows up in a big enough sample.
            let classes: std::collections::BTreeSet<_> =
                jobs.iter().map(|&j| suite[j as usize].class).collect();
            assert!(classes.len() >= 3, "{classes:?}");
        }
    }
}
