//! Datacenter-scale interference-aware placement.
//!
//! The paper motivates its prediction methodology with "intelligent
//! application scheduling … increasing opportunities for server
//! consolidation to save power while still maintaining quality of
//! service". `crates/core`'s [`coloc_model::scheduler`] does that for one
//! machine; this crate scales the same idea to a fleet: millions of
//! seeded synthetic jobs, thousands of simulated sockets across four
//! machine presets, predictor-guided policies, and — because the
//! workloads are simulated — an *oracle* that re-measures every final
//! placement in the engine and scores each policy by its **regret**: the
//! gap between what the policy expected at decision time and what the
//! oracle measured once the dust settled.
//!
//! ## The model
//!
//! - A **job** is one instance of a suite application (Table III), drawn
//!   from a seeded stream with class-mix knobs ([`ClassMix`]).
//! - A **socket** is one multicore processor (a
//!   [`coloc_machine::MachineSpec`] preset);
//!   the **fleet** ([`FleetSpec`]) is a list of socket groups.
//! - Placement proceeds in **waves**: the fleet fills to capacity, the
//!   wave is scored against the oracle, and the fleet flushes. Within a
//!   wave, jobs are placed in canonical (app-sorted) order, so the scored
//!   outcome is a pure function of the wave's job *multiset* — the
//!   job-permutation conformance law holds exactly, and placement is
//!   bit-identical across thread counts and re-runs.
//! - Socket contents are interned as a [`ContentsKey`] (5 bits per suite
//!   app), so predictor and oracle evaluations memoize per distinct
//!   `(machine, contents, target)` — a million jobs need only tens of
//!   thousands of engine runs, fanned out through the machine crate's
//!   batched [`coloc_machine::RunCache::run_batch`] path.
//!
//! ## Scores
//!
//! Per policy ([`PlacePolicy`]): mean/max oracle slowdown, MISE-style
//! unfairness (max/min slowdown), soft-QoS violations at a configurable
//! threshold, sockets used, and the headline **placement regret** —
//! mean |decision-time expected slowdown − final oracle slowdown| per
//! job. Slowdowns are ratio-normalized so a solo job's predicted and
//! measured slowdowns are both *exactly* 1.0 (making the solo-regret-zero
//! law exact, not approximate).

pub mod estimator;
pub mod fleet;
pub mod jobs;
pub mod oracle;
pub mod policy;
pub mod report;
pub mod sim;

pub use estimator::SpecEstimator;
pub use fleet::{ContentsKey, Fleet, FleetGroup, FleetSpec};
pub use jobs::{ClassMix, JobStream};
pub use oracle::SpecOracle;
pub use policy::PlacePolicy;
pub use report::{PlacementReport, PolicyOutcome};
pub use sim::{Assignment, PlacementSim, SimConfig};

/// Errors share the model crate's taxonomy ([`coloc_model::ColocError`]).
pub type Result<T> = coloc_model::Result<T>;
