//! Serve-path conformance: an answer that crossed the wire must be
//! bit-identical to the same scenario measured directly through
//! [`Lab::collect`]. The chain under test is long — scenario → IR →
//! sharded cache → engine → f64 → JSON → parse — and every link must
//! be exact for the service to be a drop-in for local measurement.

use coloc_machine::presets;
use coloc_model::{Lab, Scenario, TrainingPlan};
use coloc_serve::proto::QueryMode;
use coloc_serve::server::{BindAddr, ServeConfig, Server};
use coloc_serve::{QueryClient, Reply};

const SEED: u64 = 2015;

fn reference_lab() -> Lab {
    Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), SEED).unwrap()
}

fn pinned_plan() -> TrainingPlan {
    TrainingPlan {
        pstates: vec![0, 2, 5],
        targets: vec!["canneal".into(), "cg".into(), "ep".into(), "ft".into()],
        co_runners: vec!["cg".into(), "ep".into()],
        counts: vec![1, 3, 5],
    }
}

/// Every plan scenario served over TCP in `measure` mode equals the
/// direct `Lab::collect` measurement bit-for-bit — across the sharded
/// cache, the admission queue, the batch dispatcher, and JSON.
#[test]
fn served_measurements_match_lab_collect_bitwise() {
    let plan = pinned_plan();
    let reference = reference_lab().collect(&plan).unwrap();

    let handle = Server::spawn(ServeConfig {
        bind: BindAddr::Tcp("127.0.0.1:0".into()),
        seed: SEED,
        quiet: true,
        engine_threads: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr().unwrap().to_string();
    let mut client = QueryClient::connect_tcp(&addr).unwrap();

    for sample in &reference {
        let reply = client
            .query(&sample.scenario, QueryMode::Measure, None, None)
            .unwrap();
        let Reply::Ok {
            time_s, degraded, ..
        } = reply
        else {
            panic!("{}: expected ok, got {reply:?}", sample.scenario.label())
        };
        assert!(
            !degraded,
            "{}: conformance runs undegraded",
            sample.scenario.label()
        );
        assert_eq!(
            time_s.to_bits(),
            sample.actual_time_s.to_bits(),
            "{}: served {} vs collected {}",
            sample.scenario.label(),
            time_s,
            sample.actual_time_s,
        );
    }
    handle.shutdown();
    handle.join();
}

/// A repeated scenario is answered from the sharded cache with the same
/// bits as the engine produced, and a different machine preset routes
/// to a different (also exact) lab.
#[test]
fn cache_hits_and_machine_routing_stay_exact() {
    let handle = Server::spawn(ServeConfig {
        bind: BindAddr::Tcp("127.0.0.1:0".into()),
        seed: SEED,
        quiet: true,
        engine_threads: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.local_addr().unwrap().to_string();
    let mut client = QueryClient::connect_tcp(&addr).unwrap();
    let sc = Scenario::homogeneous("canneal", "cg", 3, 1);

    let first = match client.query(&sc, QueryMode::Measure, None, None).unwrap() {
        Reply::Ok { time_s, source, .. } => {
            assert_eq!(source, "engine");
            time_s
        }
        other => panic!("expected ok, got {other:?}"),
    };
    match client.query(&sc, QueryMode::Measure, None, None).unwrap() {
        Reply::Ok { time_s, source, .. } => {
            assert_eq!(source, "cache");
            assert_eq!(time_s.to_bits(), first.to_bits());
        }
        other => panic!("expected ok, got {other:?}"),
    }

    // The 12-core preset answers from its own lab, matching a direct
    // measurement on that machine.
    let lab12 = Lab::new(presets::xeon_e5_2697v2(), coloc_workloads::standard(), SEED).unwrap();
    let direct = lab12.run_scenario(&sc).unwrap();
    match client
        .query(&sc, QueryMode::Measure, None, Some("12core"))
        .unwrap()
    {
        Reply::Ok { time_s, .. } => assert_eq!(time_s.to_bits(), direct.to_bits()),
        other => panic!("expected ok, got {other:?}"),
    }
    handle.shutdown();
    handle.join();
}
