//! Chaos harness for `coloc serve`: drive the server past its admission
//! limit with clients that misbehave (floods, slow readers), then kill
//! it mid-flight with a real SIGTERM and check the drain contract —
//! sheds are reported (never hangs, never unbounded growth), admitted
//! in-flight queries complete, and the final stats frame accounts for
//! every request.

use coloc_model::ColocError;
use coloc_serve::proto::QueryMode;
use coloc_serve::server::{BindAddr, ServeConfig, Server};
use coloc_serve::{signals, QueryClient, Reply, RetryPolicy};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The SIGTERM latch is process-global, so a raised signal would drain
/// every server spawned by a concurrently running test. Chaos tests
/// serialize on this lock.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn chaos_config() -> ServeConfig {
    ServeConfig {
        bind: BindAddr::Tcp("127.0.0.1:0".into()),
        quiet: true,
        engine_threads: 1,
        // Tiny bounds so overload is reachable without heavy traffic.
        admission_capacity: 8,
        degrade_watermark: 4,
        max_batch: 4,
        default_deadline_ms: 10_000,
        ..ServeConfig::default()
    }
}

fn solo(target: &str, pstate: usize) -> coloc_model::Scenario {
    coloc_model::Scenario::solo(target, pstate)
}

/// Flood the server with 4× its admission capacity from a client that
/// never reads: the server must shed with `overloaded` (visible in the
/// stats frame), never block, and stay healthy for well-behaved
/// clients.
#[test]
fn overload_sheds_and_stays_responsive() {
    let _guard = serial();
    signals::reset();
    let handle = Server::spawn(chaos_config()).unwrap();
    let addr = handle.local_addr().unwrap();

    // The slow reader: write 32 distinct queries (4× capacity 8) in one
    // burst without ever reading a byte back.
    let mut flood = TcpStream::connect(addr).unwrap();
    for i in 0..32 {
        // Distinct scenarios so the cache cannot absorb the flood.
        writeln!(
            flood,
            r#"{{"op":"query","id":"f{i}","target":"cg","co":[["ep",{}]],"pstate":{}}}"#,
            1 + i % 5,
            i % 6,
        )
        .unwrap();
    }
    flood.flush().unwrap();

    // The server must keep answering a well-behaved client promptly
    // while digesting the flood.
    let mut probe = QueryClient::connect_tcp(&addr.to_string()).unwrap();
    let t0 = Instant::now();
    probe.ping().unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "ping stalled behind the flood: {:?}",
        t0.elapsed()
    );

    // Give the dispatcher time to chew through what was admitted.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = probe.stats().unwrap();
        if stats.admitted > 0 && stats.completed + stats.dropped_responses >= stats.admitted {
            // Every admitted query was answered (or its response was
            // dropped on the never-reading client); sheds were explicit.
            assert!(
                stats.admitted + stats.shed_overload >= 32,
                "all 32 flood queries accounted for: {stats:?}"
            );
            // Admission is orders of magnitude faster than an engine
            // batch, so a 4×-capacity burst must have shed explicitly.
            assert!(
                stats.shed_overload > 0,
                "no sheds under 4× flood: {stats:?}"
            );
            assert!(stats.queue_depth <= 8, "queue bound held: {stats:?}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never drained the flood: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    handle.shutdown();
    let frame = handle.join();
    assert_eq!(frame.queue_depth, 0, "drain leaves nothing queued");
}

/// Saturate past the watermark and verify the degradation ladder kicks
/// in: answers keep flowing, some explicitly degraded, none hung.
#[test]
fn saturation_degrades_instead_of_collapsing() {
    let _guard = serial();
    signals::reset();
    let mut cfg = chaos_config();
    cfg.degrade_watermark = 1; // degrade almost immediately
    cfg.admission_capacity = 64;
    let handle = Server::spawn(cfg).unwrap();
    let addr = handle.local_addr().unwrap().to_string();

    // Burst 24 queries through one pipelined connection, then read all
    // the answers back.
    let mut client = QueryClient::connect_tcp(&addr).unwrap();
    let mut burst = TcpStream::connect(handle.local_addr().unwrap()).unwrap();
    for i in 0..24 {
        writeln!(
            burst,
            r#"{{"op":"query","id":"s{i}","target":"canneal","co":[["cg",{}]],"pstate":0}}"#,
            1 + i % 4,
        )
        .unwrap();
    }
    burst.flush().unwrap();

    let deadline = Instant::now() + Duration::from_secs(60);
    let stats = loop {
        let stats = client.stats().unwrap();
        if stats.completed + stats.dropped_responses + stats.shed_overload + stats.shed_deadline
            >= 24
        {
            break stats;
        }
        assert!(Instant::now() < deadline, "saturation hung: {stats:?}");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert!(
        stats.degraded_cache + stats.degraded_fallback > 0,
        "the ladder should have degraded some answers: {stats:?}"
    );
    // A fresh, exact query still works after the storm.
    let reply = client
        .query_with_retry(
            &solo("ep", 0),
            QueryMode::Measure,
            None,
            None,
            &RetryPolicy::default(),
        )
        .unwrap();
    let Reply::Ok { time_s, .. } = reply else {
        panic!("expected ok after saturation, got {reply:?}")
    };
    assert!(time_s > 0.0);
    handle.shutdown();
    handle.join();
}

/// The SIGTERM drain contract, exercised through the real signal path:
/// in-flight (admitted) queries complete with answers, new work is
/// refused with `shutting_down`, and the final frame flushes with an
/// empty queue.
#[test]
fn sigterm_drains_without_losing_inflight_responses() {
    let _guard = serial();
    signals::install();
    signals::reset();
    let mut cfg = chaos_config();
    cfg.admission_capacity = 64;
    cfg.degrade_watermark = 64; // exact answers only: drain must not cheat
    let handle = Server::spawn(cfg).unwrap();
    let addr = handle.local_addr().unwrap().to_string();

    let mut client = QueryClient::connect_tcp(&addr).unwrap();
    // Pipeline a dozen distinct queries, then SIGTERM before reading.
    let mut burst = TcpStream::connect(handle.local_addr().unwrap()).unwrap();
    let mut reader = std::io::BufReader::new(burst.try_clone().unwrap());
    for i in 0..12 {
        writeln!(
            burst,
            r#"{{"op":"query","id":"d{i}","target":"ep","co":[["cg",{}]],"pstate":{}}}"#,
            1 + i % 5,
            i % 3,
        )
        .unwrap();
    }
    burst.flush().unwrap();
    // Wait until everything is admitted (or answered) so "in-flight"
    // means admitted work, then deliver a genuine SIGTERM.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = client.stats().unwrap();
        if s.admitted + s.shed_overload >= 12 {
            break;
        }
        assert!(Instant::now() < deadline, "admission stalled: {s:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
    signals::raise_signal(signals::SIGTERM);

    // The drain must complete and flush a final frame.
    let frame = handle.join();
    assert_eq!(frame.queue_depth, 0, "queue drained: {frame:?}");
    assert!(
        frame.completed + frame.dropped_responses >= frame.admitted,
        "every admitted query resolved: {frame:?}"
    );

    // Every pipelined response the client was owed is readable: count
    // answer lines until EOF (the server closed after flushing).
    use std::io::BufRead;
    burst
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut answers = 0u64;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if !line.trim().is_empty() => answers += 1,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    assert_eq!(
        answers,
        frame.admitted.min(12),
        "zero in-flight responses lost (frame: {frame:?})"
    );
    signals::reset();
}

/// After a drain begins, new queries are refused with the typed
/// shutdown error rather than silently dropped.
#[test]
fn draining_server_refuses_new_work_with_typed_error() {
    let _guard = serial();
    signals::reset();
    let handle = Server::spawn(chaos_config()).unwrap();
    let addr = handle.local_addr().unwrap().to_string();
    let mut client = QueryClient::connect_tcp(&addr).unwrap();
    client.ping().unwrap();
    handle.shutdown();
    // The reader threads poll the drain latch every ≤100ms; queries that
    // still reach admission must get `shutting_down`. The connection may
    // also already be closed — both are clean refusals, never a hang.
    match client.query(&solo("ep", 0), QueryMode::Measure, None, None) {
        Ok(Reply::Err {
            error: ColocError::ShuttingDown,
            ..
        }) => {}
        Ok(other) => panic!("expected shutting_down, got {other:?}"),
        Err(ColocError::Machine(msg)) => {
            assert!(
                msg.contains("closed") || msg.contains("send") || msg.contains("recv"),
                "unexpected transport error: {msg}"
            );
        }
        Err(other) => panic!("unexpected error: {other}"),
    }
    handle.join();
}

/// Deterministic synthetic training set for the reload storm: the
/// `scale` knob bends the target times so two sets fit two *different*
/// linear models (→ different artifact digests, different predictions).
fn reload_samples(scale: f64) -> Vec<coloc_model::Sample> {
    (0..80)
        .map(|i| coloc_model::Sample {
            scenario: coloc_model::Scenario::homogeneous("t", "c", i % 5, 0),
            features: [
                100.0 + i as f64,
                (i % 5) as f64,
                (i % 5) as f64 * 0.01,
                1e-3,
                (i % 5) as f64 * 0.3,
                (i % 5) as f64 * 0.02,
                0.1,
                0.02,
            ],
            actual_time_s: (100.0 + i as f64) * (1.0 + (i % 5) as f64 * 0.05 * scale),
        })
        .collect()
}

/// The hot-reload contract under a predict storm: overwrite the model
/// artifact on disk and swap it in (wire `reload` verb, then the SIGHUP
/// path) while clients hammer the server. Every answer must be
/// bit-identical to exactly one epoch's model — never a blend, never a
/// drop — the stats frame's `model_epoch` must be monotonic with the
/// matching digest, and no request is ever refused as shutting down.
#[test]
fn hot_reload_under_storm_swaps_without_a_drain() {
    use coloc_model::{FeatureSet, Lab, ModelKind, ModelRegistry};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let _guard = serial();
    signals::reset();

    // Two artifacts with different provenance → different digests and
    // (measurably) different predictions.
    let registry = ModelRegistry::new();
    let a = registry
        .train_from_samples(
            &reload_samples(1.0),
            ModelKind::Linear,
            FeatureSet::F,
            0,
            None,
        )
        .unwrap()
        .artifact;
    let b = registry
        .train_from_samples(
            &reload_samples(3.0),
            ModelKind::Linear,
            FeatureSet::F,
            0,
            None,
        )
        .unwrap()
        .artifact;
    assert_ne!(a.digest(), b.digest(), "the two artifacts must differ");

    let dir = std::env::temp_dir().join(format!("coloc-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.json");
    registry.save(&a, &model_path).unwrap();

    let mut cfg = chaos_config();
    cfg.admission_capacity = 256;
    cfg.degrade_watermark = 256;
    cfg.model_path = Some(model_path.clone());
    let seed = cfg.seed;
    let handle = Server::spawn(cfg).unwrap();
    let addr = handle.local_addr().unwrap().to_string();

    // The server featurizes on its e5649 lab; an identical local lab
    // gives us the exact bits every answer must equal under model A or
    // model B. No third value is legal.
    let lab = Lab::new(
        coloc_machine::presets::xeon_e5649(),
        coloc_workloads::standard(),
        seed,
    )
    .unwrap()
    .with_threads(1);
    let scenarios: Vec<coloc_model::Scenario> = (0..6)
        .map(|i| {
            coloc_model::Scenario::homogeneous(["cg", "canneal", "ep"][i % 3], "ft", 1 + i % 4, 0)
        })
        .collect();
    let expected: Vec<(u64, u64)> = scenarios
        .iter()
        .map(|sc| {
            let f = lab.featurize(sc).unwrap();
            (
                a.predictor.predict(&f).to_bits(),
                b.predictor.predict(&f).to_bits(),
            )
        })
        .collect();
    assert!(
        expected.iter().any(|(ea, eb)| ea != eb),
        "models A and B must disagree somewhere, or the swap is unobservable"
    );

    // The storm: four clients cycling predict queries, each answer
    // classified as bit-exact A, bit-exact B, or a failure.
    let stop = Arc::new(AtomicBool::new(false));
    let mut stormers = Vec::new();
    for t in 0..4usize {
        let stop = Arc::clone(&stop);
        let addr = addr.clone();
        let scenarios = scenarios.clone();
        let expected = expected.clone();
        stormers.push(std::thread::spawn(move || -> (u64, u64) {
            let mut client = QueryClient::connect_tcp(&addr).unwrap();
            let (mut hits_a, mut hits_b) = (0u64, 0u64);
            let mut i = t; // stagger the per-thread cycle
            while !stop.load(Ordering::Acquire) {
                let sc = &scenarios[i % scenarios.len()];
                let (ea, eb) = expected[i % scenarios.len()];
                match client.query(sc, QueryMode::Predict, None, None) {
                    Ok(Reply::Ok { time_s, .. }) => {
                        let bits = time_s.to_bits();
                        if bits == ea {
                            hits_a += 1;
                        } else if bits == eb {
                            hits_b += 1;
                        } else {
                            panic!(
                                "blended/foreign answer for {sc:?}: {time_s} is \
                                 neither model A nor model B"
                            );
                        }
                    }
                    Ok(other) => panic!("storm query refused mid-reload: {other:?}"),
                    Err(e) => panic!("storm transport error: {e}"),
                }
                i += 1;
            }
            (hits_a, hits_b)
        }));
    }

    // A stats monitor proves the epoch is monotonic and its digest
    // always names a real artifact (A before the swap, B after).
    let monitor = {
        let stop = Arc::clone(&stop);
        let addr = addr.clone();
        let (hex_a, hex_b) = (a.digest_hex(), b.digest_hex());
        std::thread::spawn(move || -> u64 {
            let mut client = QueryClient::connect_tcp(&addr).unwrap();
            let mut last_epoch = 0u64;
            while !stop.load(Ordering::Acquire) {
                let s = client.stats().unwrap();
                assert!(
                    s.model_epoch >= last_epoch,
                    "model_epoch went backwards: {} -> {}",
                    last_epoch,
                    s.model_epoch
                );
                last_epoch = s.model_epoch;
                let want = if s.model_epoch == 0 { &hex_a } else { &hex_b };
                assert_eq!(
                    &s.model_digest, want,
                    "epoch {} must serve its own digest",
                    s.model_epoch
                );
                assert_eq!(s.rejected_shutdown, 0, "reload must not drain");
                std::thread::sleep(Duration::from_millis(2));
            }
            last_epoch
        })
    };

    // Let the storm land some model-A answers, then swap: overwrite the
    // artifact (atomic rename, as `coloc train` writes it) and issue the
    // wire `reload` verb.
    std::thread::sleep(Duration::from_millis(300));
    registry.save(&b, &model_path).unwrap();
    let mut admin = QueryClient::connect_tcp(&addr).unwrap();
    let (epoch, digest) = admin.reload().unwrap();
    assert_eq!(epoch, 1, "first reload bumps the epoch to 1");
    assert_eq!(digest, b.digest_hex(), "reload ack names the new artifact");

    // From this reply onward the server answers with model B.
    let f = lab.featurize(&scenarios[0]).unwrap();
    match admin
        .query(&scenarios[0], QueryMode::Predict, None, None)
        .unwrap()
    {
        Reply::Ok { time_s, .. } => assert_eq!(
            time_s.to_bits(),
            b.predictor.predict(&f).to_bits(),
            "post-reload answers come from model B, bit for bit"
        ),
        other => panic!("expected ok, got {other:?}"),
    }

    // The SIGHUP path drives the same swap from the accept loop.
    signals::request_reload();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = admin.stats().unwrap();
        if s.model_epoch >= 2 {
            assert_eq!(s.model_digest, b.digest_hex());
            break;
        }
        assert!(
            Instant::now() < deadline,
            "SIGHUP reload never landed: {s:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(200));

    stop.store(true, Ordering::Release);
    let mut total_a = 0u64;
    let mut total_b = 0u64;
    for h in stormers {
        let (ha, hb) = h.join().expect("storm thread never panics");
        total_a += ha;
        total_b += hb;
    }
    let last_epoch = monitor.join().expect("monitor thread never panics");
    assert!(last_epoch >= 2, "monitor saw both reloads");
    assert!(
        total_a > 0,
        "some answers served by model A before the swap"
    );
    assert!(total_b > 0, "some answers served by model B after the swap");

    handle.shutdown();
    let frame = handle.join();
    assert_eq!(frame.model_epoch, 2);
    assert_eq!(frame.model_digest, b.digest_hex());
    // Nothing was dropped or refused across two live swaps under storm.
    assert_eq!(frame.rejected_shutdown, 0);
    assert_eq!(frame.dropped_responses, 0);
    let _ = std::fs::remove_dir_all(&dir);
    signals::reset();
}
