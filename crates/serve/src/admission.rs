//! Admission control: the bounded front door of the service.
//!
//! Load shedding has to happen *before* work queues, not after — an
//! unbounded queue converts overload into unbounded latency and memory,
//! which is strictly worse than an honest `overloaded` error the client
//! can back off from. [`AdmissionQueue`] is that bound: a fixed-capacity
//! FIFO whose `try_admit` never blocks. Full queue ⇒ the caller sheds
//! with [`ColocError::Overloaded`] (carrying the observed depth, so the
//! client's backoff can scale with congestion); draining ⇒
//! [`ColocError::ShuttingDown`].
//!
//! The dispatcher side blocks: `pop_batch` waits (condvar, bounded by a
//! timeout so drain flags are observed promptly) and takes up to a batch
//! of entries at once, which is what lets the server group same-machine
//! queries into one engine sweep.

use coloc_model::ColocError;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A bounded multi-producer queue with batch consumption and a drain
/// latch. Generic so tests can exercise it without dragging in sockets.
pub struct AdmissionQueue<T> {
    queue: Mutex<VecDeque<T>>,
    capacity: usize,
    ready: Condvar,
    draining: AtomicBool,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` pending entries.
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            queue: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            ready: Condvar::new(),
            draining: AtomicBool::new(false),
        }
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy snapshot; exact under the lock).
    pub fn depth(&self) -> usize {
        self.queue.lock().expect("admission queue poisoned").len()
    }

    /// Whether the drain latch is set.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    /// Latch the queue into drain mode: every subsequent `try_admit`
    /// fails with [`ColocError::ShuttingDown`]; already-admitted entries
    /// still drain through `pop_batch`. Irreversible by design — a
    /// server that started refusing work must not flap back.
    pub fn start_drain(&self) {
        self.draining.store(true, Ordering::Release);
        self.ready.notify_all();
    }

    /// Admit one entry, never blocking. Errors are the exact shed
    /// taxonomy the wire protocol reports.
    pub fn try_admit(&self, item: T) -> Result<(), ColocError> {
        if self.is_draining() {
            return Err(ColocError::ShuttingDown);
        }
        let mut q = self.queue.lock().expect("admission queue poisoned");
        // Re-check under the lock: a drain latched between the fast-path
        // check and lock acquisition must still refuse.
        if self.is_draining() {
            return Err(ColocError::ShuttingDown);
        }
        if q.len() >= self.capacity {
            return Err(ColocError::Overloaded {
                queue_depth: q.len(),
            });
        }
        q.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Take up to `max` entries, blocking up to `wait` for the first.
    /// Returns an empty vector on timeout — and, once draining, only
    /// when the queue is already empty, so a drain never strands
    /// admitted work.
    pub fn pop_batch(&self, max: usize, wait: Duration) -> Vec<T> {
        let mut q = self.queue.lock().expect("admission queue poisoned");
        if q.is_empty() && !self.is_draining() {
            let (guard, _timeout) = self
                .ready
                .wait_timeout(q, wait)
                .expect("admission queue poisoned");
            q = guard;
        }
        let take = q.len().min(max.max(1));
        q.drain(..take).collect()
    }

    /// True when the queue is empty and draining — the dispatcher's
    /// exit condition.
    pub fn drained(&self) -> bool {
        self.is_draining()
            && self
                .queue
                .lock()
                .expect("admission queue poisoned")
                .is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn admits_to_capacity_then_sheds_with_depth() {
        let q = AdmissionQueue::new(3);
        for i in 0..3 {
            q.try_admit(i).unwrap();
        }
        match q.try_admit(99) {
            Err(ColocError::Overloaded { queue_depth }) => assert_eq!(queue_depth, 3),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn pop_batch_takes_fifo_prefix() {
        let q = AdmissionQueue::new(8);
        for i in 0..5 {
            q.try_admit(i).unwrap();
        }
        assert_eq!(q.pop_batch(3, Duration::from_millis(1)), vec![0, 1, 2]);
        assert_eq!(q.pop_batch(10, Duration::from_millis(1)), vec![3, 4]);
        assert!(q.pop_batch(10, Duration::from_millis(1)).is_empty());
    }

    #[test]
    fn drain_refuses_new_work_but_keeps_admitted() {
        let q = AdmissionQueue::new(8);
        q.try_admit(1).unwrap();
        q.start_drain();
        assert!(matches!(q.try_admit(2), Err(ColocError::ShuttingDown)));
        assert!(!q.drained(), "admitted entry still pending");
        assert_eq!(q.pop_batch(10, Duration::from_millis(1)), vec![1]);
        assert!(q.drained());
    }

    #[test]
    fn pop_batch_wakes_on_admit_across_threads() {
        let q = Arc::new(AdmissionQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_batch(4, Duration::from_secs(5)))
        };
        // Give the consumer a moment to park, then admit.
        std::thread::sleep(Duration::from_millis(20));
        q.try_admit(7u32).unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn concurrent_admission_never_exceeds_capacity() {
        let q = Arc::new(AdmissionQueue::new(16));
        let mut handles = Vec::new();
        for t in 0..8 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                let mut admitted = 0u32;
                for i in 0..64 {
                    if q.try_admit(t * 64 + i).is_ok() {
                        admitted += 1;
                    }
                }
                admitted
            }));
        }
        let admitted: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        // Nothing consumes while producers run, so exactly `capacity`
        // admissions succeed and the rest shed.
        assert_eq!(admitted, 16);
        assert_eq!(q.depth(), 16);
        // Every admitted entry is retrievable exactly once.
        let mut total = 0;
        loop {
            let batch = q.pop_batch(64, Duration::from_millis(1));
            if batch.is_empty() {
                break;
            }
            total += batch.len();
        }
        assert_eq!(total as u32, admitted);
    }
}
