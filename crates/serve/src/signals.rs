//! Minimal Unix signal plumbing, no libc crate.
//!
//! The daemon needs exactly two things from signals: SIGTERM/SIGINT must
//! latch a flag the accept/dispatch loops poll, triggering the graceful
//! drain, and SIGHUP must latch a *reload* request the accept loop
//! consumes to hot-swap model artifacts. `std` exposes no signal API and
//! new dependencies are off the table, so this module declares the two C
//! functions it needs (`signal`, `raise`) directly. Each handler body is
//! a single relaxed atomic store — well inside the async-signal-safe
//! envelope.
//!
//! On non-Unix targets the module compiles to the flag alone: `install`
//! is a no-op and drains are triggered programmatically.

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGHUP` signal number (the classic "reload your config" signal).
pub const SIGHUP: i32 = 1;
/// `SIGINT` signal number (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` signal number (polite kill; what orchestrators send first).
pub const SIGTERM: i32 = 15;

/// The process-wide drain latch set by the handler.
static TERMINATE: AtomicBool = AtomicBool::new(false);

/// The model-reload latch set by the SIGHUP handler, consumed (swapped
/// back to false) by the accept loop.
static RELOAD: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    fn raise(signum: i32) -> i32;
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    TERMINATE.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
extern "C" fn on_reload(_signum: i32) {
    RELOAD.store(true, Ordering::Relaxed);
}

/// Install the drain handler for SIGTERM/SIGINT and the reload handler
/// for SIGHUP. Idempotent.
pub fn install() {
    #[cfg(unix)]
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
        signal(SIGHUP, on_reload);
    }
}

/// Whether a termination signal has been received (or injected).
pub fn termination_requested() -> bool {
    TERMINATE.load(Ordering::Relaxed)
}

/// Consume a pending reload request: true exactly once per SIGHUP (or
/// injected request), so one signal triggers one swap.
pub fn take_reload_request() -> bool {
    RELOAD.swap(false, Ordering::Relaxed)
}

/// Latch a reload request without a signal (non-Unix targets, tests).
pub fn request_reload() {
    RELOAD.store(true, Ordering::Relaxed);
}

/// Reset the latches — test isolation only; a real server never
/// un-drains.
pub fn reset() {
    TERMINATE.store(false, Ordering::Relaxed);
    RELOAD.store(false, Ordering::Relaxed);
}

/// Deliver a real signal to this process — lets tests exercise the
/// genuine kernel→handler→latch path rather than poking the flag.
#[cfg(unix)]
pub fn raise_signal(signum: i32) {
    unsafe {
        raise(signum);
    }
}

/// Non-Unix fallback: set the latch directly.
#[cfg(not(unix))]
pub fn raise_signal(_signum: i32) {
    TERMINATE.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigterm_latches_the_flag() {
        install();
        reset();
        assert!(!termination_requested());
        raise_signal(SIGTERM);
        assert!(termination_requested());
        reset();
    }

    #[test]
    fn sighup_latches_reload_and_is_consumed_once() {
        install();
        reset();
        assert!(!take_reload_request());
        #[cfg(unix)]
        raise_signal(SIGHUP);
        #[cfg(not(unix))]
        request_reload();
        assert!(!termination_requested(), "SIGHUP must not drain");
        assert!(take_reload_request());
        assert!(!take_reload_request(), "consumed exactly once");
        reset();
    }
}
