//! Minimal Unix signal plumbing, no libc crate.
//!
//! The daemon needs exactly one thing from signals: SIGTERM/SIGINT must
//! latch a flag the accept/dispatch loops poll, triggering the graceful
//! drain. `std` exposes no signal API and new dependencies are off the
//! table, so this module declares the two C functions it needs
//! (`signal`, `raise`) directly. The handler body is a single relaxed
//! atomic store — well inside the async-signal-safe envelope.
//!
//! On non-Unix targets the module compiles to the flag alone: `install`
//! is a no-op and drains are triggered programmatically.

use std::sync::atomic::{AtomicBool, Ordering};

/// `SIGINT` signal number (Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` signal number (polite kill; what orchestrators send first).
pub const SIGTERM: i32 = 15;

/// The process-wide drain latch set by the handler.
static TERMINATE: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    fn raise(signum: i32) -> i32;
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    TERMINATE.store(true, Ordering::Relaxed);
}

/// Install the drain handler for SIGTERM and SIGINT. Idempotent.
pub fn install() {
    #[cfg(unix)]
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Whether a termination signal has been received (or injected).
pub fn termination_requested() -> bool {
    TERMINATE.load(Ordering::Relaxed)
}

/// Reset the latch — test isolation only; a real server never un-drains.
pub fn reset() {
    TERMINATE.store(false, Ordering::Relaxed);
}

/// Deliver a real signal to this process — lets tests exercise the
/// genuine kernel→handler→latch path rather than poking the flag.
#[cfg(unix)]
pub fn raise_signal(signum: i32) {
    unsafe {
        raise(signum);
    }
}

/// Non-Unix fallback: set the latch directly.
#[cfg(not(unix))]
pub fn raise_signal(_signum: i32) {
    TERMINATE.store(true, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigterm_latches_the_flag() {
        install();
        reset();
        assert!(!termination_requested());
        raise_signal(SIGTERM);
        assert!(termination_requested());
        reset();
    }
}
