//! # coloc-serve — prediction as a service
//!
//! The paper's models exist to be *queried*: a scheduler wants "how
//! much slower does `canneal` get next to three copies of `cg` at P2"
//! answered in microseconds, not by re-running a sweep. This crate
//! wraps the workspace's lab, cache, and predictor layers in an
//! overload-safe daemon speaking line-delimited JSON over TCP or a
//! Unix socket.
//!
//! The robustness posture, in one paragraph: every queue is bounded,
//! every bound sheds with a typed error the client can act on
//! ([`coloc_model::ColocError::Overloaded`] carries the depth, the wire
//! frame a `retry_after_ms` hint), deadlines expire queries instead of
//! serving stale answers, a saturated engine degrades to
//! cache-then-linear-fallback answers that are *labeled* degraded, slow
//! clients lose responses instead of stalling workers, and SIGTERM
//! drains — finish what was admitted, refuse what wasn't, flush the
//! stats frame, exit.
//!
//! Module map:
//! * [`proto`] — the wire protocol (requests, responses, parse/build);
//! * [`admission`] — the bounded front door;
//! * [`server`] — accept/read/dispatch/write threads and the
//!   degradation ladder;
//! * [`client`] — a blocking client with backoff-and-jitter retries;
//! * [`telemetry`] — latency histogram, counters, the stats frame;
//! * [`signals`] — SIGTERM/SIGINT → drain latch, without libc.

pub mod admission;
pub mod client;
pub mod proto;
pub mod server;
pub mod signals;
pub mod telemetry;

pub use admission::AdmissionQueue;
pub use client::{QueryClient, RetryPolicy};
pub use proto::{parse_reply, parse_request, QueryMode, QueryRequest, Reply, Request};
pub use server::{BindAddr, ServeConfig, Server, ServerHandle};
pub use telemetry::{Counters, LatencyHistogram, StatsFrame};
