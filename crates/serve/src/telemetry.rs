//! Service telemetry: lock-free latency quantiles and traffic counters.
//!
//! Every admitted query stamps its end-to-end latency (admission →
//! response written) into a log-scaled histogram of atomics, so the
//! periodic stats frame can report p50/p95/p99 without the server ever
//! taking a lock on the hot path or retaining per-request state. The
//! bucket layout trades ≤ ~9% relative error for a fixed 256-slot
//! footprint — the standard HDR-style compromise for service latency,
//! where the interesting signal is the order of magnitude of the tail,
//! not its fourth significant digit.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two: 3 mantissa bits ⇒ ≤ 1/8 ≈ 12.5% bucket
/// width, ≤ ~6% median quantile error.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;
/// Powers of two covered: 2^32 µs ≈ 71 minutes, far past any deadline.
const EXPS: usize = 32;
const BUCKETS: usize = EXPS * SUBS;

/// A fixed-size log-bucket latency histogram over microseconds.
///
/// `record` is wait-free (one relaxed `fetch_add`); `quantile` is a scan
/// over 256 slots, paid only when a stats frame is built.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    fn bucket_index(us: u64) -> usize {
        // Values below 2^SUB_BITS map to their own linear buckets; above,
        // the exponent picks the power-of-two band and the top SUB_BITS
        // of the mantissa pick the sub-bucket.
        let v = us.max(1);
        let exp = 63 - v.leading_zeros();
        if exp < SUB_BITS {
            return v as usize;
        }
        let sub = ((v >> (exp - SUB_BITS)) & ((SUBS as u64) - 1)) as usize;
        let band = (exp - SUB_BITS + 1) as usize;
        (band * SUBS + sub).min(BUCKETS - 1)
    }

    /// Representative value (µs) for a bucket: its lower bound, matching
    /// the convention that quantiles never over-report.
    fn bucket_floor(idx: usize) -> u64 {
        if idx < SUBS {
            return idx as u64;
        }
        let band = (idx / SUBS) as u32;
        let sub = (idx % SUBS) as u64;
        let exp = band + SUB_BITS - 1;
        (1u64 << exp) + (sub << (exp - SUB_BITS))
    }

    /// Record one latency observation.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / n as f64 * 1e-3
    }

    /// The `q`-quantile (`0.0..=1.0`) in milliseconds, 0 when empty.
    /// Reads are relaxed: a frame built concurrently with traffic is a
    /// near-snapshot, which is all a periodic stats line needs.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_floor(i) as f64 * 1e-3;
            }
        }
        Self::bucket_floor(BUCKETS - 1) as f64 * 1e-3
    }
}

/// Aggregate traffic counters, one atomic each. Everything the stats
/// frame reports that is not a latency quantile or cache traffic.
#[derive(Default)]
pub struct Counters {
    /// Queries accepted into the admission queue.
    pub admitted: AtomicU64,
    /// Queries answered (any source, including degraded).
    pub completed: AtomicU64,
    /// Queries shed at admission because the queue was full.
    pub shed_overload: AtomicU64,
    /// Admitted queries whose deadline expired before dispatch.
    pub shed_deadline: AtomicU64,
    /// Queries rejected because the server was draining.
    pub rejected_shutdown: AtomicU64,
    /// Degraded answers served from the memo cache.
    pub degraded_cache: AtomicU64,
    /// Degraded answers served by the fallback predictor.
    pub degraded_fallback: AtomicU64,
    /// Engine sweeps dispatched (each covers ≥ 1 query).
    pub batches: AtomicU64,
    /// Queries covered by those sweeps.
    pub batched_queries: AtomicU64,
    /// Responses dropped because a client's write queue was full (slow
    /// reader); the engine never blocks on a client.
    pub dropped_responses: AtomicU64,
    /// `ping` requests answered.
    pub pings: AtomicU64,
    /// Lines that failed to parse or validate.
    pub bad_requests: AtomicU64,
}

impl Counters {
    fn get(c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }
}

/// One periodic (or final) telemetry frame: the service's vital signs as
/// a line of JSON. Serialized with the same float-exact writer the rest
/// of the workspace persists artifacts with.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StatsFrame {
    /// Seconds since the server started.
    pub uptime_s: f64,
    /// Admission-queue depth at frame time.
    pub queue_depth: usize,
    /// Queries accepted into the queue.
    pub admitted: u64,
    /// Queries answered.
    pub completed: u64,
    /// Queries shed with `overloaded`.
    pub shed_overload: u64,
    /// Admitted queries expired before dispatch.
    pub shed_deadline: u64,
    /// Queries rejected while draining.
    pub rejected_shutdown: u64,
    /// Degraded answers from the memo cache.
    pub degraded_cache: u64,
    /// Degraded answers from the fallback predictor.
    pub degraded_fallback: u64,
    /// Engine sweeps dispatched.
    pub batches: u64,
    /// Queries covered by those sweeps.
    pub batched_queries: u64,
    /// Responses dropped on slow readers.
    pub dropped_responses: u64,
    /// Pings answered.
    pub pings: u64,
    /// Unparseable/invalid request lines.
    pub bad_requests: u64,
    /// Median admitted-query latency, milliseconds.
    pub latency_p50_ms: f64,
    /// 95th-percentile latency, milliseconds.
    pub latency_p95_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub latency_p99_ms: f64,
    /// Mean latency, milliseconds.
    pub latency_mean_ms: f64,
    /// Run-cache hits across all labs.
    pub cache_hits: u64,
    /// Run-cache misses across all labs.
    pub cache_misses: u64,
    /// Run-cache evictions across all labs.
    pub cache_evictions: u64,
    /// Monotonic model epoch: 0 at startup, +1 per completed hot reload.
    pub model_epoch: u64,
    /// Hex digest of the default machine's active model artifact; empty
    /// until that model is first resolved.
    pub model_digest: String,
}

impl StatsFrame {
    /// Snapshot counters + histogram into a frame. Cache traffic and the
    /// active model identity are supplied by the caller (summed/read over
    /// the server's labs and model slots).
    pub fn snapshot(
        uptime_s: f64,
        queue_depth: usize,
        counters: &Counters,
        latency: &LatencyHistogram,
        cache: (u64, u64, u64),
        model: (u64, String),
    ) -> StatsFrame {
        StatsFrame {
            uptime_s,
            queue_depth,
            admitted: Counters::get(&counters.admitted),
            completed: Counters::get(&counters.completed),
            shed_overload: Counters::get(&counters.shed_overload),
            shed_deadline: Counters::get(&counters.shed_deadline),
            rejected_shutdown: Counters::get(&counters.rejected_shutdown),
            degraded_cache: Counters::get(&counters.degraded_cache),
            degraded_fallback: Counters::get(&counters.degraded_fallback),
            batches: Counters::get(&counters.batches),
            batched_queries: Counters::get(&counters.batched_queries),
            dropped_responses: Counters::get(&counters.dropped_responses),
            pings: Counters::get(&counters.pings),
            bad_requests: Counters::get(&counters.bad_requests),
            latency_p50_ms: latency.quantile_ms(0.50),
            latency_p95_ms: latency.quantile_ms(0.95),
            latency_p99_ms: latency.quantile_ms(0.99),
            latency_mean_ms: latency.mean_ms(),
            cache_hits: cache.0,
            cache_misses: cache.1,
            cache_evictions: cache.2,
            model_epoch: model.0,
            model_digest: model.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ms(0.5), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn quantiles_are_order_of_magnitude_accurate() {
        let h = LatencyHistogram::new();
        // 90 fast (1ms), 9 medium (10ms), 1 slow (100ms).
        for _ in 0..90 {
            h.record_us(1_000);
        }
        for _ in 0..9 {
            h.record_us(10_000);
        }
        h.record_us(100_000);
        let p50 = h.quantile_ms(0.50);
        let p95 = h.quantile_ms(0.95);
        // ceil-rank convention: of 100 samples, p99 is observation #99 —
        // the last 10ms one; only the max reaches the 100ms outlier.
        let p99 = h.quantile_ms(0.99);
        let p100 = h.quantile_ms(1.0);
        assert!((0.8..=1.0).contains(&p50), "p50 = {p50}");
        assert!((8.0..=10.0).contains(&p95), "p95 = {p95}");
        assert!((8.0..=10.0).contains(&p99), "p99 = {p99}");
        assert!((80.0..=100.0).contains(&p100), "p100 = {p100}");
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p100);
    }

    #[test]
    fn bucket_floor_never_exceeds_the_value() {
        for us in [0u64, 1, 7, 8, 9, 100, 1_000, 65_537, 1 << 30, u64::MAX] {
            let floor = LatencyHistogram::bucket_floor(LatencyHistogram::bucket_index(us));
            assert!(floor <= us.max(1), "us = {us}, floor = {floor}");
            // Bucket width is bounded: floor is within 12.5% + 1 of v.
            if us > 8 && us < (1 << 35) {
                assert!(
                    floor as f64 >= us as f64 * 0.85,
                    "us = {us}, floor = {floor}"
                );
            }
        }
    }

    #[test]
    fn stats_frame_round_trips_through_json() {
        let counters = Counters::default();
        counters.admitted.fetch_add(7, Ordering::Relaxed);
        counters.shed_overload.fetch_add(2, Ordering::Relaxed);
        let h = LatencyHistogram::new();
        h.record_us(1_500);
        let frame = StatsFrame::snapshot(1.25, 3, &counters, &h, (10, 4, 1), (2, "abc123".into()));
        let json = serde_json::to_string(&frame).unwrap();
        let back: StatsFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(back.admitted, 7);
        assert_eq!(back.shed_overload, 2);
        assert_eq!(back.queue_depth, 3);
        assert_eq!(back.cache_hits, 10);
        assert_eq!(back.model_epoch, 2);
        assert_eq!(back.model_digest, "abc123");
        assert_eq!(
            back.latency_p50_ms.to_bits(),
            frame.latency_p50_ms.to_bits()
        );
    }
}
