//! A small blocking client for the serve protocol, with the retry
//! discipline an overload-safe server expects of its callers:
//! `overloaded` answers are retried a bounded number of times with
//! exponential backoff plus deterministic jitter (decorrelated clients
//! must not re-converge into synchronized retry waves), honoring the
//! server's `retry_after_ms` hint as the floor.

use crate::proto::{self, QueryMode, Reply};
use crate::telemetry::StatsFrame;
use coloc_ml::rng::{derive_seed, splitmix64};
use coloc_model::{ColocError, Scenario};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How a client retries `overloaded` responses.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts beyond the first (0 = fail fast).
    pub retries: u32,
    /// First backoff; doubles per attempt.
    pub base_backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Seed for the jitter stream (client identity).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            retries: 4,
            base_backoff_ms: 25,
            max_backoff_ms: 1_000,
            jitter_seed: 1,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (0-based), honoring the server's
    /// hint as a floor: `max(hint, base·2^attempt)` plus up to 50%
    /// deterministic jitter, capped at `max_backoff_ms`.
    pub fn backoff_ms(&self, attempt: u32, server_hint_ms: Option<u64>) -> u64 {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << attempt.min(16))
            .max(server_hint_ms.unwrap_or(0));
        let jitter_range = exp / 2;
        let jitter = if jitter_range == 0 {
            0
        } else {
            splitmix64(derive_seed(self.jitter_seed, attempt as u64)) % (jitter_range + 1)
        };
        (exp + jitter).min(self.max_backoff_ms)
    }
}

/// One connection to a running server.
pub struct QueryClient {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
}

impl QueryClient {
    /// Connect over TCP, e.g. `127.0.0.1:7105`.
    pub fn connect_tcp(addr: &str) -> Result<QueryClient, ColocError> {
        let conn = TcpStream::connect(addr)
            .map_err(|e| ColocError::Machine(format!("connect {addr}: {e}")))?;
        // Request/response over small frames: Nagle + delayed ACK would
        // add tens of milliseconds to every round trip.
        conn.set_nodelay(true)
            .map_err(|e| ColocError::Machine(format!("nodelay: {e}")))?;
        conn.set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| ColocError::Machine(format!("read timeout: {e}")))?;
        let writer = conn
            .try_clone()
            .map_err(|e| ColocError::Machine(format!("clone: {e}")))?;
        Ok(QueryClient {
            reader: BufReader::new(Box::new(conn)),
            writer: Box::new(writer),
        })
    }

    /// Connect over a Unix domain socket (Unix targets only).
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> Result<QueryClient, ColocError> {
        let conn = std::os::unix::net::UnixStream::connect(path)
            .map_err(|e| ColocError::Machine(format!("connect {}: {e}", path.display())))?;
        conn.set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| ColocError::Machine(format!("read timeout: {e}")))?;
        let writer = conn
            .try_clone()
            .map_err(|e| ColocError::Machine(format!("clone: {e}")))?;
        Ok(QueryClient {
            reader: BufReader::new(Box::new(conn)),
            writer: Box::new(writer),
        })
    }

    /// Send one raw request line and read one reply line.
    pub fn round_trip(&mut self, line: &str) -> Result<Reply, ColocError> {
        writeln!(self.writer, "{line}").map_err(|e| ColocError::Machine(format!("send: {e}")))?;
        self.writer
            .flush()
            .map_err(|e| ColocError::Machine(format!("flush: {e}")))?;
        let mut answer = String::new();
        let n = self
            .reader
            .read_line(&mut answer)
            .map_err(|e| ColocError::Machine(format!("recv: {e}")))?;
        if n == 0 {
            return Err(ColocError::Machine("server closed the connection".into()));
        }
        proto::parse_reply(answer.trim()).map_err(ColocError::Machine)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ColocError> {
        match self.round_trip(r#"{"op":"ping"}"#)? {
            Reply::Pong => Ok(()),
            other => Err(ColocError::Machine(format!("expected pong, got {other:?}"))),
        }
    }

    /// Fetch the server's current stats frame.
    pub fn stats(&mut self) -> Result<StatsFrame, ColocError> {
        match self.round_trip(r#"{"op":"stats"}"#)? {
            Reply::Stats(frame) => Ok(*frame),
            other => Err(ColocError::Machine(format!(
                "expected stats frame, got {other:?}"
            ))),
        }
    }

    /// Ask the server to hot-swap its model artifacts. Returns the new
    /// model epoch and the default machine's active artifact digest.
    pub fn reload(&mut self) -> Result<(u64, String), ColocError> {
        match self.round_trip(r#"{"op":"reload"}"#)? {
            Reply::Reloaded {
                model_epoch,
                model_digest,
            } => Ok((model_epoch, model_digest)),
            other => Err(ColocError::Machine(format!(
                "expected reload ack, got {other:?}"
            ))),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ColocError> {
        match self.round_trip(r#"{"op":"shutdown"}"#)? {
            Reply::Err {
                error: ColocError::ShuttingDown,
                ..
            } => Ok(()),
            other => Err(ColocError::Machine(format!(
                "expected shutting_down ack, got {other:?}"
            ))),
        }
    }

    fn query_line(
        scenario: &Scenario,
        mode: QueryMode,
        deadline_ms: Option<u64>,
        machine: Option<&str>,
        id: Option<&str>,
    ) -> String {
        use serde::{Map, Value};
        let mut m = Map::new();
        m.insert("op", Value::Str("query".into()));
        if let Some(id) = id {
            m.insert("id", Value::Str(id.to_string()));
        }
        m.insert("target", Value::Str(scenario.target.clone()));
        if !scenario.co_located.is_empty() {
            m.insert(
                "co",
                Value::Array(
                    scenario
                        .co_located
                        .iter()
                        .map(|(n, c)| {
                            Value::Array(vec![Value::Str(n.clone()), Value::UInt(*c as u64)])
                        })
                        .collect(),
                ),
            );
        }
        m.insert("pstate", Value::UInt(scenario.pstate as u64));
        m.insert("mode", Value::Str(mode.label().into()));
        if let Some(d) = deadline_ms {
            m.insert("deadline_ms", Value::UInt(d));
        }
        if let Some(mk) = machine {
            m.insert("machine", Value::Str(mk.to_string()));
        }
        serde_json::to_string(&Value::Object(m)).expect("query serialization is total")
    }

    /// One query, no retries. Service errors come back as their typed
    /// [`ColocError`] variants.
    pub fn query(
        &mut self,
        scenario: &Scenario,
        mode: QueryMode,
        deadline_ms: Option<u64>,
        machine: Option<&str>,
    ) -> Result<Reply, ColocError> {
        let line = Self::query_line(scenario, mode, deadline_ms, machine, None);
        self.round_trip(&line)
    }

    /// A query with the full retry discipline: `overloaded` responses
    /// back off (exponential + jitter, floored at the server's hint)
    /// and retry up to `policy.retries` times; any other answer —
    /// success, timeout, shutdown, bad request — returns immediately.
    /// The terminal `Overloaded` error is returned when retries run out.
    pub fn query_with_retry(
        &mut self,
        scenario: &Scenario,
        mode: QueryMode,
        deadline_ms: Option<u64>,
        machine: Option<&str>,
        policy: &RetryPolicy,
    ) -> Result<Reply, ColocError> {
        let mut attempt = 0u32;
        loop {
            match self.query(scenario, mode, deadline_ms, machine)? {
                Reply::Err {
                    error: ColocError::Overloaded { queue_depth },
                    retry_after_ms,
                    ..
                } => {
                    if attempt >= policy.retries {
                        return Err(ColocError::Overloaded { queue_depth });
                    }
                    std::thread::sleep(Duration::from_millis(
                        policy.backoff_ms(attempt, retry_after_ms),
                    ));
                    attempt += 1;
                }
                other => return Ok(other),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_respects_hint_and_cap() {
        let p = RetryPolicy {
            retries: 5,
            base_backoff_ms: 10,
            max_backoff_ms: 200,
            jitter_seed: 7,
        };
        let b0 = p.backoff_ms(0, None);
        let b1 = p.backoff_ms(1, None);
        let b2 = p.backoff_ms(2, None);
        assert!((10..=15).contains(&b0), "{b0}");
        assert!((20..=30).contains(&b1), "{b1}");
        assert!((40..=60).contains(&b2), "{b2}");
        // Server hint floors the exponential term.
        assert!(p.backoff_ms(0, Some(100)) >= 100);
        // Cap binds.
        assert_eq!(p.backoff_ms(10, None), 200);
        // Deterministic for a given seed and attempt.
        assert_eq!(p.backoff_ms(3, None), p.backoff_ms(3, None));
        // Different client identities de-correlate.
        let q = RetryPolicy {
            jitter_seed: 8,
            ..p
        };
        assert!(
            (0..6).any(|a| p.backoff_ms(a, None) != q.backoff_ms(a, None)),
            "jitter streams should differ somewhere"
        );
    }

    #[test]
    fn query_lines_are_valid_requests() {
        let sc = Scenario::homogeneous("canneal", "cg", 3, 2);
        let line = QueryClient::query_line(&sc, QueryMode::Measure, Some(500), Some("6core"), None);
        let req = crate::proto::parse_request(&line).unwrap();
        let crate::proto::Request::Query(q) = req else {
            panic!("expected query")
        };
        assert_eq!(q.scenario, sc);
        assert_eq!(q.deadline_ms, Some(500));
        assert_eq!(q.machine.as_deref(), Some("6core"));
    }
}
