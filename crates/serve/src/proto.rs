//! The service's wire protocol: line-delimited JSON, one frame per line.
//!
//! Requests (client → server), discriminated by `"op"`:
//!
//! ```json
//! {"op":"query","id":"q1","target":"canneal","co":[["cg",3]],"pstate":0,
//!  "mode":"measure","deadline_ms":500,"machine":"e5649"}
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"reload"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses (server → client), one line each:
//!
//! ```json
//! {"id":"q1","ok":true,"time_s":1.25,"slowdown":1.4,"source":"engine","degraded":false}
//! {"id":"q1","err":"overloaded","retry_after_ms":50,"queue_depth":128}
//! {"id":"q1","err":"timeout","deadline_ms":500}
//! {"err":"shutting_down"}
//! {"ok":true,"pong":true}
//! {"ok":true,"reloaded":true,"model_epoch":3,"model_digest":"…"}
//! ```
//!
//! `time_s` travels through the float-exact JSON writer, so a served
//! `measure` answer is bit-identical to the same scenario run through
//! [`coloc_model::Lab::collect`] — the conformance suite pins this.
//!
//! Parsing is hand-rolled over the [`serde::Value`] tree rather than
//! derived: requests come from untrusted clients, and every field wants
//! a specific, human-readable rejection rather than a generic shape
//! error.

use coloc_model::{ColocError, Scenario};
use serde::{Deserialize as _, Map, Value};

/// How a query wants its answer produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryMode {
    /// Run (or replay from cache) the machine simulator: the exact
    /// measured time, bit-identical to `Lab::collect`.
    Measure,
    /// Evaluate the trained predictor on baseline-derived features: the
    /// paper's deployment mode — no simulation, approximate answer.
    Predict,
}

impl QueryMode {
    /// Wire name.
    pub fn label(self) -> &'static str {
        match self {
            QueryMode::Measure => "measure",
            QueryMode::Predict => "predict",
        }
    }
}

/// One parsed `query` request.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// Client-chosen correlation id, echoed verbatim in the response.
    pub id: Option<String>,
    /// The scenario to answer for.
    pub scenario: Scenario,
    /// Measure (simulate) or predict (model evaluation).
    pub mode: QueryMode,
    /// Per-request deadline; the server sheds the query if it cannot
    /// dispatch it in time. `None` = the server's default deadline.
    pub deadline_ms: Option<u64>,
    /// Machine preset key; `None` = the server's default machine.
    pub machine: Option<String>,
}

/// Any request frame.
#[derive(Clone, Debug)]
pub enum Request {
    /// A prediction/measurement query.
    Query(QueryRequest),
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Return the current stats frame; answered inline.
    Stats,
    /// Hot-swap the model artifacts (same path as SIGHUP): in-flight
    /// requests finish on the artifact they started with, new requests
    /// see the reloaded one. Answered inline with the new epoch+digest.
    Reload,
    /// Ask the server to drain and exit (same path as SIGTERM).
    Shutdown,
}

fn str_field(obj: &Map, key: &str) -> Result<Option<String>, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(format!("field `{key}` must be a string, got {other:?}")),
    }
}

fn uint_field(obj: &Map, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
        Some(Value::UInt(u)) => Ok(Some(*u)),
        Some(other) => Err(format!(
            "field `{key}` must be a non-negative integer, got {other:?}"
        )),
    }
}

fn co_field(obj: &Map) -> Result<Vec<(String, usize)>, String> {
    let mut out = Vec::new();
    match obj.get("co") {
        None | Some(Value::Null) => {}
        Some(Value::Array(items)) => {
            for item in items {
                let Value::Array(pair) = item else {
                    return Err("`co` entries must be [name, count] pairs".into());
                };
                let [Value::Str(name), count] = pair.as_slice() else {
                    return Err("`co` entries must be [name, count] pairs".into());
                };
                let n = match count {
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::UInt(u) => *u,
                    _ => return Err("`co` counts must be non-negative integers".into()),
                };
                out.push((name.clone(), n as usize));
            }
        }
        Some(other) => return Err(format!("`co` must be an array, got {other:?}")),
    }
    Ok(out)
}

/// Parse one request line. Errors are human-readable strings, reported
/// back to the client as `{"err":"bad_request","detail":...}`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value =
        serde_json::value_from_slice(line.as_bytes()).map_err(|e| format!("invalid JSON: {e}"))?;
    let Value::Object(obj) = value else {
        return Err("request must be a JSON object".into());
    };
    let op = str_field(&obj, "op")?.ok_or("missing `op`")?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "reload" => Ok(Request::Reload),
        "shutdown" => Ok(Request::Shutdown),
        "query" => {
            let target = str_field(&obj, "target")?.ok_or("query needs `target`")?;
            let mode = match str_field(&obj, "mode")?.as_deref() {
                None | Some("measure") => QueryMode::Measure,
                Some("predict") => QueryMode::Predict,
                Some(other) => return Err(format!("unknown mode `{other}`")),
            };
            Ok(Request::Query(QueryRequest {
                id: str_field(&obj, "id")?,
                scenario: Scenario {
                    target,
                    co_located: co_field(&obj)?,
                    pstate: uint_field(&obj, "pstate")?.unwrap_or(0) as usize,
                },
                mode,
                deadline_ms: uint_field(&obj, "deadline_ms")?,
                machine: str_field(&obj, "machine")?,
            }))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

fn base_reply(id: Option<&str>) -> Map {
    let mut m = Map::new();
    if let Some(id) = id {
        m.insert("id", Value::Str(id.to_string()));
    }
    m
}

/// Build a successful query response line (no trailing newline).
pub fn ok_line(
    id: Option<&str>,
    time_s: f64,
    slowdown: Option<f64>,
    source: &str,
    degraded: bool,
) -> String {
    let mut m = base_reply(id);
    m.insert("ok", Value::Bool(true));
    m.insert("time_s", Value::Float(time_s));
    if let Some(s) = slowdown {
        m.insert("slowdown", Value::Float(s));
    }
    m.insert("source", Value::Str(source.to_string()));
    m.insert("degraded", Value::Bool(degraded));
    serde_json::to_string(&Value::Object(m)).expect("response serialization is total")
}

/// Build the `ping` response line.
pub fn pong_line() -> String {
    r#"{"ok":true,"pong":true}"#.to_string()
}

/// Build the `reload` response line: the epoch and active model digest
/// after the swap.
pub fn reload_line(model_epoch: u64, model_digest: &str) -> String {
    let mut m = Map::new();
    m.insert("ok", Value::Bool(true));
    m.insert("reloaded", Value::Bool(true));
    m.insert("model_epoch", Value::UInt(model_epoch));
    m.insert("model_digest", Value::Str(model_digest.to_string()));
    serde_json::to_string(&Value::Object(m)).expect("response serialization is total")
}

/// Build a `bad_request` response line.
pub fn bad_request_line(detail: &str) -> String {
    let mut m = Map::new();
    m.insert("err", Value::Str("bad_request".into()));
    m.insert("detail", Value::Str(detail.to_string()));
    serde_json::to_string(&Value::Object(m)).expect("response serialization is total")
}

/// Map a pipeline error to its wire line. The three service-level errors
/// get structured fields clients can act on (`retry_after_ms` backs off
/// retries; `deadline_ms` sizes the next attempt); everything else
/// flattens to `{"err":"error","detail":...}`.
pub fn err_line(id: Option<&str>, err: &ColocError, retry_after_ms: u64) -> String {
    let mut m = base_reply(id);
    match err {
        ColocError::Overloaded { queue_depth } => {
            m.insert("err", Value::Str("overloaded".into()));
            m.insert("retry_after_ms", Value::UInt(retry_after_ms));
            m.insert("queue_depth", Value::UInt(*queue_depth as u64));
        }
        ColocError::Timeout { deadline_ms } => {
            m.insert("err", Value::Str("timeout".into()));
            m.insert("deadline_ms", Value::UInt(*deadline_ms));
        }
        ColocError::ShuttingDown => {
            m.insert("err", Value::Str("shutting_down".into()));
        }
        other => {
            m.insert("err", Value::Str("error".into()));
            m.insert("detail", Value::Str(other.to_string()));
        }
    }
    serde_json::to_string(&Value::Object(m)).expect("response serialization is total")
}

/// A parsed server response, as seen by the client.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// Successful query answer.
    Ok {
        /// Echoed correlation id.
        id: Option<String>,
        /// Predicted or measured co-located execution time, seconds.
        time_s: f64,
        /// Slowdown vs the solo baseline, when the server computed it.
        slowdown: Option<f64>,
        /// `"engine"`, `"cache"`, `"predictor"` or `"fallback"`.
        source: String,
        /// True when answered by the degradation ladder, not the path
        /// the client asked for.
        degraded: bool,
    },
    /// Liveness answer.
    Pong,
    /// A completed hot reload: the post-swap epoch and active digest.
    Reloaded {
        /// Monotonic model epoch after the swap.
        model_epoch: u64,
        /// Hex digest of the now-active default-machine artifact.
        model_digest: String,
    },
    /// A stats frame (`op":"stats"` answer or periodic frame).
    Stats(Box<crate::telemetry::StatsFrame>),
    /// Typed service error.
    Err {
        /// Echoed correlation id.
        id: Option<String>,
        /// The error, re-typed from the wire.
        error: ColocError,
        /// Backoff hint on `overloaded`.
        retry_after_ms: Option<u64>,
    },
}

/// Parse one response line (client side).
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let value =
        serde_json::value_from_slice(line.as_bytes()).map_err(|e| format!("invalid JSON: {e}"))?;
    let Value::Object(obj) = value else {
        return Err("response must be a JSON object".into());
    };
    if obj.get("pong").is_some() {
        return Ok(Reply::Pong);
    }
    if obj.get("reloaded").is_some() {
        return Ok(Reply::Reloaded {
            model_epoch: uint_field(&obj, "model_epoch")?.unwrap_or(0),
            model_digest: str_field(&obj, "model_digest")?.unwrap_or_default(),
        });
    }
    if obj.get("uptime_s").is_some() {
        let frame = crate::telemetry::StatsFrame::from_value(&Value::Object(obj))
            .map_err(|e| e.to_string())?;
        return Ok(Reply::Stats(Box::new(frame)));
    }
    let id = str_field(&obj, "id")?;
    if let Some(Value::Str(err)) = obj.get("err") {
        let error = match err.as_str() {
            "overloaded" => ColocError::Overloaded {
                queue_depth: uint_field(&obj, "queue_depth")?.unwrap_or(0) as usize,
            },
            "timeout" => ColocError::Timeout {
                deadline_ms: uint_field(&obj, "deadline_ms")?.unwrap_or(0),
            },
            "shutting_down" => ColocError::ShuttingDown,
            _ => ColocError::Machine(str_field(&obj, "detail")?.unwrap_or_else(|| err.clone())),
        };
        return Ok(Reply::Err {
            id,
            error,
            retry_after_ms: uint_field(&obj, "retry_after_ms")?,
        });
    }
    let time_s = obj
        .get("time_s")
        .and_then(Value::as_f64)
        .ok_or("response missing `time_s`")?;
    Ok(Reply::Ok {
        id,
        time_s,
        slowdown: obj.get("slowdown").and_then(Value::as_f64),
        source: str_field(&obj, "source")?.unwrap_or_default(),
        degraded: matches!(obj.get("degraded"), Some(Value::Bool(true))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_round_trip() {
        let req = parse_request(
            r#"{"op":"query","id":"q7","target":"canneal","co":[["cg",3]],"pstate":2,
                "mode":"measure","deadline_ms":500}"#,
        )
        .unwrap();
        let Request::Query(q) = req else {
            panic!("expected query")
        };
        assert_eq!(q.id.as_deref(), Some("q7"));
        assert_eq!(q.scenario.label(), "canneal+3x cg @P2");
        assert_eq!(q.mode, QueryMode::Measure);
        assert_eq!(q.deadline_ms, Some(500));
        assert_eq!(q.machine, None);
    }

    #[test]
    fn defaults_are_solo_measure_p0() {
        let Request::Query(q) = parse_request(r#"{"op":"query","target":"ep"}"#).unwrap() else {
            panic!("expected query")
        };
        assert_eq!(q.scenario.label(), "ep solo @P0");
        assert_eq!(q.mode, QueryMode::Measure);
        assert_eq!(q.deadline_ms, None);
    }

    #[test]
    fn control_ops_parse() {
        assert!(matches!(
            parse_request(r#"{"op":"ping"}"#),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#),
            Ok(Request::Stats)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"reload"}"#),
            Ok(Request::Reload)
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#),
            Ok(Request::Shutdown)
        ));
    }

    #[test]
    fn reload_line_round_trips() {
        let line = reload_line(3, "deadbeef");
        let Reply::Reloaded {
            model_epoch,
            model_digest,
        } = parse_reply(&line).unwrap()
        else {
            panic!("expected reloaded, got {line}")
        };
        assert_eq!(model_epoch, 3);
        assert_eq!(model_digest, "deadbeef");
    }

    #[test]
    fn malformed_requests_are_described() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"op":"warp"}"#, "unknown op"),
            (r#"{"op":"query"}"#, "needs `target`"),
            (
                r#"{"op":"query","target":"ep","mode":"guess"}"#,
                "unknown mode",
            ),
            (
                r#"{"op":"query","target":"ep","co":[["cg",-1]]}"#,
                "non-negative",
            ),
            (
                r#"{"op":"query","target":"ep","co":"cg"}"#,
                "must be an array",
            ),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} → {err}");
        }
    }

    #[test]
    fn time_survives_the_wire_bit_exactly() {
        let t = 1.238_476_190_3e-1_f64.sqrt() * 3.7;
        let line = ok_line(Some("x"), t, Some(t * 2.0), "engine", false);
        let Reply::Ok {
            time_s, slowdown, ..
        } = parse_reply(&line).unwrap()
        else {
            panic!("expected ok")
        };
        assert_eq!(time_s.to_bits(), t.to_bits());
        assert_eq!(slowdown.unwrap().to_bits(), (t * 2.0).to_bits());
    }

    #[test]
    fn error_lines_carry_their_structure() {
        let line = err_line(
            Some("q1"),
            &coloc_model::ColocError::Overloaded { queue_depth: 42 },
            75,
        );
        let Reply::Err {
            id,
            error,
            retry_after_ms,
        } = parse_reply(&line).unwrap()
        else {
            panic!("expected err")
        };
        assert_eq!(id.as_deref(), Some("q1"));
        assert_eq!(
            error,
            coloc_model::ColocError::Overloaded { queue_depth: 42 }
        );
        assert_eq!(retry_after_ms, Some(75));

        let line = err_line(
            None,
            &coloc_model::ColocError::Timeout { deadline_ms: 250 },
            0,
        );
        assert!(matches!(
            parse_reply(&line).unwrap(),
            Reply::Err {
                error: coloc_model::ColocError::Timeout { deadline_ms: 250 },
                ..
            }
        ));
        let line = err_line(None, &coloc_model::ColocError::ShuttingDown, 0);
        assert!(line.contains("shutting_down"), "{line}");
    }

    #[test]
    fn pong_and_stats_parse_as_replies() {
        assert_eq!(parse_reply(&pong_line()).unwrap(), Reply::Pong);
        let counters = crate::telemetry::Counters::default();
        let hist = crate::telemetry::LatencyHistogram::new();
        let frame = crate::telemetry::StatsFrame::snapshot(
            0.5,
            0,
            &counters,
            &hist,
            (0, 0, 0),
            (0, String::new()),
        );
        let line = serde_json::to_string(&frame).unwrap();
        assert!(matches!(parse_reply(&line).unwrap(), Reply::Stats(_)));
    }
}
