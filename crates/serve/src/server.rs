//! The `coloc serve` daemon: admission → batch → sweep → respond.
//!
//! One process, four kinds of threads:
//!
//! * the **accept loop** (the thread that called [`Server::run`]) hands
//!   each connection a reader and a writer thread, emits the periodic
//!   stats frame, and watches the drain latch;
//! * per-connection **readers** parse request lines and either answer
//!   inline (`ping`, `stats`) or push queries through the
//!   [`AdmissionQueue`] — which is where load shedding happens, before
//!   any work is done;
//! * per-connection **writers** drain a *bounded* response channel to
//!   the socket, so a slow or stalled client can never hold a lock or a
//!   worker: when its channel is full, responses are counted dropped
//!   and the engine moves on;
//! * the **dispatcher** pops admitted queries in batches, expires the
//!   ones whose deadline already passed, groups the rest by machine and
//!   answers each group through one work-stealing engine sweep.
//!
//! Degradation is a ladder, decided per batch from the queue depth at
//! dispatch time: below the watermark every `measure` query gets the
//! real engine (memoized runs are answered from the sharded cache and
//! labeled `"cache"`); above it the engine is considered saturated and
//! queries are answered from the cache when resident, else by the
//! linear fallback predictor — approximate, explicitly flagged
//! `degraded: true`, but O(µs) instead of O(ms) and immune to queue
//! collapse.
//!
//! Model artifacts are hot-swappable: SIGHUP or a `reload` frame
//! re-resolves every active slot through the [`ModelRegistry`] (the
//! configured artifact file is re-read; self-trained fallbacks are
//! re-resolved by digest) and swaps each slot atomically. Requests
//! in flight keep the `Arc` they grabbed at dispatch, so every answer
//! comes from exactly one model epoch — no drain, no blend.
//!
//! Shutdown (SIGTERM, SIGINT, or a `shutdown` frame) latches the drain:
//! the listener stops accepting, admission refuses with
//! `shutting_down`, the dispatcher finishes everything already
//! admitted, writers flush, and the final stats frame is emitted.

use crate::admission::AdmissionQueue;
use crate::proto::{self, QueryMode, QueryRequest, Request};
use crate::signals;
use crate::telemetry::{Counters, LatencyHistogram, StatsFrame};
use coloc_machine::presets;
use coloc_model::{
    ColocError, FeatureSet, Lab, ModelArtifact, ModelKind, ModelRegistry, TrainPolicy,
    TrainRequest, TrainingPlan,
};
use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Where the server listens.
#[derive(Clone, Debug)]
pub enum BindAddr {
    /// TCP, e.g. `127.0.0.1:7105` (port 0 = ephemeral, see
    /// [`ServerHandle::local_addr`]).
    Tcp(String),
    /// A Unix domain socket path (Unix targets only).
    Unix(std::path::PathBuf),
}

/// Everything `coloc serve` can be configured with.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Listen address.
    pub bind: BindAddr,
    /// Lab seed — served `measure` answers are bit-identical to a
    /// `Lab::collect` under the same seed.
    pub seed: u64,
    /// Machine preset answering queries that name no `machine`.
    pub default_machine: String,
    /// Admission-queue bound; beyond it queries shed with `overloaded`.
    pub admission_capacity: usize,
    /// Queue depth at which dispatch switches to the degraded ladder.
    pub degrade_watermark: usize,
    /// Most queries answered by one engine sweep.
    pub max_batch: usize,
    /// Worker threads per engine sweep (0 = one per CPU).
    pub engine_threads: usize,
    /// Deadline applied to queries that carry none.
    pub default_deadline_ms: u64,
    /// Backoff hint attached to `overloaded` responses.
    pub retry_hint_ms: u64,
    /// Cadence of the periodic stats frame.
    pub stats_interval: Duration,
    /// Suppress periodic frames on stdout (tests, benches).
    pub quiet: bool,
    /// Registry model artifact for the default machine (as written by
    /// `coloc train` / `ModelRegistry::save`); `None` trains the linear
    /// fallback at startup. Re-read on every hot reload (SIGHUP or the
    /// `reload` wire verb).
    pub model_path: Option<std::path::PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            bind: BindAddr::Tcp("127.0.0.1:0".into()),
            seed: 2015,
            default_machine: "e5649".into(),
            admission_capacity: 256,
            degrade_watermark: 128,
            max_batch: 32,
            engine_threads: 0,
            default_deadline_ms: 2_000,
            retry_hint_ms: 50,
            stats_interval: Duration::from_secs(10),
            quiet: false,
            model_path: None,
        }
    }
}

/// Resolve a machine preset key the same way the CLI does.
fn machine_index(key: &str) -> Option<usize> {
    match key.to_ascii_lowercase().replace('-', "_").as_str() {
        "e5649" | "xeon_e5649" | "6core" => Some(0),
        "e5_2697v2" | "xeon_e5_2697v2" | "12core" => Some(1),
        _ => None,
    }
}

/// One admitted query waiting for dispatch.
struct Pending {
    req: QueryRequest,
    lab_idx: usize,
    reply: SyncSender<String>,
    enqueued: Instant,
    deadline: Instant,
}

/// State shared by every thread of one server instance.
struct Shared {
    cfg: ServeConfig,
    labs: Vec<(&'static str, Lab)>,
    /// One hot-swappable model slot per lab. `None` until the first
    /// query (or warm-up) resolves it through the registry; swapped
    /// atomically by [`Shared::reload`]. Resolution *failures* are
    /// never stored, so a transient error (missing artifact file,
    /// truncated write) is retried on the next query instead of
    /// poisoning the slot for the life of the process.
    models: Vec<RwLock<Option<Arc<ModelArtifact>>>>,
    /// The digest-addressed artifact cache backing every slot.
    registry: ModelRegistry,
    /// Bumped once per successful [`Shared::reload`]; 0 at startup.
    /// Reported in every stats frame so clients can observe swaps.
    model_epoch: AtomicU64,
    queue: AdmissionQueue<Pending>,
    counters: Counters,
    latency: LatencyHistogram,
    drain: AtomicBool,
    started: Instant,
}

impl Shared {
    fn new(cfg: ServeConfig) -> Result<Shared, ColocError> {
        let suite = coloc_workloads::standard();
        let labs = vec![
            (
                "e5649",
                Lab::new(presets::xeon_e5649(), suite.clone(), cfg.seed)?
                    .with_threads(cfg.engine_threads),
            ),
            (
                "e5_2697v2",
                Lab::new(presets::xeon_e5_2697v2(), suite, cfg.seed)?
                    .with_threads(cfg.engine_threads),
            ),
        ];
        let queue = AdmissionQueue::new(cfg.admission_capacity);
        Ok(Shared {
            models: (0..labs.len()).map(|_| RwLock::new(None)).collect(),
            registry: ModelRegistry::new(),
            model_epoch: AtomicU64::new(0),
            labs,
            queue,
            counters: Counters::default(),
            latency: LatencyHistogram::new(),
            drain: AtomicBool::new(false),
            started: Instant::now(),
            cfg,
        })
    }

    fn should_drain(&self) -> bool {
        self.drain.load(Ordering::Acquire) || signals::termination_requested()
    }

    fn request_drain(&self) {
        self.drain.store(true, Ordering::Release);
        self.queue.start_drain();
    }

    /// A compact training plan for the self-trained fallback: every
    /// suite app × the four class representatives × the P-state and
    /// count extremes. Enough spread for a sane linear fit, cheap
    /// enough (~0.2k scenarios) to run at startup.
    fn fallback_plan(lab: &Lab) -> TrainingPlan {
        let spec = lab.machine().spec();
        TrainingPlan {
            pstates: vec![0, spec.num_pstates() - 1],
            targets: lab.suite().iter().map(|b| b.name.to_string()).collect(),
            co_runners: coloc_workloads::suite::training_co_runners()
                .iter()
                .map(|b| b.name.to_string())
                .collect(),
            counts: vec![1, spec.cores - 1],
        }
    }

    /// The registry [`TrainRequest`] behind the self-trained fallback
    /// model for `labs[idx]`: linear kind, full feature set, robust
    /// ladder — same request every time, so the registry memoizes it by
    /// digest and re-resolution after a reload is free.
    fn fallback_request(&self, idx: usize) -> TrainRequest {
        TrainRequest {
            kind: ModelKind::Linear,
            set: FeatureSet::F,
            plan: Self::fallback_plan(&self.labs[idx].1),
            seed: self.cfg.seed,
            policy: Some(TrainPolicy::default()),
        }
    }

    /// Resolve the model artifact for `labs[idx]` through the registry:
    /// load from `model_path` when one is configured and `idx` is the
    /// default machine, else train the fallback request. Errors are
    /// returned, never cached — the next call retries from scratch.
    fn resolve_model(&self, idx: usize) -> Result<Arc<ModelArtifact>, ColocError> {
        if let Some(path) = &self.cfg.model_path {
            if machine_index(&self.cfg.default_machine) == Some(idx) {
                return self.registry.load(path);
            }
        }
        self.registry
            .resolve(&self.labs[idx].1, &self.fallback_request(idx))
    }

    /// The model artifact answering `predict` queries and fallback
    /// answers for `labs[idx]`. Fast path is a read lock on a filled
    /// slot; on the first call (or after a failed resolution) the slot
    /// is filled under the write lock, double-checked so concurrent
    /// first queries resolve once.
    fn model(&self, idx: usize) -> Result<Arc<ModelArtifact>, ColocError> {
        if let Some(artifact) = self.models[idx].read().expect("model slot").as_ref() {
            return Ok(Arc::clone(artifact));
        }
        let mut slot = self.models[idx].write().expect("model slot");
        if let Some(artifact) = slot.as_ref() {
            return Ok(Arc::clone(artifact));
        }
        let artifact = self.resolve_model(idx)?;
        *slot = Some(Arc::clone(&artifact));
        Ok(artifact)
    }

    /// Hot-swap every initialized model slot and bump the epoch — the
    /// `reload` wire verb and SIGHUP both land here. Each slot is
    /// re-resolved *before* its write lock is taken, so in-flight
    /// requests keep answering on the artifact `Arc` they already hold
    /// and the swap itself is a pointer store: no drain, no blend.
    /// Uninitialized slots stay lazy. Any failed resolution aborts the
    /// reload with every slot (and the epoch) untouched.
    fn reload(&self) -> Result<(u64, String), ColocError> {
        let mut fresh: Vec<(usize, Arc<ModelArtifact>)> = Vec::new();
        for idx in 0..self.labs.len() {
            let initialized = self.models[idx].read().expect("model slot").is_some();
            if initialized {
                fresh.push((idx, self.resolve_model(idx)?));
            }
        }
        for (idx, artifact) in fresh {
            *self.models[idx].write().expect("model slot") = Some(artifact);
        }
        let epoch = self.model_epoch.fetch_add(1, Ordering::AcqRel) + 1;
        Ok((epoch, self.active_model_digest()))
    }

    /// Digest of the default machine's active artifact (hex), or empty
    /// until its slot is first filled.
    fn active_model_digest(&self) -> String {
        let idx = machine_index(&self.cfg.default_machine).unwrap_or(0);
        self.models[idx]
            .read()
            .expect("model slot")
            .as_ref()
            .map(|a| a.digest_hex())
            .unwrap_or_default()
    }

    /// Run-cache traffic summed across labs.
    fn cache_traffic(&self) -> (u64, u64, u64) {
        self.labs.iter().fold((0, 0, 0), |acc, (_, lab)| {
            let s = lab.sweep_stats();
            (
                acc.0 + s.cache_hits,
                acc.1 + s.cache_misses,
                acc.2 + s.cache_evictions,
            )
        })
    }

    fn frame(&self) -> StatsFrame {
        StatsFrame::snapshot(
            self.started.elapsed().as_secs_f64(),
            self.queue.depth(),
            &self.counters,
            &self.latency,
            self.cache_traffic(),
            (
                self.model_epoch.load(Ordering::Acquire),
                self.active_model_digest(),
            ),
        )
    }

    fn bump(counter: &std::sync::atomic::AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Answer one admitted query. Returns the response line.
    fn answer(&self, p: &Pending, degraded: bool) -> String {
        let id = p.req.id.as_deref();
        if Instant::now() > p.deadline {
            Self::bump(&self.counters.shed_deadline);
            let deadline_ms = p.req.deadline_ms.unwrap_or(self.cfg.default_deadline_ms);
            return proto::err_line(id, &ColocError::Timeout { deadline_ms }, 0);
        }
        let lab = &self.labs[p.lab_idx].1;
        let sc = &p.req.scenario;
        let base_time = lab
            .baselines()
            .get(&sc.target)
            .and_then(|b| b.time_at(sc.pstate));
        let reply = |time_s: f64, source: &str, is_degraded: bool| {
            let slowdown = base_time.map(|b| time_s / b);
            proto::ok_line(id, time_s, slowdown, source, is_degraded)
        };
        match p.req.mode {
            // The artifact Arc is grabbed once per request: a reload
            // mid-request swaps the slot, not this request's model, so
            // every answer comes from exactly one epoch's artifact.
            QueryMode::Predict => match self.model(p.lab_idx) {
                Ok(model) => match lab.featurize(sc) {
                    Ok(features) => reply(model.predictor.predict(&features), "predictor", false),
                    Err(e) => proto::err_line(id, &e, 0),
                },
                Err(e) => proto::err_line(id, &e, 0),
            },
            QueryMode::Measure if !degraded => match lab.cached_run(sc) {
                Ok(Some(t)) => reply(t, "cache", false),
                Ok(None) => match lab.run_scenario(sc) {
                    Ok(t) => reply(t, "engine", false),
                    Err(e) => proto::err_line(id, &e, 0),
                },
                Err(e) => proto::err_line(id, &e, 0),
            },
            QueryMode::Measure => match lab.cached_run(sc) {
                // Degraded rung 1: a memoized run is still exact.
                Ok(Some(t)) => {
                    Self::bump(&self.counters.degraded_cache);
                    reply(t, "cache", true)
                }
                // Degraded rung 2: approximate, never the engine.
                Ok(None) => match self.model(p.lab_idx) {
                    Ok(model) => match lab.featurize(sc) {
                        Ok(features) => {
                            Self::bump(&self.counters.degraded_fallback);
                            reply(model.predictor.predict(&features), "fallback", true)
                        }
                        Err(e) => proto::err_line(id, &e, 0),
                    },
                    Err(e) => proto::err_line(id, &e, 0),
                },
                Err(e) => proto::err_line(id, &e, 0),
            },
        }
    }

    /// Deliver a response line without ever blocking on the client.
    fn send(&self, pending: &Pending, line: String) {
        match pending.reply.try_send(line) {
            Ok(()) => {
                Self::bump(&self.counters.completed);
                self.latency
                    .record_us(pending.enqueued.elapsed().as_micros() as u64);
            }
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                Self::bump(&self.counters.dropped_responses);
            }
        }
    }

    /// The dispatcher: pops admitted batches until drained-and-empty.
    fn dispatch_loop(&self) {
        loop {
            if self.queue.drained() {
                return;
            }
            let depth = self.queue.depth();
            let batch = self
                .queue
                .pop_batch(self.cfg.max_batch, Duration::from_millis(20));
            if batch.is_empty() {
                continue;
            }
            let degraded = depth > self.cfg.degrade_watermark;
            // Group by machine, preserving arrival order within a group,
            // and answer each group through one work-stealing sweep.
            let mut groups: Vec<(usize, Vec<Pending>)> = Vec::new();
            for p in batch {
                match groups.iter_mut().find(|(idx, _)| *idx == p.lab_idx) {
                    Some((_, g)) => g.push(p),
                    None => groups.push((p.lab_idx, vec![p])),
                }
            }
            for (_, group) in groups {
                Self::bump(&self.counters.batches);
                self.counters
                    .batched_queries
                    .fetch_add(group.len() as u64, Ordering::Relaxed);
                let lines =
                    coloc_ml::parallel::run_indexed(group.len(), self.cfg.engine_threads, |i| {
                        self.answer(&group[i], degraded)
                    });
                for (pending, line) in group.iter().zip(lines) {
                    self.send(pending, line);
                }
            }
        }
    }
}

/// Maximum accepted request-line length; longer lines are a protocol
/// violation and close the connection (bounds per-connection memory).
const MAX_LINE: usize = 1 << 20;

/// One bound listen socket, TCP or Unix, behind a common nonblocking
/// accept. Accepted connections come back as boxed read/write halves so
/// the reader/writer threads are transport-agnostic.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener, std::path::PathBuf),
}

impl Listener {
    fn accept(&self) -> io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        match self {
            Listener::Tcp(l) => {
                let (conn, _peer) = l.accept()?;
                conn.set_nonblocking(false)?;
                // Answers are small frames; Nagle + delayed ACK would put
                // tens of milliseconds on every response.
                conn.set_nodelay(true)?;
                conn.set_read_timeout(Some(Duration::from_millis(100)))?;
                let writer = conn.try_clone()?;
                writer.set_write_timeout(Some(Duration::from_secs(2)))?;
                Ok((Box::new(conn), Box::new(writer)))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (conn, _peer) = l.accept()?;
                conn.set_nonblocking(false)?;
                conn.set_read_timeout(Some(Duration::from_millis(100)))?;
                let writer = conn.try_clone()?;
                writer.set_write_timeout(Some(Duration::from_secs(2)))?;
                Ok((Box::new(conn), Box::new(writer)))
            }
        }
    }

    fn local_addr(&self) -> Option<std::net::SocketAddr> {
        match self {
            Listener::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Listener::Unix(..) => None,
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Read side of one connection.
fn reader_loop(shared: &Shared, mut conn: Box<dyn Read + Send>, reply: SyncSender<String>) {
    let mut pending = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if shared.should_drain() {
            return;
        }
        let n = match conn.read(&mut chunk) {
            Ok(0) => return, // EOF
            Ok(n) => n,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        pending.extend_from_slice(&chunk[..n]);
        if pending.len() > MAX_LINE {
            Shared::bump(&shared.counters.bad_requests);
            let _ = reply.try_send(proto::bad_request_line("request line exceeds 1 MiB"));
            return;
        }
        while let Some(nl) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=nl).collect();
            let line = String::from_utf8_lossy(&line[..nl]);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            handle_line(shared, line, &reply);
        }
    }
}

/// Parse and route one request line from a reader thread.
fn handle_line(shared: &Shared, line: &str, reply: &SyncSender<String>) {
    match proto::parse_request(line) {
        Err(detail) => {
            Shared::bump(&shared.counters.bad_requests);
            let _ = reply.try_send(proto::bad_request_line(&detail));
        }
        Ok(Request::Ping) => {
            Shared::bump(&shared.counters.pings);
            let _ = reply.try_send(proto::pong_line());
        }
        Ok(Request::Stats) => {
            let frame = shared.frame();
            let line = serde_json::to_string(&frame).expect("stats frame serializes");
            let _ = reply.try_send(line);
        }
        Ok(Request::Reload) => match shared.reload() {
            Ok((epoch, digest)) => {
                let _ = reply.try_send(proto::reload_line(epoch, &digest));
            }
            Err(e) => {
                let _ = reply.try_send(proto::err_line(None, &e, 0));
            }
        },
        Ok(Request::Shutdown) => {
            shared.request_drain();
            let _ = reply.try_send(proto::err_line(None, &ColocError::ShuttingDown, 0));
        }
        Ok(Request::Query(req)) => {
            let id = req.id.clone();
            let lab_idx = match &req.machine {
                None => machine_index(&shared.cfg.default_machine).unwrap_or(0),
                Some(key) => match machine_index(key) {
                    Some(idx) => idx,
                    None => {
                        Shared::bump(&shared.counters.bad_requests);
                        let _ = reply
                            .try_send(proto::bad_request_line(&format!("unknown machine `{key}`")));
                        return;
                    }
                },
            };
            let now = Instant::now();
            let deadline_ms = req.deadline_ms.unwrap_or(shared.cfg.default_deadline_ms);
            let entry = Pending {
                req,
                lab_idx,
                reply: reply.clone(),
                enqueued: now,
                deadline: now + Duration::from_millis(deadline_ms),
            };
            match shared.queue.try_admit(entry) {
                Ok(()) => Shared::bump(&shared.counters.admitted),
                Err(e) => {
                    match e {
                        ColocError::Overloaded { .. } => {
                            Shared::bump(&shared.counters.shed_overload)
                        }
                        _ => Shared::bump(&shared.counters.rejected_shutdown),
                    }
                    let _ = reply.try_send(proto::err_line(
                        id.as_deref(),
                        &e,
                        shared.cfg.retry_hint_ms,
                    ));
                }
            }
        }
    }
}

/// Write side of one connection: drains the bounded channel until every
/// sender (reader + pending queries) is gone, then closes. After a write
/// failure the channel keeps draining into the void so no sender can
/// ever block on a dead client.
fn writer_loop(mut conn: Box<dyn Write + Send>, rx: Receiver<String>) {
    let mut dead = false;
    while let Ok(line) = rx.recv() {
        if dead {
            continue;
        }
        if conn
            .write_all(line.as_bytes())
            .and_then(|_| conn.write_all(b"\n"))
            .is_err()
        {
            dead = true;
        }
    }
    let _ = conn.flush();
}

/// Per-connection response-channel bound: when a slow reader lets this
/// many lines pile up, further responses are dropped (and counted)
/// rather than blocking the engine.
const REPLY_CHANNEL_BOUND: usize = 256;

/// A running server, as seen by the thread that spawned it.
pub struct ServerHandle {
    addr: Option<std::net::SocketAddr>,
    shared: Arc<Shared>,
    join: std::thread::JoinHandle<StatsFrame>,
}

impl ServerHandle {
    /// The actually-bound TCP address (resolves ephemeral ports);
    /// `None` for Unix-socket servers, whose path is in the config.
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.addr
    }

    /// Request a graceful drain, exactly like SIGTERM.
    pub fn shutdown(&self) {
        self.shared.request_drain();
    }

    /// Hot-swap model artifacts, exactly like SIGHUP or the `reload`
    /// wire verb. Returns the new epoch and the default machine's
    /// active artifact digest.
    pub fn reload(&self) -> Result<(u64, String), ColocError> {
        self.shared.reload()
    }

    /// Snapshot the live stats frame.
    pub fn stats(&self) -> StatsFrame {
        self.shared.frame()
    }

    /// Wait for the drain to complete and return the final stats frame.
    pub fn join(self) -> StatsFrame {
        self.join.join().expect("server thread panicked")
    }
}

/// The server. Construct with a config, then either [`Server::run`] on
/// the current thread (the CLI daemon path) or [`Server::spawn`] for a
/// background instance (tests, benches).
pub struct Server;

impl Server {
    /// Run to completion on the calling thread: binds, serves until a
    /// drain is requested (signal, `shutdown` frame, or
    /// [`ServerHandle::shutdown`]), drains, and returns the final frame.
    pub fn run(cfg: ServeConfig) -> Result<StatsFrame, ColocError> {
        let (listener, shared) = Self::bind(cfg)?;
        Ok(Self::serve(listener, shared))
    }

    /// Bind and serve on a background thread.
    pub fn spawn(cfg: ServeConfig) -> Result<ServerHandle, ColocError> {
        let (listener, shared) = Self::bind(cfg)?;
        let addr = listener.local_addr();
        let thread_shared = Arc::clone(&shared);
        let join = std::thread::spawn(move || Self::serve(listener, thread_shared));
        Ok(ServerHandle { addr, shared, join })
    }

    fn bind(cfg: ServeConfig) -> Result<(Listener, Arc<Shared>), ColocError> {
        if machine_index(&cfg.default_machine).is_none() {
            return Err(ColocError::InvalidSpec(format!(
                "unknown default machine `{}`",
                cfg.default_machine
            )));
        }
        let listener = match &cfg.bind {
            BindAddr::Tcp(addr) => {
                let l = TcpListener::bind(addr)
                    .map_err(|e| ColocError::Machine(format!("bind {addr}: {e}")))?;
                l.set_nonblocking(true)
                    .map_err(|e| ColocError::Machine(format!("nonblocking: {e}")))?;
                Listener::Tcp(l)
            }
            #[cfg(unix)]
            BindAddr::Unix(path) => {
                let _ = std::fs::remove_file(path); // stale socket from a crash
                let l = std::os::unix::net::UnixListener::bind(path)
                    .map_err(|e| ColocError::Machine(format!("bind {}: {e}", path.display())))?;
                l.set_nonblocking(true)
                    .map_err(|e| ColocError::Machine(format!("nonblocking: {e}")))?;
                Listener::Unix(l, path.clone())
            }
            #[cfg(not(unix))]
            BindAddr::Unix(_) => {
                return Err(ColocError::InvalidSpec(
                    "unix sockets are not supported on this platform".into(),
                ))
            }
        };
        let shared = Arc::new(Shared::new(cfg)?);
        // Warm the default machine before accepting: baselines + the
        // fallback predictor, so the degraded ladder never trains under
        // pressure and first-query latency is honest.
        let idx = machine_index(&shared.cfg.default_machine).unwrap_or(0);
        shared.labs[idx].1.baselines();
        let _ = shared.model(idx);
        Ok((listener, shared))
    }

    fn serve(listener: Listener, shared: Arc<Shared>) -> StatsFrame {
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || shared.dispatch_loop())
        };
        let conn_threads: Mutex<Vec<std::thread::JoinHandle<()>>> = Mutex::new(Vec::new());
        let mut last_frame = Instant::now();
        loop {
            if shared.should_drain() {
                break;
            }
            // SIGHUP latched since the last lap: hot-swap models. A
            // failed reload (e.g. the artifact file is mid-rewrite) is
            // logged and the old models keep serving.
            if signals::take_reload_request() {
                match shared.reload() {
                    Ok((epoch, digest)) => {
                        if !shared.cfg.quiet {
                            println!("{}", proto::reload_line(epoch, &digest));
                        }
                    }
                    Err(e) => eprintln!("reload failed (keeping current models): {e}"),
                }
            }
            match listener.accept() {
                Ok((read_half, write_half)) => {
                    let (tx, rx) = mpsc::sync_channel::<String>(REPLY_CHANNEL_BOUND);
                    let reader_shared = Arc::clone(&shared);
                    let mut handles = conn_threads.lock().expect("conn threads");
                    handles.push(std::thread::spawn(move || {
                        reader_loop(&reader_shared, read_half, tx)
                    }));
                    handles.push(std::thread::spawn(move || writer_loop(write_half, rx)));
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
            if !shared.cfg.quiet && last_frame.elapsed() >= shared.cfg.stats_interval {
                last_frame = Instant::now();
                if let Ok(line) = serde_json::to_string(&shared.frame()) {
                    println!("{line}");
                }
            }
        }
        // Drain: refuse new admissions, let the dispatcher finish what
        // was admitted, then give every connection thread its exit.
        shared.request_drain();
        dispatcher.join().expect("dispatcher panicked");
        for h in conn_threads.into_inner().expect("conn threads") {
            let _ = h.join();
        }
        let frame = shared.frame();
        if !shared.cfg.quiet {
            if let Ok(line) = serde_json::to_string(&frame) {
                println!("{line}");
            }
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    fn test_config() -> ServeConfig {
        ServeConfig {
            quiet: true,
            engine_threads: 1,
            ..ServeConfig::default()
        }
    }

    fn connect(handle: &ServerHandle) -> (BufReader<TcpStream>, TcpStream) {
        let conn = TcpStream::connect(handle.local_addr().unwrap()).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        (BufReader::new(conn.try_clone().unwrap()), conn)
    }

    fn ask(reader: &mut BufReader<TcpStream>, conn: &mut TcpStream, line: &str) -> String {
        writeln!(conn, "{line}").unwrap();
        let mut out = String::new();
        reader.read_line(&mut out).unwrap();
        out.trim().to_string()
    }

    #[test]
    fn ping_query_stats_shutdown_lifecycle() {
        let handle = Server::spawn(test_config()).unwrap();
        let (mut reader, mut conn) = connect(&handle);

        let pong = ask(&mut reader, &mut conn, r#"{"op":"ping"}"#);
        assert!(pong.contains("pong"), "{pong}");

        let ans = ask(
            &mut reader,
            &mut conn,
            r#"{"op":"query","id":"q1","target":"cg","co":[["ep",2]],"pstate":1}"#,
        );
        let proto::Reply::Ok {
            id,
            time_s,
            slowdown,
            source,
            degraded,
        } = proto::parse_reply(&ans).unwrap()
        else {
            panic!("expected ok, got {ans}")
        };
        assert_eq!(id.as_deref(), Some("q1"));
        assert!(time_s > 0.0);
        assert!(slowdown.unwrap() >= 1.0, "co-location slows down");
        assert_eq!(source, "engine");
        assert!(!degraded);

        // Same query again: answered from the sharded cache, bit-equal.
        let again = ask(
            &mut reader,
            &mut conn,
            r#"{"op":"query","id":"q2","target":"cg","co":[["ep",2]],"pstate":1}"#,
        );
        let proto::Reply::Ok {
            time_s: t2, source, ..
        } = proto::parse_reply(&again).unwrap()
        else {
            panic!("expected ok, got {again}")
        };
        assert_eq!(t2.to_bits(), time_s.to_bits());
        assert_eq!(source, "cache");

        let stats = ask(&mut reader, &mut conn, r#"{"op":"stats"}"#);
        let proto::Reply::Stats(frame) = proto::parse_reply(&stats).unwrap() else {
            panic!("expected stats, got {stats}")
        };
        assert_eq!(frame.admitted, 2);
        assert_eq!(frame.completed, 2);
        assert_eq!(frame.pings, 1);

        let bye = ask(&mut reader, &mut conn, r#"{"op":"shutdown"}"#);
        assert!(bye.contains("shutting_down"), "{bye}");
        let final_frame = handle.join();
        assert_eq!(final_frame.completed, 2);
        assert_eq!(final_frame.queue_depth, 0);
    }

    #[test]
    fn predict_mode_answers_without_the_engine() {
        let handle = Server::spawn(test_config()).unwrap();
        let (mut reader, mut conn) = connect(&handle);
        let before = handle.stats();
        let ans = ask(
            &mut reader,
            &mut conn,
            r#"{"op":"query","target":"canneal","co":[["cg",3]],"mode":"predict"}"#,
        );
        let proto::Reply::Ok {
            time_s,
            source,
            degraded,
            ..
        } = proto::parse_reply(&ans).unwrap()
        else {
            panic!("expected ok, got {ans}")
        };
        assert!(time_s.is_finite() && time_s > 0.0);
        assert_eq!(source, "predictor");
        assert!(!degraded);
        let after = handle.stats();
        assert_eq!(
            after.cache_misses, before.cache_misses,
            "predict must not touch the engine"
        );
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn bad_requests_are_answered_not_fatal() {
        let handle = Server::spawn(test_config()).unwrap();
        let (mut reader, mut conn) = connect(&handle);
        let ans = ask(&mut reader, &mut conn, "this is not json");
        assert!(ans.contains("bad_request"), "{ans}");
        let ans = ask(&mut reader, &mut conn, r#"{"op":"query","target":"doom"}"#);
        assert!(ans.contains("unknown application"), "{ans}");
        let ans = ask(
            &mut reader,
            &mut conn,
            r#"{"op":"query","target":"cg","machine":"cray"}"#,
        );
        assert!(ans.contains("unknown machine"), "{ans}");
        // The connection is still healthy.
        let pong = ask(&mut reader, &mut conn, r#"{"op":"ping"}"#);
        assert!(pong.contains("pong"), "{pong}");
        let frame = handle.stats();
        assert_eq!(frame.bad_requests, 2);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn second_machine_is_served_on_demand() {
        let handle = Server::spawn(test_config()).unwrap();
        let (mut reader, mut conn) = connect(&handle);
        let ans = ask(
            &mut reader,
            &mut conn,
            r#"{"op":"query","target":"ep","machine":"12core","pstate":0}"#,
        );
        let proto::Reply::Ok { time_s, .. } = proto::parse_reply(&ans).unwrap() else {
            panic!("expected ok, got {ans}")
        };
        assert!(time_s > 0.0);
        handle.shutdown();
        handle.join();
    }
}
