//! Property-based tests for the modeling layer's invariants.

use coloc_machine::presets;
use coloc_model::{Feature, FeatureSet, Lab, Scenario};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One shared lab: baselines are computed once across all proptest cases.
fn lab() -> &'static Lab {
    static CELL: OnceLock<Lab> = OnceLock::new();
    CELL.get_or_init(|| {
        Lab::new(presets::xeon_e5_2697v2(), coloc_workloads::standard(), 77).unwrap()
    })
}

fn app_name() -> impl Strategy<Value = String> {
    prop::sample::select(
        coloc_workloads::standard()
            .iter()
            .map(|b| b.name.to_string())
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Co-app feature sums are additive in instance counts.
    #[test]
    fn coapp_features_additive_in_counts(
        target in app_name(),
        co in app_name(),
        n in 1usize..11,
        pstate in 0usize..6,
    ) {
        let lab = lab();
        let one = lab
            .featurize(&Scenario::homogeneous(target.clone(), co.clone(), 1, pstate))
            .unwrap();
        let many = lab
            .featurize(&Scenario::homogeneous(target, co, n, pstate))
            .unwrap();
        for f in [Feature::CoAppMem, Feature::CoAppCmCa, Feature::CoAppCaIns] {
            let expected = one[f.index()] * n as f64;
            prop_assert!((many[f.index()] - expected).abs() < 1e-9 * expected.max(1.0));
        }
        prop_assert_eq!(many[Feature::NumCoApp.index()], n as f64);
        // Target-side features are co-location independent.
        for f in [Feature::BaseExTime, Feature::TargetMem, Feature::TargetCmCa, Feature::TargetCaIns] {
            prop_assert_eq!(many[f.index()], one[f.index()]);
        }
    }

    /// Splitting one homogeneous group into two entries of the same app
    /// yields identical features.
    #[test]
    fn featurize_is_shape_independent(
        target in app_name(),
        co in app_name(),
        a in 1usize..5,
        b in 1usize..5,
    ) {
        let lab = lab();
        let merged = lab
            .featurize(&Scenario::homogeneous(target.clone(), co.clone(), a + b, 0))
            .unwrap();
        let split = lab
            .featurize(&Scenario {
                target,
                co_located: vec![(co.clone(), a), (co, b)],
                pstate: 0,
            })
            .unwrap();
        for i in 0..8 {
            prop_assert!((merged[i] - split[i]).abs() < 1e-12 * merged[i].abs().max(1.0));
        }
    }

    /// Projection keeps values verbatim and respects set nesting.
    #[test]
    fn feature_set_projection_consistency(full in prop::array::uniform8(-1e3f64..1e3)) {
        for set in FeatureSet::ALL {
            let proj = set.project(&full);
            prop_assert_eq!(proj.len(), set.arity());
            for (v, f) in proj.iter().zip(set.features()) {
                prop_assert_eq!(*v, full[f.index()]);
            }
        }
        // Nesting: every set's projection is a prefix-closed subset of F's.
        let f_proj = FeatureSet::F.project(&full);
        prop_assert_eq!(&f_proj[..], &full[..]);
    }

    /// Baseline execution time feature matches the P-state table exactly.
    #[test]
    fn base_time_feature_tracks_pstate(target in app_name(), pstate in 0usize..6) {
        let lab = lab();
        let f = lab.featurize(&Scenario::solo(target.clone(), pstate)).unwrap();
        let expected = lab.baselines().get(&target).unwrap().exec_time_s[pstate];
        prop_assert_eq!(f[Feature::BaseExTime.index()], expected);
    }
}
