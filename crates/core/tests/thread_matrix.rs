//! Cross-thread bit-identity matrix: `Lab::collect` (and the faulted and
//! checkpointed variants) must produce bit-for-bit identical sample sets
//! at 1, 2, and 8 worker threads. The work-stealing sweep runtime may
//! reorder *execution*, but results are keyed by scenario and every
//! engine run is seeded per-scenario, so thread count must never leak
//! into the data — including NaNs injected by fault plans, which is why
//! all comparisons go through `to_bits`.

use coloc_machine::{presets, FaultPlan};
use coloc_model::{lab::CheckpointConfig, Lab, Sample, TrainingPlan};

fn plan() -> TrainingPlan {
    TrainingPlan {
        pstates: vec![0, 3],
        targets: vec![
            "canneal".into(),
            "cg".into(),
            "ep".into(),
            "sp".into(),
            "blackscholes".into(),
        ],
        co_runners: vec!["cg".into(), "ep".into()],
        counts: vec![1, 3, 5],
    }
}

fn lab(threads: usize) -> Lab {
    Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 2015)
        .unwrap()
        .with_noise(0.008)
        .with_threads(threads)
}

fn assert_bit_identical(mode: &str, threads: usize, got: &[Sample], want: &[Sample]) {
    assert_eq!(got.len(), want.len(), "{mode} @ {threads} threads");
    for (a, b) in got.iter().zip(want) {
        assert_eq!(
            a.scenario.label(),
            b.scenario.label(),
            "{mode} @ {threads} threads: order drift"
        );
        assert_eq!(
            a.actual_time_s.to_bits(),
            b.actual_time_s.to_bits(),
            "{mode} @ {threads} threads: {}",
            a.scenario.label()
        );
        for (x, y) in a.features.iter().zip(&b.features) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{mode} @ {threads} threads: {}",
                a.scenario.label()
            );
        }
    }
}

/// One matrix: {clean, light-faulted, heavy-faulted + checkpointed} ×
/// {1, 2, 8} threads, each cell bit-compared against its single-thread
/// reference.
#[test]
fn collect_is_bit_identical_across_thread_counts() {
    let scenarios = plan().scenarios();
    let ckpt_dir = std::env::temp_dir().join("coloc-thread-matrix-tests");
    std::fs::create_dir_all(&ckpt_dir).unwrap();

    let collect = |mode: &str, threads: usize| -> Vec<Sample> {
        match mode {
            "clean" => lab(threads).collect_scenarios(&scenarios).unwrap(),
            "light-faulted" => lab(threads)
                .with_faults(FaultPlan::light(41))
                .unwrap()
                .collect_scenarios(&scenarios)
                .unwrap(),
            "heavy-checkpointed" => {
                let path = ckpt_dir.join(format!("ckpt_{threads}.json"));
                let _ = std::fs::remove_file(&path);
                let samples = lab(threads)
                    .with_faults(FaultPlan::heavy(99))
                    .unwrap()
                    .collect_resumable(&scenarios, &CheckpointConfig::new(&path, 7))
                    .unwrap();
                let _ = std::fs::remove_file(&path);
                samples
            }
            other => panic!("unknown mode {other}"),
        }
    };

    for mode in ["clean", "light-faulted", "heavy-checkpointed"] {
        let reference = collect(mode, 1);
        // The heavy plan must actually fire on this sweep, or the faulted
        // cells silently degenerate into a rerun of the clean ones.
        if mode == "heavy-checkpointed" {
            assert!(
                reference.iter().any(|s| !s.actual_time_s.is_finite()),
                "heavy plan fired no NaN faults — plan or seed changed?"
            );
        }
        for threads in [2, 8] {
            let got = collect(mode, threads);
            assert_bit_identical(mode, threads, &got, &reference);
        }
    }
}
