//! Golden tests pinning the scheduler's observable behavior.
//!
//! The policy-trait refactor of `scheduler.rs` must be behavior
//! preserving: for a fixed lab, predictor, and job list, both policies
//! must keep producing the *same socket assignments* and the *same
//! predicted slowdowns*, bit for bit. This fixture pins that contract:
//! it records the full placement (assignments + slowdown bits) produced
//! by the seed implementation, and any refactor that moves a job or a
//! bit shows up as a diff here. Regenerate only after an *intentional*
//! policy change with
//! `COLOC_REGEN_FIXTURES=1 cargo test -p coloc-model --test scheduler_golden`.

use coloc_machine::presets;
use coloc_model::scheduler::{Policy, Scheduler};
use coloc_model::{FeatureSet, Lab, ModelKind, Predictor, TrainingPlan};
use std::path::PathBuf;
use std::sync::OnceLock;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/scheduler_golden.json")
}

/// One pinned placement: jobs in, assignments + slowdown bits out.
#[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
struct GoldenPlacement {
    policy: String,
    sockets: usize,
    jobs: Vec<String>,
    /// `sockets[i]` → job names, exactly as `Placement::sockets` lists them.
    assignments: Vec<Vec<String>>,
    /// `Placement::predicted_slowdowns`, as raw bits (exact, portable).
    slowdown_bits: Vec<u64>,
}

#[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
struct GoldenReport {
    cases: Vec<GoldenPlacement>,
}

/// Deterministic lab + linear predictor: the linear model's closed-form
/// fit has no iterative-training sensitivity, so the fixture pins the
/// scheduler, not the optimizer.
fn shared() -> &'static (Lab, Predictor) {
    static CELL: OnceLock<(Lab, Predictor)> = OnceLock::new();
    CELL.get_or_init(|| {
        let lab = Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 9).unwrap();
        let plan = TrainingPlan {
            pstates: vec![0],
            targets: vec![
                "cg".into(),
                "canneal".into(),
                "fluidanimate".into(),
                "ep".into(),
            ],
            co_runners: vec!["cg".into(), "sp".into(), "ep".into()],
            counts: vec![1, 2, 3, 5],
        };
        let samples = lab.collect(&plan).unwrap();
        let p = Predictor::train(ModelKind::Linear, FeatureSet::F, &samples, 1).unwrap();
        (lab, p)
    })
}

fn job_list(names: &[&str]) -> Vec<String> {
    names.iter().map(|s| s.to_string()).collect()
}

fn run_case(policy: Policy, sockets: usize, jobs: &[String]) -> GoldenPlacement {
    let (lab, predictor) = shared();
    let sched = Scheduler::new(lab, predictor, 0);
    let placement = sched.place(jobs, sockets, policy).unwrap();
    GoldenPlacement {
        policy: format!("{policy:?}"),
        sockets,
        jobs: jobs.to_vec(),
        assignments: placement.sockets.iter().map(|s| s.jobs.clone()).collect(),
        slowdown_bits: placement
            .predicted_slowdowns
            .iter()
            .map(|s| s.to_bits())
            .collect(),
    }
}

fn current_report() -> GoldenReport {
    // A mixed-class fixture (hogs + compute), an all-identical one, and a
    // partial-fill one: together they exercise packing order, the greedy
    // spread, and empty trailing sockets.
    let mixed = job_list(&["cg", "cg", "cg", "cg", "ep", "ep", "ep", "ep"]);
    let uniform = job_list(&["ep"; 6]);
    let partial = job_list(&["cg", "canneal", "ep"]);
    let mut cases = Vec::new();
    for policy in [Policy::PackFirstFit, Policy::LeastInterference] {
        cases.push(run_case(policy, 2, &mixed));
        cases.push(run_case(policy, 2, &uniform));
        cases.push(run_case(policy, 3, &partial));
    }
    GoldenReport { cases }
}

#[test]
fn placements_match_the_pinned_fixture() {
    let report = current_report();
    let path = fixture_path();
    if std::env::var("COLOC_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let mut bytes = serde_json::to_vec_pretty(&report).unwrap();
        bytes.push(b'\n');
        std::fs::write(&path, bytes).unwrap();
    }
    let on_disk = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (run with COLOC_REGEN_FIXTURES=1)", path.display()));
    let pinned: GoldenReport = serde_json::from_slice(&on_disk).unwrap();
    assert_eq!(
        pinned.cases.len(),
        report.cases.len(),
        "fixture case count drifted"
    );
    for (want, got) in pinned.cases.iter().zip(&report.cases) {
        assert_eq!(
            want, got,
            "scheduler behavior drifted for policy {} on {:?}",
            got.policy, got.jobs
        );
    }
}

#[test]
fn golden_cases_keep_every_job_exactly_once() {
    // Sanity on the fixture itself: a placement that lost or duplicated a
    // job would still "match" a stale fixture, so pin the invariant too.
    for case in current_report().cases {
        let mut placed: Vec<&String> = case.assignments.iter().flatten().collect();
        let mut expected: Vec<&String> = case.jobs.iter().collect();
        placed.sort();
        expected.sort();
        assert_eq!(placed, expected, "{}: jobs lost or duplicated", case.policy);
        assert_eq!(case.slowdown_bits.len(), case.jobs.len());
    }
}
