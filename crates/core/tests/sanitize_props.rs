//! Property tests for dataset sanitization and the paper's error metrics.
//!
//! The load-bearing property is idempotence: re-sanitizing a kept set
//! must quarantine nothing. A single median/MAD pass fails this — an
//! extreme burst inflates the MAD and masks milder damage that only
//! surfaces once the burst is gone — which is why `sanitize_samples`
//! iterates its outlier pass to a fixed point.

use coloc_ml::{mpe, nrmse};
use coloc_model::{sanitize_samples, Sample, SanitizePolicy, Scenario};
use proptest::prelude::*;

fn sample(i: usize, base: f64, actual: f64) -> Sample {
    Sample {
        scenario: Scenario::homogeneous("t", "c", i % 5, 0),
        features: [base, 1.0, 0.01, 1e-3, 0.3, 0.02, 0.1, 0.02],
        actual_time_s: actual,
    }
}

/// Samples over a wide mix of regimes: clean contention (most of the
/// mass), noise bursts, stuck-counter collapses, and structural damage
/// (NaN / zero times).
fn any_sample() -> impl Strategy<Value = Sample> {
    (
        0usize..64,
        50.0f64..500.0,
        0usize..6,
        0.0f64..1.0,
        0usize..10,
    )
        .prop_map(|(i, base, regime, u, damage)| {
            let slowdown = match regime {
                0..=3 => f64::exp(0.69 * u), // contention ≤ 2×
                4 => 5.0 + 95.0 * u,         // noise burst
                _ => 0.001 + 0.199 * u,      // stuck counter
            };
            let damage = match damage {
                0..=7 => 1.0,
                8 => f64::NAN,
                _ => 0.0,
            };
            sample(i, base, base * slowdown * damage)
        })
}

fn same_samples(a: &[Sample], b: &[Sample]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.scenario.label() == y.scenario.label()
                && x.actual_time_s.to_bits() == y.actual_time_s.to_bits()
                && x.features
                    .iter()
                    .zip(&y.features)
                    .all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

/// Uniform scale factors spanning seven orders of magnitude.
fn scale_factor() -> impl Strategy<Value = f64> {
    prop::sample::select(vec![1e-3, 0.37, 42.0, 1e4])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// sanitize(sanitize(x)) == sanitize(x): the kept set is a fixed point.
    #[test]
    fn sanitize_is_idempotent(samples in prop::collection::vec(any_sample(), 0..48)) {
        let policy = SanitizePolicy::default();
        let (kept, report) = sanitize_samples(&samples, &policy);
        let (kept2, report2) = sanitize_samples(&kept, &policy);
        prop_assert!(
            report2.is_clean(),
            "second pass quarantined {} of {} (first pass: {report})",
            report2.quarantined.len(),
            kept.len()
        );
        prop_assert!(same_samples(&kept2, &kept));
    }

    /// The report partitions the input: kept + quarantined == total, and
    /// the quarantine never exceeds the input length.
    #[test]
    fn sanitize_partitions_the_input(samples in prop::collection::vec(any_sample(), 0..48)) {
        let (kept, report) = sanitize_samples(&samples, &SanitizePolicy::default());
        prop_assert_eq!(report.total, samples.len());
        prop_assert_eq!(report.kept, kept.len());
        prop_assert!(report.quarantined.len() <= samples.len());
        prop_assert_eq!(kept.len() + report.quarantined.len(), samples.len());
        // Quarantine indices are unique, in-range, and in order.
        let idx: Vec<usize> = report.quarantined.iter().map(|q| q.index).collect();
        prop_assert!(idx.windows(2).all(|w| w[0] < w[1]), "{:?}", idx);
        prop_assert!(idx.iter().all(|&i| i < samples.len()));
    }

    /// Everything kept is structurally sound.
    #[test]
    fn kept_samples_are_finite_and_positive(samples in prop::collection::vec(any_sample(), 0..48)) {
        let (kept, _) = sanitize_samples(&samples, &SanitizePolicy::default());
        for s in &kept {
            prop_assert!(s.actual_time_s.is_finite() && s.actual_time_s > 0.0);
            prop_assert!(s.features.iter().all(|f| f.is_finite()));
        }
    }

    /// MPE is invariant under uniform scaling of both predictions and
    /// actuals (paper Eq. 2 is magnitude-independent by construction).
    #[test]
    fn mpe_is_scale_invariant(
        pairs in prop::collection::vec((1.0f64..1e3, 1.0f64..1e3), 1..40),
        k in scale_factor(),
    ) {
        let (pred, actual): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let base = mpe(&pred, &actual);
        let scaled = mpe(
            &pred.iter().map(|p| p * k).collect::<Vec<_>>(),
            &actual.iter().map(|a| a * k).collect::<Vec<_>>(),
        );
        prop_assert!((scaled - base).abs() <= 1e-9 * base.abs().max(1.0), "{} vs {}", base, scaled);
    }

    /// NRMSE is likewise scale-invariant: RMSE and the actual-range scale
    /// by the same factor (paper Eq. 3).
    #[test]
    fn nrmse_is_scale_invariant(
        pairs in prop::collection::vec((1.0f64..1e3, 1.0f64..1e3), 2..40),
        k in scale_factor(),
    ) {
        let (pred, actual): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let base = nrmse(&pred, &actual);
        let scaled = nrmse(
            &pred.iter().map(|p| p * k).collect::<Vec<_>>(),
            &actual.iter().map(|a| a * k).collect::<Vec<_>>(),
        );
        // Zero range (all actuals equal) is NaN on both sides.
        if base.is_nan() {
            prop_assert!(scaled.is_nan());
        } else {
            prop_assert!((scaled - base).abs() <= 1e-9 * base.abs().max(1.0), "{} vs {}", base, scaled);
        }
    }

    /// Both metrics are finite and non-negative on sound inputs.
    #[test]
    fn metrics_are_finite_on_sound_inputs(
        pairs in prop::collection::vec((1.0f64..1e3, 1.0f64..1e3), 1..40),
    ) {
        let (pred, actual): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let m = mpe(&pred, &actual);
        prop_assert!(m.is_finite() && m >= 0.0);
        let n = nrmse(&pred, &actual);
        prop_assert!(n.is_nan() || n >= 0.0);
    }
}

/// The concrete masking counterexample that motivated the fixed-point
/// pass: five clean samples, one mild 1.57× outlier, four extreme
/// e^10 ≈ 22000× bursts. One median/MAD round flags only the bursts; the
/// mild outlier surfaces once they are gone.
#[test]
fn masked_outlier_is_caught() {
    let log_sds = [0.0, 0.0, 0.0, 0.0, 0.0, 0.45, 10.0, 10.0, 10.0, 10.0];
    let samples: Vec<Sample> = log_sds
        .iter()
        .enumerate()
        .map(|(i, &ln_sd)| sample(i, 100.0, 100.0 * f64::exp(ln_sd)))
        .collect();
    let policy = SanitizePolicy {
        mad_threshold: 8.0,
        min_kept: 4,
    };
    let (kept, report) = sanitize_samples(&samples, &policy);
    assert_eq!(kept.len(), 5, "{report}");
    let flagged: Vec<usize> = report.quarantined.iter().map(|q| q.index).collect();
    assert_eq!(flagged, vec![5, 6, 7, 8, 9]);
    let (_, second) = sanitize_samples(&kept, &policy);
    assert!(second.is_clean(), "{second}");
}
