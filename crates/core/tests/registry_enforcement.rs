//! The registry is the *only* train/persist/load path for deployment
//! code. This test greps the client crates' sources (CLI, serve,
//! placement) for direct `Predictor` training/loading and the robust
//! ladder — all of which must go through [`coloc_model::ModelRegistry`]
//! so that every deployed model carries a provenance digest and joins
//! the shared artifact cache. Core itself (and tests/benches anywhere)
//! may use the low-level APIs; deployment surfaces may not.

use std::path::{Path, PathBuf};

/// Call shapes that bypass the registry.
const FORBIDDEN: &[&str] = &["Predictor::train(", "Predictor::load(", "train_robust("];

fn client_src_dirs() -> Vec<PathBuf> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..");
    ["cli", "serve", "placement"]
        .iter()
        .map(|c| root.join(c).join("src"))
        .collect()
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display())) {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn deployment_crates_never_bypass_the_registry() {
    let mut sources = Vec::new();
    for dir in client_src_dirs() {
        rust_sources(&dir, &mut sources);
    }
    assert!(
        sources.len() >= 3,
        "expected CLI/serve/placement sources, found {}",
        sources.len()
    );

    let mut violations = Vec::new();
    for path in &sources {
        let text = std::fs::read_to_string(path).expect("read source");
        for (lineno, line) in text.lines().enumerate() {
            for pat in FORBIDDEN {
                if line.contains(pat) {
                    violations.push(format!(
                        "{}:{}: {}",
                        path.display(),
                        lineno + 1,
                        line.trim()
                    ));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "deployment code must train/load through ModelRegistry, not raw \
         Predictor APIs:\n{}",
        violations.join("\n")
    );
}
