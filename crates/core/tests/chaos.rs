//! Chaos-lab integration tests: the whole degradation pipeline, end to
//! end, under seeded fault injection. Everything here is deterministic —
//! the same faults fire in the same places on every run.

use coloc_machine::{presets, FaultPlan};
use coloc_ml::metrics::{mpe, nrmse};
use coloc_model::{
    lab::CheckpointConfig, sanitize_samples, train_robust, ColocError, FeatureSet, Lab, ModelKind,
    Predictor, SanitizePolicy, TrainPolicy, TrainingPlan,
};

fn plan() -> TrainingPlan {
    TrainingPlan {
        pstates: vec![0, 3],
        targets: vec![
            "canneal".into(),
            "cg".into(),
            "ep".into(),
            "sp".into(),
            "blackscholes".into(),
        ],
        co_runners: vec!["cg".into(), "ep".into()],
        counts: vec![1, 3, 5],
    }
}

fn clean_lab() -> Lab {
    Lab::new(presets::xeon_e5649(), coloc_workloads::standard(), 2015).unwrap()
}

fn chaotic_lab() -> Lab {
    clean_lab().with_faults(FaultPlan::heavy(99)).unwrap()
}

fn tmpfile(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("coloc-chaos-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Satellite (c), first half: NaN faults poison raw accuracy metrics, and
/// sanitization restores finite, sane numbers.
#[test]
fn metrics_nan_propagation_raw_vs_quarantined() {
    let samples = chaotic_lab().collect(&plan()).unwrap();
    // The heavy plan must actually land NaN readings on a 60-run sweep.
    assert!(
        samples.iter().any(|s| !s.actual_time_s.is_finite()),
        "no NaN faults fired — plan or seed changed?"
    );

    // Train on a clean sweep, evaluate against the faulted measurements.
    let clean = clean_lab().collect(&plan()).unwrap();
    let predictor = Predictor::train(ModelKind::Linear, FeatureSet::C, &clean, 1).unwrap();

    let raw_actual: Vec<f64> = samples.iter().map(|s| s.actual_time_s).collect();
    let raw_pred = predictor.predict_samples(&samples);
    assert!(
        mpe(&raw_pred, &raw_actual).is_nan(),
        "NaN measurements must propagate through MPE, not vanish"
    );
    assert!(nrmse(&raw_pred, &raw_actual).is_nan());

    let (kept, report) = sanitize_samples(&samples, &SanitizePolicy::default());
    assert!(!report.is_clean());
    assert!(kept.len() >= 8, "{report}");
    let actual: Vec<f64> = kept.iter().map(|s| s.actual_time_s).collect();
    let m = mpe(&predictor.predict_samples(&kept), &actual);
    let n = nrmse(&predictor.predict_samples(&kept), &actual);
    assert!(m.is_finite() && m < 100.0, "quarantined MPE {m}");
    assert!(n.is_finite(), "quarantined NRMSE {n}");
}

/// Regression: a sweep whose entire first scenario is fault-damaged — so
/// every one of its samples lands in quarantine — still produces finite
/// aggregate statistics. The first scenario is the edge that matters:
/// quarantining index 0 must not shift survivor indexing or leak a NaN
/// through `mpe`/`nrmse`.
#[test]
fn fully_quarantined_first_scenario_keeps_aggregates_finite() {
    let mut samples = clean_lab().collect(&plan()).unwrap();
    let first = samples[0].scenario.clone();
    let damaged = samples
        .iter_mut()
        .filter(|s| s.scenario == first)
        .map(|s| s.actual_time_s = f64::NAN)
        .count();
    assert!(
        damaged >= 1,
        "plan produced no samples of its first scenario"
    );

    let (kept, report) = sanitize_samples(&samples, &SanitizePolicy::default());
    assert!(
        report.quarantined.len() >= damaged,
        "the damaged scenario must be quarantined: {report}"
    );
    assert_eq!(report.quarantined[0].index, 0, "index 0 is quarantined");
    assert!(kept.iter().all(|s| s.scenario != first));

    let (predictor, treport) = train_robust(
        ModelKind::Linear,
        FeatureSet::C,
        &samples,
        1,
        &TrainPolicy::default(),
    )
    .unwrap();
    assert!(!treport.sanitize.is_clean());
    let actual: Vec<f64> = kept.iter().map(|s| s.actual_time_s).collect();
    let m = mpe(&predictor.predict_samples(&kept), &actual);
    let n = nrmse(&predictor.predict_samples(&kept), &actual);
    assert!(m.is_finite() && m >= 0.0, "aggregate MPE {m}");
    assert!(n.is_finite() && n >= 0.0, "aggregate NRMSE {n}");
}

/// Degenerate metric inputs stay NaN rather than panicking or lying.
#[test]
fn metric_edge_cases_are_nan_not_panics() {
    assert!(mpe(&[], &[]).is_nan());
    assert!(mpe(&[1.0], &[0.0]).is_nan());
    assert!(nrmse(&[1.0, 2.0], &[5.0, 5.0]).is_nan());
}

/// Tentpole acceptance: a killed-and-resumed faulted collect is
/// bit-identical to the uninterrupted faulted collect.
#[test]
fn chaos_collect_survives_a_crash_bit_identically() {
    let scenarios = plan().scenarios();
    let reference = chaotic_lab().collect_scenarios(&scenarios).unwrap();

    let path = tmpfile("chaos_resume.json");
    let _ = std::fs::remove_file(&path);
    let mut cfg = CheckpointConfig::new(&path, 5);
    cfg.crash_after = Some(23);
    match chaotic_lab().collect_resumable(&scenarios, &cfg) {
        Err(ColocError::Interrupted { completed }) => assert_eq!(completed, 23),
        other => panic!("expected Interrupted, got {:?}", other.err()),
    }
    cfg.crash_after = None;
    let resumed = chaotic_lab().collect_resumable(&scenarios, &cfg).unwrap();
    assert_eq!(resumed.len(), reference.len());
    for (a, b) in resumed.iter().zip(&reference) {
        assert_eq!(a.scenario.label(), b.scenario.label());
        // to_bits comparison: NaN == NaN here, and any drift in the
        // fault stream or JSON round-trip would show up.
        assert_eq!(
            a.actual_time_s.to_bits(),
            b.actual_time_s.to_bits(),
            "{}",
            a.scenario.label()
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// Tentpole acceptance: training on fault-riddled data never panics; the
/// robust path quarantines the damage and produces a usable model.
#[test]
fn robust_training_on_chaotic_data_produces_a_model() {
    let samples = chaotic_lab().collect(&plan()).unwrap();
    let (p, report) = train_robust(
        ModelKind::NeuralNet,
        FeatureSet::D,
        &samples,
        7,
        &TrainPolicy::default(),
    )
    .unwrap();
    assert!(!report.attempts.is_empty());
    assert!(!report.sanitize.is_clean(), "{report}");
    // Whatever rung it landed on, the model must predict finite times.
    for s in samples.iter().filter(|s| s.actual_time_s.is_finite()) {
        assert!(p.predict(&s.features).is_finite());
    }
}

/// Tentpole acceptance: an unreachable loss ceiling forces every SCG
/// attempt to fail and the pipeline lands on the linear fallback, with the
/// whole ladder recorded in the report.
#[test]
fn divergence_triggers_linear_fallback_with_full_report() {
    let samples = clean_lab().collect(&plan()).unwrap();
    let policy = TrainPolicy {
        loss_ceiling: 0.0,
        ..Default::default()
    };
    let (p, report) =
        train_robust(ModelKind::NeuralNet, FeatureSet::F, &samples, 3, &policy).unwrap();
    assert!(report.fell_back);
    assert_eq!(p.kind(), ModelKind::Linear);
    assert_eq!(report.attempts.len(), policy.retries + 2);
    let text = format!("{report}");
    assert!(text.contains("fell back"), "{text}");
}
