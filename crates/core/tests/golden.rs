//! Golden-fixture round-trips for the persistence layer.
//!
//! Each checked-in fixture under `tests/fixtures/` is a deployment
//! artifact (sweep checkpoint, sample dataset, baseline database,
//! trained predictor) written by `persist::save_json`. The tests assert
//! two things: the fixture still parses into today's types, and
//! re-serializing the parsed value reproduces the file **byte for
//! byte** — so any silent change to the on-disk schema or JSON shape
//! shows up as a diff here instead of as a corrupt artifact in a
//! deployed resource manager. Regenerate after an intentional schema
//! change with `COLOC_REGEN_FIXTURES=1 cargo test -p coloc-model --test golden`.

use coloc_model::persist::{load_json, save_json};
use coloc_model::{
    AppBaseline, BaselineDb, FeatureSet, ModelKind, ModelRegistry, Predictor, Sample, Scenario,
    SweepCheckpoint,
};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn regen() -> bool {
    std::env::var("COLOC_REGEN_FIXTURES").is_ok()
}

/// Deterministic sample set, same shape the persist unit tests use.
fn samples(n: usize) -> Vec<Sample> {
    (0..n)
        .map(|i| Sample {
            scenario: Scenario::homogeneous("t", "c", i % 5, 0),
            features: [
                100.0 + i as f64,
                (i % 5) as f64,
                (i % 5) as f64 * 0.01,
                1e-3,
                (i % 5) as f64 * 0.3,
                (i % 5) as f64 * 0.02,
                0.1,
                0.02,
            ],
            actual_time_s: (100.0 + i as f64) * (1.0 + (i % 5) as f64 * 0.05),
        })
        .collect()
}

/// Write the fixture when regenerating, then assert the load →
/// re-serialize round trip is byte-identical. Returns the parsed value
/// for semantic checks.
fn check_golden<T>(name: &str, value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let path = fixture_path(name);
    if regen() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        save_json(value, &path).unwrap();
    }
    let on_disk = std::fs::read(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (run with COLOC_REGEN_FIXTURES=1)", path.display()));
    let loaded: T = load_json(&path).unwrap();
    let reserialized = serde_json::to_vec_pretty(&loaded).unwrap();
    assert_eq!(
        on_disk, reserialized,
        "{name}: re-serialization is not byte-identical to the fixture"
    );
    loaded
}

#[test]
fn checkpoint_fixture_round_trips_byte_identical() {
    let checkpoint = SweepCheckpoint {
        plan_digest: 0xDEAD_BEEF_1234_5678,
        samples: samples(12),
    };
    let loaded = check_golden("checkpoint.json", &checkpoint);
    assert_eq!(loaded.plan_digest, checkpoint.plan_digest);
    assert_eq!(loaded.samples.len(), 12);
    for (a, b) in loaded.samples.iter().zip(&checkpoint.samples) {
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.features, b.features);
        assert_eq!(a.actual_time_s.to_bits(), b.actual_time_s.to_bits());
    }
}

#[test]
fn samples_fixture_round_trips_byte_identical() {
    let dataset = samples(25);
    let loaded = check_golden("samples.json", &dataset);
    assert_eq!(loaded.len(), 25);
    assert_eq!(loaded[7].scenario, dataset[7].scenario);
    assert_eq!(loaded[7].features, dataset[7].features);
}

#[test]
fn baselines_fixture_round_trips_byte_identical() {
    let mut db = BaselineDb::new();
    db.insert(AppBaseline {
        name: "cg".into(),
        exec_time_s: vec![100.0, 120.0, 140.0, 160.0, 180.0, 200.0],
        memory_intensity: 1.8e-2,
        cm_ca: 0.5,
        ca_ins: 0.036,
    });
    db.insert(AppBaseline {
        name: "ep".into(),
        exec_time_s: vec![90.0, 105.0, 121.0, 140.0, 161.0, 185.0],
        memory_intensity: 1.1e-5,
        cm_ca: 0.02,
        ca_ins: 0.004,
    });
    let loaded = check_golden("baselines.json", &db);
    assert_eq!(loaded, db);
}

#[test]
fn model_artifact_fixture_round_trips_byte_identical() {
    // The registry artifact is the one on-disk schema every deployment
    // path shares (`coloc train` writes it, `coloc predict`/`serve`
    // read it), so its fixture is the contract for all of them.
    let registry = ModelRegistry::new();
    let trained = registry
        .train_from_samples(&samples(80), ModelKind::Linear, FeatureSet::F, 0, None)
        .unwrap();
    let loaded = check_golden("model_artifact.json", &*trained.artifact);

    // Provenance digest survives the round trip bit for bit…
    assert_eq!(loaded.digest(), trained.artifact.digest());
    assert_eq!(loaded.machine, trained.artifact.machine);
    assert_eq!(loaded.data_digest, trained.artifact.data_digest);
    // …and so do predictions.
    for s in &samples(80)[..10] {
        assert_eq!(
            trained.artifact.predictor.predict(&s.features).to_bits(),
            loaded.predictor.predict(&s.features).to_bits()
        );
    }

    // The fixture must also load through the registry's own gate (the
    // path serve and the CLI actually take), which checks the schema
    // version and memoizes by digest.
    let via_registry = registry.load(fixture_path("model_artifact.json")).unwrap();
    assert_eq!(via_registry.digest(), trained.artifact.digest());
}

#[test]
fn linear_predictor_fixture_round_trips_byte_identical() {
    let train = samples(80);
    let predictor = Predictor::train(ModelKind::Linear, FeatureSet::D, &train, 3).unwrap();
    let loaded = check_golden("predictor_linear.json", &predictor);
    assert_eq!(loaded.kind(), ModelKind::Linear);
    assert_eq!(loaded.feature_set(), FeatureSet::D);
    // The persisted model must predict bit-identically to the trained one.
    for s in &train[..10] {
        assert_eq!(
            predictor.predict(&s.features).to_bits(),
            loaded.predict(&s.features).to_bits()
        );
    }
}
