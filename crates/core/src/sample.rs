//! Training samples: featurized co-location runs.

use crate::features::FeatureSet;
use crate::scenario::Scenario;
use crate::{ModelError, Result};
use coloc_ml::Dataset;

/// One measured co-location run, featurized.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// The scenario that was run.
    pub scenario: Scenario,
    /// All eight features in canonical [`crate::Feature::ALL`] order —
    /// individual models project the subset they use.
    pub features: [f64; 8],
    /// Measured co-located execution time of the target, seconds.
    pub actual_time_s: f64,
}

/// Assemble an [`coloc_ml::Dataset`] from samples for one feature set.
pub fn samples_to_dataset(samples: &[Sample], set: FeatureSet) -> Result<Dataset> {
    if samples.is_empty() {
        return Err(ModelError::InsufficientData("no samples".into()));
    }
    let rows: Vec<(Vec<f64>, f64)> = samples
        .iter()
        .map(|s| (set.project(&s.features), s.actual_time_s))
        .collect();
    Dataset::from_samples(&rows).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64) -> Sample {
        Sample {
            scenario: Scenario::homogeneous("canneal", "cg", 2, 0),
            features: [t, 2.0, 0.03, 0.001, 0.8, 0.04, 0.1, 0.01],
            actual_time_s: t * 1.2,
        }
    }

    #[test]
    fn dataset_assembly_projects_columns() {
        let samples = vec![sample(100.0), sample(200.0), sample(300.0)];
        let ds = samples_to_dataset(&samples, FeatureSet::C).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.num_features(), 3);
        assert_eq!(ds.sample(1).0, &[200.0, 2.0, 0.03]);
        assert!((ds.sample(1).1 - 240.0).abs() < 1e-9);
    }

    #[test]
    fn full_set_keeps_all_eight() {
        let ds = samples_to_dataset(&[sample(1.0), sample(2.0)], FeatureSet::F).unwrap();
        assert_eq!(ds.num_features(), 8);
    }

    #[test]
    fn empty_samples_is_error() {
        assert!(matches!(
            samples_to_dataset(&[], FeatureSet::A),
            Err(ModelError::InsufficientData(_))
        ));
    }
}
