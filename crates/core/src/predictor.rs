//! Trained predictors: the paper's twelve models.
//!
//! Two learning techniques (paper §III-C, §III-D) × six feature sets
//! (Table II) = twelve models. [`Predictor`] wraps one trained instance
//! and always accepts the *full* eight-feature vector, projecting the
//! subset its feature set uses — so call sites never track arities.

use crate::features::FeatureSet;
use crate::sample::{samples_to_dataset, Sample};
use crate::{ModelError, Result};
use coloc_ml::{LinearRegression, Mlp, MlpConfig, QuadraticRegression};

/// Which learning technique to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ModelKind {
    /// Linear least squares (paper Eq. 1).
    Linear,
    /// Single-hidden-layer neural network trained with scaled conjugate
    /// gradient (paper §III-D).
    NeuralNet,
    /// Linear least squares over a degree-2 polynomial expansion of the
    /// feature set — an extension beyond the paper, quantifying how much
    /// of the neural network's advantage cheap interaction features
    /// recover (see `repro ablation-quad`).
    QuadraticLinear,
}

impl ModelKind {
    /// The paper's two techniques, in paper order (Figures 1–4 cover
    /// exactly these).
    pub const ALL: [ModelKind; 2] = [ModelKind::Linear, ModelKind::NeuralNet];

    /// All techniques including this reproduction's extensions.
    pub const EXTENDED: [ModelKind; 3] = [
        ModelKind::Linear,
        ModelKind::NeuralNet,
        ModelKind::QuadraticLinear,
    ];

    /// Human-readable name.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Linear => "linear",
            ModelKind::NeuralNet => "neural-net",
            ModelKind::QuadraticLinear => "quadratic",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[derive(serde::Serialize, serde::Deserialize)]
enum ModelImpl {
    Linear(LinearRegression),
    Nn(Box<Mlp>),
    Quadratic(Box<QuadraticRegression>),
}

/// One trained co-location performance model.
///
/// Serializable: a trained predictor round-trips through JSON (see
/// [`crate::persist`]) so models can be deployed without retraining.
#[derive(serde::Serialize, serde::Deserialize)]
pub struct Predictor {
    kind: ModelKind,
    set: FeatureSet,
    model: ModelImpl,
}

impl Predictor {
    /// Train a model of `kind` over feature set `set` on `samples`.
    ///
    /// `seed` controls neural-network initialization (ignored for linear
    /// models); the same inputs always produce the same model.
    pub fn train(
        kind: ModelKind,
        set: FeatureSet,
        samples: &[Sample],
        seed: u64,
    ) -> Result<Predictor> {
        let data = samples_to_dataset(samples, set)?;
        let model = match kind {
            ModelKind::Linear => ModelImpl::Linear(LinearRegression::fit(&data)?),
            ModelKind::NeuralNet => {
                let cfg = MlpConfig::for_features(set.arity(), seed);
                ModelImpl::Nn(Box::new(Mlp::fit(&data, &cfg)?))
            }
            ModelKind::QuadraticLinear => {
                ModelImpl::Quadratic(Box::new(QuadraticRegression::fit(&data)?))
            }
        };
        Ok(Predictor { kind, set, model })
    }

    /// The learning technique.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The feature set.
    pub fn feature_set(&self) -> FeatureSet {
        self.set
    }

    /// Predict co-located execution time (seconds) from a full
    /// eight-feature vector (see [`crate::Lab::featurize`]).
    pub fn predict(&self, full_features: &[f64; 8]) -> f64 {
        let x = self.set.project(full_features);
        match &self.model {
            ModelImpl::Linear(m) => m.predict(&x),
            ModelImpl::Nn(m) => m.predict(&x),
            ModelImpl::Quadratic(m) => m.predict(&x),
        }
    }

    /// Predict for a slice of samples (e.g. a withheld test set).
    pub fn predict_samples(&self, samples: &[Sample]) -> Vec<f64> {
        samples.iter().map(|s| self.predict(&s.features)).collect()
    }

    /// Predicted *slowdown* relative to the baseline time embedded in the
    /// feature vector (predicted time / baseExTime).
    pub fn predict_slowdown(&self, full_features: &[f64; 8]) -> f64 {
        let base = full_features[crate::features::Feature::BaseExTime.index()];
        if base > 0.0 {
            self.predict(full_features) / base
        } else {
            f64::NAN
        }
    }

    /// Final training loss of the underlying learner, when it exposes one
    /// (the SCG-trained network, in standardized units). `None` for the
    /// closed-form linear fits. [`crate::robust::train_robust`] uses this
    /// as its divergence signal.
    pub fn train_loss(&self) -> Option<f64> {
        match &self.model {
            ModelImpl::Nn(m) => Some(m.train_loss()),
            _ => None,
        }
    }

    /// For linear models: the raw-space coefficients `(coeffs, constant)`
    /// of paper Eq. 1 over this feature set's columns. `None` for neural
    /// networks.
    pub fn linear_coefficients(&self) -> Option<(Vec<f64>, f64)> {
        match &self.model {
            ModelImpl::Linear(m) => Some(m.raw_coefficients()),
            _ => None,
        }
    }
}

/// Train the paper's full 2×6 model grid on one sample set. Returns
/// predictors in `(kind, set)` order: all six linear, then all six NN.
pub fn train_full_grid(samples: &[Sample], seed: u64) -> Result<Vec<Predictor>> {
    let mut out = Vec::with_capacity(12);
    for kind in ModelKind::ALL {
        for set in FeatureSet::ALL {
            out.push(Predictor::train(kind, set, samples, seed)?);
        }
    }
    Ok(out)
}

impl std::fmt::Debug for Predictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Predictor({} / set {})", self.kind, self.set)
    }
}

// Keep the unused-import lint honest: ModelError is used in Result alias.
const _: fn() -> ModelError = || ModelError::InsufficientData(String::new());

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    /// Synthetic samples with a known relationship:
    /// time = base × (1 + 0.1·coAppMem·40) plus mild nonlinearity.
    fn synthetic_samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| {
                let base = 150.0 + (i % 7) as f64 * 50.0;
                let ncoapp = (i % 5) as f64;
                let co_mem = ncoapp * 0.01 * (1.0 + (i % 3) as f64);
                let target_mem = 1e-3 * (1.0 + (i % 4) as f64);
                let slowdown = 1.0 + 4.0 * co_mem + 8.0 * co_mem * co_mem / (0.01 + co_mem);
                Sample {
                    scenario: Scenario::homogeneous("t", "c", ncoapp as usize, 0),
                    features: [
                        base,
                        ncoapp,
                        co_mem,
                        target_mem,
                        ncoapp * 0.4,
                        ncoapp * 0.03,
                        0.1,
                        0.02,
                    ],
                    actual_time_s: base * slowdown,
                }
            })
            .collect()
    }

    #[test]
    fn linear_model_exposes_eq1_coefficients() {
        let samples = synthetic_samples(100);
        let p = Predictor::train(ModelKind::Linear, FeatureSet::C, &samples, 0).unwrap();
        let (coeffs, _constant) = p.linear_coefficients().unwrap();
        assert_eq!(coeffs.len(), 3);
        // Reconstruct a prediction manually.
        let f = &samples[10].features;
        let x = FeatureSet::C.project(f);
        let manual: f64 = coeffs.iter().zip(&x).map(|(c, v)| c * v).sum::<f64>()
            + p.linear_coefficients().unwrap().1;
        assert!((manual - p.predict(f)).abs() < 1e-9);
    }

    #[test]
    fn nn_beats_linear_on_nonlinear_data() {
        let samples = synthetic_samples(240);
        let lin = Predictor::train(ModelKind::Linear, FeatureSet::F, &samples, 1).unwrap();
        let nn = Predictor::train(ModelKind::NeuralNet, FeatureSet::F, &samples, 1).unwrap();
        let actual: Vec<f64> = samples.iter().map(|s| s.actual_time_s).collect();
        let lin_mpe = coloc_ml::metrics::mpe(&lin.predict_samples(&samples), &actual);
        let nn_mpe = coloc_ml::metrics::mpe(&nn.predict_samples(&samples), &actual);
        assert!(nn_mpe < lin_mpe, "nn {nn_mpe} vs linear {lin_mpe}");
    }

    #[test]
    fn quadratic_sits_between_linear_and_nn_on_nonlinear_data() {
        let samples = synthetic_samples(240);
        let lin = Predictor::train(ModelKind::Linear, FeatureSet::F, &samples, 1).unwrap();
        let quad =
            Predictor::train(ModelKind::QuadraticLinear, FeatureSet::F, &samples, 1).unwrap();
        let actual: Vec<f64> = samples.iter().map(|s| s.actual_time_s).collect();
        let lin_mpe = coloc_ml::metrics::mpe(&lin.predict_samples(&samples), &actual);
        let quad_mpe = coloc_ml::metrics::mpe(&quad.predict_samples(&samples), &actual);
        assert!(quad_mpe < lin_mpe, "quad {quad_mpe} vs linear {lin_mpe}");
        assert!(quad.linear_coefficients().is_none());
    }

    #[test]
    fn grid_trains_all_twelve() {
        let samples = synthetic_samples(120);
        let grid = train_full_grid(&samples, 3).unwrap();
        assert_eq!(grid.len(), 12);
        assert_eq!(grid[0].kind(), ModelKind::Linear);
        assert_eq!(grid[6].kind(), ModelKind::NeuralNet);
        assert_eq!(grid[5].feature_set(), FeatureSet::F);
        for p in &grid {
            let v = p.predict(&samples[0].features);
            assert!(v.is_finite() && v > 0.0, "{p:?} predicted {v}");
        }
    }

    #[test]
    fn deterministic_nn_training() {
        let samples = synthetic_samples(80);
        let a = Predictor::train(ModelKind::NeuralNet, FeatureSet::D, &samples, 9).unwrap();
        let b = Predictor::train(ModelKind::NeuralNet, FeatureSet::D, &samples, 9).unwrap();
        assert_eq!(
            a.predict(&samples[3].features),
            b.predict(&samples[3].features)
        );
    }

    #[test]
    fn slowdown_helper() {
        let samples = synthetic_samples(60);
        let p = Predictor::train(ModelKind::Linear, FeatureSet::A, &samples, 0).unwrap();
        let sd = p.predict_slowdown(&samples[0].features);
        assert!(sd > 0.5 && sd < 10.0, "{sd}");
    }

    #[test]
    fn too_few_samples_fails_cleanly() {
        let samples = synthetic_samples(2);
        assert!(Predictor::train(ModelKind::Linear, FeatureSet::F, &samples, 0).is_err());
    }
}
