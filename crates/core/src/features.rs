//! The eight model features (paper Table I) and the six nested feature
//! sets A–F (paper Table II).

/// One of the eight features the models may consume. All are computable
/// from *baseline* (solo) measurements plus the shape of the co-location —
/// the methodology's key economy: no measurement under co-location is ever
/// required to make a prediction (paper §I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Feature {
    /// Baseline execution time of the target at the scenario's P-state.
    BaseExTime,
    /// Number of co-located applications.
    NumCoApp,
    /// Sum of co-located applications' baseline memory intensities.
    CoAppMem,
    /// Target's baseline memory intensity.
    TargetMem,
    /// Sum of co-apps' baseline LLC miss/access ratios (CM/CA).
    CoAppCmCa,
    /// Sum of co-apps' baseline LLC access/instruction ratios (CA/INS).
    CoAppCaIns,
    /// Target's baseline CM/CA.
    TargetCmCa,
    /// Target's baseline CA/INS.
    TargetCaIns,
}

impl Feature {
    /// All eight features, in canonical (Table I) order. This is also the
    /// column order of [`crate::Sample::features`].
    pub const ALL: [Feature; 8] = [
        Feature::BaseExTime,
        Feature::NumCoApp,
        Feature::CoAppMem,
        Feature::TargetMem,
        Feature::CoAppCmCa,
        Feature::CoAppCaIns,
        Feature::TargetCmCa,
        Feature::TargetCaIns,
    ];

    /// Canonical column index of this feature.
    pub fn index(&self) -> usize {
        Feature::ALL
            .iter()
            .position(|f| f == self)
            .expect("feature in ALL")
    }

    /// The paper's name for the feature (Table I, first column).
    pub fn paper_name(&self) -> &'static str {
        match self {
            Feature::BaseExTime => "baseExTime",
            Feature::NumCoApp => "numCoApp",
            Feature::CoAppMem => "coAppMem",
            Feature::TargetMem => "targetMem",
            Feature::CoAppCmCa => "coAppCM/CA",
            Feature::CoAppCaIns => "coAppCA/INS",
            Feature::TargetCmCa => "targetCM/CA",
            Feature::TargetCaIns => "targetCA/INS",
        }
    }

    /// The aspect of execution measured (Table I, second column).
    pub fn description(&self) -> &'static str {
        match self {
            Feature::BaseExTime => "baseline execution time of target application at all P-states",
            Feature::NumCoApp => "number of co-located applications",
            Feature::CoAppMem => "sum of co-application memory intensities",
            Feature::TargetMem => "target application memory intensity",
            Feature::CoAppCmCa => "sum of co-application last-level cache misses/cache accesses",
            Feature::CoAppCaIns => "sum of co-application last-level cache accesses/instructions",
            Feature::TargetCmCa => "target application last-level cache misses/cache accesses",
            Feature::TargetCaIns => "target application last-level cache accesses/instructions",
        }
    }
}

impl std::fmt::Display for Feature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// The six nested feature sets (paper Table II). Each set adds information
/// a resource manager might progressively obtain about the system: A knows
/// only the target's solo time; F knows the full cache behaviour of target
/// and co-runners.
#[derive(
    Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum FeatureSet {
    /// `baseExTime` only — the baseline model.
    A,
    /// A + `numCoApp`.
    B,
    /// B + `coAppMem`.
    C,
    /// C + `targetMem`.
    D,
    /// D + `coAppCM/CA`, `coAppCA/INS`.
    E,
    /// E + `targetCM/CA`, `targetCA/INS` — all eight features.
    F,
}

impl FeatureSet {
    /// All six sets, in increasing information order.
    pub const ALL: [FeatureSet; 6] = [
        FeatureSet::A,
        FeatureSet::B,
        FeatureSet::C,
        FeatureSet::D,
        FeatureSet::E,
        FeatureSet::F,
    ];

    /// The features in this set, in canonical order.
    pub fn features(&self) -> &'static [Feature] {
        use Feature::*;
        match self {
            FeatureSet::A => &[BaseExTime],
            FeatureSet::B => &[BaseExTime, NumCoApp],
            FeatureSet::C => &[BaseExTime, NumCoApp, CoAppMem],
            FeatureSet::D => &[BaseExTime, NumCoApp, CoAppMem, TargetMem],
            FeatureSet::E => &[
                BaseExTime, NumCoApp, CoAppMem, TargetMem, CoAppCmCa, CoAppCaIns,
            ],
            FeatureSet::F => &[
                BaseExTime,
                NumCoApp,
                CoAppMem,
                TargetMem,
                CoAppCmCa,
                CoAppCaIns,
                TargetCmCa,
                TargetCaIns,
            ],
        }
    }

    /// Canonical column indices of this set's features.
    pub fn indices(&self) -> Vec<usize> {
        self.features().iter().map(|f| f.index()).collect()
    }

    /// Number of features in the set.
    pub fn arity(&self) -> usize {
        self.features().len()
    }

    /// Project a full 8-feature vector down to this set.
    pub fn project(&self, full: &[f64; 8]) -> Vec<f64> {
        self.features().iter().map(|f| full[f.index()]).collect()
    }

    /// Single-letter label ("A"…"F").
    pub fn label(&self) -> &'static str {
        match self {
            FeatureSet::A => "A",
            FeatureSet::B => "B",
            FeatureSet::C => "C",
            FeatureSet::D => "D",
            FeatureSet::E => "E",
            FeatureSet::F => "F",
        }
    }
}

impl std::fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_is_stable() {
        for (i, f) in Feature::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }

    #[test]
    fn sets_are_nested() {
        // Each set's features must be a strict superset of the previous.
        for w in FeatureSet::ALL.windows(2) {
            let prev = w[0].features();
            let next = w[1].features();
            assert!(next.len() > prev.len());
            for f in prev {
                assert!(next.contains(f), "{:?} missing {f:?}", w[1]);
            }
        }
    }

    #[test]
    fn arities_match_table2() {
        let arities: Vec<usize> = FeatureSet::ALL.iter().map(|s| s.arity()).collect();
        assert_eq!(arities, vec![1, 2, 3, 4, 6, 8]);
        assert_eq!(FeatureSet::F.features(), &Feature::ALL);
    }

    #[test]
    fn projection_selects_right_columns() {
        let full = [10.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        assert_eq!(FeatureSet::A.project(&full), vec![10.0]);
        assert_eq!(FeatureSet::C.project(&full), vec![10.0, 1.0, 2.0]);
        assert_eq!(FeatureSet::F.project(&full).len(), 8);
    }

    #[test]
    fn paper_names_are_unique() {
        let mut names: Vec<_> = Feature::ALL.iter().map(|f| f.paper_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
