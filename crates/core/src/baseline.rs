//! Baseline measurements: the single solo profiling pass per application.
//!
//! The methodology's efficiency claim (paper §I, §II): unlike approaches
//! that continuously monitor counters, it needs each application's
//! performance-counter information exactly **once** — one solo run per
//! P-state for execution time, one counter sample for the cache ratios.

use std::collections::BTreeMap;

/// Baseline record for one application.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AppBaseline {
    /// Application name.
    pub name: String,
    /// Solo execution time at each P-state index, seconds.
    pub exec_time_s: Vec<f64>,
    /// Baseline memory intensity (LLC misses / instructions).
    pub memory_intensity: f64,
    /// Baseline CM/CA (LLC misses / LLC accesses).
    pub cm_ca: f64,
    /// Baseline CA/INS (LLC accesses / instructions).
    pub ca_ins: f64,
}

impl AppBaseline {
    /// Baseline execution time at a P-state, if measured.
    pub fn time_at(&self, pstate: usize) -> Option<f64> {
        self.exec_time_s.get(pstate).copied()
    }
}

/// Baselines for a whole suite on one machine.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BaselineDb {
    apps: BTreeMap<String, AppBaseline>,
}

impl BaselineDb {
    /// An empty database.
    pub fn new() -> BaselineDb {
        BaselineDb::default()
    }

    /// Insert (or replace) one application's baseline.
    pub fn insert(&mut self, baseline: AppBaseline) {
        self.apps.insert(baseline.name.clone(), baseline);
    }

    /// Look up an application.
    pub fn get(&self, name: &str) -> Option<&AppBaseline> {
        self.apps.get(name)
    }

    /// Number of applications recorded.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True when no baselines are recorded.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Iterate over baselines in name order.
    pub fn iter(&self) -> impl Iterator<Item = &AppBaseline> {
        self.apps.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(name: &str, mi: f64) -> AppBaseline {
        AppBaseline {
            name: name.into(),
            exec_time_s: vec![100.0, 120.0],
            memory_intensity: mi,
            cm_ca: 0.3,
            ca_ins: 0.02,
        }
    }

    #[test]
    fn insert_and_lookup() {
        let mut db = BaselineDb::new();
        assert!(db.is_empty());
        db.insert(b("cg", 1e-2));
        db.insert(b("ep", 1e-6));
        assert_eq!(db.len(), 2);
        assert_eq!(db.get("cg").unwrap().memory_intensity, 1e-2);
        assert!(db.get("nope").is_none());
    }

    #[test]
    fn replace_on_reinsert() {
        let mut db = BaselineDb::new();
        db.insert(b("cg", 1e-2));
        db.insert(b("cg", 2e-2));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get("cg").unwrap().memory_intensity, 2e-2);
    }

    #[test]
    fn time_lookup_bounds() {
        let base = b("cg", 1e-2);
        assert_eq!(base.time_at(0), Some(100.0));
        assert_eq!(base.time_at(1), Some(120.0));
        assert_eq!(base.time_at(2), None);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut db = BaselineDb::new();
        db.insert(b("sp", 1e-3));
        db.insert(b("cg", 1e-2));
        let names: Vec<_> = db.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["cg", "sp"]);
    }
}
